/**
 * @file
 * Pretty-printer for the span tracker's JSON output.
 *
 * Input is either a single stats-JSON report (System::dumpStatsJson with
 * a "spans" section), a raw SpanTracker::toJson() object, or a JSONL
 * stream of per-run records ({"workload":...,"config":...,
 * "spans":{...}}) as written via ROWSIM_SPANS_JSON. "-" reads stdin.
 *
 * For each record the tool prints the aggregate segment breakdown with
 * latency percentiles, the per-PC and per-line tables, and — for the
 * retained slowest spans — an ASCII waterfall of each span's segment
 * timeline plus its critical-path decomposition (which leg of the miss
 * window dominated: network hops, directory blocking, lock stalls, or
 * unattributed protocol time).
 *
 * Standalone: parses JSON itself (no simulator linkage), so it also
 * works on reports produced by older or newer rowsim builds.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (same shape as profile_report;
// kept separate so each tool stays a single self-contained file).
// ---------------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }

    bool has(const std::string &key) const { return obj.count(key) != 0; }

    /** Numbers arrive as doubles or as hex strings ("0x10"). */
    unsigned long long
    asU64() const
    {
        if (type == Number)
            return static_cast<unsigned long long>(num);
        if (type == String)
            return std::strtoull(str.c_str(), nullptr, 0);
        return 0;
    }

    double asDouble() const { return type == Number ? num : 0.0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", Json::Bool, true);
          case 'f': return literal("false", Json::Bool, false);
          case 'n': return literal("null", Json::Null, false);
          default: return number();
        }
    }

    Json
    literal(const char *word, Json::Type t, bool b)
    {
        if (s.compare(pos, std::strlen(word), word) != 0)
            fail("bad literal");
        pos += std::strlen(word);
        Json j;
        j.type = t;
        j.b = b;
        return j;
    }

    Json
    object()
    {
        Json j;
        j.type = Json::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            pos++;
            return j;
        }
        while (true) {
            ws();
            Json key = string();
            ws();
            expect(':');
            j.obj[key.str] = value();
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    array()
    {
        Json j;
        j.type = Json::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            pos++;
            return j;
        }
        while (true) {
            j.arr.push_back(value());
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return j;
        }
    }

    Json
    string()
    {
        Json j;
        j.type = Json::String;
        expect('"');
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = peek();
                pos++;
                switch (e) {
                  case '"': j.str += '"'; break;
                  case '\\': j.str += '\\'; break;
                  case '/': j.str += '/'; break;
                  case 'n': j.str += '\n'; break;
                  case 't': j.str += '\t'; break;
                  case 'r': j.str += '\r'; break;
                  case 'u':
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    pos += 4;
                    j.str += '?';
                    break;
                  default: fail("bad escape");
                }
            } else {
                j.str += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            fail("expected number");
        Json j;
        j.type = Json::Number;
        j.num = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
        return j;
    }

    const std::string &s;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

/** Matches SpanSeg order in src/sim/span.hh; the JSON keys are the
 *  source of truth, this list only fixes the column order. */
const char *const segNames[] = {
    "dispatchWait", "sbDrain",     "aqWait",   "execute",
    "l1Miss",       "unblockWait", "lockHeld",
};
constexpr unsigned numSegs = sizeof(segNames) / sizeof(segNames[0]);

/** Single-letter glyph per segment for the waterfall lane. */
const char segGlyphs[numSegs + 1] = "dsqxmul";

void
printHist(const char *name, const Json &h)
{
    if (h.type != Json::Object)
        return;
    std::printf("    %-12s n=%-8llu mean=%-9.1f p50=%-8.0f p90=%-8.0f "
                "p99=%-8.0f max=%.0f\n",
                name, h.at("count").asU64(), h.at("mean").asDouble(),
                h.at("p50").asDouble(), h.at("p90").asDouble(),
                h.at("p99").asDouble(), h.at("max").asDouble());
}

void
printSegTotals(const Json &spans)
{
    const Json &t = spans.at("segTotals");
    if (t.type != Json::Object)
        return;
    const double total =
        std::max(1.0, static_cast<double>(t.at("total").asU64()));
    std::printf("  Segment breakdown (all %llu closed spans, "
                "%llu span-cycles):\n",
                spans.at("closed").asU64(), t.at("total").asU64());
    for (const char *seg : segNames) {
        const unsigned long long v = t.at(seg).asU64();
        std::printf("    %-14s %12llu %6.1f%%  ", seg, v,
                    100.0 * static_cast<double>(v) / total);
        const int bar = static_cast<int>(
            40.0 * static_cast<double>(v) / total + 0.5);
        for (int i = 0; i < bar; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("    remote legs inside l1Miss: netCycles=%llu "
                "dirBlocked=%llu lockStall=%llu\n",
                t.at("netCycles").asU64(), t.at("dirBlocked").asU64(),
                t.at("lockStall").asU64());
}

void
printAggTable(const Json &arr, const char *title, const char *keyName,
              unsigned long long tracked)
{
    if (arr.type != Json::Array || arr.arr.empty())
        return;
    std::printf("  %s (top %zu of %llu, by span-cycles):\n", title,
                arr.arr.size(), tracked);
    std::printf("    %-14s %8s %11s %7s %7s %9s %9s %9s %9s\n", keyName,
                "count", "cycles", "lazy", "replays", "sbDrain", "l1Miss",
                "unblock", "lockHeld");
    for (const Json &a : arr.arr) {
        std::printf("    %-14s %8llu %11llu %7llu %7llu %9llu %9llu "
                    "%9llu %9llu\n",
                    a.at(keyName).str.c_str(), a.at("count").asU64(),
                    a.at("total").asU64(), a.at("lazy").asU64(),
                    a.at("replays").asU64(), a.at("sbDrain").asU64(),
                    a.at("l1Miss").asU64(), a.at("unblockWait").asU64(),
                    a.at("lockHeld").asU64());
    }
}

/** One retained span: header line, scaled waterfall lane, critical path. */
void
printSpan(const Json &sp)
{
    const unsigned long long total = sp.at("total").asU64();
    std::printf("    span %llu core%llu pc=%s line=%s [%llu, %llu) "
                "%llu cyc %s replays=%llu\n",
                sp.at("id").asU64(), sp.at("core").asU64(),
                sp.at("pc").str.c_str(), sp.at("line").str.c_str(),
                sp.at("dispatch").asU64(), sp.at("commit").asU64(), total,
                sp.at("lazy").b ? "lazy" : "eager",
                sp.at("replays").asU64());

    // Waterfall: one 60-column lane, segments in SpanSeg order scaled to
    // the span's total. The segments tile dispatch→commit (conservation
    // is enforced at close), so the lane is exact up to rounding.
    const Json &segs = sp.at("segs");
    constexpr int lane = 60;
    std::string bar;
    for (unsigned s = 0; s < numSegs; ++s) {
        const unsigned long long v = segs.at(segNames[s]).asU64();
        if (!v || !total)
            continue;
        int w = static_cast<int>(
            static_cast<double>(lane) * static_cast<double>(v) /
                static_cast<double>(total) + 0.5);
        if (w < 1)
            w = 1;
        bar.append(static_cast<std::size_t>(w), segGlyphs[s]);
    }
    if (bar.size() > lane)
        bar.resize(lane);
    std::printf("      |%-*s|\n", lane, bar.c_str());

    const Json &crit = sp.at("critical");
    std::printf("      legs: net=%llu cyc/%llu hops, dirBlocked=%llu, "
                "lockStall=%llu, missOther=%llu -> critical path: %s\n",
                sp.at("netCycles").asU64(), sp.at("netHops").asU64(),
                sp.at("dirBlocked").asU64(), sp.at("lockStall").asU64(),
                crit.at("missOther").asU64(),
                crit.at("dominant").str.c_str());
}

/** Render one record: @p spans is the span-tracker object itself. */
void
report(const Json &spans, const std::string &label)
{
    std::printf("=== %s (spans: %llu opened, %llu closed, %llu open at "
                "end, %llu truncated) ===\n",
                label.c_str(), spans.at("opened").asU64(),
                spans.at("closed").asU64(), spans.at("openAtEnd").asU64(),
                spans.at("truncated").asU64());
    std::printf("  Latency percentiles (cycles dispatch->commit):\n");
    printHist("all", spans.at("latency"));
    printHist("l1Miss", spans.at("missLatency"));
    printHist("lockHeld", spans.at("lockHeld"));
    printSegTotals(spans);
    printAggTable(spans.at("pcs"), "Atomic PCs", "pc",
                  spans.at("pcsTracked").asU64());
    printAggTable(spans.at("lines"), "Cache lines", "line",
                  spans.at("linesTracked").asU64());

    const Json &recs = spans.at("spans");
    if (recs.type == Json::Array && !recs.arr.empty()) {
        std::printf("  Slowest retained spans (waterfall: d=dispatchWait "
                    "s=sbDrain q=aqWait x=execute m=l1Miss u=unblockWait "
                    "l=lockHeld):\n");
        for (const Json &sp : recs.arr)
            printSpan(sp);
    }
    std::printf("\n");
}

/** A record is either a wrapper with a "spans" member (stats report /
 *  JSONL run record) or a raw span-tracker object (has "segTotals"). */
bool
handleRecord(const Json &rec, unsigned index)
{
    const Json *spans = nullptr;
    std::string label;
    if (rec.has("spans") && rec.at("spans").type == Json::Object) {
        spans = &rec.at("spans");
        if (rec.at("workload").type == Json::String)
            label = rec.at("workload").str;
        if (rec.at("config").type == Json::String)
            label += (label.empty() ? "" : "/") + rec.at("config").str;
    } else if (rec.has("segTotals")) {
        spans = &rec;
    }
    if (!spans)
        return false;
    if (label.empty())
        label = "run" + std::to_string(index);
    report(*spans, label);
    return true;
}

std::string
readAll(const char *path)
{
    std::FILE *f =
        std::strcmp(path, "-") == 0 ? stdin : std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "span_report: cannot open %s\n", path);
        std::exit(1);
    }
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (f != stdin)
        std::fclose(f);
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: span_report FILE|-\n"
        "  FILE: a stats JSON report (with a \"spans\" section), a raw\n"
        "        span-tracker JSON object, or a JSONL stream of run\n"
        "        records as written via ROWSIM_SPANS_JSON. '-' reads\n"
        "        stdin.\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        usage();
    const char *input = argv[1];

    const std::string text = readAll(input);
    unsigned rendered = 0, index = 0;

    // A whole-file parse handles pretty-printed stats reports; if that
    // fails the input is a JSONL stream — parse line by line.
    bool wholeFile = true;
    try {
        Json root = JsonParser(text).parse();
        if (handleRecord(root, index++))
            rendered++;
    } catch (const std::exception &) {
        wholeFile = false;
    }

    if (!wholeFile) {
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            std::string line = text.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            try {
                Json rec = JsonParser(line).parse();
                if (handleRecord(rec, index++))
                    rendered++;
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "span_report: skipping bad line: %s\n",
                             e.what());
            }
        }
    }

    if (!rendered) {
        std::fprintf(stderr, "span_report: no span records found in %s "
                     "(was the run executed with ROWSIM_SPANS=on?)\n",
                     input);
        return 1;
    }
    return 0;
}
