/**
 * @file
 * Golden-state digest generator.
 *
 * Runs a small fixed suite of (workload, policy) pairs to a fixed quota
 * and prints each System::stateDigest() as JSON on stdout:
 *
 *   {"format": 1, "entries": [
 *     {"workload": "cq", "config": "eager", "cores": 4, "quota": 120,
 *      "seed": 7, "digest": "<sha256 hex>"}, ...]}
 *
 * The digest covers only integer-valued architectural state, so the
 * same source must produce the same digests on every compiler and
 * platform. CI regenerates this suite under gcc and clang and compares
 * both against the committed tests/golden/digests.json; any difference
 * is a determinism regression (or an intentional behaviour change,
 * which must regenerate the golden file in the same commit).
 *
 * Usage: state_digest [workload ...]   (default: the built-in suite)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

constexpr unsigned kCores = 4;
constexpr std::uint64_t kQuota = 120;
constexpr std::uint64_t kSeed = 7;

/** Diverse golden subset: high-contention (cq, sps), mixed (tatp,
 *  canneal) and low-contention (blackscholes) behaviour. */
const std::vector<std::string> kSuiteWorkloads = {
    "cq", "sps", "tatp", "canneal", "blackscholes",
};

const std::vector<std::string> kSuiteConfigs = {"eager", "lazy", "row"};

/** Map a golden config key to its ExpConfig (mirrored by
 *  tests/test_snapshot.cc:goldenConfig — keep the two in sync). */
ExpConfig
configByName(const std::string &name)
{
    if (name == "eager")
        return eagerConfig();
    if (name == "lazy")
        return lazyConfig();
    if (name == "row") {
        return rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::SaturateOnContention);
    }
    ROWSIM_FATAL("unknown golden config '%s' (valid: eager, lazy, row)",
                 name.c_str());
}

std::string
digestFor(const std::string &workload, const std::string &config)
{
    const SystemParams sp =
        makeParams(configByName(config), kCores, kSeed);
    System sys(sp, makeStreams(profileFor(workload), kCores, kSeed));
    sys.run(kQuota);
    return sys.stateDigest();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads(argv + 1, argv + argc);
    if (workloads.empty())
        workloads = kSuiteWorkloads;

    std::printf("{\"format\": 1, \"entries\": [\n");
    bool first = true;
    for (const auto &w : workloads) {
        for (const auto &cfg : kSuiteConfigs) {
            std::printf("%s  {\"workload\": \"%s\", \"config\": \"%s\", "
                        "\"cores\": %u, \"quota\": %llu, \"seed\": %llu, "
                        "\"digest\": \"%s\"}",
                        first ? "" : ",\n", w.c_str(), cfg.c_str(),
                        kCores, static_cast<unsigned long long>(kQuota),
                        static_cast<unsigned long long>(kSeed),
                        digestFor(w, cfg).c_str());
            first = false;
        }
    }
    std::printf("\n]}\n");
    return 0;
}
