/**
 * @file
 * Golden-state digest generator and cross-validation driver.
 *
 * Default mode runs a small fixed suite of (workload, policy) pairs to
 * a fixed quota and prints each System::stateDigest() as JSON on
 * stdout:
 *
 *   {"format": 1, "entries": [
 *     {"workload": "cq", "config": "eager", "cores": 4, "quota": 120,
 *      "seed": 7, "digest": "<sha256 hex>"}, ...]}
 *
 * The digest covers only integer-valued architectural state, so the
 * same source must produce the same digests on every compiler and
 * platform. CI regenerates this suite under gcc and clang and compares
 * both against the committed tests/golden/digests.json; any difference
 * is a determinism regression (or an intentional behaviour change,
 * which must regenerate the golden file in the same commit).
 *
 * --sections prints System::sectionDigests() per suite entry instead —
 * one digest per named state section (cycle, cores, caches, directory
 * banks, fmem, network) — so a golden mismatch in CI can be diffed down
 * to the drifting structure instead of reported as a bare hash
 * inequality.
 *
 * --func-check runs the functional-vs-detail cross-validation drill
 * (the nightly gate): for each order-insensitive workload x policy, a
 * detail run is drained and digested with System::funcStateDigest(),
 * then a fresh functional run replays to the detail run's per-core
 * committed instruction counts and must reproduce the digest exactly.
 * Exit status 1 on any mismatch. Only FetchAdd-only workloads qualify:
 * with shared plain stores or CAS/Swap, the final memory image depends
 * on interleaving, which the two modes legitimately order differently.
 *
 * Usage: state_digest [--sections|--func-check] [workload ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

constexpr unsigned kCores = 4;
constexpr std::uint64_t kQuota = 120;
constexpr std::uint64_t kSeed = 7;

/** Diverse golden subset: high-contention (cq, sps), mixed (tatp,
 *  canneal) and low-contention (blackscholes) behaviour. */
const std::vector<std::string> kSuiteWorkloads = {
    "cq", "sps", "tatp", "canneal", "blackscholes",
};

/** Order-insensitive subset for --func-check: FetchAdd-only kernels
 *  whose architectural end state is independent of memory-operation
 *  interleaving across cores. */
const std::vector<std::string> kFuncCheckWorkloads = {
    "counter", "streamcluster", "raytrace", "freqmine", "volrend",
};

const std::vector<std::string> kSuiteConfigs = {"eager", "lazy", "row"};

/** Map a golden config key to its ExpConfig (mirrored by
 *  tests/test_snapshot.cc:goldenConfig — keep the two in sync). */
ExpConfig
configByName(const std::string &name)
{
    if (name == "eager")
        return eagerConfig();
    if (name == "lazy")
        return lazyConfig();
    if (name == "row") {
        return rowConfig(ContentionDetector::RWDir,
                         PredictorUpdate::SaturateOnContention);
    }
    ROWSIM_FATAL("unknown golden config '%s' (valid: eager, lazy, row)",
                 name.c_str());
}

std::unique_ptr<System>
systemFor(const std::string &workload, const std::string &config)
{
    const SystemParams sp =
        makeParams(configByName(config), kCores, kSeed);
    return std::make_unique<System>(
        sp, makeStreams(profileFor(workload), kCores, kSeed));
}

std::string
digestFor(const std::string &workload, const std::string &config)
{
    auto sys = systemFor(workload, config);
    sys->run(kQuota);
    return sys->stateDigest();
}

int
runSuite(const std::vector<std::string> &workloads, bool sections)
{
    std::printf("{\"format\": 1, \"entries\": [\n");
    bool first = true;
    for (const auto &w : workloads) {
        for (const auto &cfg : kSuiteConfigs) {
            if (!sections) {
                std::printf(
                    "%s  {\"workload\": \"%s\", \"config\": \"%s\", "
                    "\"cores\": %u, \"quota\": %llu, \"seed\": %llu, "
                    "\"digest\": \"%s\"}",
                    first ? "" : ",\n", w.c_str(), cfg.c_str(), kCores,
                    static_cast<unsigned long long>(kQuota),
                    static_cast<unsigned long long>(kSeed),
                    digestFor(w, cfg).c_str());
            } else {
                auto sys = systemFor(w, cfg);
                sys->run(kQuota);
                std::printf(
                    "%s  {\"workload\": \"%s\", \"config\": \"%s\", "
                    "\"cores\": %u, \"quota\": %llu, \"seed\": %llu, "
                    "\"sections\": {",
                    first ? "" : ",\n", w.c_str(), cfg.c_str(), kCores,
                    static_cast<unsigned long long>(kQuota),
                    static_cast<unsigned long long>(kSeed));
                bool sfirst = true;
                for (const auto &[name, digest] : sys->sectionDigests()) {
                    std::printf("%s\"%s\": \"%s\"", sfirst ? "" : ", ",
                                name.c_str(), digest.c_str());
                    sfirst = false;
                }
                std::printf("}}");
            }
            first = false;
        }
    }
    std::printf("\n]}\n");
    return 0;
}

int
runFuncCheck(const std::vector<std::string> &workloads)
{
    unsigned mismatches = 0;
    std::printf("{\"format\": 1, \"entries\": [\n");
    bool first = true;
    for (const auto &w : workloads) {
        for (const auto &cfg : kSuiteConfigs) {
            auto detail = systemFor(w, cfg);
            detail->run(kQuota);
            // Detail mode writes plain-store values to the functional
            // memory lazily at cache completion; the comparison is only
            // meaningful once every store buffer has reached it.
            detail->drain();
            std::vector<std::uint64_t> targets;
            std::uint64_t insts = 0;
            for (CoreId c = 0; c < kCores; c++) {
                targets.push_back(
                    detail->core(c).committedInstructions());
                insts += targets.back();
            }
            const std::string want = detail->funcStateDigest();

            auto func = systemFor(w, cfg);
            func->runFunctionalToInstCounts(targets);
            const std::string got = func->funcStateDigest();
            const bool match = got == want;
            if (!match)
                mismatches++;
            std::printf(
                "%s  {\"workload\": \"%s\", \"config\": \"%s\", "
                "\"cores\": %u, \"quota\": %llu, \"seed\": %llu, "
                "\"instructions\": %llu, \"detail\": \"%s\", "
                "\"func\": \"%s\", \"match\": %s}",
                first ? "" : ",\n", w.c_str(), cfg.c_str(), kCores,
                static_cast<unsigned long long>(kQuota),
                static_cast<unsigned long long>(kSeed),
                static_cast<unsigned long long>(insts), want.c_str(),
                got.c_str(), match ? "true" : "false");
            first = false;
        }
    }
    std::printf("\n], \"mismatches\": %u}\n", mismatches);
    if (mismatches) {
        std::fprintf(stderr,
                     "state_digest: %u func-vs-detail mismatches\n",
                     mismatches);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool sections = false, funcCheck = false;
    std::vector<std::string> workloads;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--sections")
            sections = true;
        else if (arg == "--func-check")
            funcCheck = true;
        else
            workloads.push_back(arg);
    }
    if (sections && funcCheck) {
        std::fprintf(stderr, "state_digest: --sections and --func-check "
                             "are mutually exclusive\n");
        return 2;
    }
    if (funcCheck) {
        if (workloads.empty())
            workloads = kFuncCheckWorkloads;
        return runFuncCheck(workloads);
    }
    if (workloads.empty())
        workloads = kSuiteWorkloads;
    return runSuite(workloads, sections);
}
