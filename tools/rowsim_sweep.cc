/**
 * @file
 * rowsim_sweep: fault-tolerant, resumable figure sweeps.
 *
 * Runs the full job matrix behind a figure (fig06 latency breakdown,
 * fig09 normalized-performance bars) through the SweepEngine, with the
 * content-addressed result store turned on so the sweep is an
 * incremental query: jobs whose key already has a valid entry are
 * served from disk, everything else is computed (optionally in isolated
 * worker processes with a wall-clock timeout and bounded retries) and
 * persisted for the next invocation. A crashing or hanging job never
 * takes the sweep down — it is reported in place and the rest
 * completes.
 *
 * Typical flow:
 *   rowsim_sweep --store results/ fig09          # cold: compute + fill
 *   rowsim_sweep --store results/ fig09          # warm: seconds, not hours
 *   rowsim_sweep --store results/ --resume fig09 # recompute only holes
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/resultstore.hh"
#include "sim/sweep.hh"

using namespace rowsim;

namespace
{

struct CliOptions
{
    std::string figure;
    std::string storeDir;    ///< non-empty once --store is given
    bool useStore = false;
    bool resume = false;
    bool list = false;
    bool expectCached = false;
    std::string reportPath;
    long injectCrash = -1;
    long injectHang = -1;
    std::uint64_t quota = 0;            ///< 0 = per-workload default
    std::vector<std::string> onlyWorkloads; ///< empty = full matrix
    SweepOptions sweep = SweepOptions::fromEnv();
};

void
usage(FILE *out)
{
    std::fprintf(out,
        "usage: rowsim_sweep [options] <fig06|fig09>\n"
        "\n"
        "Run a figure's full job matrix as a fault-tolerant, resumable\n"
        "sweep backed by the content-addressed result store.\n"
        "\n"
        "  --store DIR          enable the result store rooted at DIR\n"
        "                       (sets ROWSIM_RESULTS=on, ROWSIM_RESULTS_DIR)\n"
        "  --resume             serve stored results without dispatching;\n"
        "                       only missing/invalid entries are computed\n"
        "  --jobs N             worker count (default: cores, or\n"
        "                       ROWSIM_SWEEP_THREADS)\n"
        "  --isolate MODE       thread | process (default thread, or\n"
        "                       ROWSIM_SWEEP_ISOLATE)\n"
        "  --timeout MS         per-job wall-clock budget (process mode)\n"
        "  --retries N          retry budget for crashed/timed-out jobs\n"
        "  --backoff MS         base retry backoff (doubles per attempt)\n"
        "  --strict             fail fast: abort the sweep on any failure\n"
        "  --report PATH        append one JSON line per result (- = stdout)\n"
        "  --quota N            override every job's iteration quota\n"
        "                       (default: per-workload figure quotas).\n"
        "                       Long quotas are where sampled execution\n"
        "                       (ROWSIM_SAMPLE) beats detail wall clock\n"
        "  --workload W         restrict the matrix to workload W\n"
        "                       (repeatable)\n"
        "  --list               print the job matrix and exit\n"
        "  --expect-cached      exit 1 if any job had to be recomputed\n"
        "  --inject-crash IDX   fault drill: job IDX aborts mid-run\n"
        "  --inject-hang IDX    fault drill: job IDX hangs (needs --timeout)\n");
}

std::uint64_t
parseNum(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (!end || *end != '\0')
        ROWSIM_FATAL("rowsim_sweep: %s expects a number, got \"%s\"", flag, value);
    return v;
}

/** The job matrix behind one figure. */
std::vector<SweepJob>
jobsFor(const std::string &figure)
{
    std::vector<SweepJob> jobs;
    if (figure == "fig09") {
        // Fig. 9: every policy bar for every atomic-intensive workload,
        // full stats captured so downstream plotting can drill in.
        for (const std::string &w : atomicIntensiveWorkloads()) {
            for (const ExpConfig &cfg : fig9Configs()) {
                SweepJob j;
                j.workload = w;
                j.cfg = cfg;
                j.numCores = 32;
                j.seed = 1;
                j.captureStatsJson = true;
                jobs.push_back(std::move(j));
            }
        }
    } else if (figure == "fig06") {
        // Fig. 6: eager vs lazy atomic-phase latency breakdown; the
        // tail percentiles need the "pcs" profiler category.
        for (const std::string &w : atomicIntensiveWorkloads()) {
            for (ExpConfig cfg : {eagerConfig(), lazyConfig()}) {
                cfg.profile = "pcs";
                cfg.label += "+prof";
                SweepJob j;
                j.workload = w;
                j.cfg = std::move(cfg);
                j.numCores = 32;
                j.seed = 1;
                jobs.push_back(std::move(j));
            }
        }
    } else {
        ROWSIM_FATAL("rowsim_sweep: unknown figure \"%s\" (want fig06 or fig09)",
              figure.c_str());
    }
    return jobs;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                ROWSIM_FATAL("rowsim_sweep: %s needs an argument", flag);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--store") {
            o.useStore = true;
            o.storeDir = next("--store");
        } else if (arg == "--resume") {
            o.resume = true;
        } else if (arg == "--jobs") {
            o.sweep.threads =
                static_cast<unsigned>(parseNum("--jobs", next("--jobs")));
        } else if (arg == "--isolate") {
            const std::string mode = next("--isolate");
            if (mode == "thread")
                o.sweep.isolation = SweepIsolation::Thread;
            else if (mode == "process")
                o.sweep.isolation = SweepIsolation::Process;
            else
                ROWSIM_FATAL("rowsim_sweep: --isolate wants thread|process, "
                      "got \"%s\"", mode.c_str());
        } else if (arg == "--timeout") {
            o.sweep.timeoutMs = parseNum("--timeout", next("--timeout"));
        } else if (arg == "--retries") {
            o.sweep.retries = static_cast<unsigned>(
                parseNum("--retries", next("--retries")));
        } else if (arg == "--backoff") {
            o.sweep.backoffMs = parseNum("--backoff", next("--backoff"));
        } else if (arg == "--strict") {
            o.sweep.strict = true;
        } else if (arg == "--report") {
            o.reportPath = next("--report");
        } else if (arg == "--quota") {
            o.quota = parseNum("--quota", next("--quota"));
        } else if (arg == "--workload") {
            o.onlyWorkloads.emplace_back(next("--workload"));
        } else if (arg == "--list") {
            o.list = true;
        } else if (arg == "--expect-cached") {
            o.expectCached = true;
        } else if (arg == "--inject-crash") {
            o.injectCrash = static_cast<long>(
                parseNum("--inject-crash", next("--inject-crash")));
        } else if (arg == "--inject-hang") {
            o.injectHang = static_cast<long>(
                parseNum("--inject-hang", next("--inject-hang")));
        } else if (!arg.empty() && arg[0] == '-') {
            usage(stderr);
            ROWSIM_FATAL("rowsim_sweep: unknown option \"%s\"", arg.c_str());
        } else if (o.figure.empty()) {
            o.figure = arg;
        } else {
            ROWSIM_FATAL("rowsim_sweep: more than one figure given "
                  "(\"%s\" and \"%s\")", o.figure.c_str(), arg.c_str());
        }
    }
    if (o.figure.empty() && !o.list) {
        usage(stderr);
        ROWSIM_FATAL("rowsim_sweep: no figure given");
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    // Wire the store through the environment so isolated worker
    // processes (fork) and the in-process experiment layer see the same
    // configuration.
    if (opt.useStore) {
        ::setenv("ROWSIM_RESULTS", "on", 1);
        ::setenv("ROWSIM_RESULTS_DIR", opt.storeDir.c_str(), 1);
    }

    std::vector<SweepJob> jobs = jobsFor(opt.figure);
    if (!opt.onlyWorkloads.empty()) {
        std::erase_if(jobs, [&](const SweepJob &j) {
            return std::find(opt.onlyWorkloads.begin(),
                             opt.onlyWorkloads.end(),
                             j.workload) == opt.onlyWorkloads.end();
        });
        if (jobs.empty())
            ROWSIM_FATAL("rowsim_sweep: --workload filter matched no job in %s",
                  opt.figure.c_str());
    }
    if (opt.quota) {
        for (SweepJob &j : jobs)
            j.quota = opt.quota;
    }
    if (opt.injectCrash >= 0) {
        if (static_cast<std::size_t>(opt.injectCrash) >= jobs.size())
            ROWSIM_FATAL("rowsim_sweep: --inject-crash %ld out of range (%zu jobs)",
                  opt.injectCrash, jobs.size());
        jobs[static_cast<std::size_t>(opt.injectCrash)].injectCrash = true;
    }
    if (opt.injectHang >= 0) {
        if (static_cast<std::size_t>(opt.injectHang) >= jobs.size())
            ROWSIM_FATAL("rowsim_sweep: --inject-hang %ld out of range (%zu jobs)",
                  opt.injectHang, jobs.size());
        jobs[static_cast<std::size_t>(opt.injectHang)].injectHangMs =
            10 * 60 * 1000; // well past any sane --timeout
    }

    if (opt.list) {
        std::printf("%-4s %-12s %-24s %5s %4s\n", "idx", "workload",
                    "config", "cores", "seed");
        for (std::size_t i = 0; i < jobs.size(); i++)
            std::printf("%-4zu %-12s %-24s %5u %4llu\n", i,
                        jobs[i].workload.c_str(), jobs[i].cfg.label.c_str(),
                        jobs[i].numCores,
                        static_cast<unsigned long long>(jobs[i].seed));
        return 0;
    }

    // --resume: answer as much of the query as possible straight from
    // the store, and only dispatch the holes (missing, quarantined, or
    // schema-stale entries) to the engine.
    std::vector<RunResult> results(jobs.size());
    std::vector<bool> served(jobs.size(), false);
    std::size_t precached = 0;
    std::unique_ptr<ResultStore> store = ResultStore::fromEnv();
    if (opt.resume && store) {
        for (std::size_t i = 0; i < jobs.size(); i++) {
            const SweepJob &j = jobs[i];
            if (j.injectCrash || j.injectHangMs)
                continue; // fault drills must actually run
            const std::uint64_t quota =
                j.quota ? j.quota : defaultQuota(j.workload);
            const ResultKey key = ResultStore::keyFor(
                makeParams(j.cfg, j.numCores, j.seed), j.workload,
                j.cfg.label, quota);
            RunResult cached;
            if (store->load(key, cached) &&
                (!j.captureStatsJson || !cached.statsJson.empty())) {
                cached.fromCache = true;
                results[i] = std::move(cached);
                served[i] = true;
                precached++;
            }
        }
    }

    std::vector<SweepJob> pending;
    std::vector<std::size_t> pendingIdx;
    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (!served[i]) {
            pending.push_back(jobs[i]);
            pendingIdx.push_back(i);
        }
    }

    std::printf("rowsim_sweep: %s, %zu jobs (%zu from store, %zu to run), "
                "%s isolation\n",
                opt.figure.c_str(), jobs.size(), precached, pending.size(),
                opt.sweep.isolation == SweepIsolation::Process ? "process"
                                                               : "thread");
    std::fflush(stdout);

    if (!pending.empty()) {
        std::vector<RunResult> ran = SweepEngine(opt.sweep).run(pending);
        for (std::size_t k = 0; k < pendingIdx.size(); k++)
            results[pendingIdx[k]] = std::move(ran[k]);
    }

    std::size_t okCount = 0, cachedCount = 0, failedCount = 0;
    for (std::size_t i = 0; i < results.size(); i++) {
        const RunResult &r = results[i];
        if (r.ok())
            okCount++;
        else
            failedCount++;
        if (r.fromCache)
            cachedCount++;
        if (r.ok()) {
            std::printf("[%3zu] %-12s %-24s ok%s  cycles=%llu\n", i,
                        r.workload.c_str(), r.config.c_str(),
                        r.fromCache ? " (cached)" : "",
                        static_cast<unsigned long long>(r.cycles));
        } else {
            std::printf("[%3zu] %-12s %-24s %s after %u attempt%s: %s\n", i,
                        r.workload.c_str(), r.config.c_str(),
                        runStatusName(r.status), r.attempts,
                        r.attempts == 1 ? "" : "s", r.error.c_str());
        }
        if (!opt.reportPath.empty())
            writeRunReport(r, opt.reportPath);
    }
    std::printf("rowsim_sweep: %zu ok (%zu cached), %zu failed\n", okCount,
                cachedCount, failedCount);

    if (opt.expectCached && cachedCount != results.size()) {
        std::fprintf(stderr,
                     "rowsim_sweep: --expect-cached but %zu of %zu jobs "
                     "were recomputed\n",
                     results.size() - cachedCount, results.size());
        return 1;
    }
    return failedCount == 0 ? 0 : 1;
}
