/**
 * @file
 * Pretty-printer for the attribution profiler's JSON output.
 *
 * Input is either a single stats-JSON report (System::dumpStatsJson with
 * a "profile" section), a raw Profiler::toJson() object, or a JSONL
 * stream of per-run records ({"workload":...,"config":...,
 * "profile":{...}}) as written via ROWSIM_PROFILE_JSON. "-" reads stdin.
 *
 * For each record the tool prints the per-core CPI stack table (with an
 * aggregate percentage row), the top-K contended-line table, the RoW
 * predicted × observed cross-tab with dispatch accuracy and mispredict
 * cost, and the per-PC atomic latency averages. With --collapsed PATH it
 * additionally appends flamegraph-style folded stacks
 * ("label;coreN;bucket slots") consumable by flamegraph.pl / speedscope.
 *
 * Standalone: parses JSON itself (no simulator linkage), so it also
 * works on reports produced by older or newer rowsim builds.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (objects keep insertion order
// irrelevant: lookups go through a map). Throws on malformed input.
// ---------------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }

    bool has(const std::string &key) const { return obj.count(key) != 0; }

    /** Numbers arrive as doubles or as hex strings ("0x10"). */
    unsigned long long
    asU64() const
    {
        if (type == Number)
            return static_cast<unsigned long long>(num);
        if (type == String)
            return std::strtoull(str.c_str(), nullptr, 0);
        return 0;
    }

    double asDouble() const { return type == Number ? num : 0.0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", Json::Bool, true);
          case 'f': return literal("false", Json::Bool, false);
          case 'n': return literal("null", Json::Null, false);
          default: return number();
        }
    }

    Json
    literal(const char *word, Json::Type t, bool b)
    {
        if (s.compare(pos, std::strlen(word), word) != 0)
            fail("bad literal");
        pos += std::strlen(word);
        Json j;
        j.type = t;
        j.b = b;
        return j;
    }

    Json
    object()
    {
        Json j;
        j.type = Json::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            pos++;
            return j;
        }
        while (true) {
            ws();
            Json key = string();
            ws();
            expect(':');
            j.obj[key.str] = value();
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    array()
    {
        Json j;
        j.type = Json::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            pos++;
            return j;
        }
        while (true) {
            j.arr.push_back(value());
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return j;
        }
    }

    Json
    string()
    {
        Json j;
        j.type = Json::String;
        expect('"');
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = peek();
                pos++;
                switch (e) {
                  case '"': j.str += '"'; break;
                  case '\\': j.str += '\\'; break;
                  case '/': j.str += '/'; break;
                  case 'n': j.str += '\n'; break;
                  case 't': j.str += '\t'; break;
                  case 'r': j.str += '\r'; break;
                  case 'u':
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    pos += 4;
                    j.str += '?';
                    break;
                  default: fail("bad escape");
                }
            } else {
                j.str += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            fail("expected number");
        Json j;
        j.type = Json::Number;
        j.num = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
        return j;
    }

    const std::string &s;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

/** Matches CpiBucket order in src/sim/profile.hh; the JSON keys are the
 *  source of truth, this list only fixes the column order. */
const char *const cpiBuckets[] = {
    "retired",       "frontendStall",  "robFull",
    "exec",          "sqDrainWait",    "atomicLazyWait",
    "atomicExecute", "coherenceMiss",  "idle",
};
constexpr unsigned numBuckets = sizeof(cpiBuckets) / sizeof(cpiBuckets[0]);

void
printCpi(const Json &cpi, const std::string &label, std::FILE *collapsed)
{
    if (cpi.type != Json::Array || cpi.arr.empty())
        return;
    std::printf("  CPI stack (commit slots per bucket):\n");
    std::printf("    %-6s", "core");
    for (const char *b : cpiBuckets)
        std::printf(" %14s", b);
    std::printf("\n");

    unsigned long long agg[numBuckets] = {0};
    for (const Json &core : cpi.arr) {
        std::printf("    %-6llu", core.at("core").asU64());
        for (unsigned i = 0; i < numBuckets; ++i) {
            unsigned long long v = core.at(cpiBuckets[i]).asU64();
            agg[i] += v;
            std::printf(" %14llu", v);
            if (collapsed && v) {
                std::fprintf(collapsed, "%s;core%llu;%s %llu\n",
                             label.c_str(), core.at("core").asU64(),
                             cpiBuckets[i], v);
            }
        }
        std::printf("\n");
    }

    unsigned long long total = 0;
    for (unsigned long long v : agg)
        total += v;
    std::printf("    %-6s", "all");
    for (unsigned i = 0; i < numBuckets; ++i)
        std::printf(" %14llu", agg[i]);
    std::printf("\n    %-6s", "%");
    for (unsigned i = 0; i < numBuckets; ++i)
        std::printf(" %13.1f%%",
                    total ? 100.0 * static_cast<double>(agg[i]) /
                                static_cast<double>(total)
                          : 0.0);
    std::printf("\n");
}

void
printLines(const Json &profile)
{
    const Json &lines = profile.at("lines");
    if (lines.type != Json::Array)
        return;
    std::printf("  Contended lines (top %zu of %llu tracked, by hold "
                "cycles):\n",
                lines.arr.size(), profile.at("linesTracked").asU64());
    if (lines.arr.empty())
        return;
    std::printf("    %-14s %9s %11s %6s %7s %6s %7s %10s %6s %5s %5s\n",
                "line", "acquires", "holdCyc", "cont", "rfills", "swaps",
                "stalls", "stallCyc", "steals", "qMax", "cores");
    for (const Json &l : lines.arr) {
        std::printf(
            "    %-14s %9llu %11llu %6llu %7llu %6llu %7llu %10llu "
            "%6llu %5llu %5llu\n",
            l.at("line").str.c_str(), l.at("acquires").asU64(),
            l.at("holdCycles").asU64(), l.at("contendedUnlocks").asU64(),
            l.at("remoteFills").asU64(), l.at("ownerSwaps").asU64(),
            l.at("lockStalls").asU64(), l.at("lockStallCycles").asU64(),
            l.at("steals").asU64(), l.at("queuedMax").asU64(),
            l.at("cores").asU64());
    }
}

void
printRow(const Json &row)
{
    if (row.type != Json::Object)
        return;
    const Json &t = row.at("totals");
    std::printf("  RoW decision audit (predicted x observed):\n");
    std::printf("    %-18s %14s %14s\n", "", "uncontended", "contended");
    std::printf("    %-18s %14llu %14llu\n", "predicted eager",
                t.at("eagerUncontended").asU64(),
                t.at("eagerContended").asU64());
    std::printf("    %-18s %14llu %14llu\n", "predicted lazy",
                t.at("lazyUncontended").asU64(),
                t.at("lazyContended").asU64());
    std::printf("    updates=%llu contended=%llu accuracy=%.2f%%\n",
                t.at("updates").asU64(), t.at("contendedOutcomes").asU64(),
                100.0 * row.at("dispatchAccuracy").asDouble());
    std::printf("    mispredict cost: lazy-waste=%llu cyc, "
                "eager-contended=%llu cyc\n",
                t.at("lazyWasteCycles").asU64(),
                t.at("eagerContendedCycles").asU64());

    const Json &pcs = row.at("pcs");
    if (pcs.type != Json::Array || pcs.arr.empty())
        return;
    std::printf("    per-PC: %-14s %8s %8s %8s %8s %10s %10s\n", "pc",
                "eagUnc", "eagCon", "lazUnc", "lazCon", "wasteCyc",
                "eagConCyc");
    for (const Json &p : pcs.arr) {
        std::printf("            %-14s %8llu %8llu %8llu %8llu %10llu "
                    "%10llu\n",
                    p.at("pc").str.c_str(),
                    p.at("eagerUncontended").asU64(),
                    p.at("eagerContended").asU64(),
                    p.at("lazyUncontended").asU64(),
                    p.at("lazyContended").asU64(),
                    p.at("lazyWasteCycles").asU64(),
                    p.at("eagerContendedCycles").asU64());
    }
}

void
printPcs(const Json &pcs)
{
    if (pcs.type != Json::Array || pcs.arr.empty())
        return;
    std::printf("  Atomic latency by PC (average cycles per phase):\n");
    std::printf("    %-14s %9s %14s %12s %13s\n", "pc", "count",
                "dispatch->issue", "issue->lock", "lock->unlock");
    for (const Json &p : pcs.arr) {
        const double n =
            std::max(1.0, static_cast<double>(p.at("count").asU64()));
        std::printf("    %-14s %9llu %14.1f %12.1f %13.1f\n",
                    p.at("pc").str.c_str(), p.at("count").asU64(),
                    static_cast<double>(p.at("dispatchToIssue").asU64()) / n,
                    static_cast<double>(p.at("issueToLock").asU64()) / n,
                    static_cast<double>(p.at("lockToUnlock").asU64()) / n);
    }
}

/** Render one record: @p profile is the profiler object itself. */
void
report(const Json &profile, const std::string &label, std::FILE *collapsed)
{
    std::printf("=== %s (categories: %s, commitWidth %llu) ===\n",
                label.c_str(), profile.at("categories").str.c_str(),
                profile.at("commitWidth").asU64());
    printCpi(profile.at("cpi"), label, collapsed);
    printLines(profile);
    printRow(profile.at("row"));
    printPcs(profile.at("pcs"));
    std::printf("\n");
}

/** A record is either a wrapper with a "profile" member (stats report /
 *  JSONL run record) or a raw profiler object (has "categories"). */
bool
handleRecord(const Json &rec, unsigned index, std::FILE *collapsed)
{
    const Json *profile = nullptr;
    std::string label;
    if (rec.has("profile") && rec.at("profile").type == Json::Object) {
        profile = &rec.at("profile");
        if (rec.at("workload").type == Json::String)
            label = rec.at("workload").str;
        if (rec.at("config").type == Json::String)
            label += (label.empty() ? "" : "/") + rec.at("config").str;
    } else if (rec.has("categories")) {
        profile = &rec;
    }
    if (!profile)
        return false;
    if (label.empty())
        label = "run" + std::to_string(index);
    report(*profile, label, collapsed);
    return true;
}

std::string
readAll(const char *path)
{
    std::FILE *f =
        std::strcmp(path, "-") == 0 ? stdin : std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "profile_report: cannot open %s\n", path);
        std::exit(1);
    }
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (f != stdin)
        std::fclose(f);
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: profile_report [--collapsed PATH] FILE|-\n"
        "  FILE: a stats JSON report (with a \"profile\" section), a raw\n"
        "        profiler JSON object, or a JSONL stream of run records\n"
        "        as written via ROWSIM_PROFILE_JSON. '-' reads stdin.\n"
        "  --collapsed PATH: also write flamegraph folded stacks\n"
        "        (label;coreN;bucket slots) to PATH.\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *input = nullptr;
    const char *collapsedPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--collapsed") == 0) {
            if (++i >= argc)
                usage();
            collapsedPath = argv[i];
        } else if (!input) {
            input = argv[i];
        } else {
            usage();
        }
    }
    if (!input)
        usage();

    std::FILE *collapsed = nullptr;
    if (collapsedPath) {
        collapsed = std::fopen(collapsedPath, "w");
        if (!collapsed) {
            std::fprintf(stderr, "profile_report: cannot write %s\n",
                         collapsedPath);
            return 1;
        }
    }

    const std::string text = readAll(input);
    unsigned rendered = 0, index = 0;

    // A whole-file parse handles pretty-printed stats reports; if that
    // fails the input is a JSONL stream — parse line by line.
    bool wholeFile = true;
    try {
        Json root = JsonParser(text).parse();
        if (handleRecord(root, index++, collapsed))
            rendered++;
    } catch (const std::exception &) {
        wholeFile = false;
    }

    if (!wholeFile) {
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            std::string line = text.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            try {
                Json rec = JsonParser(line).parse();
                if (handleRecord(rec, index++, collapsed))
                    rendered++;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "profile_report: skipping bad "
                             "line: %s\n", e.what());
            }
        }
    }

    if (collapsed)
        std::fclose(collapsed);
    if (!rendered) {
        std::fprintf(stderr, "profile_report: no profile records found "
                     "in %s (was the run executed with ROWSIM_PROFILE "
                     "set?)\n", input);
        return 1;
    }
    return 0;
}
