/**
 * @file
 * Live sweep monitor: tails a ROWSIM_HEARTBEAT JSONL stream into a
 * per-job progress table, `top`-style.
 *
 *   rowsim_top FILE          follow FILE, redrawing as events arrive;
 *                            exits when the sweep-end event lands
 *   rowsim_top --once FILE   render the stream's current state once
 *                            and exit (CI / scripting mode)
 *
 * The table merges the three heartbeat event kinds: "sweep" events
 * frame the run (job total, isolation mode, final ok/failed tally),
 * "job" events drive each row's lifecycle column
 * (queued/started/retrying/finished + attempt + status), and "run"
 * events from inside the simulating workers fill the live progress
 * columns (quota fraction, Kcycles/s, ETA, RSS). Partial trailing
 * lines — a worker mid-write — are left in the buffer until complete,
 * so the monitor never sees a fragment.
 *
 * Standalone: parses JSON itself (no simulator linkage), so it can
 * watch a sweep started by any rowsim build.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (same shape as span_report;
// kept separate so each tool stays a single self-contained file).
// ---------------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }

    unsigned long long
    asU64() const
    {
        if (type == Number)
            return static_cast<unsigned long long>(num);
        if (type == String)
            return std::strtoull(str.c_str(), nullptr, 0);
        return 0;
    }

    double asDouble() const { return type == Number ? num : 0.0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", Json::Bool, true);
          case 'f': return literal("false", Json::Bool, false);
          case 'n': return literal("null", Json::Null, false);
          default: return number();
        }
    }

    Json
    literal(const char *word, Json::Type t, bool b)
    {
        if (s.compare(pos, std::strlen(word), word) != 0)
            fail("bad literal");
        pos += std::strlen(word);
        Json j;
        j.type = t;
        j.b = b;
        return j;
    }

    Json
    object()
    {
        Json j;
        j.type = Json::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            pos++;
            return j;
        }
        while (true) {
            ws();
            Json key = string();
            ws();
            expect(':');
            j.obj[key.str] = value();
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    array()
    {
        Json j;
        j.type = Json::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            pos++;
            return j;
        }
        while (true) {
            j.arr.push_back(value());
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return j;
        }
    }

    Json
    string()
    {
        Json j;
        j.type = Json::String;
        expect('"');
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = peek();
                pos++;
                switch (e) {
                  case '"': j.str += '"'; break;
                  case '\\': j.str += '\\'; break;
                  case '/': j.str += '/'; break;
                  case 'n': j.str += '\n'; break;
                  case 't': j.str += '\t'; break;
                  case 'r': j.str += '\r'; break;
                  case 'u':
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    pos += 4;
                    j.str += '?';
                    break;
                  default: fail("bad escape");
                }
            } else {
                j.str += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            fail("expected number");
        Json j;
        j.type = Json::Number;
        j.num = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
        return j;
    }

    const std::string &s;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------------
// Stream state
// ---------------------------------------------------------------------

struct JobRow
{
    std::string workload;
    std::string config;
    std::string state = "queued";
    std::string status;
    unsigned attempt = 1;
    // Live progress from the latest run event.
    double frac = 0;
    double kcps = 0;
    double etaMs = -1;
    long rssKb = -1;
    unsigned long long cycle = 0;
    bool seenRun = false;
};

struct TopState
{
    bool sweepSeen = false;
    bool sweepEnded = false;
    std::size_t jobsTotal = 0, ok = 0, failed = 0;
    std::string isolation;
    unsigned long long lastWall = 0;
    // Keyed by job index; the "jN" key of run events maps here.
    std::map<std::size_t, JobRow> jobs;

    void
    apply(const Json &ev)
    {
        const std::string kind = ev.at("ev").str;
        if (ev.at("wall").asU64() > lastWall)
            lastWall = ev.at("wall").asU64();
        if (kind == "sweep") {
            sweepSeen = true;
            jobsTotal = ev.at("jobs").asU64();
            isolation = ev.at("isolation").str;
            if (ev.at("state").str == "end") {
                sweepEnded = true;
                ok = ev.at("ok").asU64();
                failed = ev.at("failed").asU64();
            }
            return;
        }
        // Both "job" and "run" events address a row by job key.
        const std::string &key = ev.at("job").str;
        if (key.size() < 2 || key[0] != 'j')
            return; // run event outside a sweep
        const std::size_t idx =
            static_cast<std::size_t>(std::strtoull(key.c_str() + 1,
                                                   nullptr, 10));
        JobRow &row = jobs[idx];
        if (kind == "job") {
            row.state = ev.at("state").str;
            row.attempt =
                static_cast<unsigned>(ev.at("attempt").asU64());
            row.workload = ev.at("workload").str;
            row.config = ev.at("config").str;
            row.status = ev.at("status").str;
        } else if (kind == "run") {
            row.seenRun = true;
            row.frac = ev.at("frac").asDouble();
            row.kcps = ev.at("kcps").asDouble();
            row.etaMs = ev.obj.count("etaMs")
                            ? ev.at("etaMs").asDouble() : -1.0;
            row.rssKb = static_cast<long>(ev.at("rssKb").asDouble());
            row.cycle = ev.at("cycle").asU64();
        }
    }
};

std::string
fmtEta(double ms)
{
    if (ms < 0)
        return "-";
    char buf[32];
    if (ms >= 60000)
        std::snprintf(buf, sizeof buf, "%.1fm", ms / 60000.0);
    else
        std::snprintf(buf, sizeof buf, "%.1fs", ms / 1000.0);
    return buf;
}

void
render(const TopState &st, bool follow)
{
    if (follow)
        std::printf("\x1b[H\x1b[2J"); // home + clear
    std::size_t queued = 0, runningN = 0, done = 0, retrying = 0;
    for (const auto &kv : st.jobs) {
        const std::string &s = kv.second.state;
        if (s == "queued")
            queued++;
        else if (s == "started")
            runningN++;
        else if (s == "retrying")
            retrying++;
        else if (s == "finished")
            done++;
    }
    std::printf("rowsim sweep: %zu jobs (%s isolation)  "
                "queued %zu  running %zu  retrying %zu  done %zu",
                st.jobsTotal, st.isolation.c_str(), queued, runningN,
                retrying, done);
    if (st.sweepEnded)
        std::printf("  -- COMPLETE: %zu ok, %zu failed", st.ok,
                    st.failed);
    std::printf("\n\n");
    std::printf("%5s %-12s %-14s %-9s %3s %7s %9s %8s %9s %-8s\n", "job",
                "workload", "config", "state", "att", "prog", "kcyc/s",
                "eta", "rssMB", "status");
    for (const auto &kv : st.jobs) {
        const JobRow &r = kv.second;
        std::printf("%5zu %-12.12s %-14.14s %-9.9s %3u ", kv.first,
                    r.workload.c_str(), r.config.c_str(),
                    r.state.c_str(), r.attempt);
        if (r.seenRun && r.state != "finished") {
            std::printf("%6.1f%% %9.1f %8s %9.1f", 100.0 * r.frac,
                        r.kcps, fmtEta(r.etaMs).c_str(),
                        r.rssKb >= 0 ? r.rssKb / 1024.0 : 0.0);
        } else if (r.state == "finished") {
            std::printf("%6.0f%% %9s %8s %9s", 100.0, "-", "-", "-");
        } else {
            std::printf("%7s %9s %8s %9s", "-", "-", "-", "-");
        }
        std::printf(" %-8.24s\n", r.status.c_str());
    }
    std::fflush(stdout);
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: rowsim_top [--once] FILE\n"
                 "  Tail a ROWSIM_HEARTBEAT JSONL stream into a live\n"
                 "  per-job table. Follow mode redraws as events arrive\n"
                 "  and exits on the sweep-end event; --once renders the\n"
                 "  stream's current state a single time and exits.\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    bool once = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--once") == 0)
            once = true;
        else if (!path)
            path = argv[i];
        else
            usage();
    }
    if (!path)
        usage();

    TopState st;
    std::string buf;     // undigested bytes (tail may be mid-line)
    long offset = 0;     // next byte to read from the stream file
    bool warnedMissing = false;

    for (;;) {
        if (std::FILE *f = std::fopen(path, "rb")) {
            // A shrunken file means the sweep restarted with a fresh
            // sink; start over instead of reading garbage.
            std::fseek(f, 0, SEEK_END);
            const long size = std::ftell(f);
            if (size < offset) {
                offset = 0;
                buf.clear();
                st = TopState();
            }
            std::fseek(f, offset, SEEK_SET);
            char chunk[1 << 16];
            std::size_t n;
            while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
                buf.append(chunk, n);
                offset += static_cast<long>(n);
            }
            std::fclose(f);
        } else if (once) {
            std::fprintf(stderr, "rowsim_top: cannot open %s\n", path);
            return 1;
        } else if (!warnedMissing) {
            std::fprintf(stderr,
                         "rowsim_top: waiting for %s to appear...\n",
                         path);
            warnedMissing = true;
        }

        // Digest complete lines; a partial tail stays buffered.
        std::size_t pos = 0;
        while (true) {
            const std::size_t eol = buf.find('\n', pos);
            if (eol == std::string::npos)
                break;
            const std::string line = buf.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            try {
                st.apply(JsonParser(line).parse());
            } catch (const std::exception &) {
                // A torn or foreign line; skip it.
            }
        }
        buf.erase(0, pos);

        render(st, !once);
        if (once)
            return st.sweepSeen || !st.jobs.empty() ? 0 : 1;
        if (st.sweepEnded)
            return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}
