#!/usr/bin/env python3
"""CI artifact validators for rowsim.

Centralises the schema and determinism checks that used to live as
inline heredocs in .github/workflows/ci.yml, so they are unit-testable
and identical between the PR gate and the nightly matrix.

Subcommands:
  perf-schema PERF_JSON [--min-entries N]
                                bench/perf_baseline history file: schema
                                (host, workloads, positive metrics), at
                                least N history entries (default 1).
  history-stability PERF_JSON   every entry in the file must report the
                                same sim_cycles per workload. Only valid
                                for same-build double-runs (one CI job
                                appending to one file); sim_cycles may
                                legitimately change across commits.
  profile-schema PROFILE_JSONL  tools/profile_report input records: run
                                labels, CPI-stack slot conservation,
                                RoW decision totals, per-PC tables.
  span-schema SPANS_JSONL       tools/span_report input records: run
                                labels, span count accounting, segment
                                conservation (segments exactly tile
                                dispatch->commit for every retained span
                                and in aggregate), latency histograms.
  store-schema PATH             content-addressed result-store entry
                                (.res file) or a store directory: magic,
                                schema version, embedded key vs file
                                name, payload length, SHA-256 trailer.
  selftest                      run the built-in unit tests.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import hashlib
import json
import os
import struct
import sys

PROFILE_CPI_BUCKETS = {
    "retired", "frontendStall", "robFull", "exec", "sqDrainWait",
    "atomicLazyWait", "atomicExecute", "coherenceMiss", "idle",
}


class ValidationError(Exception):
    """A CI artifact violated its contract."""


def validate_perf_schema(doc, min_entries=1):
    """Validate a perf_baseline history document (a list of run entries)."""
    if not isinstance(doc, list) or len(doc) < min_entries:
        raise ValidationError(
            f"expected a history array of >= {min_entries} entries, "
            f"got {type(doc).__name__} of {len(doc) if isinstance(doc, list) else 'n/a'}")
    for i, entry in enumerate(doc):
        if "host" not in entry or "workloads" not in entry:
            raise ValidationError(f"entry {i}: missing host/workloads")
        if not entry["workloads"]:
            raise ValidationError(f"entry {i}: empty workloads")
        for w, m in entry["workloads"].items():
            for key in ("sim_cycles", "wall_ms", "cycles_per_sec"):
                if m.get(key, 0) <= 0:
                    raise ValidationError(
                        f"entry {i}, workload {w}: {key} must be > 0, "
                        f"got {m.get(key)}")
    return len(doc)


def validate_history_stability(doc):
    """All entries of a same-build history must agree on sim_cycles.

    The simulator is deterministic: two runs of one binary simulate the
    same machine, so any sim_cycles difference inside one file is a
    determinism bug. (Cross-commit comparisons do not belong here.)
    """
    validate_perf_schema(doc, min_entries=2)
    base = doc[0]["workloads"]
    for i, entry in enumerate(doc[1:], start=1):
        for w, m in base.items():
            if w not in entry["workloads"]:
                raise ValidationError(f"entry {i}: workload {w} missing")
            got = entry["workloads"][w]["sim_cycles"]
            if got != m["sim_cycles"]:
                raise ValidationError(
                    f"workload {w}: sim_cycles drifted between runs of "
                    f"the same build ({m['sim_cycles']} vs {got}) — "
                    f"determinism regression")
    return len(doc)


def validate_profile_records(lines):
    """Validate profiler JSONL records (tools/profile_report input)."""
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {lineno}: bad JSON: {e}")
        if not rec.get("workload") or not rec.get("config"):
            raise ValidationError(f"line {lineno}: missing run labels")
        p = rec["profile"]
        width = p.get("commitWidth", 0)
        if width <= 0:
            raise ValidationError(f"line {lineno}: commitWidth must be > 0")
        # Slot conservation: every core's CPI stack sums to
        # cycles x commitWidth.
        for core in p["cpi"]:
            total = sum(core[b] for b in PROFILE_CPI_BUCKETS)
            if total != rec["cycles"] * width:
                raise ValidationError(
                    f"line {lineno} ({rec['workload']}), core "
                    f"{core['core']}: CPI stack sums to {total}, "
                    f"expected {rec['cycles'] * width}")
        if p.get("linesTracked", 0) <= 0 or not p.get("lines"):
            raise ValidationError(f"line {lineno}: no hot-line profile")
        t = p["row"]["totals"]
        if t["updates"] != (t["eagerUncontended"] + t["eagerContended"]
                            + t["lazyUncontended"] + t["lazyContended"]):
            raise ValidationError(
                f"line {lineno}: RoW decision totals do not sum to "
                f"updates")
        if not p.get("pcs"):
            raise ValidationError(f"line {lineno}: no per-PC table")
        n += 1
    if n == 0:
        raise ValidationError("no profile records")
    return n


SPAN_SEGS = {
    "dispatchWait", "sbDrain", "aqWait", "execute", "l1Miss",
    "unblockWait", "lockHeld",
}


def validate_span_records(lines):
    """Validate span-tracker JSONL records (tools/span_report input)."""
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {lineno}: bad JSON: {e}")
        if not rec.get("workload") or not rec.get("config"):
            raise ValidationError(f"line {lineno}: missing run labels")
        s = rec["spans"]
        opened, closed = s.get("opened", 0), s.get("closed", 0)
        open_end, truncated = s.get("openAtEnd", 0), s.get("truncated", 0)
        if closed + open_end > opened:
            raise ValidationError(
                f"line {lineno}: closed+openAtEnd ({closed}+{open_end}) "
                f"exceeds opened ({opened})")
        # truncated also counts atomics restored in-image (which never
        # opened a span), so it bounds the gap from below, not exactly.
        if opened - closed - open_end > truncated:
            raise ValidationError(
                f"line {lineno}: {opened - closed - open_end} spans "
                f"vanished without being closed or truncated")
        seg_totals = s["segTotals"]
        if set(seg_totals) < SPAN_SEGS:
            raise ValidationError(
                f"line {lineno}: segTotals missing segments "
                f"{SPAN_SEGS - set(seg_totals)}")
        if sum(seg_totals[k] for k in SPAN_SEGS) != seg_totals["total"]:
            raise ValidationError(
                f"line {lineno}: aggregate segments do not sum to the "
                f"total span-cycles")
        if s.get("latency", {}).get("count") != closed:
            raise ValidationError(
                f"line {lineno}: latency histogram count "
                f"{s.get('latency', {}).get('count')} != closed {closed}")
        # Per-span conservation: segments exactly tile dispatch->commit.
        for sp in s.get("spans", []):
            seg_sum = sum(sp["segs"][k] for k in SPAN_SEGS)
            window = sp["commit"] - sp["dispatch"]
            if not (seg_sum == window == sp["total"]):
                raise ValidationError(
                    f"line {lineno}, span {sp.get('id')}: segments sum "
                    f"to {seg_sum}, commit-dispatch is {window}, total "
                    f"reports {sp['total']} — conservation violated")
        # Per-PC / per-line aggregates obey the same conservation.
        for table in ("pcs", "lines"):
            for agg in s.get(table, []):
                if sum(agg[k] for k in SPAN_SEGS) != agg["total"]:
                    raise ValidationError(
                        f"line {lineno}: {table} aggregate segments do "
                        f"not sum to its total")
        n += 1
    if n == 0:
        raise ValidationError("no span records")
    return n


RES_MAGIC = b"ROWRES\x00\x00"
RES_HEADER_LEN = 8 + 4 + 32 + 8  # magic + version + key + payload length
RES_TRAILER_LEN = 32             # SHA-256 of the payload


def validate_store_entry(data, name=None):
    """Validate one result-store container (src/sim/resultstore.cc).

    Layout: magic, u32-LE schema version, 32-byte SHA-256 key, u64-LE
    payload length, payload, SHA-256(payload) trailer. When *name* is
    given it must be `<key hex>.res` — the content addressing itself.
    Returns the entry's schema version.
    """
    if len(data) < RES_HEADER_LEN + RES_TRAILER_LEN:
        raise ValidationError(
            f"entry is {len(data)} bytes, smaller than the "
            f"{RES_HEADER_LEN + RES_TRAILER_LEN}-byte envelope")
    if data[:8] != RES_MAGIC:
        raise ValidationError(f"bad magic {data[:8]!r}")
    (version,) = struct.unpack_from("<I", data, 8)
    if version == 0:
        raise ValidationError("schema version 0 is reserved")
    key = data[12:44]
    (payload_len,) = struct.unpack_from("<Q", data, 44)
    if len(data) != RES_HEADER_LEN + payload_len + RES_TRAILER_LEN:
        raise ValidationError(
            f"payload length {payload_len} does not match file size "
            f"{len(data)}")
    payload = data[RES_HEADER_LEN:RES_HEADER_LEN + payload_len]
    if hashlib.sha256(payload).digest() != data[-RES_TRAILER_LEN:]:
        raise ValidationError("payload SHA-256 does not match trailer")
    if name is not None and name != key.hex() + ".res":
        raise ValidationError(
            f"file name {name} does not match embedded key "
            f"{key.hex()[:16]}...")
    return version


def validate_store(path):
    """Validate a single .res entry or every entry in a store directory.

    Returns (entries, versions) where versions is the set of schema
    versions seen. Quarantined entries (damage already detected and set
    aside by the simulator) are ignored; a directory with no valid
    entries is an error.
    """
    if os.path.isdir(path):
        names = sorted(n for n in os.listdir(path) if n.endswith(".res"))
        if not names:
            raise ValidationError(f"{path}: no .res entries")
    else:
        names = [os.path.basename(path)]
        path = os.path.dirname(path) or "."
    versions = set()
    for name in names:
        with open(os.path.join(path, name), "rb") as f:
            data = f.read()
        try:
            versions.add(validate_store_entry(data, name))
        except ValidationError as e:
            raise ValidationError(f"{name}: {e}")
    return len(names), versions


def _selftest():
    import copy
    import unittest

    good_perf = [
        {"host": "ci", "workloads": {
            "cq": {"sim_cycles": 100, "wall_ms": 5.0,
                   "cycles_per_sec": 2e4},
            "sps": {"sim_cycles": 250, "wall_ms": 9.0,
                    "cycles_per_sec": 2.7e4}}},
        {"host": "ci", "workloads": {
            "cq": {"sim_cycles": 100, "wall_ms": 4.0,
                   "cycles_per_sec": 2.5e4},
            "sps": {"sim_cycles": 250, "wall_ms": 8.0,
                    "cycles_per_sec": 3.1e4}}},
    ]
    good_profile = json.dumps({
        "workload": "cq", "config": "eager", "cycles": 10,
        "profile": {
            "commitWidth": 2,
            "cpi": [{"core": 0, "retired": 6, "frontendStall": 2,
                     "robFull": 2, "exec": 4, "sqDrainWait": 0,
                     "atomicLazyWait": 2, "atomicExecute": 2,
                     "coherenceMiss": 1, "idle": 1}],
            "linesTracked": 1, "lines": [{"line": 64}],
            "row": {"totals": {"updates": 4, "eagerUncontended": 1,
                               "eagerContended": 1, "lazyUncontended": 1,
                               "lazyContended": 1}},
            "pcs": [{"pc": 4096}]}})
    good_span = json.dumps({
        "workload": "cq", "config": "eager", "cycles": 100,
        "spans": {
            "opened": 3, "closed": 2, "openAtEnd": 1, "truncated": 0,
            "segTotals": {"dispatchWait": 2, "sbDrain": 10, "aqWait": 4,
                          "execute": 6, "l1Miss": 20, "unblockWait": 0,
                          "lockHeld": 8, "total": 50, "netCycles": 12,
                          "dirBlocked": 4, "lockStall": 0},
            "latency": {"count": 2, "mean": 25, "p50": 24, "p90": 30,
                        "p99": 30, "min": 20, "max": 30},
            "pcs": [{"pc": "0x1000", "count": 2, "total": 50,
                     "dispatchWait": 2, "sbDrain": 10, "aqWait": 4,
                     "execute": 6, "l1Miss": 20, "unblockWait": 0,
                     "lockHeld": 8}],
            "lines": [],
            "spans": [{"id": 1, "dispatch": 10, "commit": 40,
                       "total": 30,
                       "segs": {"dispatchWait": 1, "sbDrain": 6,
                                "aqWait": 2, "execute": 4, "l1Miss": 12,
                                "unblockWait": 0, "lockHeld": 5}}]}})

    def make_store_entry(payload=b"result-bytes", version=1):
        key = hashlib.sha256(b"some key preimage").digest()
        data = (RES_MAGIC + struct.pack("<I", version) + key
                + struct.pack("<Q", len(payload)) + payload
                + hashlib.sha256(payload).digest())
        return key.hex() + ".res", data

    class SelfTest(unittest.TestCase):
        def test_store_accepts_good_entry(self):
            name, data = make_store_entry()
            self.assertEqual(validate_store_entry(data, name), 1)

        def test_store_rejects_bad_magic(self):
            name, data = make_store_entry()
            with self.assertRaisesRegex(ValidationError, "magic"):
                validate_store_entry(b"ROWRUINS" + data[8:], name)

        def test_store_rejects_truncation(self):
            name, data = make_store_entry()
            for cut in (5, RES_HEADER_LEN, len(data) - 1):
                with self.assertRaises(ValidationError):
                    validate_store_entry(data[:cut], name)

        def test_store_rejects_bit_flip(self):
            name, data = make_store_entry()
            flipped = bytearray(data)
            flipped[RES_HEADER_LEN] ^= 0x01
            with self.assertRaisesRegex(ValidationError, "SHA-256"):
                validate_store_entry(bytes(flipped), name)

        def test_store_rejects_misnamed_entry(self):
            _, data = make_store_entry()
            with self.assertRaisesRegex(ValidationError, "name"):
                validate_store_entry(data, "00" * 32 + ".res")

        def test_store_rejects_version_zero(self):
            name, data = make_store_entry(version=0)
            with self.assertRaisesRegex(ValidationError, "version"):
                validate_store_entry(data, name)

        def test_perf_schema_accepts_good(self):
            self.assertEqual(validate_perf_schema(good_perf), 2)

        def test_perf_schema_rejects_non_list(self):
            with self.assertRaises(ValidationError):
                validate_perf_schema({"host": "ci"})

        def test_perf_schema_rejects_nonpositive_metric(self):
            bad = copy.deepcopy(good_perf)
            bad[1]["workloads"]["cq"]["wall_ms"] = 0
            with self.assertRaises(ValidationError):
                validate_perf_schema(bad)

        def test_perf_schema_rejects_empty_workloads(self):
            with self.assertRaises(ValidationError):
                validate_perf_schema([{"host": "ci", "workloads": {}}])

        def test_stability_accepts_stable_history(self):
            self.assertEqual(validate_history_stability(good_perf), 2)

        def test_stability_needs_two_entries(self):
            with self.assertRaises(ValidationError):
                validate_history_stability(good_perf[:1])

        def test_stability_rejects_cycle_drift(self):
            bad = copy.deepcopy(good_perf)
            bad[1]["workloads"]["sps"]["sim_cycles"] = 251
            with self.assertRaisesRegex(ValidationError, "sps"):
                validate_history_stability(bad)

        def test_profile_accepts_good_record(self):
            self.assertEqual(validate_profile_records([good_profile]), 1)

        def test_profile_rejects_unbalanced_cpi_stack(self):
            rec = json.loads(good_profile)
            rec["profile"]["cpi"][0]["idle"] += 1
            with self.assertRaisesRegex(ValidationError, "CPI stack"):
                validate_profile_records([json.dumps(rec)])

        def test_profile_rejects_unbalanced_row_totals(self):
            rec = json.loads(good_profile)
            rec["profile"]["row"]["totals"]["updates"] = 5
            with self.assertRaisesRegex(ValidationError, "RoW"):
                validate_profile_records([json.dumps(rec)])

        def test_profile_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_profile_records(["", "  "])

        def test_profile_rejects_bad_json(self):
            with self.assertRaisesRegex(ValidationError, "bad JSON"):
                validate_profile_records(["{nope"])

        def test_span_accepts_good_record(self):
            self.assertEqual(validate_span_records([good_span]), 1)

        def test_span_rejects_unbalanced_span(self):
            rec = json.loads(good_span)
            rec["spans"]["spans"][0]["segs"]["lockHeld"] += 1
            with self.assertRaisesRegex(ValidationError, "conservation"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_untiled_window(self):
            rec = json.loads(good_span)
            rec["spans"]["spans"][0]["commit"] += 5
            with self.assertRaisesRegex(ValidationError, "conservation"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_unbalanced_aggregate(self):
            rec = json.loads(good_span)
            rec["spans"]["segTotals"]["execute"] += 1
            with self.assertRaisesRegex(ValidationError, "aggregate"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_vanished_spans(self):
            rec = json.loads(good_span)
            rec["spans"]["openAtEnd"] = 0
            with self.assertRaisesRegex(ValidationError, "vanished"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_histogram_count_mismatch(self):
            rec = json.loads(good_span)
            rec["spans"]["latency"]["count"] = 3
            with self.assertRaisesRegex(ValidationError, "histogram"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_span_records([""])

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(SelfTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    cmd = argv[1]
    try:
        if cmd == "selftest":
            return _selftest()
        if cmd == "perf-schema":
            min_entries = 1
            rest = argv[3:]
            if rest[:1] == ["--min-entries"]:
                min_entries = int(rest[1])
            with open(argv[2]) as f:
                n = validate_perf_schema(json.load(f), min_entries)
            print(f"perf schema ok: {n} history entries")
            return 0
        if cmd == "history-stability":
            with open(argv[2]) as f:
                n = validate_history_stability(json.load(f))
            print(f"history stability ok: {n} same-build runs bit-stable")
            return 0
        if cmd == "profile-schema":
            with open(argv[2]) as f:
                n = validate_profile_records(f)
            print(f"profile schema ok: {n} records")
            return 0
        if cmd == "span-schema":
            with open(argv[2]) as f:
                n = validate_span_records(f)
            print(f"span schema ok: {n} records")
            return 0
        if cmd == "store-schema":
            n, versions = validate_store(argv[2])
            vers = ", ".join(str(v) for v in sorted(versions))
            print(f"store schema ok: {n} entries (schema version {vers})")
            return 0
    except ValidationError as e:
        print(f"ci_validate: {cmd}: {e}", file=sys.stderr)
        return 1
    except (OSError, IndexError) as e:
        print(f"ci_validate: {cmd}: {e}", file=sys.stderr)
        return 2
    print(f"ci_validate: unknown subcommand '{cmd}'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
