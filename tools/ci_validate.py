#!/usr/bin/env python3
"""CI artifact validators for rowsim.

Centralises the schema and determinism checks that used to live as
inline heredocs in .github/workflows/ci.yml, so they are unit-testable
and identical between the PR gate and the nightly matrix.

Subcommands:
  perf-schema PERF_JSON [--min-entries N]
                                bench/perf_baseline history file: schema
                                (host, workloads, positive metrics), at
                                least N history entries (default 1).
  history-stability PERF_JSON   every entry in the file must report the
                                same sim_cycles per workload. Only valid
                                for same-build double-runs (one CI job
                                appending to one file); sim_cycles may
                                legitimately change across commits.
  profile-schema PROFILE_JSONL  tools/profile_report input records: run
                                labels, CPI-stack slot conservation,
                                RoW decision totals, per-PC tables.
  span-schema SPANS_JSONL       tools/span_report input records: run
                                labels, span count accounting, segment
                                conservation (segments exactly tile
                                dispatch->commit for every retained span
                                and in aggregate), latency histograms.
  store-schema PATH             content-addressed result-store entry
                                (.res file) or a store directory: magic,
                                schema version, embedded key vs file
                                name, payload length, SHA-256 trailer.
  timeseries-schema PATH        metric time-series output (a stats JSON
                                report with a "timeseries" section, a
                                raw engine object, or a JSONL run
                                report): sample grid on the period,
                                window bounds, batch layout, CI
                                consistency, convergence outcome.
  heartbeat-schema PATH         ROWSIM_HEARTBEAT JSONL stream: event
                                schemas (run/job/sweep), per-job
                                lifecycle ordering, final sweep tallies.
  sampling-schema PATH          sampled-run report ("sampling" object in
                                a run report / JSONL, or the raw
                                object): spec shape, checkpoint grid
                                arithmetic, one window per checkpoint,
                                window/aggregate metric consistency,
                                extrapolation factors, well-formed
                                error bars.
  sampling-speedup PERF_JSON [--min-speedup X]
                                BENCH history: the latest sampled entry
                                must beat the latest cold-detail entry
                                by at least X (default 10) in wall_ms
                                on every shared workload.
  sampling-contain SAMPLED FULL [--metric M]... [--slack S] [--rel R]
                                sampled run reports vs full-detail run
                                reports (JSONL each): every full-detail
                                value lies within max(S * CI half-width,
                                R * estimate) of the sampled estimate
                                (defaults S=3, R=0.03 — the CI absorbs
                                sampling noise, the floor the SMARTS
                                steady-state bias), and wherever two
                                configs' unwidened CIs are disjoint the
                                full-detail ranking matches the sampled
                                ranking — the fig09 "ranking within
                                error bars" gate.
  selftest                      run the built-in unit tests.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import hashlib
import json
import os
import struct
import sys

PROFILE_CPI_BUCKETS = {
    "retired", "frontendStall", "robFull", "exec", "sqDrainWait",
    "atomicLazyWait", "atomicExecute", "coherenceMiss", "idle",
}


class ValidationError(Exception):
    """A CI artifact violated its contract."""


def validate_perf_schema(doc, min_entries=1):
    """Validate a perf_baseline history document (a list of run entries)."""
    if not isinstance(doc, list) or len(doc) < min_entries:
        raise ValidationError(
            f"expected a history array of >= {min_entries} entries, "
            f"got {type(doc).__name__} of {len(doc) if isinstance(doc, list) else 'n/a'}")
    for i, entry in enumerate(doc):
        if "host" not in entry or "workloads" not in entry:
            raise ValidationError(f"entry {i}: missing host/workloads")
        if not entry["workloads"]:
            raise ValidationError(f"entry {i}: empty workloads")
        for w, m in entry["workloads"].items():
            for key in ("sim_cycles", "wall_ms", "cycles_per_sec"):
                if m.get(key, 0) <= 0:
                    raise ValidationError(
                        f"entry {i}, workload {w}: {key} must be > 0, "
                        f"got {m.get(key)}")
    return len(doc)


def _history_group(entry):
    """The determinism-comparison group of one history entry.

    Detail, functional, and sampled runs of one build legitimately
    report different sim_cycles, and so do runs at different iteration
    quotas; only runs of the same kind must agree. Entries predate the
    mode/sampled/quota host fields, so each defaults to the historical
    behaviour (detail mode, unsampled, per-workload default quota).
    """
    host = entry.get("host", {})
    if not isinstance(host, dict):
        host = {}
    return (host.get("mode", "detail"), host.get("sampled", "off"),
            host.get("quota", "default"))


def validate_history_stability(doc):
    """Same-kind entries of a same-build history must agree on
    sim_cycles.

    The simulator is deterministic: two runs of one binary in one
    execution mode simulate the same machine, so any sim_cycles
    difference inside one (mode, sampled) group is a determinism bug.
    Entries of other kinds in the same file (the detail/func/sampled
    perf triple) are grouped apart, not compared. (Cross-commit
    comparisons do not belong here.)
    """
    validate_perf_schema(doc, min_entries=2)
    groups = {}
    for i, entry in enumerate(doc):
        groups.setdefault(_history_group(entry), []).append((i, entry))
    compared = 0
    for (mode, sampled, quota), entries in groups.items():
        base_i, base = entries[0]
        for i, entry in entries[1:]:
            # perf_baseline accepts a workload subset, so entries of one
            # group may cover different workloads; determinism is judged
            # on the workloads a pair shares.
            shared = [w for w in base["workloads"]
                      if w in entry["workloads"]]
            for w in shared:
                got = entry["workloads"][w]["sim_cycles"]
                want = base["workloads"][w]["sim_cycles"]
                if got != want:
                    raise ValidationError(
                        f"workload {w}: sim_cycles drifted between runs "
                        f"of the same build "
                        f"(mode={mode}, sampled={sampled}, "
                        f"quota={quota}: {want} vs {got}) — determinism "
                        f"regression")
            if shared:
                compared += 1
    if compared == 0:
        raise ValidationError(
            "no two entries share a (mode, sampled, quota) group with a "
            "common workload — nothing to compare")
    return len(doc)


def validate_profile_records(lines):
    """Validate profiler JSONL records (tools/profile_report input)."""
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {lineno}: bad JSON: {e}")
        if not rec.get("workload") or not rec.get("config"):
            raise ValidationError(f"line {lineno}: missing run labels")
        p = rec["profile"]
        width = p.get("commitWidth", 0)
        if width <= 0:
            raise ValidationError(f"line {lineno}: commitWidth must be > 0")
        # Slot conservation: every core's CPI stack sums to
        # cycles x commitWidth.
        for core in p["cpi"]:
            total = sum(core[b] for b in PROFILE_CPI_BUCKETS)
            if total != rec["cycles"] * width:
                raise ValidationError(
                    f"line {lineno} ({rec['workload']}), core "
                    f"{core['core']}: CPI stack sums to {total}, "
                    f"expected {rec['cycles'] * width}")
        if p.get("linesTracked", 0) <= 0 or not p.get("lines"):
            raise ValidationError(f"line {lineno}: no hot-line profile")
        t = p["row"]["totals"]
        if t["updates"] != (t["eagerUncontended"] + t["eagerContended"]
                            + t["lazyUncontended"] + t["lazyContended"]):
            raise ValidationError(
                f"line {lineno}: RoW decision totals do not sum to "
                f"updates")
        if not p.get("pcs"):
            raise ValidationError(f"line {lineno}: no per-PC table")
        n += 1
    if n == 0:
        raise ValidationError("no profile records")
    return n


SPAN_SEGS = {
    "dispatchWait", "sbDrain", "aqWait", "execute", "l1Miss",
    "unblockWait", "lockHeld",
}


def validate_span_records(lines):
    """Validate span-tracker JSONL records (tools/span_report input)."""
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {lineno}: bad JSON: {e}")
        if not rec.get("workload") or not rec.get("config"):
            raise ValidationError(f"line {lineno}: missing run labels")
        s = rec["spans"]
        opened, closed = s.get("opened", 0), s.get("closed", 0)
        open_end, truncated = s.get("openAtEnd", 0), s.get("truncated", 0)
        if closed + open_end > opened:
            raise ValidationError(
                f"line {lineno}: closed+openAtEnd ({closed}+{open_end}) "
                f"exceeds opened ({opened})")
        # truncated also counts atomics restored in-image (which never
        # opened a span), so it bounds the gap from below, not exactly.
        if opened - closed - open_end > truncated:
            raise ValidationError(
                f"line {lineno}: {opened - closed - open_end} spans "
                f"vanished without being closed or truncated")
        seg_totals = s["segTotals"]
        if set(seg_totals) < SPAN_SEGS:
            raise ValidationError(
                f"line {lineno}: segTotals missing segments "
                f"{SPAN_SEGS - set(seg_totals)}")
        if sum(seg_totals[k] for k in SPAN_SEGS) != seg_totals["total"]:
            raise ValidationError(
                f"line {lineno}: aggregate segments do not sum to the "
                f"total span-cycles")
        if s.get("latency", {}).get("count") != closed:
            raise ValidationError(
                f"line {lineno}: latency histogram count "
                f"{s.get('latency', {}).get('count')} != closed {closed}")
        # Per-span conservation: segments exactly tile dispatch->commit.
        for sp in s.get("spans", []):
            seg_sum = sum(sp["segs"][k] for k in SPAN_SEGS)
            window = sp["commit"] - sp["dispatch"]
            if not (seg_sum == window == sp["total"]):
                raise ValidationError(
                    f"line {lineno}, span {sp.get('id')}: segments sum "
                    f"to {seg_sum}, commit-dispatch is {window}, total "
                    f"reports {sp['total']} — conservation violated")
        # Per-PC / per-line aggregates obey the same conservation.
        for table in ("pcs", "lines"):
            for agg in s.get(table, []):
                if sum(agg[k] for k in SPAN_SEGS) != agg["total"]:
                    raise ValidationError(
                        f"line {lineno}: {table} aggregate segments do "
                        f"not sum to its total")
        n += 1
    if n == 0:
        raise ValidationError("no span records")
    return n


def _validate_ts_object(ts, where):
    """Validate one time-series engine object (the "timeseries" value)."""
    period = ts.get("period", 0)
    window = ts.get("window", 0)
    if period <= 0 or window <= 0:
        raise ValidationError(f"{where}: period/window must be > 0")
    metrics = ts.get("metrics")
    if not metrics:
        raise ValidationError(f"{where}: no metrics")
    for name, m in metrics.items():
        count = m.get("count", -1)
        if count < 0:
            raise ValidationError(f"{where}, {name}: bad count")
        pts = m.get("points", {})
        cycles, values = pts.get("cycles", []), pts.get("values", [])
        if len(cycles) != len(values):
            raise ValidationError(
                f"{where}, {name}: cycles/values length mismatch")
        if len(cycles) > min(window, count):
            raise ValidationError(
                f"{where}, {name}: window holds {len(cycles)} points, "
                f"more than min(window={window}, count={count})")
        prev = 0
        for c in cycles:
            if c % period != 0 or c <= prev:
                raise ValidationError(
                    f"{where}, {name}: sample cycle {c} is not a "
                    f"strictly-increasing multiple of the period")
            prev = c
        batches, bsize = m.get("batches", 0), m.get("batchSize", 0)
        if bsize <= 0 or batches * bsize > count:
            raise ValidationError(
                f"{where}, {name}: batch layout {batches}x{bsize} "
                f"exceeds {count} samples")
        ci = m.get("ci", {})
        if ci.get("valid"):
            if not 0 < ci.get("confidence", 0) < 1:
                raise ValidationError(
                    f"{where}, {name}: CI confidence out of (0,1)")
            lo, hi, hw = ci.get("lo", 0), ci.get("hi", 0), \
                ci.get("halfwidth", -1)
            if hw < 0 or lo > hi:
                raise ValidationError(
                    f"{where}, {name}: degenerate CI [{lo}, {hi}]")
            # The JSON carries %.6g values, so the width is only exact
            # to the rounding of the (possibly much larger) endpoints.
            if abs((hi - lo) - 2 * hw) > 1e-5 * (abs(lo) + abs(hi) + 1):
                raise ValidationError(
                    f"{where}, {name}: CI width {hi - lo} is not twice "
                    f"the half-width {hw}")
    conv = ts.get("converge")
    if conv is not None:
        if conv.get("metric") not in metrics:
            raise ValidationError(
                f"{where}: converge metric {conv.get('metric')!r} is "
                f"not a tracked metric")
        if not conv.get("target", 0) > 0:
            raise ValidationError(f"{where}: converge target must be > 0")
        if not 0 < conv.get("confidence", 0) < 1:
            raise ValidationError(
                f"{where}: converge confidence out of (0,1)")
        if conv.get("converged"):
            at = conv.get("atCycle", 0)
            if at <= 0 or at % period != 0:
                raise ValidationError(
                    f"{where}: converged at cycle {at}, not a sampling "
                    f"boundary")
            achieved = conv.get("achieved")
            if achieved is None or achieved > conv["target"]:
                raise ValidationError(
                    f"{where}: converged but achieved {achieved} "
                    f"exceeds the target {conv['target']}")


def validate_timeseries(text):
    """Validate time-series output: a whole JSON document (stats report
    or raw engine object) or a JSONL stream of run records. Returns the
    number of time-series objects validated."""
    def extract(doc):
        if "timeseries" in doc:
            return doc["timeseries"]
        if "metrics" in doc:
            return doc
        return None

    try:
        doc = json.loads(text)
        docs = [("document", extract(doc))] if isinstance(doc, dict) \
            else []
    except json.JSONDecodeError:
        docs = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValidationError(f"line {lineno}: bad JSON: {e}")
            docs.append((f"line {lineno}", extract(rec)))
    n = 0
    for where, ts in docs:
        if ts is None:
            continue
        _validate_ts_object(ts, where)
        n += 1
    if n == 0:
        raise ValidationError("no time-series records")
    return n


HEARTBEAT_JOB_STATES = {"queued", "started", "retrying", "finished"}


def validate_heartbeat(lines):
    """Validate a ROWSIM_HEARTBEAT JSONL stream.

    Checks every event's schema and the per-job lifecycle ordering
    (queued -> started -> retrying* -> finished); when the sweep-end
    event is present, its ok/failed tally must cover every job and every
    job must have finished. Returns (events, jobs seen).
    """
    jobs = {}          # index -> last state
    sweep_jobs = None
    end_tally = None
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"line {lineno}: bad JSON: {e}")
        kind = ev.get("ev")
        if ev.get("wall", 0) <= 0:
            raise ValidationError(f"line {lineno}: missing wall stamp")
        if kind == "run":
            if ev.get("cycle", -1) < 0 or ev.get("iters", -1) < 0:
                raise ValidationError(
                    f"line {lineno}: run event with negative progress")
            if not 0 <= ev.get("frac", -1) <= 1:
                raise ValidationError(
                    f"line {lineno}: quota fraction {ev.get('frac')} "
                    f"out of [0,1]")
            if ev.get("kcps", -1) < 0:
                raise ValidationError(f"line {lineno}: negative kcps")
            if "rssKb" not in ev:
                raise ValidationError(f"line {lineno}: run without rssKb")
        elif kind == "job":
            key, state = ev.get("job", ""), ev.get("state")
            if not key.startswith("j") or not key[1:].isdigit():
                raise ValidationError(
                    f"line {lineno}: bad job key {key!r}")
            if state not in HEARTBEAT_JOB_STATES:
                raise ValidationError(
                    f"line {lineno}: bad job state {state!r}")
            if ev.get("attempt", 0) < 1:
                raise ValidationError(
                    f"line {lineno}: job attempt must be >= 1")
            if state in ("finished", "retrying") and not ev.get("status"):
                raise ValidationError(
                    f"line {lineno}: {state} without a status")
            idx = int(key[1:])
            prev = jobs.get(idx)
            if state == "started" and prev not in ("queued", "retrying"):
                raise ValidationError(
                    f"line {lineno}: job {idx} started from "
                    f"{prev!r}, not queued/retrying")
            if state in ("retrying", "finished") and prev != "started":
                raise ValidationError(
                    f"line {lineno}: job {idx} {state} from {prev!r}, "
                    f"not started")
            jobs[idx] = state
        elif kind == "sweep":
            state = ev.get("state")
            if state not in ("start", "end"):
                raise ValidationError(
                    f"line {lineno}: bad sweep state {state!r}")
            if ev.get("jobs", 0) <= 0:
                raise ValidationError(
                    f"line {lineno}: sweep without jobs")
            if ev.get("isolation") not in ("thread", "process"):
                raise ValidationError(
                    f"line {lineno}: bad isolation "
                    f"{ev.get('isolation')!r}")
            sweep_jobs = ev["jobs"]
            if state == "end":
                end_tally = (ev.get("ok", -1), ev.get("failed", -1))
        else:
            raise ValidationError(
                f"line {lineno}: unknown event kind {kind!r}")
        n += 1
    if n == 0:
        raise ValidationError("no heartbeat events")
    if end_tally is not None:
        ok, failed = end_tally
        if ok < 0 or failed < 0 or ok + failed != sweep_jobs:
            raise ValidationError(
                f"sweep end tally ok={ok} failed={failed} does not "
                f"cover {sweep_jobs} jobs")
        unfinished = [i for i, s in jobs.items() if s != "finished"]
        if unfinished:
            raise ValidationError(
                f"sweep ended but jobs {unfinished} never finished")
    return n, len(jobs)


RES_MAGIC = b"ROWRES\x00\x00"
RES_HEADER_LEN = 8 + 4 + 32 + 8  # magic + version + key + payload length
RES_TRAILER_LEN = 32             # SHA-256 of the payload


def validate_store_entry(data, name=None):
    """Validate one result-store container (src/sim/resultstore.cc).

    Layout: magic, u32-LE schema version, 32-byte SHA-256 key, u64-LE
    payload length, payload, SHA-256(payload) trailer. When *name* is
    given it must be `<key hex>.res` — the content addressing itself.
    Returns the entry's schema version.
    """
    if len(data) < RES_HEADER_LEN + RES_TRAILER_LEN:
        raise ValidationError(
            f"entry is {len(data)} bytes, smaller than the "
            f"{RES_HEADER_LEN + RES_TRAILER_LEN}-byte envelope")
    if data[:8] != RES_MAGIC:
        raise ValidationError(f"bad magic {data[:8]!r}")
    (version,) = struct.unpack_from("<I", data, 8)
    if version == 0:
        raise ValidationError("schema version 0 is reserved")
    key = data[12:44]
    (payload_len,) = struct.unpack_from("<Q", data, 44)
    if len(data) != RES_HEADER_LEN + payload_len + RES_TRAILER_LEN:
        raise ValidationError(
            f"payload length {payload_len} does not match file size "
            f"{len(data)}")
    payload = data[RES_HEADER_LEN:RES_HEADER_LEN + payload_len]
    if hashlib.sha256(payload).digest() != data[-RES_TRAILER_LEN:]:
        raise ValidationError("payload SHA-256 does not match trailer")
    if name is not None and name != key.hex() + ".res":
        raise ValidationError(
            f"file name {name} does not match embedded key "
            f"{key.hex()[:16]}...")
    return version


def validate_store(path):
    """Validate a single .res entry or every entry in a store directory.

    Returns (entries, versions) where versions is the set of schema
    versions seen. Quarantined entries (damage already detected and set
    aside by the simulator) are ignored; a directory with no valid
    entries is an error.
    """
    if os.path.isdir(path):
        names = sorted(n for n in os.listdir(path) if n.endswith(".res"))
        if not names:
            raise ValidationError(f"{path}: no .res entries")
    else:
        names = [os.path.basename(path)]
        path = os.path.dirname(path) or "."
    versions = set()
    for name in names:
        with open(os.path.join(path, name), "rb") as f:
            data = f.read()
        try:
            versions.add(validate_store_entry(data, name))
        except ValidationError as e:
            raise ValidationError(f"{name}: {e}")
    return len(names), versions


def _validate_sampling_object(s, where):
    """Validate one sampled-run summary (the "sampling" object emitted
    by src/sim/sampling.cc)."""
    spec = s.get("spec", {})
    n = spec.get("checkpoints", 0)
    warm = spec.get("warmIters", -1)
    detail = spec.get("detailIters", 0)
    conf = spec.get("confidence", 0)
    if n < 1 or warm < 0 or detail < 1:
        raise ValidationError(
            f"{where}: bad spec {spec!r} (need checkpoints >= 1, "
            f"warmIters >= 0, detailIters >= 1)")
    if not 0 < conf < 1:
        raise ValidationError(
            f"{where}: confidence {conf} out of (0, 1)")
    quota = s.get("quota", 0)
    if quota <= 0:
        raise ValidationError(f"{where}: quota must be > 0")

    grid = s.get("grid", [])
    if len(grid) != n:
        raise ValidationError(
            f"{where}: grid has {len(grid)} marks, spec asks for {n}")
    for k, mark in enumerate(grid):
        if mark != quota * k // n:
            raise ValidationError(
                f"{where}: grid[{k}] = {mark}, the SMARTS layout "
                f"requires floor({quota}*{k}/{n}) = {quota * k // n}")
    if warm + detail > quota:
        raise ValidationError(
            f"{where}: window ({warm}+{detail} iterations) does not fit "
            f"the quota {quota}")

    windows = s.get("windows", [])
    if len(windows) != n:
        raise ValidationError(
            f"{where}: {len(windows)} windows for {n} checkpoints — "
            f"every checkpoint must contribute exactly one window")
    metrics = s.get("metrics", {})
    if not metrics:
        raise ValidationError(f"{where}: no aggregate metrics")
    for k, w in enumerate(windows):
        if w.get("k") != k or w.get("mark") != grid[k]:
            raise ValidationError(
                f"{where}: window {k} reports k={w.get('k')} "
                f"mark={w.get('mark')}, expected k={k} mark={grid[k]}")
        if w.get("attempts", 0) < 1:
            raise ValidationError(
                f"{where}: window {k} attempts must be >= 1")
        wm = w.get("metrics", {})
        if set(wm) != set(metrics):
            raise ValidationError(
                f"{where}: window {k} metric set differs from the "
                f"aggregate ({sorted(set(wm) ^ set(metrics))})")

    scale = quota / detail
    for name, m in metrics.items():
        values = [w["metrics"][name] for w in windows]
        mean = sum(values) / n
        tol = 1e-9 * (abs(mean) + 1)
        if abs(m.get("mean", float("nan")) - mean) > tol:
            raise ValidationError(
                f"{where}, {name}: aggregate mean {m.get('mean')} is "
                f"not the mean of its windows ({mean})")
        expect = mean * scale if m.get("extrapolated") else mean
        tol = 1e-9 * (abs(expect) + 1)
        if abs(m.get("estimate", float("nan")) - expect) > tol:
            raise ValidationError(
                f"{where}, {name}: estimate {m.get('estimate')} "
                f"inconsistent with mean x "
                f"{'quota/detailIters' if m.get('extrapolated') else '1'}"
                f" = {expect}")
        if m.get("stddev", -1) < 0:
            raise ValidationError(f"{where}, {name}: negative stddev")
        ci = m.get("ci")
        if ci is None:
            if n > 1:
                raise ValidationError(
                    f"{where}, {name}: no CI despite {n} windows")
            continue
        if ci.get("confidence") != conf:
            raise ValidationError(
                f"{where}, {name}: CI confidence {ci.get('confidence')} "
                f"differs from the spec's {conf}")
        hw = ci.get("halfwidth", -1)
        lo, hi = ci.get("lo", float("nan")), ci.get("hi", float("nan"))
        if hw < 0:
            raise ValidationError(
                f"{where}, {name}: negative CI half-width")
        est = m["estimate"]
        tol = 1e-9 * (abs(est) + hw + 1)
        if abs((est - hw) - lo) > tol or abs((est + hw) - hi) > tol:
            raise ValidationError(
                f"{where}, {name}: error bar [{lo}, {hi}] is not "
                f"estimate +/- halfwidth ({est} +/- {hw})")


def _extract_sampling(doc):
    if "sampling" in doc:
        return doc["sampling"]
    if "spec" in doc and "windows" in doc:
        return doc
    return None


def validate_sampling(text):
    """Validate sampled-run output: a whole JSON document (run report or
    raw sampling object) or a JSONL stream of run reports. Returns the
    number of sampling objects validated."""
    try:
        doc = json.loads(text)
        docs = [("document", _extract_sampling(doc))] \
            if isinstance(doc, dict) else []
    except json.JSONDecodeError:
        docs = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValidationError(f"line {lineno}: bad JSON: {e}")
            docs.append((f"line {lineno}", _extract_sampling(rec)))
    n = 0
    for where, s in docs:
        if s is None:
            continue
        _validate_sampling_object(s, where)
        n += 1
    if n == 0:
        raise ValidationError("no sampling records")
    return n


def validate_sampling_speedup(doc, min_speedup=10.0):
    """The latest sampled history entry must beat the latest cold
    detail entry by at least *min_speedup* in wall_ms per workload.

    This is the paper's reason for sampling to exist; a sampled run
    slower than a tenth of detail means the window layout (or a
    regression) ate the win. Entries are matched by the perf triple's
    host fields: detail = mode detail / sampled off.
    """
    validate_perf_schema(doc)
    detail_by_quota = {}
    sampled = sampled_quota = None
    for entry in doc:  # latest of each kind wins
        mode, samp, quota = _history_group(entry)
        if mode == "detail" and samp == "off":
            detail_by_quota[quota] = entry
        elif samp != "off":
            sampled, sampled_quota = entry, quota
    if sampled is None:
        raise ValidationError(
            "need a sampled entry (host.sampled) in the history")
    # Compare like with like: the detail baseline must have run at the
    # sampled entry's quota, or the ratio measures the quota, not the
    # sampling machinery.
    detail = detail_by_quota.get(sampled_quota)
    if detail is None:
        raise ValidationError(
            f"no detail entry at the sampled entry's quota "
            f"({sampled_quota}) to compare against")
    shared = set(detail["workloads"]) & set(sampled["workloads"])
    if not shared:
        raise ValidationError(
            "the detail and sampled entries share no workloads")
    worst = None
    for w in sorted(shared):
        ratio = (detail["workloads"][w]["wall_ms"]
                 / sampled["workloads"][w]["wall_ms"])
        if worst is None or ratio < worst[1]:
            worst = (w, ratio)
        if ratio < min_speedup:
            raise ValidationError(
                f"workload {w}: sampled run is only {ratio:.2f}x faster "
                f"than cold detail (gate: >= {min_speedup}x)")
    return len(shared), worst


def _jsonl_records(text, what):
    recs = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            recs.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise ValidationError(f"{what} line {lineno}: bad JSON: {e}")
    if not recs:
        raise ValidationError(f"no {what} records")
    return recs


def validate_sampling_containment(sampled_text, full_text,
                                  metrics=("cycles",), slack=3.0,
                                  rel=0.03):
    """Sampled estimates must contain the full-detail truth.

    For every (workload, config) present in both report streams and
    every requested metric: the full-detail value must lie within
    max(slack * CI half-width, rel * |estimate|) of the sampled
    estimate. The widened CI absorbs sampling noise (short windows have
    startup transients the batch-means CI underestimates); the relative
    floor absorbs the systematic SMARTS bias — windows measure steady
    state, the full run includes the ramp, and no amount of
    window-to-window agreement shrinks that gap (the literature's
    typical figure is ~3%). And the fig09 acceptance: wherever two
    configs of one workload have disjoint *unwidened* CIs — the sampled
    run's own error bars claim to distinguish them — the full-detail
    ordering must agree. Returns (pairs checked, ranking comparisons
    made).
    """
    sampled = {}
    for rec in _jsonl_records(sampled_text, "sampled"):
        s = _extract_sampling(rec)
        if s is None:
            raise ValidationError(
                f"sampled record {rec.get('workload')}/"
                f"{rec.get('config')} has no sampling object")
        _validate_sampling_object(
            s, f"{rec.get('workload')}/{rec.get('config')}")
        sampled[(rec.get("workload"), rec.get("config"))] = s
    full = {(rec.get("workload"), rec.get("config")): rec
            for rec in _jsonl_records(full_text, "full-detail")}

    checked = 0
    intervals = {}  # (workload, metric) -> [(config, lo, hi, estimate)]
    for key, s in sampled.items():
        if key not in full:
            raise ValidationError(
                f"sampled run {key[0]}/{key[1]} has no full-detail "
                f"counterpart")
        for metric in metrics:
            m = s["metrics"].get(metric)
            if m is None:
                raise ValidationError(
                    f"{key[0]}/{key[1]}: sampled report lacks metric "
                    f"{metric!r}")
            truth = full[key].get(metric)
            if truth is None:
                raise ValidationError(
                    f"{key[0]}/{key[1]}: full-detail report lacks "
                    f"metric {metric!r}")
            ci = m.get("ci")
            hw = ci["halfwidth"] if ci else 0.0
            est = m["estimate"]
            delta = max(hw * slack, abs(est) * rel)
            lo, hi = est - delta, est + delta
            if not lo <= truth <= hi:
                raise ValidationError(
                    f"{key[0]}/{key[1]}, {metric}: full-detail value "
                    f"{truth} outside the widened sampled interval "
                    f"[{lo:.6g}, {hi:.6g}] (slack {slack}x, rel floor "
                    f"{rel:g})")
            intervals.setdefault((key[0], metric), []).append(
                (key[1], est - hw, est + hw, est, truth))
            checked += 1

    rankings = 0
    for (workload, metric), rows in intervals.items():
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                ca, loa, hia, esta, trutha = rows[i]
                cb, lob, hib, estb, truthb = rows[j]
                if hia < lob or hib < loa:  # CIs disjoint: a real claim
                    rankings += 1
                    if (esta < estb) != (trutha < truthb):
                        raise ValidationError(
                            f"{workload}, {metric}: sampled run ranks "
                            f"{ca} vs {cb} as {esta:.6g} vs {estb:.6g} "
                            f"with disjoint error bars, but full detail "
                            f"says {trutha} vs {truthb} — ranking "
                            f"flipped outside the error bars")
    return checked, rankings


def _selftest():
    import copy
    import unittest

    good_perf = [
        {"host": "ci", "workloads": {
            "cq": {"sim_cycles": 100, "wall_ms": 5.0,
                   "cycles_per_sec": 2e4},
            "sps": {"sim_cycles": 250, "wall_ms": 9.0,
                    "cycles_per_sec": 2.7e4}}},
        {"host": "ci", "workloads": {
            "cq": {"sim_cycles": 100, "wall_ms": 4.0,
                   "cycles_per_sec": 2.5e4},
            "sps": {"sim_cycles": 250, "wall_ms": 8.0,
                    "cycles_per_sec": 3.1e4}}},
    ]
    good_profile = json.dumps({
        "workload": "cq", "config": "eager", "cycles": 10,
        "profile": {
            "commitWidth": 2,
            "cpi": [{"core": 0, "retired": 6, "frontendStall": 2,
                     "robFull": 2, "exec": 4, "sqDrainWait": 0,
                     "atomicLazyWait": 2, "atomicExecute": 2,
                     "coherenceMiss": 1, "idle": 1}],
            "linesTracked": 1, "lines": [{"line": 64}],
            "row": {"totals": {"updates": 4, "eagerUncontended": 1,
                               "eagerContended": 1, "lazyUncontended": 1,
                               "lazyContended": 1}},
            "pcs": [{"pc": 4096}]}})
    good_span = json.dumps({
        "workload": "cq", "config": "eager", "cycles": 100,
        "spans": {
            "opened": 3, "closed": 2, "openAtEnd": 1, "truncated": 0,
            "segTotals": {"dispatchWait": 2, "sbDrain": 10, "aqWait": 4,
                          "execute": 6, "l1Miss": 20, "unblockWait": 0,
                          "lockHeld": 8, "total": 50, "netCycles": 12,
                          "dirBlocked": 4, "lockStall": 0},
            "latency": {"count": 2, "mean": 25, "p50": 24, "p90": 30,
                        "p99": 30, "min": 20, "max": 30},
            "pcs": [{"pc": "0x1000", "count": 2, "total": 50,
                     "dispatchWait": 2, "sbDrain": 10, "aqWait": 4,
                     "execute": 6, "l1Miss": 20, "unblockWait": 0,
                     "lockHeld": 8}],
            "lines": [],
            "spans": [{"id": 1, "dispatch": 10, "commit": 40,
                       "total": 30,
                       "segs": {"dispatchWait": 1, "sbDrain": 6,
                                "aqWait": 2, "execute": 4, "l1Miss": 12,
                                "unblockWait": 0, "lockHeld": 5}}]}})

    good_ts = json.dumps({
        "workload": "cq", "config": "eager",
        "timeseries": {
            "period": 1024, "window": 512,
            "metrics": {
                "instructions": {
                    "count": 16, "mean": 100.0, "stddev": 5.0,
                    "lag1": 0.2, "batches": 16, "batchSize": 1,
                    "ci": {"valid": True, "confidence": 0.95,
                           "halfwidth": 2.5, "rel": 0.025,
                           "lo": 97.5, "hi": 102.5},
                    "points": {"cycles": [1024, 2048, 3072],
                               "values": [99.0, 101.0, 100.0]}}},
            "converge": {"metric": "instructions", "target": 0.05,
                         "confidence": 0.95, "achieved": 0.025,
                         "converged": True, "atCycle": 16384}}})
    good_hb = [
        json.dumps({"ev": "sweep", "wall": 10, "state": "start",
                    "jobs": 2, "isolation": "thread"}),
        json.dumps({"ev": "job", "wall": 11, "job": "j0",
                    "state": "queued", "attempt": 1, "workload": "pc",
                    "config": "eager"}),
        json.dumps({"ev": "job", "wall": 11, "job": "j1",
                    "state": "queued", "attempt": 1, "workload": "cq",
                    "config": "lazy"}),
        json.dumps({"ev": "job", "wall": 12, "job": "j0",
                    "state": "started", "attempt": 1, "workload": "pc",
                    "config": "eager"}),
        json.dumps({"ev": "run", "wall": 13, "job": "j0", "cycle": 4096,
                    "iters": 10, "quota": 100, "frac": 0.1,
                    "kcps": 850.0, "etaMs": 900, "rssKb": 51200}),
        json.dumps({"ev": "job", "wall": 14, "job": "j0",
                    "state": "finished", "attempt": 1, "workload": "pc",
                    "config": "eager", "status": "ok"}),
        json.dumps({"ev": "job", "wall": 14, "job": "j1",
                    "state": "started", "attempt": 1, "workload": "cq",
                    "config": "lazy"}),
        json.dumps({"ev": "job", "wall": 15, "job": "j1",
                    "state": "retrying", "attempt": 1, "workload": "cq",
                    "config": "lazy", "status": "crashed"}),
        json.dumps({"ev": "job", "wall": 16, "job": "j1",
                    "state": "started", "attempt": 2, "workload": "cq",
                    "config": "lazy"}),
        json.dumps({"ev": "job", "wall": 17, "job": "j1",
                    "state": "finished", "attempt": 2, "workload": "cq",
                    "config": "lazy", "status": "ok"}),
        json.dumps({"ev": "sweep", "wall": 18, "state": "end",
                    "jobs": 2, "ok": 2, "failed": 0,
                    "isolation": "thread"}),
    ]

    def make_sampling(quota=100, n=4, warm=2, detail=5, conf=0.95,
                      cycles=(10.0, 12.0, 11.0, 11.0)):
        """A consistent sampled-run report, built with the simulator's
        own aggregation arithmetic."""
        grid = [quota * k // n for k in range(n)]
        mean = sum(cycles) / n
        stddev = (sum((v - mean) ** 2 for v in cycles)
                  / (n - 1)) ** 0.5 if n > 1 else 0.0
        scale = quota / detail
        est = mean * scale
        hw = 1.7 * stddev * scale  # any nonnegative width is schema-legal
        metrics = {
            "cycles": {"mean": mean, "stddev": stddev, "estimate": est,
                       "extrapolated": True,
                       "ci": {"confidence": conf, "halfwidth": hw,
                              "lo": est - hw, "hi": est + hw}},
            "missLatency": {"mean": 8.0, "stddev": 0.0, "estimate": 8.0,
                            "extrapolated": False,
                            "ci": {"confidence": conf, "halfwidth": 0.0,
                                   "lo": 8.0, "hi": 8.0}},
        }
        windows = [{"k": k, "mark": grid[k], "fromCache": False,
                    "attempts": 1,
                    "metrics": {"cycles": cycles[k], "missLatency": 8.0}}
                   for k in range(n)]
        return {"workload": "cq", "config": "eager",
                "sampling": {
                    "spec": {"checkpoints": n, "warmIters": warm,
                             "detailIters": detail, "confidence": conf},
                    "quota": quota, "grid": grid, "windows": windows,
                    "metrics": metrics}}

    good_sampling = json.dumps(make_sampling())

    def make_speedup_history(ratio=20.0):
        detail = {"host": {"mode": "detail", "sampled": "off"},
                  "workloads": {"cq": {"sim_cycles": 1000,
                                       "wall_ms": 100.0 * ratio / 20,
                                       "cycles_per_sec": 1e4}}}
        sampled = {"host": {"mode": "detail", "sampled": "5:2:10"},
                   "workloads": {"cq": {"sim_cycles": 990,
                                        "wall_ms": 5.0 * 20 / 20,
                                        "cycles_per_sec": 2e5}}}
        detail["workloads"]["cq"]["wall_ms"] = 5.0 * ratio
        return [detail, sampled]

    def make_containment(truth=220.0, flip=False):
        """Sampled reports for two configs + matching full-detail
        reports. The configs' own CIs are disjoint (~[192, 248] vs
        ~[272, 328]) but the 3x-widened intervals overlap, so a *flip*
        stays containment-clean and must be caught by the ranking
        gate; *truth* moves eager's full-detail cycles."""
        a = make_sampling(cycles=(10.0, 12.0, 11.0, 11.0))  # est 220
        b = make_sampling(cycles=(14.0, 16.0, 15.0, 15.0))  # est 300
        b["config"] = "lazy"
        sampled = "\n".join(json.dumps(r) for r in (a, b))
        full_a = {"workload": "cq", "config": "eager",
                  "cycles": 290.0 if flip else truth}
        full_b = {"workload": "cq", "config": "lazy",
                  "cycles": 280.0 if flip else 300.0}
        full = "\n".join(json.dumps(r) for r in (full_a, full_b))
        return sampled, full

    def make_store_entry(payload=b"result-bytes", version=1):
        key = hashlib.sha256(b"some key preimage").digest()
        data = (RES_MAGIC + struct.pack("<I", version) + key
                + struct.pack("<Q", len(payload)) + payload
                + hashlib.sha256(payload).digest())
        return key.hex() + ".res", data

    class SelfTest(unittest.TestCase):
        def test_store_accepts_good_entry(self):
            name, data = make_store_entry()
            self.assertEqual(validate_store_entry(data, name), 1)

        def test_store_rejects_bad_magic(self):
            name, data = make_store_entry()
            with self.assertRaisesRegex(ValidationError, "magic"):
                validate_store_entry(b"ROWRUINS" + data[8:], name)

        def test_store_rejects_truncation(self):
            name, data = make_store_entry()
            for cut in (5, RES_HEADER_LEN, len(data) - 1):
                with self.assertRaises(ValidationError):
                    validate_store_entry(data[:cut], name)

        def test_store_rejects_bit_flip(self):
            name, data = make_store_entry()
            flipped = bytearray(data)
            flipped[RES_HEADER_LEN] ^= 0x01
            with self.assertRaisesRegex(ValidationError, "SHA-256"):
                validate_store_entry(bytes(flipped), name)

        def test_store_rejects_misnamed_entry(self):
            _, data = make_store_entry()
            with self.assertRaisesRegex(ValidationError, "name"):
                validate_store_entry(data, "00" * 32 + ".res")

        def test_store_rejects_version_zero(self):
            name, data = make_store_entry(version=0)
            with self.assertRaisesRegex(ValidationError, "version"):
                validate_store_entry(data, name)

        def test_perf_schema_accepts_good(self):
            self.assertEqual(validate_perf_schema(good_perf), 2)

        def test_perf_schema_rejects_non_list(self):
            with self.assertRaises(ValidationError):
                validate_perf_schema({"host": "ci"})

        def test_perf_schema_rejects_nonpositive_metric(self):
            bad = copy.deepcopy(good_perf)
            bad[1]["workloads"]["cq"]["wall_ms"] = 0
            with self.assertRaises(ValidationError):
                validate_perf_schema(bad)

        def test_perf_schema_rejects_empty_workloads(self):
            with self.assertRaises(ValidationError):
                validate_perf_schema([{"host": "ci", "workloads": {}}])

        def test_stability_accepts_stable_history(self):
            self.assertEqual(validate_history_stability(good_perf), 2)

        def test_stability_needs_two_entries(self):
            with self.assertRaises(ValidationError):
                validate_history_stability(good_perf[:1])

        def test_stability_rejects_cycle_drift(self):
            bad = copy.deepcopy(good_perf)
            bad[1]["workloads"]["sps"]["sim_cycles"] = 251
            with self.assertRaisesRegex(ValidationError, "sps"):
                validate_history_stability(bad)

        def test_profile_accepts_good_record(self):
            self.assertEqual(validate_profile_records([good_profile]), 1)

        def test_profile_rejects_unbalanced_cpi_stack(self):
            rec = json.loads(good_profile)
            rec["profile"]["cpi"][0]["idle"] += 1
            with self.assertRaisesRegex(ValidationError, "CPI stack"):
                validate_profile_records([json.dumps(rec)])

        def test_profile_rejects_unbalanced_row_totals(self):
            rec = json.loads(good_profile)
            rec["profile"]["row"]["totals"]["updates"] = 5
            with self.assertRaisesRegex(ValidationError, "RoW"):
                validate_profile_records([json.dumps(rec)])

        def test_profile_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_profile_records(["", "  "])

        def test_profile_rejects_bad_json(self):
            with self.assertRaisesRegex(ValidationError, "bad JSON"):
                validate_profile_records(["{nope"])

        def test_span_accepts_good_record(self):
            self.assertEqual(validate_span_records([good_span]), 1)

        def test_span_rejects_unbalanced_span(self):
            rec = json.loads(good_span)
            rec["spans"]["spans"][0]["segs"]["lockHeld"] += 1
            with self.assertRaisesRegex(ValidationError, "conservation"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_untiled_window(self):
            rec = json.loads(good_span)
            rec["spans"]["spans"][0]["commit"] += 5
            with self.assertRaisesRegex(ValidationError, "conservation"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_unbalanced_aggregate(self):
            rec = json.loads(good_span)
            rec["spans"]["segTotals"]["execute"] += 1
            with self.assertRaisesRegex(ValidationError, "aggregate"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_vanished_spans(self):
            rec = json.loads(good_span)
            rec["spans"]["openAtEnd"] = 0
            with self.assertRaisesRegex(ValidationError, "vanished"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_histogram_count_mismatch(self):
            rec = json.loads(good_span)
            rec["spans"]["latency"]["count"] = 3
            with self.assertRaisesRegex(ValidationError, "histogram"):
                validate_span_records([json.dumps(rec)])

        def test_span_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_span_records([""])

        def test_timeseries_accepts_good_record(self):
            self.assertEqual(validate_timeseries(good_ts), 1)

        def test_timeseries_accepts_raw_engine_object(self):
            raw = json.dumps(json.loads(good_ts)["timeseries"])
            self.assertEqual(validate_timeseries(raw), 1)

        def test_timeseries_rejects_off_grid_sample(self):
            rec = json.loads(good_ts)
            rec["timeseries"]["metrics"]["instructions"]["points"][
                "cycles"][1] = 2000
            with self.assertRaisesRegex(ValidationError, "multiple"):
                validate_timeseries(json.dumps(rec))

        def test_timeseries_rejects_degenerate_ci(self):
            rec = json.loads(good_ts)
            rec["timeseries"]["metrics"]["instructions"]["ci"]["lo"] = 200
            with self.assertRaisesRegex(ValidationError, "CI"):
                validate_timeseries(json.dumps(rec))

        def test_timeseries_rejects_batch_overrun(self):
            rec = json.loads(good_ts)
            rec["timeseries"]["metrics"]["instructions"]["batches"] = 99
            with self.assertRaisesRegex(ValidationError, "batch"):
                validate_timeseries(json.dumps(rec))

        def test_timeseries_rejects_off_boundary_convergence(self):
            rec = json.loads(good_ts)
            rec["timeseries"]["converge"]["atCycle"] = 16000
            with self.assertRaisesRegex(ValidationError, "boundary"):
                validate_timeseries(json.dumps(rec))

        def test_timeseries_rejects_unmet_target_marked_converged(self):
            rec = json.loads(good_ts)
            rec["timeseries"]["converge"]["achieved"] = 0.06
            with self.assertRaisesRegex(ValidationError, "target"):
                validate_timeseries(json.dumps(rec))

        def test_timeseries_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_timeseries("{}")

        def test_heartbeat_accepts_good_stream(self):
            self.assertEqual(validate_heartbeat(good_hb), (11, 2))

        def test_heartbeat_rejects_unknown_event(self):
            with self.assertRaisesRegex(ValidationError, "unknown"):
                validate_heartbeat(
                    [json.dumps({"ev": "pulse", "wall": 1})])

        def test_heartbeat_rejects_bad_fraction(self):
            bad = list(good_hb)
            rec = json.loads(bad[4])
            rec["frac"] = 1.5
            bad[4] = json.dumps(rec)
            with self.assertRaisesRegex(ValidationError, "fraction"):
                validate_heartbeat(bad)

        def test_heartbeat_rejects_finish_without_status(self):
            bad = list(good_hb)
            rec = json.loads(bad[5])
            del rec["status"]
            bad[5] = json.dumps(rec)
            with self.assertRaisesRegex(ValidationError, "status"):
                validate_heartbeat(bad)

        def test_heartbeat_rejects_lifecycle_skip(self):
            bad = list(good_hb)
            del bad[3]  # j0 finishes without ever starting
            with self.assertRaisesRegex(ValidationError, "not started"):
                validate_heartbeat(bad)

        def test_heartbeat_rejects_end_tally_mismatch(self):
            bad = list(good_hb)
            rec = json.loads(bad[-1])
            rec["ok"] = 1
            bad[-1] = json.dumps(rec)
            with self.assertRaisesRegex(ValidationError, "tally"):
                validate_heartbeat(bad)

        def test_heartbeat_rejects_unfinished_job_at_end(self):
            bad = list(good_hb)
            del bad[9]  # j1 never finishes
            with self.assertRaisesRegex(ValidationError, "finished"):
                validate_heartbeat(bad)

        def test_heartbeat_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_heartbeat([""])

        def test_sampling_accepts_good_report(self):
            self.assertEqual(validate_sampling(good_sampling), 1)

        def test_sampling_accepts_raw_object(self):
            raw = json.dumps(json.loads(good_sampling)["sampling"])
            self.assertEqual(validate_sampling(raw), 1)

        def test_sampling_accepts_jsonl(self):
            self.assertEqual(
                validate_sampling(good_sampling + "\n" + good_sampling),
                2)

        def test_sampling_rejects_off_grid_mark(self):
            rec = json.loads(good_sampling)
            rec["sampling"]["grid"][2] = 51
            with self.assertRaisesRegex(ValidationError, "SMARTS"):
                validate_sampling(json.dumps(rec))

        def test_sampling_rejects_missing_window(self):
            rec = json.loads(good_sampling)
            del rec["sampling"]["windows"][3]
            with self.assertRaisesRegex(ValidationError, "window"):
                validate_sampling(json.dumps(rec))

        def test_sampling_rejects_mean_drift(self):
            rec = json.loads(good_sampling)
            rec["sampling"]["metrics"]["cycles"]["mean"] += 0.5
            with self.assertRaisesRegex(ValidationError, "mean"):
                validate_sampling(json.dumps(rec))

        def test_sampling_rejects_bad_extrapolation(self):
            rec = json.loads(good_sampling)
            m = rec["sampling"]["metrics"]["cycles"]
            m["estimate"] = m["mean"]  # extrapolated but unscaled
            with self.assertRaisesRegex(ValidationError, "estimate"):
                validate_sampling(json.dumps(rec))

        def test_sampling_rejects_skewed_error_bar(self):
            rec = json.loads(good_sampling)
            rec["sampling"]["metrics"]["cycles"]["ci"]["lo"] -= 1.0
            with self.assertRaisesRegex(ValidationError, "error bar"):
                validate_sampling(json.dumps(rec))

        def test_sampling_rejects_empty_input(self):
            with self.assertRaises(ValidationError):
                validate_sampling("{}")

        def test_speedup_accepts_fast_sampled_run(self):
            n, worst = validate_sampling_speedup(make_speedup_history())
            self.assertEqual(n, 1)
            self.assertAlmostEqual(worst[1], 20.0)

        def test_speedup_rejects_slow_sampled_run(self):
            with self.assertRaisesRegex(ValidationError, "faster"):
                validate_sampling_speedup(make_speedup_history(4.0))

        def test_speedup_needs_both_kinds(self):
            with self.assertRaisesRegex(ValidationError, "sampled"):
                validate_sampling_speedup(good_perf)

        def test_containment_accepts_contained_truth(self):
            sampled, full = make_containment()
            checked, rankings = \
                validate_sampling_containment(sampled, full)
            self.assertEqual(checked, 2)
            self.assertEqual(rankings, 1)

        def test_containment_rejects_escaped_truth(self):
            sampled, full = make_containment(truth=500.0)
            with self.assertRaisesRegex(ValidationError, "outside"):
                validate_sampling_containment(sampled, full)

        def test_containment_rejects_ranking_flip(self):
            sampled, full = make_containment(flip=True)
            with self.assertRaisesRegex(ValidationError, "flipped"):
                validate_sampling_containment(sampled, full)

        def test_containment_rel_floor_absorbs_smarts_bias(self):
            # Zero window variance collapses the CI to a point; the
            # relative floor still tolerates the systematic
            # steady-state bias, but not an estimate that is simply
            # wrong.
            a = make_sampling(cycles=(11.0, 11.0, 11.0, 11.0))  # 220
            sampled = json.dumps(a)
            near = json.dumps({"workload": "cq", "config": "eager",
                               "cycles": 224.0})  # within 3%
            checked, _ = validate_sampling_containment(sampled, near)
            self.assertEqual(checked, 1)
            far = json.dumps({"workload": "cq", "config": "eager",
                              "cycles": 240.0})  # 9% off
            with self.assertRaisesRegex(ValidationError, "outside"):
                validate_sampling_containment(sampled, far)

        def test_containment_rejects_missing_counterpart(self):
            sampled, full = make_containment()
            full = full.splitlines()[0]
            with self.assertRaisesRegex(ValidationError, "counterpart"):
                validate_sampling_containment(sampled, full)

        def test_stability_groups_modes_apart(self):
            # A detail/func/sampled triple with disagreeing sim_cycles
            # across kinds but agreement within each kind must pass.
            mixed = copy.deepcopy(good_perf)
            func = copy.deepcopy(good_perf[0])
            func["host"] = {"mode": "func", "sampled": "off"}
            func["workloads"]["cq"]["sim_cycles"] = 7
            samp = copy.deepcopy(good_perf[0])
            samp["host"] = {"mode": "detail", "sampled": "5:2:10"}
            samp["workloads"]["cq"]["sim_cycles"] = 90
            mixed += [func, samp]
            self.assertEqual(validate_history_stability(mixed), 4)

        def test_stability_rejects_drift_within_a_mode(self):
            mixed = copy.deepcopy(good_perf)
            for e in mixed:
                e["host"] = {"mode": "func"}
            mixed[1]["workloads"]["cq"]["sim_cycles"] = 101
            with self.assertRaisesRegex(ValidationError, "mode=func"):
                validate_history_stability(mixed)

        def test_stability_needs_a_comparable_pair(self):
            lone = copy.deepcopy(good_perf)
            lone[1]["host"] = {"mode": "func"}
            with self.assertRaisesRegex(ValidationError, "group"):
                validate_history_stability(lone)

        def test_stability_groups_quotas_apart(self):
            # A longer-quota rerun simulates more iterations: different
            # sim_cycles is correct, not drift.
            mixed = copy.deepcopy(good_perf)
            long = copy.deepcopy(good_perf[0])
            long["host"] = {"quota": "3000"}
            long["workloads"]["cq"]["sim_cycles"] = 12345
            mixed.append(long)
            self.assertEqual(validate_history_stability(mixed), 3)

        def test_speedup_needs_a_quota_matched_baseline(self):
            hist = make_speedup_history()
            for e in hist:
                if e["host"]["sampled"] != "off":
                    e["host"]["quota"] = "3000"
            with self.assertRaisesRegex(ValidationError, "quota"):
                validate_sampling_speedup(hist)

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(SelfTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    cmd = argv[1]
    try:
        if cmd == "selftest":
            return _selftest()
        if cmd == "perf-schema":
            min_entries = 1
            rest = argv[3:]
            if rest[:1] == ["--min-entries"]:
                min_entries = int(rest[1])
            with open(argv[2]) as f:
                n = validate_perf_schema(json.load(f), min_entries)
            print(f"perf schema ok: {n} history entries")
            return 0
        if cmd == "history-stability":
            with open(argv[2]) as f:
                n = validate_history_stability(json.load(f))
            print(f"history stability ok: {n} same-build runs bit-stable")
            return 0
        if cmd == "profile-schema":
            with open(argv[2]) as f:
                n = validate_profile_records(f)
            print(f"profile schema ok: {n} records")
            return 0
        if cmd == "span-schema":
            with open(argv[2]) as f:
                n = validate_span_records(f)
            print(f"span schema ok: {n} records")
            return 0
        if cmd == "store-schema":
            n, versions = validate_store(argv[2])
            vers = ", ".join(str(v) for v in sorted(versions))
            print(f"store schema ok: {n} entries (schema version {vers})")
            return 0
        if cmd == "timeseries-schema":
            with open(argv[2]) as f:
                n = validate_timeseries(f.read())
            print(f"timeseries schema ok: {n} records")
            return 0
        if cmd == "heartbeat-schema":
            with open(argv[2]) as f:
                n, jobs = validate_heartbeat(f)
            print(f"heartbeat schema ok: {n} events, {jobs} jobs")
            return 0
        if cmd == "sampling-schema":
            with open(argv[2]) as f:
                n = validate_sampling(f.read())
            print(f"sampling schema ok: {n} records")
            return 0
        if cmd == "sampling-speedup":
            min_speedup = 10.0
            rest = argv[3:]
            if rest[:1] == ["--min-speedup"]:
                min_speedup = float(rest[1])
            with open(argv[2]) as f:
                n, worst = validate_sampling_speedup(json.load(f),
                                                     min_speedup)
            print(f"sampling speedup ok: {n} workloads, worst "
                  f"{worst[0]} at {worst[1]:.1f}x (gate "
                  f">= {min_speedup}x)")
            return 0
        if cmd == "sampling-contain":
            metrics = []
            slack = 3.0
            rel = 0.03
            rest = argv[4:]
            while rest:
                if rest[0] == "--metric":
                    metrics.append(rest[1])
                    rest = rest[2:]
                elif rest[0] == "--slack":
                    slack = float(rest[1])
                    rest = rest[2:]
                elif rest[0] == "--rel":
                    rel = float(rest[1])
                    rest = rest[2:]
                else:
                    raise ValidationError(f"unknown option {rest[0]!r}")
            with open(argv[2]) as f:
                sampled_text = f.read()
            with open(argv[3]) as f:
                full_text = f.read()
            n, rankings = validate_sampling_containment(
                sampled_text, full_text,
                metrics=tuple(metrics) or ("cycles",), slack=slack,
                rel=rel)
            print(f"sampling containment ok: {n} (run, metric) pairs "
                  f"inside the error bars, {rankings} resolved "
                  f"rankings consistent")
            return 0
    except ValidationError as e:
        print(f"ci_validate: {cmd}: {e}", file=sys.stderr)
        return 1
    except (OSError, IndexError) as e:
        print(f"ci_validate: {cmd}: {e}", file=sys.stderr)
        return 2
    print(f"ci_validate: unknown subcommand '{cmd}'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
