/**
 * @file
 * Pretty-printer for the metric time-series engine's JSON output.
 *
 * Input is either a single stats-JSON report (System::dumpStatsJson with
 * a "timeseries" section), a raw TimeSeriesEngine::toJson() object, or a
 * JSONL stream of per-run records ({"workload":...,"config":...,
 * "timeseries":{...}}) as written by run reports. "-" reads stdin.
 *
 * For each record the tool prints a per-metric summary table (count,
 * mean, standard deviation, lag-1 autocorrelation, batch layout, and
 * the batch-means confidence interval), an ASCII sparkline of each
 * metric's retained window, an over-time table sampling the window at
 * up to ten rows, and — when the run was convergence-bounded — the
 * ROWSIM_CONVERGE outcome.
 *
 * Standalone: parses JSON itself (no simulator linkage), so it also
 * works on reports produced by older or newer rowsim builds.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (same shape as span_report;
// kept separate so each tool stays a single self-contained file).
// ---------------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object } type = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }

    bool has(const std::string &key) const { return obj.count(key) != 0; }

    unsigned long long
    asU64() const
    {
        if (type == Number)
            return static_cast<unsigned long long>(num);
        if (type == String)
            return std::strtoull(str.c_str(), nullptr, 0);
        return 0;
    }

    double asDouble() const { return type == Number ? num : 0.0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", Json::Bool, true);
          case 'f': return literal("false", Json::Bool, false);
          case 'n': return literal("null", Json::Null, false);
          default: return number();
        }
    }

    Json
    literal(const char *word, Json::Type t, bool b)
    {
        if (s.compare(pos, std::strlen(word), word) != 0)
            fail("bad literal");
        pos += std::strlen(word);
        Json j;
        j.type = t;
        j.b = b;
        return j;
    }

    Json
    object()
    {
        Json j;
        j.type = Json::Object;
        expect('{');
        ws();
        if (peek() == '}') {
            pos++;
            return j;
        }
        while (true) {
            ws();
            Json key = string();
            ws();
            expect(':');
            j.obj[key.str] = value();
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    array()
    {
        Json j;
        j.type = Json::Array;
        expect('[');
        ws();
        if (peek() == ']') {
            pos++;
            return j;
        }
        while (true) {
            j.arr.push_back(value());
            ws();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return j;
        }
    }

    Json
    string()
    {
        Json j;
        j.type = Json::String;
        expect('"');
        while (true) {
            char c = peek();
            pos++;
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = peek();
                pos++;
                switch (e) {
                  case '"': j.str += '"'; break;
                  case '\\': j.str += '\\'; break;
                  case '/': j.str += '/'; break;
                  case 'n': j.str += '\n'; break;
                  case 't': j.str += '\t'; break;
                  case 'r': j.str += '\r'; break;
                  case 'u':
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    pos += 4;
                    j.str += '?';
                    break;
                  default: fail("bad escape");
                }
            } else {
                j.str += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            fail("expected number");
        Json j;
        j.type = Json::Number;
        j.num = std::strtod(s.substr(start, pos - start).c_str(), nullptr);
        return j;
    }

    const std::string &s;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

/** 60-column ASCII sparkline: each column is the mean of the points it
 *  covers, mapped to a 10-level density ramp over [min, max]. */
std::string
sparkline(const std::vector<double> &vals)
{
    constexpr int lane = 60;
    static const char ramp[] = " .:-=+*#%@";
    if (vals.empty())
        return std::string(lane, ' ');
    double lo = vals[0], hi = vals[0];
    for (double v : vals) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi - lo;
    std::string out;
    const int cols = std::min<int>(lane, static_cast<int>(vals.size()));
    for (int c = 0; c < cols; ++c) {
        const std::size_t a = vals.size() * c / cols;
        const std::size_t b =
            std::max(a + 1, vals.size() * (c + 1) / cols);
        double sum = 0;
        for (std::size_t i = a; i < b; ++i)
            sum += vals[i];
        const double mean = sum / static_cast<double>(b - a);
        const int level =
            span > 0 ? static_cast<int>(9.0 * (mean - lo) / span + 0.5)
                     : 0;
        out += ramp[std::clamp(level, 0, 9)];
    }
    return out;
}

void
printMetric(const std::string &name, const Json &m)
{
    const Json &ci = m.at("ci");
    std::printf("    %-18s %7llu %12.6g %12.6g %6.3f %4llux%-6llu",
                name.c_str(), m.at("count").asU64(),
                m.at("mean").asDouble(), m.at("stddev").asDouble(),
                m.at("lag1").asDouble(), m.at("batches").asU64(),
                m.at("batchSize").asU64());
    if (ci.at("valid").b) {
        const double rel = ci.at("rel").asDouble();
        std::printf("  [%.6g, %.6g]", ci.at("lo").asDouble(),
                    ci.at("hi").asDouble());
        if (std::isfinite(rel))
            std::printf("  ±%.2f%%", 100.0 * rel);
        std::printf("\n");
    } else {
        std::printf("  (CI needs ≥8 batches)\n");
    }
}

void
printOverTime(const Json &metrics)
{
    // Union of retained cycles (all metrics sample the same grid, but
    // stay defensive) sampled at up to ten rows.
    std::vector<double> cycles;
    for (const auto &kv : metrics.obj) {
        const Json &cyc = kv.second.at("points").at("cycles");
        for (const Json &c : cyc.arr)
            cycles.push_back(c.asDouble());
        break; // one metric fixes the grid
    }
    if (cycles.empty())
        return;
    std::printf("  Over time (window of %zu samples):\n", cycles.size());
    std::printf("    %12s", "cycle");
    for (const auto &kv : metrics.obj)
        std::printf(" %14s", kv.first.c_str());
    std::printf("\n");
    const std::size_t rows = std::min<std::size_t>(10, cycles.size());
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t i =
            rows == 1 ? 0 : (cycles.size() - 1) * r / (rows - 1);
        std::printf("    %12.0f", cycles[i]);
        for (const auto &kv : metrics.obj) {
            const Json &vals = kv.second.at("points").at("values");
            std::printf(" %14.6g",
                        i < vals.arr.size() ? vals.arr[i].asDouble() : 0.0);
        }
        std::printf("\n");
    }
}

/** Render one record: @p ts is the time-series object itself. */
void
report(const Json &ts, const std::string &label)
{
    const Json &metrics = ts.at("metrics");
    std::printf("=== %s (interval %llu cycles, window %llu samples) ===\n",
                label.c_str(), ts.at("period").asU64(),
                ts.at("window").asU64());
    std::printf("    %-18s %7s %12s %12s %6s %11s  %s\n", "metric",
                "count", "mean", "stddev", "lag1", "batches",
                "batch-means CI");
    for (const auto &kv : metrics.obj)
        printMetric(kv.first, kv.second);

    std::printf("  Sparklines (per-interval deltas, min→max):\n");
    for (const auto &kv : metrics.obj) {
        const Json &vals = kv.second.at("points").at("values");
        std::vector<double> v;
        v.reserve(vals.arr.size());
        for (const Json &x : vals.arr)
            v.push_back(x.asDouble());
        std::printf("    %-18s |%s|\n", kv.first.c_str(),
                    sparkline(v).c_str());
    }

    printOverTime(metrics);

    const Json &conv = ts.at("converge");
    if (conv.type == Json::Object) {
        const double achieved = conv.at("achieved").asDouble();
        std::printf("  Convergence: %s rel CI ≤ %.4g @%.0f%% -> %s "
                    "(achieved %.4g%s)\n",
                    conv.at("metric").str.c_str(),
                    conv.at("target").asDouble(),
                    100.0 * conv.at("confidence").asDouble(),
                    conv.at("converged").b
                        ? "converged" : "NOT converged",
                    achieved,
                    conv.at("converged").b
                        ? (" at cycle " +
                           std::to_string(conv.at("atCycle").asU64()))
                              .c_str()
                        : "");
    }
    std::printf("\n");
}

/** A record is either a wrapper with a "timeseries" member (stats
 *  report / JSONL run record) or a raw engine object (has "metrics"). */
bool
handleRecord(const Json &rec, unsigned index)
{
    const Json *ts = nullptr;
    std::string label;
    if (rec.has("timeseries") &&
        rec.at("timeseries").type == Json::Object) {
        ts = &rec.at("timeseries");
        if (rec.at("workload").type == Json::String)
            label = rec.at("workload").str;
        if (rec.at("config").type == Json::String)
            label += (label.empty() ? "" : "/") + rec.at("config").str;
    } else if (rec.has("metrics")) {
        ts = &rec;
    }
    if (!ts)
        return false;
    if (label.empty())
        label = "run" + std::to_string(index);
    report(*ts, label);
    return true;
}

std::string
readAll(const char *path)
{
    std::FILE *f =
        std::strcmp(path, "-") == 0 ? stdin : std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "ts_report: cannot open %s\n", path);
        std::exit(1);
    }
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    if (f != stdin)
        std::fclose(f);
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ts_report FILE|-\n"
        "  FILE: a stats JSON report (with a \"timeseries\" section), a\n"
        "        raw time-series engine JSON object, or a JSONL stream\n"
        "        of run records from a ROWSIM_TS / ROWSIM_CONVERGE run.\n"
        "        '-' reads stdin.\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        usage();
    const char *input = argv[1];

    const std::string text = readAll(input);
    unsigned rendered = 0, index = 0;

    // A whole-file parse handles pretty-printed stats reports; if that
    // fails the input is a JSONL stream — parse line by line.
    bool wholeFile = true;
    try {
        Json root = JsonParser(text).parse();
        if (handleRecord(root, index++))
            rendered++;
    } catch (const std::exception &) {
        wholeFile = false;
    }

    if (!wholeFile) {
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            std::string line = text.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            try {
                Json rec = JsonParser(line).parse();
                if (handleRecord(rec, index++))
                    rendered++;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "ts_report: skipping bad line: %s\n",
                             e.what());
            }
        }
    }

    if (!rendered) {
        std::fprintf(stderr,
                     "ts_report: no time-series records found in %s "
                     "(was the run executed with ROWSIM_TS=on or "
                     "ROWSIM_CONVERGE?)\n",
                     input);
        return 1;
    }
    return 0;
}
