/**
 * @file
 * Predictor ablations beyond the paper's main figures:
 *
 *  - update rules: UpDown vs Saturate-on-Contention vs the +2/-1 variant
 *    the paper evaluated and rejected (§IV-D);
 *  - table size: 64 / 16 / 4 / 1 entries — shrinking the XOR-indexed
 *    table aliases contended and uncontended atomics onto one counter,
 *    which §IV-D reports degrades the lazy-loving workloads back toward
 *    eager (1 entry: -0.3% vs eager on average).
 *
 * Run on a representative subset (one workload per behaviour class) to
 * keep the sweep fast.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

const std::vector<std::string> kSubset = {"canneal", "cq", "barnes",
                                          "streamcluster", "tpcc", "pc"};

void
updateRule(benchmark::State &state, PredictorUpdate upd)
{
    for (auto _ : state) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir, upd);
        double log_sum = 0;
        for (const auto &w : kSubset) {
            double n = normalised(w, cfg);
            table("Predictor ablation — update rule / table size "
                  "(normalized time)")
                .cell(w, cfg.label, n);
            log_sum += std::log(n);
        }
        double g = std::exp(log_sum / kSubset.size());
        state.counters["geomean"] = g;
        table().cell("geomean", cfg.label, g);
    }
}

void
tableSize(benchmark::State &state, unsigned entries)
{
    for (auto _ : state) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir,
                                  PredictorUpdate::SaturateOnContention);
        cfg.predictorEntries = entries;
        cfg.label = "Sat_" + std::to_string(entries) + "e";
        double log_sum = 0;
        for (const auto &w : kSubset) {
            double n = normalised(w, cfg);
            table().cell(w, cfg.label, n);
            log_sum += std::log(n);
        }
        double g = std::exp(log_sum / kSubset.size());
        state.counters["geomean"] = g;
        table().cell("geomean", cfg.label, g);
    }
}

void
detector(benchmark::State &state, ContentionDetector det)
{
    // RW vs RW+Dir (latency heuristic) vs RW+DirNotify (the explicit
    // directory-notification alternative §IV-C mentions and rejects).
    for (auto _ : state) {
        ExpConfig cfg = rowConfig(det,
                                  PredictorUpdate::SaturateOnContention);
        double log_sum = 0;
        for (const auto &w : kSubset) {
            double n = normalised(w, cfg);
            table().cell(w, cfg.label, n);
            log_sum += std::log(n);
        }
        double g = std::exp(log_sum / kSubset.size());
        state.counters["geomean"] = g;
        table().cell("geomean", cfg.label, g);
    }
}

const int registered = [] {
    for (const auto &w : kSubset)
        addPrewarm(w, eagerConfig());
    for (auto det : {ContentionDetector::RW, ContentionDetector::RWDir,
                     ContentionDetector::RWDirNotify}) {
        ExpConfig cfg = rowConfig(det,
                                  PredictorUpdate::SaturateOnContention);
        for (const auto &w : kSubset)
            addPrewarm(w, cfg);
        benchmark::RegisterBenchmark(
            ("ablation/detector/" + cfg.label).c_str(), detector, det)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    for (auto upd : {PredictorUpdate::UpDown,
                     PredictorUpdate::SaturateOnContention,
                     PredictorUpdate::TwoUpOneDown}) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir, upd);
        for (const auto &w : kSubset)
            addPrewarm(w, cfg);
        benchmark::RegisterBenchmark(
            ("ablation/update/" + cfg.label).c_str(), updateRule, upd)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    for (unsigned entries : {64u, 16u, 4u, 1u}) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir,
                                  PredictorUpdate::SaturateOnContention);
        cfg.predictorEntries = entries;
        cfg.label = "Sat_" + std::to_string(entries) + "e";
        for (const auto &w : kSubset)
            addPrewarm(w, cfg);
        benchmark::RegisterBenchmark(
            ("ablation/entries/" + std::to_string(entries)).c_str(),
            tableSize, entries)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
