/**
 * @file
 * Fig. 1: normalized execution time of lazy vs eager execution of
 * unfenced atomic RMWs, over the atomic-intensive workloads in the
 * paper's order (best -> worst eager-vs-lazy speedup).
 *
 * Paper shape: canneal/freqmine ~1.4-1.7 (eager wins big), the middle of
 * the field near 1.0, and tpcc/sps/pc well below 1 (lazy wins ~2x).
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
lazyVsEager(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &eager = cachedRun(workload, eagerConfig());
        const RunResult &lazy = cachedRun(workload, lazyConfig());
        state.counters["eager_cycles"] =
            static_cast<double>(eager.cycles);
        state.counters["lazy_cycles"] = static_cast<double>(lazy.cycles);
        const double norm = static_cast<double>(lazy.cycles) /
                            static_cast<double>(eager.cycles);
        state.counters["lazy_norm"] = norm;
        table("Fig. 1 — normalized execution time (lazy vs eager)")
            .cell(workload, "eager", 1.0);
        table().cell(workload, "lazy", norm);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        addPrewarm(w, lazyConfig());
        benchmark::RegisterBenchmark(("fig01/" + w).c_str(), lazyVsEager,
                                     w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
