/**
 * @file
 * Fig. 2: cycles per iteration of the §II-A microbenchmark — FAA / CAS /
 * SWAP, with and without the lock prefix and explicit mfences, on the
 * "old" (fenced, Kentsfield-like) and "new" (unfenced, Coffee-Lake-like)
 * simulated microarchitectures.
 *
 * Paper shape: old core — adding the lock prefix ~doubles (here: fences)
 * the cost and an extra mfence changes nothing; new core — the lock
 * prefix is nearly free while mfences serialise everything. SWAP behaves
 * locked in all variants (x86 xchg rule).
 */

#include "bench/bench_common.hh"
#include "sim/microbench.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
micro(benchmark::State &state, MicrobenchVariant v)
{
    for (auto _ : state) {
        const double cpi = microbenchCyclesPerIter(v, 1500);
        state.counters["cycles_per_iter"] = cpi;
        std::string row = std::string(v.oldCore ? "old" : "new") + "/" +
                          rmwKindName(v.kind);
        std::string col = std::string(v.lockPrefix ? "lock" : "plain") +
                          (v.mfence ? "+mfence" : "");
        table("Fig. 2 — microbenchmark cycles per iteration")
            .cell(row, col, cpi);
    }
}

const int registered = [] {
    for (bool old_core : {true, false}) {
        for (RmwKind k : {RmwKind::FAA, RmwKind::CAS, RmwKind::SWAP}) {
            for (bool lock : {false, true}) {
                for (bool mfence : {false, true}) {
                    MicrobenchVariant v;
                    v.kind = k;
                    v.lockPrefix = lock;
                    v.mfence = mfence;
                    v.oldCore = old_core;
                    std::string name =
                        std::string("fig02/") +
                        (old_core ? "old" : "new") + "/" +
                        rmwKindName(k) + (lock ? "/lock" : "/plain") +
                        (mfence ? "/mfence" : "");
                    benchmark::RegisterBenchmark(name.c_str(), micro, v)
                        ->Unit(benchmark::kMillisecond)
                        ->Iterations(1);
                }
            }
        }
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
