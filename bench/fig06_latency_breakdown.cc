/**
 * @file
 * Fig. 6: atomic-instruction latency from dispatch to write, broken into
 * dispatch->issue, issue->lock, and lock->unlock, for eager (1st bar)
 * and lazy (2nd bar) execution.
 *
 * Paper shape: lazy trades a larger blue segment (waiting to become the
 * oldest memory instruction with an empty SB) for much smaller orange
 * (acquisition) and yellow (lock-held) segments; on contended workloads
 * the eager issue->lock segment explodes.
 *
 * Runs with the "pcs" profile category on so the per-phase histograms
 * exist, and reports the tail (p50/p90/p99) of the acquisition phase
 * alongside the means — contention shows up in the tail long before it
 * moves the mean.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

/** The fig06 bars run profiled; the label suffix keeps the run cache
 *  (bench_common) from conflating them with unprofiled runs of the
 *  same workload elsewhere in the suite. */
ExpConfig
profiled(ExpConfig c)
{
    c.label += "+prof";
    c.profile = "pcs";
    return c;
}

void
breakdown(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &e = cachedRun(workload, profiled(eagerConfig()));
        const RunResult &l = cachedRun(workload, profiled(lazyConfig()));
        state.counters["eager_d2i"] = e.dispatchToIssue;
        state.counters["eager_i2l"] = e.issueToLock;
        state.counters["eager_l2u"] = e.lockToUnlock;
        state.counters["eager_i2l_p99"] = e.issueToLockP99;
        state.counters["lazy_d2i"] = l.dispatchToIssue;
        state.counters["lazy_i2l"] = l.issueToLock;
        state.counters["lazy_l2u"] = l.lockToUnlock;
        state.counters["lazy_i2l_p99"] = l.issueToLockP99;
        auto &t = table("Fig. 6 — atomic latency breakdown (cycles)");
        t.cell(workload, "E:disp->iss", e.dispatchToIssue);
        t.cell(workload, "E:iss->lock", e.issueToLock);
        t.cell(workload, "E:lock->unl", e.lockToUnlock);
        t.cell(workload, "L:disp->iss", l.dispatchToIssue);
        t.cell(workload, "L:iss->lock", l.issueToLock);
        t.cell(workload, "L:lock->unl", l.lockToUnlock);
        auto &p = table("Fig. 6 — acquisition tail (issue->lock cycles)");
        p.cell(workload, "E:p50", e.issueToLockP50);
        p.cell(workload, "E:p90", e.issueToLockP90);
        p.cell(workload, "E:p99", e.issueToLockP99);
        p.cell(workload, "L:p50", l.issueToLockP50);
        p.cell(workload, "L:p90", l.issueToLockP90);
        p.cell(workload, "L:p99", l.issueToLockP99);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, profiled(eagerConfig()));
        addPrewarm(w, profiled(lazyConfig()));
        benchmark::RegisterBenchmark(("fig06/" + w).c_str(), breakdown, w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
