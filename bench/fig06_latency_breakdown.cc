/**
 * @file
 * Fig. 6: atomic-instruction latency from dispatch to write, broken into
 * dispatch->issue, issue->lock, and lock->unlock, for eager (1st bar)
 * and lazy (2nd bar) execution.
 *
 * Paper shape: lazy trades a larger blue segment (waiting to become the
 * oldest memory instruction with an empty SB) for much smaller orange
 * (acquisition) and yellow (lock-held) segments; on contended workloads
 * the eager issue->lock segment explodes.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
breakdown(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &e = cachedRun(workload, eagerConfig());
        const RunResult &l = cachedRun(workload, lazyConfig());
        state.counters["eager_d2i"] = e.dispatchToIssue;
        state.counters["eager_i2l"] = e.issueToLock;
        state.counters["eager_l2u"] = e.lockToUnlock;
        state.counters["lazy_d2i"] = l.dispatchToIssue;
        state.counters["lazy_i2l"] = l.issueToLock;
        state.counters["lazy_l2u"] = l.lockToUnlock;
        auto &t = table("Fig. 6 — atomic latency breakdown (cycles)");
        t.cell(workload, "E:disp->iss", e.dispatchToIssue);
        t.cell(workload, "E:iss->lock", e.issueToLock);
        t.cell(workload, "E:lock->unl", e.lockToUnlock);
        t.cell(workload, "L:disp->iss", l.dispatchToIssue);
        t.cell(workload, "L:iss->lock", l.issueToLock);
        t.cell(workload, "L:lock->unl", l.lockToUnlock);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        addPrewarm(w, lazyConfig());
        benchmark::RegisterBenchmark(("fig06/" + w).c_str(), breakdown, w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
