/**
 * @file
 * Fig. 12: accuracy of the contention prediction — how often the U/D and
 * Sat predictors' calls agree with what the RW+Dir detector subsequently
 * observes for that atomic.
 *
 * Paper shape: U/D is the more accurate predictor (~86% vs ~73%); the
 * Sat predictor over-commits to "contended" on workloads whose atomics
 * are only intermittently contended, which costs accuracy but not
 * necessarily performance.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
accuracy(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &ud = cachedRun(
            workload,
            rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown));
        const RunResult &sat = cachedRun(
            workload, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::SaturateOnContention));
        state.counters["ud_accuracy_pct"] = ud.predAccuracy;
        state.counters["sat_accuracy_pct"] = sat.predAccuracy;
        table("Fig. 12 — contention-prediction accuracy (%)")
            .cell(workload, "U/D", ud.predAccuracy);
        table().cell(workload, "Sat", sat.predAccuracy);
    }
}

void
average(benchmark::State &state)
{
    for (auto _ : state) {
        double ud = 0, sat = 0;
        unsigned n = 0;
        for (const auto &w : atomicIntensiveWorkloads()) {
            ud += cachedRun(w, rowConfig(ContentionDetector::RWDir,
                                         PredictorUpdate::UpDown))
                      .predAccuracy;
            sat += cachedRun(w,
                             rowConfig(
                                 ContentionDetector::RWDir,
                                 PredictorUpdate::SaturateOnContention))
                       .predAccuracy;
            n++;
        }
        state.counters["ud_mean"] = ud / n;
        state.counters["sat_mean"] = sat / n;
        table().cell("average", "U/D", ud / n);
        table().cell("average", "Sat", sat / n);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::UpDown));
        addPrewarm(w, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::SaturateOnContention));
        benchmark::RegisterBenchmark(("fig12/" + w).c_str(), accuracy, w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    benchmark::RegisterBenchmark("fig12/average", average)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
