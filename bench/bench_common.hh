/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Every bench binary regenerates one table/figure of the paper: it runs
 * the required (workload, config) simulations through google-benchmark
 * (one benchmark per bar/point, Iterations(1), simulated metrics exposed
 * as counters) and then prints the figure's rows in paper order.
 *
 * Simulations are memoized per process so a baseline shared by many bars
 * (e.g. eager) runs once.
 */

#ifndef ROWSIM_BENCH_COMMON_HH
#define ROWSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"

namespace rowsim::bench
{

/** Memoized experiment execution (keyed by workload + config label). */
inline const RunResult &
cachedRun(const std::string &workload, const ExpConfig &cfg,
          unsigned cores = 32, std::uint64_t quota = 0)
{
    static std::map<std::string, RunResult> cache;
    std::string key = workload + "|" + cfg.label + "|" +
                      std::to_string(cores) + "|" + std::to_string(quota);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, runExperiment(workload, cfg, cores,
                                              quota)).first;
    return it->second;
}

/** Normalised execution time vs the eager-no-forwarding baseline, the
 *  normalisation every figure in the paper uses. */
inline double
normalised(const std::string &workload, const ExpConfig &cfg,
           unsigned cores = 32)
{
    const RunResult &base = cachedRun(workload, eagerConfig(), cores);
    const RunResult &r = cachedRun(workload, cfg, cores);
    return static_cast<double>(r.cycles) / static_cast<double>(base.cycles);
}

/** Row collector: benchmarks append cells; main() prints the table. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void
    cell(const std::string &row, const std::string &col, double value)
    {
        cols_.insert({col, cols_.size()});
        rows_.insert({row, rows_.size()});
        values_[{row, col}] = value;
    }

    void
    print() const
    {
        std::vector<std::string> cols(cols_.size()), rows(rows_.size());
        for (const auto &kv : cols_)
            cols[kv.second] = kv.first;
        for (const auto &kv : rows_)
            rows[kv.second] = kv.first;

        std::printf("\n=== %s ===\n%-15s", title_.c_str(), "");
        for (const auto &c : cols)
            std::printf(" %12s", c.c_str());
        std::printf("\n");
        for (const auto &r : rows) {
            std::printf("%-15s", r.c_str());
            for (const auto &c : cols) {
                auto it = values_.find({r, c});
                if (it == values_.end())
                    std::printf(" %12s", "-");
                else
                    std::printf(" %12.3f", it->second);
            }
            std::printf("\n");
        }
        std::fflush(stdout);
    }

  private:
    std::string title_;
    std::map<std::string, std::size_t> cols_;
    std::map<std::string, std::size_t> rows_;
    std::map<std::pair<std::string, std::string>, double> values_;
};

inline Table &
table(const char *title = "")
{
    static Table t(title);
    return t;
}

/** Geometric mean over the atomic-intensive workloads of a metric. */
inline double
geomean(const std::function<double(const std::string &)> &metric)
{
    double log_sum = 0;
    unsigned n = 0;
    for (const auto &w : atomicIntensiveWorkloads()) {
        log_sum += std::log(metric(w));
        n++;
    }
    return std::exp(log_sum / n);
}

/** Standard main: run benchmarks, then print the collected table. */
#define ROWSIM_BENCH_MAIN()                                              \
    int main(int argc, char **argv)                                      \
    {                                                                    \
        ::benchmark::Initialize(&argc, argv);                            \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        ::rowsim::bench::table().print();                                \
        ::benchmark::Shutdown();                                         \
        return 0;                                                        \
    }

} // namespace rowsim::bench

#endif // ROWSIM_BENCH_COMMON_HH
