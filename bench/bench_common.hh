/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Every bench binary regenerates one table/figure of the paper: it runs
 * the required (workload, config) simulations through google-benchmark
 * (one benchmark per bar/point, Iterations(1), simulated metrics exposed
 * as counters) and then prints the figure's rows in paper order.
 *
 * Simulations are memoized per process so a baseline shared by many bars
 * (e.g. eager) runs once.
 *
 * Drivers additionally register their full (workload, config) set as
 * prewarm jobs at static-init time; ROWSIM_BENCH_MAIN then fills the
 * memo cache through the parallel SweepEngine before google-benchmark
 * starts, so the per-benchmark bodies only read memoized results.
 * Results are bit-identical to on-demand serial runs (the engine's
 * determinism contract), and filtered invocations skip the prewarm.
 */

#ifndef ROWSIM_BENCH_COMMON_HH
#define ROWSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/sweep.hh"

namespace rowsim::bench
{

/** Memo-cache key: everything runExperiment's result depends on. */
inline std::string
runKey(const std::string &workload, const std::string &label,
       unsigned cores, std::uint64_t quota)
{
    return workload + "|" + label + "|" + std::to_string(cores) + "|" +
           std::to_string(quota);
}

/** Process-wide memoized results (filled by prewarm and on demand). */
inline std::map<std::string, RunResult> &
runCache()
{
    static std::map<std::string, RunResult> cache;
    return cache;
}

/** Memoized experiment execution (keyed by workload + config label). */
inline const RunResult &
cachedRun(const std::string &workload, const ExpConfig &cfg,
          unsigned cores = 32, std::uint64_t quota = 0)
{
    auto &cache = runCache();
    std::string key = runKey(workload, cfg.label, cores, quota);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, runExperiment(workload, cfg, cores,
                                              quota)).first;
    return it->second;
}

/** Prewarm job list + key set (dedup against shared baselines). */
inline std::pair<std::vector<SweepJob>, std::set<std::string>> &
prewarmRegistry()
{
    static std::pair<std::vector<SweepJob>, std::set<std::string>> reg;
    return reg;
}

/** Register one (workload, config) pair for the pre-benchmark sweep.
 *  Call from the driver's registration block, next to
 *  RegisterBenchmark. Duplicate keys collapse to one job. */
inline void
addPrewarm(const std::string &workload, const ExpConfig &cfg,
           unsigned cores = 32, std::uint64_t quota = 0)
{
    auto &reg = prewarmRegistry();
    if (!reg.second.insert(runKey(workload, cfg.label, cores,
                                  quota)).second)
        return;
    SweepJob job;
    job.workload = workload;
    job.cfg = cfg;
    job.numCores = cores;
    job.quota = quota;
    reg.first.push_back(std::move(job));
}

/** Run every registered prewarm job through the SweepEngine and move
 *  the results into the memo cache. Skipped under --benchmark_filter /
 *  --benchmark_list_tests: partial invocations should only pay for the
 *  simulations they actually touch (cachedRun falls back to on-demand
 *  serial runs, which produce identical results). */
inline void
runPrewarm(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--benchmark_filter", 0) == 0 ||
            arg.rfind("--benchmark_list_tests", 0) == 0)
            return;
    }
    const auto &jobs = prewarmRegistry().first;
    if (jobs.empty())
        return;
    std::vector<RunResult> results = runSweep(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Never memoize a failed run: cachedRun falls back to an
        // on-demand serial run, which surfaces the real error to the
        // user instead of silently rendering a figure from garbage.
        if (!results[i].ok())
            continue;
        runCache().emplace(runKey(jobs[i].workload, jobs[i].cfg.label,
                                  jobs[i].numCores, jobs[i].quota),
                           std::move(results[i]));
    }
}

/** Normalised execution time vs the eager-no-forwarding baseline, the
 *  normalisation every figure in the paper uses. */
inline double
normalised(const std::string &workload, const ExpConfig &cfg,
           unsigned cores = 32)
{
    const RunResult &base = cachedRun(workload, eagerConfig(), cores);
    const RunResult &r = cachedRun(workload, cfg, cores);
    return static_cast<double>(r.cycles) / static_cast<double>(base.cycles);
}

/** Row collector: benchmarks append cells; main() prints the table. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void
    cell(const std::string &row, const std::string &col, double value)
    {
        cols_.insert({col, cols_.size()});
        rows_.insert({row, rows_.size()});
        values_[{row, col}] = value;
    }

    void
    print() const
    {
        std::vector<std::string> cols(cols_.size()), rows(rows_.size());
        for (const auto &kv : cols_)
            cols[kv.second] = kv.first;
        for (const auto &kv : rows_)
            rows[kv.second] = kv.first;

        std::printf("\n=== %s ===\n%-15s", title_.c_str(), "");
        for (const auto &c : cols)
            std::printf(" %12s", c.c_str());
        std::printf("\n");
        for (const auto &r : rows) {
            std::printf("%-15s", r.c_str());
            for (const auto &c : cols) {
                auto it = values_.find({r, c});
                if (it == values_.end())
                    std::printf(" %12s", "-");
                else
                    std::printf(" %12.3f", it->second);
            }
            std::printf("\n");
        }
        std::fflush(stdout);
    }

  private:
    std::string title_;
    std::map<std::string, std::size_t> cols_;
    std::map<std::string, std::size_t> rows_;
    std::map<std::pair<std::string, std::string>, double> values_;
};

inline Table &
table(const char *title = "")
{
    static Table t(title);
    return t;
}

/** Geometric mean over the atomic-intensive workloads of a metric. */
inline double
geomean(const std::function<double(const std::string &)> &metric)
{
    double log_sum = 0;
    unsigned n = 0;
    for (const auto &w : atomicIntensiveWorkloads()) {
        log_sum += std::log(metric(w));
        n++;
    }
    return std::exp(log_sum / n);
}

/** Standard main: prewarm the memo cache through the parallel sweep
 *  engine, run benchmarks, then print the collected table. Prewarm runs
 *  before Initialize so the filter/list flags are still in argv. */
#define ROWSIM_BENCH_MAIN()                                              \
    int main(int argc, char **argv)                                      \
    {                                                                    \
        ::rowsim::bench::runPrewarm(argc, argv);                         \
        ::benchmark::Initialize(&argc, argv);                            \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        ::rowsim::bench::table().print();                                \
        ::benchmark::Shutdown();                                         \
        return 0;                                                        \
    }

} // namespace rowsim::bench

#endif // ROWSIM_BENCH_COMMON_HH
