/**
 * @file
 * Fig. 11: average L1D miss latency over all memory instructions for
 * eager, lazy, and RoW with the RW+Dir U/D and Sat predictors.
 *
 * Paper shape: on the contended workloads (pc, sps, tpcc) eager nearly
 * doubles the miss latency of lazy — the cost other threads pay for long
 * cache locks — and RoW tracks lazy; on uncontended workloads the four
 * bars are nearly equal; on cq/barnes, lazy and RoW-without-forwarding
 * pay extra latency from the lost atomic locality.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
missLatency(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &e = cachedRun(workload, eagerConfig());
        const RunResult &l = cachedRun(workload, lazyConfig());
        const RunResult &ud = cachedRun(
            workload,
            rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown));
        const RunResult &sat = cachedRun(
            workload, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::SaturateOnContention));
        state.counters["eager"] = e.missLatency;
        state.counters["lazy"] = l.missLatency;
        state.counters["row_ud"] = ud.missLatency;
        state.counters["row_sat"] = sat.missLatency;
        auto &t = table("Fig. 11 — L1D miss latency (cycles)");
        t.cell(workload, "eager", e.missLatency);
        t.cell(workload, "lazy", l.missLatency);
        t.cell(workload, "RW+Dir_U/D", ud.missLatency);
        t.cell(workload, "RW+Dir_Sat", sat.missLatency);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        addPrewarm(w, lazyConfig());
        addPrewarm(w, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::UpDown));
        addPrewarm(w, rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::SaturateOnContention));
        benchmark::RegisterBenchmark(("fig11/" + w).c_str(), missLatency,
                                     w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
