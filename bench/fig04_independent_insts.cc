/**
 * @file
 * Fig. 4: number of independent instructions with respect to eager and
 * lazy atomics — (a) instructions OLDER than the atomic not yet executed
 * when it issues eagerly (execution the atomic can hide under), and (b)
 * instructions YOUNGER than the atomic already started when it issues
 * lazily (speculation lazy execution does not prevent).
 *
 * Paper shape: ~48 older-unexecuted on average; tpcc/sps/pc start 50+
 * younger instructions under lazy, streamcluster/raytrace very few.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
independents(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &eager = cachedRun(workload, eagerConfig());
        const RunResult &lazy = cachedRun(workload, lazyConfig());
        state.counters["older_unexecuted_eager"] = eager.olderUnexecuted;
        state.counters["younger_started_lazy"] = lazy.youngerStarted;
        table("Fig. 4 — independent instructions around atomics")
            .cell(workload, "older@eager", eager.olderUnexecuted);
        table().cell(workload, "younger@lazy", lazy.youngerStarted);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        addPrewarm(w, lazyConfig());
        benchmark::RegisterBenchmark(("fig04/" + w).c_str(), independents,
                                     w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
