/**
 * @file
 * Fig. 10: sensitivity of the RW+Dir contention-detection mechanism to
 * the remote-fill latency threshold (0, 100, 400, 1000, 2000, inf).
 *
 * Paper shape: very flat — the mechanism rides on top of RW. Threshold 0
 * taxes atomic-intensive uncontended apps (every remote fill looks
 * contended); infinity degrades to plain RW; 400 is the sweet spot and
 * anything in [400, 2000] is nearly indistinguishable.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

constexpr Cycle kThresholds[] = {0, 100, 400, 1000, 2000,
                                 16000 /* ~inf for 14-bit timestamps */};

std::string
thresholdName(Cycle t)
{
    return t >= 16000 ? "inf" : std::to_string(t);
}

void
sweep(benchmark::State &state, const std::string &workload, Cycle thresh)
{
    for (auto _ : state) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir,
                                  PredictorUpdate::SaturateOnContention);
        cfg.latencyThreshold = thresh;
        cfg.label = "thr_" + thresholdName(thresh);
        const double norm = normalised(workload, cfg);
        state.counters["norm_time"] = norm;
        table("Fig. 10 — RW+Dir latency-threshold sensitivity")
            .cell(workload, thresholdName(thresh), norm);
    }
}

void
summary(benchmark::State &state)
{
    for (auto _ : state) {
        for (Cycle t : kThresholds) {
            ExpConfig cfg = rowConfig(
                ContentionDetector::RWDir,
                PredictorUpdate::SaturateOnContention);
            cfg.latencyThreshold = t;
            cfg.label = "thr_" + thresholdName(t);
            double g = geomean([&](const std::string &w) {
                return normalised(w, cfg);
            });
            state.counters[thresholdName(t)] = g;
            table().cell("geomean", thresholdName(t), g);
        }
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        for (Cycle t : kThresholds) {
            ExpConfig cfg = rowConfig(
                ContentionDetector::RWDir,
                PredictorUpdate::SaturateOnContention);
            cfg.latencyThreshold = t;
            cfg.label = "thr_" + thresholdName(t);
            addPrewarm(w, cfg);
            std::string name = "fig10/" + w + "/thr_" + thresholdName(t);
            benchmark::RegisterBenchmark(name.c_str(), sweep, w, t)
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
    benchmark::RegisterBenchmark("fig10/geomean", summary)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
