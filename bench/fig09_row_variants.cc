/**
 * @file
 * Fig. 9: normalized execution time of the RoW variants — the EW, RW and
 * RW+Dir contention-detection mechanisms paired with the UpDown (U/D) and
 * Saturate-on-Contention (Sat) predictors — against eager and lazy
 * execution. Forwarding to atomics disabled, as in the paper.
 *
 * Paper shape: EW fails on the contended workloads; RW fixes them;
 * RW+Dir adds a little more (tpcc, streamcluster, sps); RW+Dir_Sat is the
 * best on average, cutting eager by ~7% and lazy by ~6%.
 *
 * Also reproduces the §IV-D ablation: a 1-entry predictor degrades to
 * roughly eager performance on mixed workloads.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
variant(benchmark::State &state, const std::string &workload,
        ExpConfig cfg)
{
    for (auto _ : state) {
        const double norm = normalised(workload, cfg);
        state.counters["norm_time"] = norm;
        table("Fig. 9 — RoW variants, normalized execution time "
              "(no forwarding)")
            .cell(workload, cfg.label, norm);
    }
}

void
summary(benchmark::State &state)
{
    for (auto _ : state) {
        for (const auto &cfg : fig9Configs()) {
            double g = geomean([&](const std::string &w) {
                return normalised(w, cfg);
            });
            state.counters[cfg.label] = g;
            table().cell("geomean", cfg.label, g);
        }
    }
}

void
singleEntryAblation(benchmark::State &state)
{
    // §IV-D: "Using a single predictor entry for all atomics causes a
    // performance degradation by 0.3% on average compared to eager."
    for (auto _ : state) {
        ExpConfig cfg = rowConfig(ContentionDetector::RWDir,
                                  PredictorUpdate::SaturateOnContention);
        cfg.predictorEntries = 1;
        cfg.label = "RW+Dir_Sat_1entry";
        double g = geomean([&](const std::string &w) {
            return normalised(w, cfg);
        });
        state.counters["geomean_norm"] = g;
        table().cell("geomean", "1-entry", g);
    }
}

const int registered = [] {
    ExpConfig oneEntry = rowConfig(ContentionDetector::RWDir,
                                   PredictorUpdate::SaturateOnContention);
    oneEntry.predictorEntries = 1;
    oneEntry.label = "RW+Dir_Sat_1entry";
    for (const auto &w : atomicIntensiveWorkloads()) {
        for (const auto &cfg : fig9Configs()) {
            addPrewarm(w, cfg);
            std::string name = "fig09/" + w + "/" + cfg.label;
            benchmark::RegisterBenchmark(name.c_str(), variant, w, cfg)
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
        addPrewarm(w, oneEntry);
    }
    benchmark::RegisterBenchmark("fig09/geomean", summary)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig09/ablation/single_entry_predictor",
                                 singleEntryAblation)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
