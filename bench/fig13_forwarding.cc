/**
 * @file
 * Fig. 13: normalized execution time with store-to-atomic forwarding —
 * lazy, eager+fwd, and the RW+Dir RoW variants with and without
 * forwarding + the §IV-E locality promotion. Everything is normalized to
 * eager WITHOUT forwarding, as in the paper.
 *
 * Paper shape: eager+fwd is slightly better than eager (cq, tatp have
 * the most forwarded atomics); RoW without forwarding loses the locality
 * workloads (cq); with forwarding + promotion RoW recovers them and
 * posts the best overall number (9.2% below eager, 8.5% below lazy).
 * The final row reproduces the §VI "all applications" average (+4.0%
 * over eager across atomic-intensive AND quiet workloads).
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

std::vector<ExpConfig>
configs()
{
    return {
        lazyConfig(),
        eagerConfig(true),
        rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown,
                  false),
        rowConfig(ContentionDetector::RWDir, PredictorUpdate::UpDown,
                  true),
        rowConfig(ContentionDetector::RWDir,
                  PredictorUpdate::SaturateOnContention, false),
        rowConfig(ContentionDetector::RWDir,
                  PredictorUpdate::SaturateOnContention, true),
    };
}

void
variant(benchmark::State &state, const std::string &workload,
        ExpConfig cfg)
{
    for (auto _ : state) {
        const double norm = normalised(workload, cfg);
        const RunResult &r = cachedRun(workload, cfg);
        state.counters["norm_time"] = norm;
        state.counters["forwarded"] =
            static_cast<double>(r.atomicsForwarded);
        state.counters["promoted"] =
            static_cast<double>(r.atomicsPromoted);
        table("Fig. 13 — forwarding to atomics, normalized time")
            .cell(workload, cfg.label, norm);
    }
}

void
geomeanRow(benchmark::State &state)
{
    for (auto _ : state) {
        for (const auto &cfg : configs()) {
            double g = geomean([&](const std::string &w) {
                return normalised(w, cfg);
            });
            state.counters[cfg.label] = g;
            table().cell("geomean", cfg.label, g);
        }
    }
}

void
allApplications(benchmark::State &state)
{
    // §VI: including the synchronisation-poor applications, RoW+fwd
    // still improves on all-eager by ~4%.
    for (auto _ : state) {
        ExpConfig best = rowConfig(ContentionDetector::RWDir,
                                   PredictorUpdate::UpDown, true);
        double log_sum = 0;
        unsigned n = 0;
        for (const auto &w : allWorkloads()) {
            log_sum += std::log(normalised(w, best));
            n++;
        }
        double g = std::exp(log_sum / n);
        state.counters["all_apps_norm"] = g;
        table().cell("all-apps geomean", best.label, g);
    }
}

const int registered = [] {
    ExpConfig best = rowConfig(ContentionDetector::RWDir,
                               PredictorUpdate::UpDown, true);
    for (const auto &w : allWorkloads()) {
        addPrewarm(w, eagerConfig());
        addPrewarm(w, best);
    }
    for (const auto &w : atomicIntensiveWorkloads()) {
        for (const auto &cfg : configs()) {
            addPrewarm(w, cfg);
            std::string name = "fig13/" + w + "/" + cfg.label;
            benchmark::RegisterBenchmark(name.c_str(), variant, w, cfg)
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
    benchmark::RegisterBenchmark("fig13/geomean", geomeanRow)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("fig13/all_applications",
                                 allApplications)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
