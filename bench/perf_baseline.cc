/**
 * @file
 * Simulator-throughput baseline: time one representative eager run per
 * atomic-intensive workload and emit BENCH_perf.json with
 * {sim_cycles, wall_ms, cycles_per_sec} plus host metadata.
 *
 * This measures the SIMULATOR, not the simulated machine — sim_cycles
 * must be bit-stable across commits (it is a simulated result), while
 * wall_ms / cycles_per_sec track the hot-path cost and are expected to
 * move. CI only checks the schema; the committed file documents the
 * throughput at the commit that produced it.
 *
 * The output file is a history: a JSON array of run entries, appended
 * to on every invocation (so regressions are visible as a series, not
 * just a point). A legacy single-object file is wrapped into a
 * one-entry array before appending.
 *
 * Usage: perf_baseline [output.json [quota [workload ...]]]
 *   output.json  history file (default BENCH_perf.json)
 *   quota        per-core iteration quota (0 = workload default).
 *                The sampled-speedup CI gate needs a quota long enough
 *                for the SMARTS windows to amortize (speedup is bounded
 *                by quota / (n_ckpts x (warm + detail)) — at default
 *                quotas sampling cannot win).
 *   workload...  subset to measure (default: atomicIntensiveWorkloads)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"

using namespace rowsim;

namespace
{

struct Sample
{
    std::string workload;
    std::uint64_t simCycles = 0;
    double wallMs = 0;
    double cyclesPerSec = 0;
};

Sample
measure(const std::string &workload, std::uint64_t quota)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    RunResult r = runExperiment(workload, eagerConfig(), 32, quota);
    const auto t1 = clock::now();

    Sample s;
    s.workload = workload;
    s.simCycles = r.cycles;
    s.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    s.cyclesPerSec = s.wallMs > 0
                         ? static_cast<double>(r.cycles) * 1e3 / s.wallMs
                         : 0;
    return s;
}

/** Render one history entry (two-space-indented, no trailing newline). */
std::string
renderEntry(const std::vector<Sample> &samples, std::uint64_t quota)
{
    std::string e = "  {\n    \"host\": {\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "      \"hardware_concurrency\": %u,\n",
                  std::thread::hardware_concurrency());
    e += buf;
    const char *ff = std::getenv("ROWSIM_FF");
    std::snprintf(buf, sizeof(buf), "      \"fast_forward\": \"%s\",\n",
                  ff && *ff ? ff : "default-on");
    e += buf;
    const char *prof = std::getenv("ROWSIM_PROFILE");
    std::snprintf(buf, sizeof(buf), "      \"profile\": \"%s\",\n",
                  prof && *prof ? prof : "off");
    e += buf;
    const char *spans = std::getenv("ROWSIM_SPANS");
    std::snprintf(buf, sizeof(buf), "      \"spans\": \"%s\",\n",
                  spans && *spans ? spans : "off");
    e += buf;
    // Warmup-checkpoint mode (ROWSIM_CKPT): sim_cycles stays bit-stable
    // across modes by construction; wall_ms is expected to drop on
    // checkpoint-restored runs, and this field says which is which.
    const char *ckpt = std::getenv("ROWSIM_CKPT");
    std::snprintf(buf, sizeof(buf), "      \"ckpt\": \"%s\",\n",
                  ckpt && *ckpt ? ckpt : "off");
    e += buf;
    // Result-store mode (ROWSIM_RESULTS): a warm run served from the
    // store reports the same bit-stable sim_cycles with a far lower
    // wall_ms; this field keeps cold and warm entries tellable apart.
    const char *results = std::getenv("ROWSIM_RESULTS");
    std::snprintf(buf, sizeof(buf), "      \"results\": \"%s\",\n",
                  results && *results ? results : "off");
    e += buf;
    // Execution mode (ROWSIM_MODE) and sampling layout (ROWSIM_SAMPLE):
    // func and sampled runs legitimately report different sim_cycles
    // than detail (the former counts functional bookkeeping ticks, the
    // latter an extrapolated estimate), so the stability check groups
    // history entries by these two fields — the detail/func/sampled
    // perf triple lives in one file without tripping it.
    const char *mode = std::getenv("ROWSIM_MODE");
    std::snprintf(buf, sizeof(buf), "      \"mode\": \"%s\",\n",
                  mode && *mode ? mode : "detail");
    e += buf;
    const char *sample = std::getenv("ROWSIM_SAMPLE");
    std::snprintf(buf, sizeof(buf), "      \"sampled\": \"%s\",\n",
                  sample && *sample ? sample : "off");
    e += buf;
    // The iteration quota changes sim_cycles legitimately (longer run),
    // so the stability check also groups on it.
    if (quota)
        std::snprintf(buf, sizeof(buf), "      \"quota\": \"%llu\",\n",
                      static_cast<unsigned long long>(quota));
    else
        std::snprintf(buf, sizeof(buf),
                      "      \"quota\": \"default\",\n");
    e += buf;
    // Live telemetry (ROWSIM_TS / ROWSIM_HEARTBEAT): the time-series
    // engine samples every stats interval and the heartbeat writes
    // progress lines. Neither may move sim_cycles; the wall_ms delta
    // between an off/on entry pair is the probe overhead.
    const char *ts = std::getenv("ROWSIM_TS");
    const char *hb = std::getenv("ROWSIM_HEARTBEAT");
    const char *telemetry = ts && *ts ? (hb && *hb ? "ts+heartbeat" : "ts")
                                      : (hb && *hb ? "heartbeat" : "off");
    std::snprintf(buf, sizeof(buf), "      \"telemetry\": \"%s\",\n",
                  telemetry);
    e += buf;
    std::snprintf(buf, sizeof(buf), "      \"build\": \"%s\"\n",
#ifdef NDEBUG
                  "release"
#else
                  "debug"
#endif
    );
    e += buf;
    e += "    },\n    \"workloads\": {\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::snprintf(buf, sizeof(buf),
                      "      \"%s\": {\"sim_cycles\": %llu, "
                      "\"wall_ms\": %.3f, \"cycles_per_sec\": %.0f}%s\n",
                      s.workload.c_str(),
                      static_cast<unsigned long long>(s.simCycles),
                      s.wallMs, s.cyclesPerSec,
                      i + 1 < samples.size() ? "," : "");
        e += buf;
    }
    e += "    }\n  }";
    return e;
}

std::string
readAll(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return "";
    std::string out;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = argc > 1 ? argv[1] : "BENCH_perf.json";
    const std::uint64_t quota =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
    std::vector<std::string> workloads(argv + std::min(argc, 3),
                                       argv + argc);
    if (workloads.empty())
        workloads = atomicIntensiveWorkloads();

    std::vector<Sample> samples;
    for (const auto &w : workloads) {
        samples.push_back(measure(w, quota));
        std::printf("%-15s %12llu cycles  %9.1f ms  %11.0f cyc/s\n",
                    samples.back().workload.c_str(),
                    static_cast<unsigned long long>(
                        samples.back().simCycles),
                    samples.back().wallMs, samples.back().cyclesPerSec);
        std::fflush(stdout);
    }

    // Append to the history array. Existing content is either an array
    // (current format: reuse its inner entries) or a single legacy
    // object (wrap it as the first entry).
    std::string prior = trim(readAll(path));
    std::string inner;
    if (!prior.empty() && prior.front() == '[' && prior.back() == ']') {
        inner = trim(prior.substr(1, prior.size() - 2));
    } else if (!prior.empty() && prior.front() == '{') {
        inner = "  " + prior;
    } else if (!prior.empty()) {
        std::fprintf(stderr,
                     "perf_baseline: %s is neither a JSON array nor an "
                     "object; refusing to overwrite\n", path);
        return 1;
    }

    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "perf_baseline: cannot open %s\n", path);
        return 1;
    }
    std::fprintf(out, "[\n");
    if (!inner.empty())
        std::fprintf(out, "%s,\n", inner.c_str());
    std::fprintf(out, "%s\n]\n", renderEntry(samples, quota).c_str());
    std::fclose(out);
    std::printf("appended to %s\n", path);
    return 0;
}
