/**
 * @file
 * Simulator-throughput baseline: time one representative eager run per
 * atomic-intensive workload and emit BENCH_perf.json with
 * {sim_cycles, wall_ms, cycles_per_sec} plus host metadata.
 *
 * This measures the SIMULATOR, not the simulated machine — sim_cycles
 * must be bit-stable across commits (it is a simulated result), while
 * wall_ms / cycles_per_sec track the hot-path cost and are expected to
 * move. CI only checks the schema; the committed file documents the
 * throughput at the commit that produced it.
 *
 * Usage: perf_baseline [output.json]   (default: BENCH_perf.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"

using namespace rowsim;

namespace
{

struct Sample
{
    std::string workload;
    std::uint64_t simCycles = 0;
    double wallMs = 0;
    double cyclesPerSec = 0;
};

Sample
measure(const std::string &workload)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    RunResult r = runExperiment(workload, eagerConfig());
    const auto t1 = clock::now();

    Sample s;
    s.workload = workload;
    s.simCycles = r.cycles;
    s.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    s.cyclesPerSec = s.wallMs > 0
                         ? static_cast<double>(r.cycles) * 1e3 / s.wallMs
                         : 0;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = argc > 1 ? argv[1] : "BENCH_perf.json";

    std::vector<Sample> samples;
    for (const auto &w : atomicIntensiveWorkloads()) {
        samples.push_back(measure(w));
        std::printf("%-15s %12llu cycles  %9.1f ms  %11.0f cyc/s\n",
                    samples.back().workload.c_str(),
                    static_cast<unsigned long long>(
                        samples.back().simCycles),
                    samples.back().wallMs, samples.back().cyclesPerSec);
        std::fflush(stdout);
    }

    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "perf_baseline: cannot open %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"host\": {\n");
    std::fprintf(out, "    \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    const char *ff = std::getenv("ROWSIM_FF");
    std::fprintf(out, "    \"fast_forward\": \"%s\",\n",
                 ff && *ff ? ff : "default-on");
    std::fprintf(out, "    \"build\": \"%s\"\n",
#ifdef NDEBUG
                 "release"
#else
                 "debug"
#endif
    );
    std::fprintf(out, "  },\n  \"workloads\": {\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(out,
                     "    \"%s\": {\"sim_cycles\": %llu, "
                     "\"wall_ms\": %.1f, \"cycles_per_sec\": %.0f}%s\n",
                     s.workload.c_str(),
                     static_cast<unsigned long long>(s.simCycles),
                     s.wallMs, s.cyclesPerSec,
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return 0;
}
