/**
 * @file
 * Fig. 5: atomics per 10 kilo-instructions (bars) and the percentage of
 * atomics that face contention under eager execution (line), per
 * workload.
 *
 * Paper shape: the applications at both ends of the Fig. 1 ordering are
 * the most atomic-intensive; tpcc/sps/pc combine high intensity with
 * high contentiousness, canneal/freqmine are intense but uncontended.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

void
intensity(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state) {
        const RunResult &r = cachedRun(workload, eagerConfig());
        state.counters["atomics_per_10k"] = r.atomicsPer10k;
        state.counters["contended_pct"] = r.contendedPct;
        table("Fig. 5 — atomic intensity and contentiousness (eager)")
            .cell(workload, "at/10k-inst", r.atomicsPer10k);
        table().cell(workload, "contended%", r.contendedPct);
    }
}

const int registered = [] {
    for (const auto &w : atomicIntensiveWorkloads()) {
        addPrewarm(w, eagerConfig());
        benchmark::RegisterBenchmark(("fig05/" + w).c_str(), intensity, w)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
