/**
 * @file
 * Microarchitectural ablations of the design choices DESIGN.md calls
 * out, run with the best RoW configuration (RW+Dir, U/D, forwarding):
 *
 *  - Atomic Queue size (4 / 8 / 16 / 32 entries): bounds atomic MLP;
 *  - atomic re-issue delay (0 / 4 / 8 / 16 cycles): the pipeline cost of
 *    waking a waiting (lazy) atomic — the knob behind the §IV-E
 *    atomic-locality window;
 *  - lock-steal threshold (1k / 5k / 20k cycles): the deadlock-avoidance
 *    backstop for eagerly locked lines.
 */

#include "bench/bench_common.hh"

using namespace rowsim;
using namespace rowsim::bench;

namespace
{

const std::vector<std::string> kSubset = {"canneal", "cq", "tpcc", "pc"};

double
normalisedParams(const std::string &w, SystemParams sp,
                 const std::string &label)
{
    static std::map<std::string, RunResult> cache;
    std::string key = w + "|" + label;
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, runExperimentParams(w, sp, label)).first;
    const RunResult &base = cachedRun(w, eagerConfig());
    return static_cast<double>(it->second.cycles) /
           static_cast<double>(base.cycles);
}

SystemParams
bestRow()
{
    return makeParams(rowConfig(ContentionDetector::RWDir,
                                PredictorUpdate::UpDown, true),
                      32, 1);
}

void
sweepRow(benchmark::State &state, const std::string &dim,
         const std::string &label, SystemParams sp)
{
    for (auto _ : state) {
        double log_sum = 0;
        for (const auto &w : kSubset) {
            double n = normalisedParams(w, sp, dim + "_" + label);
            table("Microarchitecture ablations (RoW RW+Dir U/D +fwd, "
                  "normalized time)")
                .cell(w, dim + "=" + label, n);
            log_sum += std::log(n);
        }
        double g = std::exp(log_sum / kSubset.size());
        state.counters["geomean"] = g;
        table().cell("geomean", dim + "=" + label, g);
    }
}

const int registered = [] {
    for (unsigned aq : {4u, 8u, 16u, 32u}) {
        SystemParams sp = bestRow();
        sp.core.aqEntries = aq;
        benchmark::RegisterBenchmark(
            ("ablation/aq/" + std::to_string(aq)).c_str(), sweepRow, "aq",
            std::to_string(aq), sp)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    for (unsigned delay : {0u, 4u, 8u, 16u}) {
        SystemParams sp = bestRow();
        sp.core.atomicReissueDelay = delay;
        benchmark::RegisterBenchmark(
            ("ablation/reissue/" + std::to_string(delay)).c_str(),
            sweepRow, "reissue", std::to_string(delay), sp)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    for (Cycle steal : {1000u, 5000u, 20000u}) {
        SystemParams sp = bestRow();
        sp.mem.lockStealThreshold = steal;
        benchmark::RegisterBenchmark(
            ("ablation/locksteal/" + std::to_string(steal)).c_str(),
            sweepRow, "steal", std::to_string(steal), sp)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return 0;
}();

} // namespace

ROWSIM_BENCH_MAIN()
