/**
 * @file
 * Counter shootout: the canonical fetch-and-increment benchmark — every
 * thread increments one shared counter between bursts of private work —
 * executed under all four atomic policies (fenced, eager, lazy, RoW).
 * Prints throughput and the Fig. 6 latency breakdown, and verifies the
 * atomicity invariant (final counter value == total committed FAAs).
 *
 * The private loads miss the caches, so an eagerly executed atomic holds
 * its cacheline locked while they commit — exactly the §III pathology.
 *
 *   ./build/examples/counter_shootout [cores]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

WorkloadProfile
shootoutProfile()
{
    WorkloadProfile p;
    p.name = "shootout";
    p.sharedAtomicWords = 1; // one hot counter
    p.loadsBefore = 4;       // slow private loads the atomic bypasses
    p.loadsAfter = 4;
    p.privateLines = 1ULL << 15;
    p.aluOps = 8;
    p.fillerAlu = 40;
    p.storesPerIter = 1;
    return p;
}

const char *
policyName(AtomicPolicy p)
{
    switch (p) {
      case AtomicPolicy::Fenced: return "fenced";
      case AtomicPolicy::Eager: return "eager";
      case AtomicPolicy::Lazy: return "lazy";
      case AtomicPolicy::RoW: return "RoW";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? static_cast<unsigned>(
                                    std::strtoul(argv[1], nullptr, 10))
                              : 16;
    const std::uint64_t quota = 80;

    std::printf("Shared fetch-and-increment, %u cores, %llu increments "
                "per core\n\n",
                cores, static_cast<unsigned long long>(quota));
    std::printf("%-8s %10s %14s %9s %9s %9s %10s\n", "policy", "cycles",
                "incr/kcycle", "d->issue", "iss->lock", "lock->unl",
                "invariant");

    for (AtomicPolicy p : {AtomicPolicy::Fenced, AtomicPolicy::Eager,
                           AtomicPolicy::Lazy, AtomicPolicy::RoW}) {
        SystemParams sp;
        sp.numCores = cores;
        sp.core.atomicPolicy = p;
        System sys(sp, makeStreams(shootoutProfile(), cores, 1));
        Cycle c = sys.run(quota);
        sys.drain();

        std::uint64_t total = 0;
        for (CoreId i = 0; i < cores; i++)
            total += sys.core(i).committedAtomics();
        const std::uint64_t value =
            sys.mem().functional().read64(addrmap::sharedAtomicWord(0));

        std::printf("%-8s %10llu %14.2f %9.0f %9.0f %9.0f %10s\n",
                    policyName(p), static_cast<unsigned long long>(c),
                    1000.0 * static_cast<double>(total) /
                        static_cast<double>(c),
                    sys.meanAverage("atomicDispatchToIssue"),
                    sys.meanAverage("atomicIssueToLock"),
                    sys.meanAverage("atomicLockToUnlock"),
                    value == total ? "OK" : "LOST UPDATES!");
        if (value != total) {
            std::fprintf(stderr,
                         "ATOMICITY VIOLATION: counter=%llu "
                         "committed=%llu\n",
                         static_cast<unsigned long long>(value),
                         static_cast<unsigned long long>(total));
            return 1;
        }
    }

    std::printf("\nOn a hot counter, eager execution holds the line "
                "locked while its older\nloads commit; lazy and RoW keep "
                "the lock window to a few cycles and win.\n");
    return 0;
}
