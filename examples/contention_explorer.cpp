/**
 * @file
 * Contention explorer: sweep the number of shared counter words that 32
 * threads hammer, from 1 (maximal contention) to 4096 (essentially
 * private), and show where the eager/lazy crossover falls and how RoW
 * tracks the winner on both sides of it.
 *
 * This is the paper's central trade-off (Section III) reduced to a
 * single dial you can turn.
 *
 *   ./build/examples/contention_explorer
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

/** pc-like kernel with a configurable shared-pool size. */
WorkloadProfile
sweepProfile(std::uint64_t shared_words)
{
    WorkloadProfile p;
    p.name = "sweep";
    p.sharedAtomicWords = shared_words;
    p.loadsBefore = 4;
    p.loadsAfter = 6;
    p.privateLines = 1ULL << 15;
    p.aluOps = 10;
    p.fillerAlu = 60;
    return p;
}

Cycle
run(std::uint64_t shared_words, AtomicPolicy policy)
{
    SystemParams sp;
    sp.numCores = 32;
    sp.core.atomicPolicy = policy;
    sp.core.row.update = PredictorUpdate::UpDown;
    System sys(sp, makeStreams(sweepProfile(shared_words), 32, 1));
    return sys.run(60);
}

} // namespace

int
main()
{
    std::printf("Eager vs lazy vs RoW over contention degree "
                "(32 threads, FAA kernel)\n\n");
    std::printf("%12s %10s %10s %10s %8s %8s\n", "sharedWords", "eager",
                "lazy", "RoW", "lazy/e", "RoW/e");

    for (std::uint64_t words : {1ULL, 2ULL, 4ULL, 16ULL, 64ULL, 256ULL,
                                1024ULL, 4096ULL}) {
        Cycle e = run(words, AtomicPolicy::Eager);
        Cycle l = run(words, AtomicPolicy::Lazy);
        Cycle r = run(words, AtomicPolicy::RoW);
        // (RoW here uses the default RW+Dir detector with the UpDown
        // predictor — kinder to mixed-contention pools than Sat.)
        std::printf("%12llu %10llu %10llu %10llu %8.3f %8.3f\n",
                    static_cast<unsigned long long>(words),
                    static_cast<unsigned long long>(e),
                    static_cast<unsigned long long>(l),
                    static_cast<unsigned long long>(r),
                    static_cast<double>(l) / static_cast<double>(e),
                    static_cast<double>(r) / static_cast<double>(e));
    }

    std::printf("\nFew shared words -> contended -> lazy wins; many -> "
                "uncontended -> eager wins.\nRoW should sit near "
                "min(eager, lazy) across the whole sweep.\n");
    return 0;
}
