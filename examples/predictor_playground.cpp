/**
 * @file
 * Predictor playground: feed the RoW contention predictor a
 * phase-changing workload — atomics that alternate between a contended
 * and an uncontended phase — and watch how fast the UpDown and
 * Saturate-on-Contention policies adapt in each direction (§IV-D).
 *
 *   ./build/examples/predictor_playground
 */

#include <cstdio>

#include "row/predictor.hh"

using namespace rowsim;

namespace
{

void
playPhases(PredictorUpdate update, const char *name)
{
    RowConfig cfg;
    cfg.update = update;
    ContentionPredictor p(cfg);
    const Addr pc = 0x9000;

    std::printf("\n--- %s ---\n", name);
    std::printf("%-24s %8s %8s\n", "phase", "updates", "lazy%");

    auto phase = [&](const char *label, bool contended, int len) {
        int lazy = 0;
        for (int i = 0; i < len; i++) {
            if (p.predictContended(pc))
                lazy++;
            p.update(pc, contended);
        }
        std::printf("%-24s %8d %7.0f%%\n", label, len,
                    100.0 * lazy / len);
    };

    phase("warmup (uncontended)", false, 32);
    phase("phase 1: contended", true, 32);
    phase("phase 2: calm", false, 32);
    phase("phase 3: contended", true, 32);
    phase("phase 4: calm again", false, 32);

    const auto &st = p.stats();
    std::printf("overall accuracy: %.0f%% (%llu/%llu)\n",
                100.0 * st.counterValue("correct") /
                    static_cast<double>(st.counterValue("updates")),
                static_cast<unsigned long long>(st.counterValue("correct")),
                static_cast<unsigned long long>(
                    st.counterValue("updates")));
}

} // namespace

int
main()
{
    std::printf("RoW contention predictor under phase changes\n");
    std::printf("(64 entries x 4-bit counters, XOR-indexed; storage = 32 "
                "bytes)\n");

    playPhases(PredictorUpdate::UpDown, "UpDown (+1/-1, lazy if ctr > 1)");
    playPhases(PredictorUpdate::SaturateOnContention,
               "Saturate-on-Contention (max on hit, -1, lazy if ctr > 0)");

    std::printf("\nTakeaway: Sat flips to lazy instantly but needs 15 calm "
                "updates to flip back;\nU/D is symmetric and tracks "
                "alternating phases more accurately (Fig. 12).\n");
    return 0;
}
