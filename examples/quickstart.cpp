/**
 * @file
 * Quickstart: build a 32-core system, run the `pc` (producer/consumer)
 * workload under the three atomic execution policies, and print the
 * execution times and atomic statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    using namespace rowsim;

    std::printf("RoWSim quickstart: 'pc' on 32 cores\n");
    std::printf("%-12s %10s %10s %9s %12s %12s\n", "policy", "cycles",
                "norm", "at/10k", "contended%", "lock window");

    const RunResult eager = runExperiment("pc", eagerConfig());
    for (const ExpConfig &cfg :
         {eagerConfig(), lazyConfig(),
          rowConfig(ContentionDetector::RWDir,
                    PredictorUpdate::SaturateOnContention)}) {
        const RunResult r = runExperiment("pc", cfg);
        std::printf("%-12s %10llu %10.3f %9.1f %11.1f%% %9.0f cyc\n",
                    r.config.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(r.cycles) /
                        static_cast<double>(eager.cycles),
                    r.atomicsPer10k, r.contendedPct, r.lockToUnlock);
    }
    std::printf("\nLower is better; 'pc' is contended, so lazy and RoW "
                "should beat eager.\n");
    return 0;
}
