
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/rowsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rowsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/common/stats.cc.o.d"
  "/root/repo/src/cpu/atomic_queue.cc" "src/CMakeFiles/rowsim.dir/cpu/atomic_queue.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/cpu/atomic_queue.cc.o.d"
  "/root/repo/src/cpu/branch.cc" "src/CMakeFiles/rowsim.dir/cpu/branch.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/cpu/branch.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/rowsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/lsq.cc" "src/CMakeFiles/rowsim.dir/cpu/lsq.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/cpu/lsq.cc.o.d"
  "/root/repo/src/cpu/storeset.cc" "src/CMakeFiles/rowsim.dir/cpu/storeset.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/cpu/storeset.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/rowsim.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/CMakeFiles/rowsim.dir/mem/directory.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/mem/directory.cc.o.d"
  "/root/repo/src/mem/l1cache.cc" "src/CMakeFiles/rowsim.dir/mem/l1cache.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/mem/l1cache.cc.o.d"
  "/root/repo/src/mem/memsystem.cc" "src/CMakeFiles/rowsim.dir/mem/memsystem.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/mem/memsystem.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/rowsim.dir/net/network.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/net/network.cc.o.d"
  "/root/repo/src/row/predictor.cc" "src/CMakeFiles/rowsim.dir/row/predictor.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/row/predictor.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/rowsim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/microbench.cc" "src/CMakeFiles/rowsim.dir/sim/microbench.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/sim/microbench.cc.o.d"
  "/root/repo/src/sim/profiles.cc" "src/CMakeFiles/rowsim.dir/sim/profiles.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/sim/profiles.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/rowsim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/CMakeFiles/rowsim.dir/sim/workloads.cc.o" "gcc" "src/CMakeFiles/rowsim.dir/sim/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
