# Empty compiler generated dependencies file for rowsim.
# This may be replaced when dependencies are built.
