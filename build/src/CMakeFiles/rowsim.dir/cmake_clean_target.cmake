file(REMOVE_RECURSE
  "librowsim.a"
)
