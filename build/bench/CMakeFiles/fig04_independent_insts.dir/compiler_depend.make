# Empty compiler generated dependencies file for fig04_independent_insts.
# This may be replaced when dependencies are built.
