file(REMOVE_RECURSE
  "CMakeFiles/fig04_independent_insts.dir/fig04_independent_insts.cc.o"
  "CMakeFiles/fig04_independent_insts.dir/fig04_independent_insts.cc.o.d"
  "fig04_independent_insts"
  "fig04_independent_insts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_independent_insts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
