# Empty compiler generated dependencies file for fig13_forwarding.
# This may be replaced when dependencies are built.
