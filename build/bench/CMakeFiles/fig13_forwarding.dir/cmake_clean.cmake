file(REMOVE_RECURSE
  "CMakeFiles/fig13_forwarding.dir/fig13_forwarding.cc.o"
  "CMakeFiles/fig13_forwarding.dir/fig13_forwarding.cc.o.d"
  "fig13_forwarding"
  "fig13_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
