# Empty dependencies file for fig12_accuracy.
# This may be replaced when dependencies are built.
