# Empty dependencies file for fig05_intensity_contention.
# This may be replaced when dependencies are built.
