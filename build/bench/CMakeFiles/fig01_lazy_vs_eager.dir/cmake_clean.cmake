file(REMOVE_RECURSE
  "CMakeFiles/fig01_lazy_vs_eager.dir/fig01_lazy_vs_eager.cc.o"
  "CMakeFiles/fig01_lazy_vs_eager.dir/fig01_lazy_vs_eager.cc.o.d"
  "fig01_lazy_vs_eager"
  "fig01_lazy_vs_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_lazy_vs_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
