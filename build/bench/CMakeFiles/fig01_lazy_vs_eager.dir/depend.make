# Empty dependencies file for fig01_lazy_vs_eager.
# This may be replaced when dependencies are built.
