# Empty dependencies file for fig02_microbench.
# This may be replaced when dependencies are built.
