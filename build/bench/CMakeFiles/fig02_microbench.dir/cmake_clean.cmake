file(REMOVE_RECURSE
  "CMakeFiles/fig02_microbench.dir/fig02_microbench.cc.o"
  "CMakeFiles/fig02_microbench.dir/fig02_microbench.cc.o.d"
  "fig02_microbench"
  "fig02_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
