# Empty dependencies file for fig09_row_variants.
# This may be replaced when dependencies are built.
