file(REMOVE_RECURSE
  "CMakeFiles/fig09_row_variants.dir/fig09_row_variants.cc.o"
  "CMakeFiles/fig09_row_variants.dir/fig09_row_variants.cc.o.d"
  "fig09_row_variants"
  "fig09_row_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_row_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
