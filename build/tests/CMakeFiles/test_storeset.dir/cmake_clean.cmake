file(REMOVE_RECURSE
  "CMakeFiles/test_storeset.dir/test_storeset.cc.o"
  "CMakeFiles/test_storeset.dir/test_storeset.cc.o.d"
  "test_storeset"
  "test_storeset.pdb"
  "test_storeset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storeset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
