file(REMOVE_RECURSE
  "CMakeFiles/test_row_policies.dir/test_row_policies.cc.o"
  "CMakeFiles/test_row_policies.dir/test_row_policies.cc.o.d"
  "test_row_policies"
  "test_row_policies.pdb"
  "test_row_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
