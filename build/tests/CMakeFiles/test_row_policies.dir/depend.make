# Empty dependencies file for test_row_policies.
# This may be replaced when dependencies are built.
