# Empty compiler generated dependencies file for test_core_paths.
# This may be replaced when dependencies are built.
