# Empty dependencies file for test_atomic_queue.
# This may be replaced when dependencies are built.
