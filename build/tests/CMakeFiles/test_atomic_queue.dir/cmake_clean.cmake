file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_queue.dir/test_atomic_queue.cc.o"
  "CMakeFiles/test_atomic_queue.dir/test_atomic_queue.cc.o.d"
  "test_atomic_queue"
  "test_atomic_queue.pdb"
  "test_atomic_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
