file(REMOVE_RECURSE
  "CMakeFiles/test_private_cache.dir/test_private_cache.cc.o"
  "CMakeFiles/test_private_cache.dir/test_private_cache.cc.o.d"
  "test_private_cache"
  "test_private_cache.pdb"
  "test_private_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_private_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
