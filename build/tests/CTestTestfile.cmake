# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_cache_array[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_storeset[1]_include.cmake")
include("/root/repo/build/tests/test_lsq[1]_include.cmake")
include("/root/repo/build/tests/test_atomic_queue[1]_include.cmake")
include("/root/repo/build/tests/test_directory[1]_include.cmake")
include("/root/repo/build/tests/test_private_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_core_paths[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_system_integration[1]_include.cmake")
include("/root/repo/build/tests/test_atomicity[1]_include.cmake")
include("/root/repo/build/tests/test_row_policies[1]_include.cmake")
include("/root/repo/build/tests/test_microbench[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_stress[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
