file(REMOVE_RECURSE
  "CMakeFiles/counter_shootout.dir/counter_shootout.cpp.o"
  "CMakeFiles/counter_shootout.dir/counter_shootout.cpp.o.d"
  "counter_shootout"
  "counter_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
