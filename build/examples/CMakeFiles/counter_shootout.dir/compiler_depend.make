# Empty compiler generated dependencies file for counter_shootout.
# This may be replaced when dependencies are built.
