#include "row/predictor.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

ContentionPredictor::ContentionPredictor(const RowConfig &c)
    : cfg(c), maxCounter((1u << c.counterBits) - 1),
      table(c.predictorEntries, 0), stats_("rowPredictor")
{
    ROWSIM_ASSERT(std::has_single_bit(c.predictorEntries),
                  "predictor entries must be a power of two");
    // Thresholds from §IV-D: UpDown (and the +2/-1 variant) execute lazy
    // when counter > 1; Saturate-on-Contention when counter > 0.
    threshold =
        c.update == PredictorUpdate::SaturateOnContention ? 0 : 1;
}

unsigned
ContentionPredictor::index(Addr pc) const
{
    const unsigned bits = std::countr_zero(cfg.predictorEntries);
    const unsigned mask = cfg.predictorEntries - 1;
    const auto word = static_cast<unsigned>(pc);
    return (word ^ (word >> bits)) & mask;
}

bool
ContentionPredictor::predictContended(Addr pc) const
{
    return table[index(pc)] > threshold;
}

void
ContentionPredictor::update(Addr pc, bool contended, Cycle now)
{
    const bool predicted = predictContended(pc);
    stats_.counter("updates")++;
    if (predicted == contended)
        stats_.counter("correct")++;
    if (contended)
        stats_.counter("contendedOutcomes")++;

    std::uint8_t &ctr = table[index(pc)];
    ROWSIM_TRACE(TraceCategory::Predictor, now,
                 "core%u predictor pc=%#llx idx=%u ctr=%u predicted=%d "
                 "actual=%d", coreId_,
                 static_cast<unsigned long long>(pc), index(pc),
                 static_cast<unsigned>(ctr), predicted ? 1 : 0,
                 contended ? 1 : 0);
    if (predicted != contended) {
        ROWSIM_TRACE_INSTANT(
            TraceCategory::Predictor, static_cast<int>(coreId_),
            traceTidPredictor, "mispredict", now,
            strprintf("{\"pc\":\"%#llx\",\"predicted\":%d,\"actual\":%d}",
                      static_cast<unsigned long long>(pc),
                      predicted ? 1 : 0, contended ? 1 : 0));
    }
    if (contended) {
        switch (cfg.update) {
          case PredictorUpdate::SaturateOnContention:
            ctr = static_cast<std::uint8_t>(maxCounter);
            break;
          case PredictorUpdate::TwoUpOneDown:
            ctr = static_cast<std::uint8_t>(
                std::min<unsigned>(maxCounter, ctr + 2u));
            break;
          case PredictorUpdate::UpDown:
            if (ctr < maxCounter)
                ctr++;
            break;
        }
    } else if (ctr > 0) {
        ctr--;
    }
}

unsigned
ContentionPredictor::storageBits() const
{
    return cfg.predictorEntries * cfg.counterBits;
}

void
ContentionPredictor::save(Ser &s) const
{
    s.section("rowpred");
    s.u64(table.size());
    for (std::uint8_t c : table)
        s.u8(c);
}

void
ContentionPredictor::restore(Deser &d)
{
    d.section("rowpred");
    const std::uint64_t entries = d.u64();
    if (entries != table.size()) {
        throw SnapshotError(strprintf(
            "RoW predictor size mismatch: image %llu entries, "
            "configured %zu",
            static_cast<unsigned long long>(entries), table.size()));
    }
    for (std::uint8_t &c : table)
        c = d.u8();
}

} // namespace rowsim
