/**
 * @file
 * RoW contention predictor (§IV-D): a small PC-indexed table of N-bit
 * saturating counters that estimates whether an atomic RMW will access a
 * contended cacheline. 64 entries x 4 bits = 32 bytes by default.
 */

#ifndef ROWSIM_ROW_PREDICTOR_HH
#define ROWSIM_ROW_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

class ContentionPredictor
{
  public:
    explicit ContentionPredictor(const RowConfig &cfg);

    /** True when the atomic at @p pc is predicted to face contention
     *  (and therefore should execute lazy). */
    bool predictContended(Addr pc) const;

    /** Train with the observed outcome when the atomic unlocks its line.
     *  Also records prediction-accuracy statistics (Fig. 12). @p now is
     *  the training cycle, used only for trace timestamps. */
    void update(Addr pc, bool contended, Cycle now = 0);

    /** Owning core's id — only used to label trace events. */
    void setCoreId(CoreId id) { coreId_ = id; }

    /** Storage cost in bits (64 bytes total for RoW per §IV-F, of which
     *  this table is 256 bits). */
    unsigned storageBits() const;

    /** Table index: 6 LSBs of the PC XORed with the next 6 bits
     *  (XOR-mapping, [13]). Exposed for tests. */
    unsigned index(Addr pc) const;

    /** Raw counter value (tests). */
    unsigned counter(unsigned idx) const { return table[idx]; }

    StatGroup &stats() { return stats_; }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    RowConfig cfg;
    unsigned maxCounter;
    unsigned threshold;
    CoreId coreId_ = 0;
    std::vector<std::uint8_t> table;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_ROW_PREDICTOR_HH
