#include "net/network.hh"

#include <cmath>

#include "common/log.hh"
#include "common/trace.hh"

namespace rowsim
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::PutM: return "PutM";
      case MsgType::Data: return "Data";
      case MsgType::DataExcl: return "DataExcl";
      case MsgType::Inv: return "Inv";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::WBAck: return "WBAck";
      case MsgType::DataOwner: return "DataOwner";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Unblock: return "Unblock";
    }
    return "?";
}

std::string
Msg::toString() const
{
    return strprintf("%s line=%#lx %u->%u req=%u priv=%d",
                     msgTypeName(type), static_cast<unsigned long>(line),
                     src, dst, requester, fromPrivateCache);
}

Network::Network(unsigned num_cores, const NetParams &p)
    : numCores(num_cores), params(p),
      handlers(2 * static_cast<std::size_t>(num_cores), nullptr),
      stats_("network")
{
    // Square-ish mesh of tiles; each tile has a core and a bank, so the
    // mesh holds numCores tiles.
    meshX = static_cast<unsigned>(std::ceil(std::sqrt(num_cores)));
    meshY = (num_cores + meshX - 1) / meshX;
}

void
Network::attach(NodeId node, MsgHandler *handler)
{
    ROWSIM_ASSERT(node < handlers.size(), "node id %u out of range", node);
    handlers[node] = handler;
}

void
Network::coords(NodeId node, unsigned &x, unsigned &y) const
{
    // Core i and bank i live on the same tile.
    unsigned tile = node % numCores;
    x = tile % meshX;
    y = tile / meshX;
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    unsigned ax, ay, bx, by;
    coords(a, ax, ay);
    coords(b, bx, by);
    auto d = [](unsigned p, unsigned q) { return p > q ? p - q : q - p; };
    return d(ax, bx) + d(ay, by);
}

Cycle
Network::latency(NodeId a, NodeId b) const
{
    // Same-tile messages still pay one router traversal.
    unsigned h = hops(a, b);
    return params.hopLatency * (h + 1);
}

NodeId
Network::homeBank(Addr line) const
{
    return numCores + static_cast<NodeId>(lineNum(line) % numCores);
}

void
Network::send(Msg msg, Cycle now)
{
    msg.sent = now;
    Cycle due = now + latency(msg.src, msg.dst);
    if (delayHook)
        due += delayHook(msg, now);
    auto key = std::make_pair(msg.src, msg.dst);
    auto it = lastDelivery.find(key);
    if (it != lastDelivery.end() && due < it->second)
        due = it->second; // preserve point-to-point ordering
    lastDelivery[key] = due;
    inFlight.push({due, nextOrder++, msg});
    stats_.counter("messages")++;
    stats_.average("hops").sample(hops(msg.src, msg.dst));
    ROWSIM_TRACE(TraceCategory::Network, now, "inject %s due=%llu",
                 msg.toString().c_str(),
                 static_cast<unsigned long long>(due));
}

void
Network::tick(Cycle now)
{
    while (!inFlight.empty() && inFlight.top().due <= now) {
        Pending p = inFlight.top();
        inFlight.pop();
        MsgHandler *h = handlers[p.msg.dst];
        ROWSIM_ASSERT(h != nullptr, "no handler attached at node %u",
                      p.msg.dst);
        ROWSIM_TRACE(TraceCategory::Network, now, "deliver %s",
                     p.msg.toString().c_str());
        // One async span per message lifetime; the order counter makes a
        // unique id so concurrent messages nest correctly.
        ROWSIM_TRACE_SPAN(TraceCategory::Network, tracePidNetwork, 0,
                          msgTypeName(p.msg.type), p.order, p.msg.sent, now,
                          strprintf("{\"line\":\"%#llx\",\"src\":%u,"
                                    "\"dst\":%u}",
                                    static_cast<unsigned long long>(
                                        p.msg.line),
                                    p.msg.src, p.msg.dst));
        stats_.counter("delivered")++;
        h->deliver(p.msg, now);
    }
}

void
Network::dumpDiag(std::FILE *out, Cycle now) const
{
    std::fprintf(out, "{\"inFlight\":%zu,\"messages\":[",
                 inFlight.size());
    // priority_queue has no iteration; copy it (crash path only).
    auto copy = inFlight;
    bool first = true;
    std::size_t listed = 0;
    while (!copy.empty() && listed < 64) {
        const Pending &p = copy.top();
        std::fprintf(out,
                     "%s{\"type\":\"%s\",\"line\":\"%#llx\",\"src\":%u,"
                     "\"dst\":%u,\"sent\":%llu,\"due\":%llu,\"age\":%llu}",
                     first ? "" : ",", msgTypeName(p.msg.type),
                     static_cast<unsigned long long>(p.msg.line),
                     p.msg.src, p.msg.dst,
                     static_cast<unsigned long long>(p.msg.sent),
                     static_cast<unsigned long long>(p.due),
                     static_cast<unsigned long long>(
                         now >= p.msg.sent ? now - p.msg.sent : 0));
        first = false;
        listed++;
        copy.pop();
    }
    std::fprintf(out, "]%s}",
                 inFlight.size() > 64 ? ",\"truncated\":true" : "");
}

} // namespace rowsim
