#include "net/network.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"

namespace rowsim
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::PutM: return "PutM";
      case MsgType::Data: return "Data";
      case MsgType::DataExcl: return "DataExcl";
      case MsgType::Inv: return "Inv";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::WBAck: return "WBAck";
      case MsgType::DataOwner: return "DataOwner";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Unblock: return "Unblock";
    }
    return "?";
}

std::string
Msg::toString() const
{
    return strprintf("%s line=%#lx %u->%u req=%u priv=%d",
                     msgTypeName(type), static_cast<unsigned long>(line),
                     src, dst, requester, fromPrivateCache);
}

Network::Network(unsigned num_cores, const NetParams &p)
    : numCores(num_cores), numNodes(2 * num_cores), params(p),
      handlers(2 * static_cast<std::size_t>(num_cores), nullptr),
      stats_("network")
{
    // Square-ish mesh of tiles; each tile has a core and a bank, so the
    // mesh holds numCores tiles.
    meshX = static_cast<unsigned>(std::ceil(std::sqrt(num_cores)));
    meshY = (num_cores + meshX - 1) / meshX;

    latHist_.assign(static_cast<std::size_t>(MsgType::Unblock) + 1,
                    nullptr);

    // Precompute the per-pair hop/latency tables and the point-to-point
    // ordering fences once; the hot send() path then indexes flat arrays
    // instead of walking a map and redoing Manhattan math per message.
    const std::size_t pairs =
        static_cast<std::size_t>(numNodes) * numNodes;
    lastDelivery.assign(pairs, 0);
    pairHops.resize(pairs);
    pairLatency.resize(pairs);
    for (NodeId s = 0; s < numNodes; s++) {
        unsigned sx, sy;
        coords(s, sx, sy);
        for (NodeId d = 0; d < numNodes; d++) {
            unsigned dx, dy;
            coords(d, dx, dy);
            auto dist = [](unsigned a, unsigned b) {
                return a > b ? a - b : b - a;
            };
            const unsigned h = dist(sx, dx) + dist(sy, dy);
            const std::size_t idx =
                static_cast<std::size_t>(s) * numNodes + d;
            pairHops[idx] = h;
            // Same-tile messages still pay one router traversal.
            pairLatency[idx] = params.hopLatency * (h + 1);
        }
    }
}

void
Network::attach(NodeId node, MsgHandler *handler)
{
    ROWSIM_ASSERT(node < handlers.size(), "node id %u out of range", node);
    handlers[node] = handler;
}

void
Network::coords(NodeId node, unsigned &x, unsigned &y) const
{
    // Core i and bank i live on the same tile.
    unsigned tile = node % numCores;
    x = tile % meshX;
    y = tile / meshX;
}

unsigned
Network::hops(NodeId a, NodeId b) const
{
    ROWSIM_ASSERT(a < numNodes && b < numNodes,
                  "hops(%u, %u): node beyond the %u-node mesh", a, b,
                  numNodes);
    return pairHops[static_cast<std::size_t>(a) * numNodes + b];
}

Cycle
Network::latency(NodeId a, NodeId b) const
{
    ROWSIM_ASSERT(a < numNodes && b < numNodes,
                  "latency(%u, %u): node beyond the %u-node mesh", a, b,
                  numNodes);
    return pairLatency[static_cast<std::size_t>(a) * numNodes + b];
}

NodeId
Network::homeBank(Addr line) const
{
    return numCores + static_cast<NodeId>(lineNum(line) % numCores);
}

void
Network::send(Msg msg, Cycle now)
{
    // A misrouted message (unattached / out-of-range node) must die with
    // a clean panic here, not UB-index the flat tables below.
    ROWSIM_ASSERT(msg.src < numNodes && msg.dst < numNodes,
                  "misrouted message %s: node beyond the %u-node mesh",
                  msg.toString().c_str(), numNodes);
    msg.sent = now;
    const std::size_t pair =
        static_cast<std::size_t>(msg.src) * numNodes + msg.dst;
    Cycle due = now + pairLatency[pair];
    if (delayHook)
        due += delayHook(msg, now);
    if (due < lastDelivery[pair])
        due = lastDelivery[pair]; // preserve point-to-point ordering
    lastDelivery[pair] = due;
    inFlight.push_back({due, nextOrder++, msg});
    std::push_heap(inFlight.begin(), inFlight.end(),
                   std::greater<Pending>());
    stats_.counter("messages")++;
    stats_.average("hops").sample(pairHops[pair]);
    ROWSIM_TRACE(TraceCategory::Network, now, "inject %s due=%llu",
                 msg.toString().c_str(),
                 static_cast<unsigned long long>(due));
}

Histogram &
Network::typeLatencyHist(MsgType t)
{
    // Lazily created per type (deterministic: the message stream decides
    // which types exist) and cached by index — the hot delivery loop
    // must not pay a map lookup per message.
    Histogram *&h = latHist_[static_cast<std::size_t>(t)];
    if (!h) {
        h = &stats_.histogram(std::string("lat") + msgTypeName(t), 0, 128,
                              64);
    }
    return *h;
}

void
Network::tick(Cycle now)
{
    while (!inFlight.empty() && inFlight.front().due <= now) {
        std::pop_heap(inFlight.begin(), inFlight.end(),
                      std::greater<Pending>());
        Pending p = inFlight.back();
        inFlight.pop_back();
        MsgHandler *h = handlers[p.msg.dst];
        ROWSIM_ASSERT(h != nullptr, "no handler attached at node %u",
                      p.msg.dst);
        ROWSIM_TRACE(TraceCategory::Network, now, "deliver %s",
                     p.msg.toString().c_str());
        // One async span per message lifetime; the order counter makes a
        // unique id so concurrent messages nest correctly.
        ROWSIM_TRACE_SPAN(TraceCategory::Network, tracePidNetwork, 0,
                          msgTypeName(p.msg.type), p.order, p.msg.sent, now,
                          strprintf("{\"line\":\"%#llx\",\"src\":%u,"
                                    "\"dst\":%u}",
                                    static_cast<unsigned long long>(
                                        p.msg.line),
                                    p.msg.src, p.msg.dst));
        stats_.counter("delivered")++;
        const Cycle lat = now >= p.msg.sent ? now - p.msg.sent : 0;
        typeLatencyHist(p.msg.type).sample(static_cast<double>(lat));
        if (SpanTracker::enabled() && spans_ && p.msg.spanId)
            spans_->netHop(p.msg.spanId, p.msg.sent, now);
        h->deliver(p.msg, now);
    }
}

void
Network::dumpDiag(std::FILE *out, Cycle now) const
{
    std::fprintf(out, "{\"inFlight\":%zu,\"messages\":[",
                 inFlight.size());
    // Sort pointers to the oldest 64 entries instead of copying (and
    // re-heapifying) every in-flight message on the crash path.
    std::vector<const Pending *> byDue;
    byDue.reserve(inFlight.size());
    for (const Pending &p : inFlight)
        byDue.push_back(&p);
    const std::size_t listed = std::min<std::size_t>(byDue.size(), 64);
    std::partial_sort(byDue.begin(), byDue.begin() + listed, byDue.end(),
                      [](const Pending *a, const Pending *b) {
                          return *b > *a;
                      });
    for (std::size_t i = 0; i < listed; i++) {
        const Pending &p = *byDue[i];
        std::fprintf(out,
                     "%s{\"type\":\"%s\",\"line\":\"%#llx\",\"src\":%u,"
                     "\"dst\":%u,\"sent\":%llu,\"due\":%llu,\"age\":%llu}",
                     i ? "," : "", msgTypeName(p.msg.type),
                     static_cast<unsigned long long>(p.msg.line),
                     p.msg.src, p.msg.dst,
                     static_cast<unsigned long long>(p.msg.sent),
                     static_cast<unsigned long long>(p.due),
                     static_cast<unsigned long long>(
                         now >= p.msg.sent ? now - p.msg.sent : 0));
    }
    std::fprintf(out, "]%s}",
                 inFlight.size() > 64 ? ",\"truncated\":true" : "");
}

void
Network::save(Ser &s) const
{
    s.section("network");
    s.u32(numNodes);

    // Serialize in full (due, order) order, not heap layout: pop order is
    // entirely comparator-determined (order is unique), so the physical
    // heap arrangement is unobservable and must not affect the image.
    std::vector<Pending> sorted(inFlight);
    std::sort(sorted.begin(), sorted.end(),
              [](const Pending &a, const Pending &b) { return b > a; });
    s.u64(sorted.size());
    for (const Pending &p : sorted) {
        s.u64(p.due);
        s.u64(p.order);
        saveMsg(s, p.msg);
    }

    for (Cycle c : lastDelivery)
        s.u64(c);
    s.u64(nextOrder);
}

void
Network::restore(Deser &d)
{
    d.section("network");
    const std::uint32_t nodes = d.u32();
    if (nodes != numNodes) {
        throw SnapshotError(strprintf(
            "network size mismatch: image has %u nodes, configured %u",
            nodes, numNodes));
    }

    inFlight.clear();
    const std::uint64_t nInFlight = d.u64();
    for (std::uint64_t i = 0; i < nInFlight; i++) {
        Pending p;
        p.due = d.u64();
        p.order = d.u64();
        restoreMsg(d, p.msg);
        inFlight.push_back(p);
    }
    std::make_heap(inFlight.begin(), inFlight.end(),
                   std::greater<Pending>());

    for (Cycle &c : lastDelivery)
        c = d.u64();
    nextOrder = d.u64();

    // The stats pass replaces the StatGroup's histogram storage; drop
    // the cached pointers so they re-resolve against the restored set.
    std::fill(latHist_.begin(), latHist_.end(), nullptr);
}

} // namespace rowsim
