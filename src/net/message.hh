/**
 * @file
 * Coherence message definitions exchanged between private cache units and
 * directory banks over the on-chip network.
 */

#ifndef ROWSIM_NET_MESSAGE_HH
#define ROWSIM_NET_MESSAGE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rowsim
{

/** Network endpoint identifier: cores occupy [0, N), directory banks
 *  occupy [N, 2N) for an N-core system. */
using NodeId = std::uint32_t;

/** Message types of the MSI directory protocol (MESI's E-state is folded
 *  into M; atomics always request exclusive permission anyway). */
enum class MsgType : std::uint8_t
{
    // Requests, core -> directory.
    GetS,       ///< read permission request
    GetX,       ///< exclusive (write / atomic) permission request
    PutM,       ///< dirty writeback on eviction (carries data)

    // Directory -> core.
    Data,       ///< data reply from LLC/memory, shared permission
    DataExcl,   ///< data reply from LLC/memory, exclusive permission
    Inv,        ///< invalidate a shared copy
    FwdGetS,    ///< owner must send data to requester and downgrade
    FwdGetX,    ///< owner must send data to requester and invalidate
    WBAck,      ///< writeback acknowledged (closes a PutM)

    // Core -> core.
    DataOwner,  ///< data forwarded from a remote private cache

    // Completion / acknowledgement traffic.
    InvAck,     ///< sharer -> directory: invalidation done
    Unblock,    ///< requester -> directory: transaction complete
};

/** Human-readable message-type name (debugging and tests). */
const char *msgTypeName(MsgType t);

/** A coherence message in flight. */
struct Msg
{
    MsgType type = MsgType::GetS;
    Addr line = invalidAddr;     ///< line-aligned address
    NodeId src = 0;
    NodeId dst = 0;
    /** The core on whose behalf this transaction runs (valid for
     *  forwards and data replies so the receiver knows the requester). */
    CoreId requester = invalidCore;
    /** Data replies: true when the bytes came from a remote private
     *  cache rather than the LLC or memory. RoW's directory-latency
     *  contention detector keys on this bit (§IV-C). */
    bool fromPrivateCache = false;
    /** Data replies: exclusive (M) permission granted. */
    bool excl = false;
    /** Data replies from the directory: true when the LLC missed and the
     *  bytes came from memory (latency classification only). */
    bool fromMemory = false;
    /** Directory-notification extension (ContentionDetector::
     *  RWDirNotify): the transaction observed concurrent interest at the
     *  directory. Carried on Fwd* messages (copied into the owner's
     *  DataOwner reply) and on directory data replies. */
    bool contentionHint = false;
    /** Cycle the message entered the network (latency accounting). */
    Cycle sent = 0;
    /** Atomic lifetime span this message serves (0 = untraced; see
     *  src/sim/span.hh). Observability-only: never serialized, and
     *  restored messages always carry 0. */
    std::uint64_t spanId = 0;

    std::string toString() const;
};

/** Interface implemented by every network endpoint. */
class MsgHandler
{
  public:
    virtual ~MsgHandler() = default;
    /** Deliver an incoming message at cycle @p now. */
    virtual void deliver(const Msg &msg, Cycle now) = 0;
};

} // namespace rowsim

#endif // ROWSIM_NET_MESSAGE_HH
