/**
 * @file
 * Latency-accurate 2D-mesh interconnect model (GARNET substitute).
 *
 * Each tile holds one core and one directory/LLC bank. Messages pay a
 * Manhattan-distance hop latency and are delivered in order per
 * (source, destination) pair, matching the in-order virtual-network
 * delivery that directory protocols rely on.
 */

#ifndef ROWSIM_NET_NETWORK_HH
#define ROWSIM_NET_NETWORK_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "net/message.hh"

namespace rowsim
{

class Ser;
class Deser;
class SpanTracker;

/**
 * The on-chip network. Endpoints register themselves by NodeId; send()
 * computes the delivery cycle from mesh distance and enqueues; tick()
 * delivers everything due at the current cycle.
 */
class Network
{
  public:
    Network(unsigned num_cores, const NetParams &params);

    /** Attach the handler for @p node (cores first, then banks). */
    void attach(NodeId node, MsgHandler *handler);

    /** Inject a message at cycle @p now. */
    void send(Msg msg, Cycle now);

    /** Deliver all messages due at @p now. */
    void tick(Cycle now);

    /** True when no messages are in flight. */
    bool idle() const { return inFlight.empty(); }

    /** Messages currently in flight (conservation checks). */
    std::size_t inFlightCount() const { return inFlight.size(); }
    /** Delivery cycle of the earliest in-flight message; invalidCycle
     *  when the network is idle. */
    Cycle
    nextDue() const
    {
        return inFlight.empty() ? invalidCycle : inFlight.front().due;
    }

    /**
     * Fault injection: extra per-message delay, added on top of the mesh
     * latency before the point-to-point ordering adjustment (so ordering
     * still holds). Return 0 for no fault.
     */
    using DelayHook = std::function<Cycle(const Msg &msg, Cycle now)>;
    void setDelayHook(DelayHook hook) { delayHook = std::move(hook); }

    /** Attach the span tracker (System::setupSpans): messages carrying
     *  a span ID report their delivery latency as a remote leg. */
    void setSpans(SpanTracker *s) { spans_ = s; }

    /** Crash diagnostics: one JSON object listing in-flight messages. */
    void dumpDiag(std::FILE *out, Cycle now) const;

    /** NodeId of the directory bank homing @p line. */
    NodeId homeBank(Addr line) const;

    /** Hop count between two nodes (exposed for tests). */
    unsigned hops(NodeId a, NodeId b) const;

    /** One-way latency between two nodes (exposed for tests). */
    Cycle latency(NodeId a, NodeId b) const;

    StatGroup &stats() { return stats_; }

    /** Architectural state: in-flight messages (serialized in (due,
     *  order) order so the heap layout never leaks into the image),
     *  point-to-point ordering floors, injection counter. */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    struct Pending
    {
        Cycle due;
        std::uint64_t order; ///< global injection order, tie-breaker
        Msg msg;
        bool operator>(const Pending &o) const
        {
            return due != o.due ? due > o.due : order > o.order;
        }
    };

    /** Tile coordinates of a node in the mesh. */
    void coords(NodeId node, unsigned &x, unsigned &y) const;

    unsigned numCores;
    unsigned numNodes;   ///< 2 * numCores: cores then banks
    unsigned meshX, meshY;
    NetParams params;

    std::vector<MsgHandler *> handlers;
    /** Min-heap on (due, order) kept via std::push_heap/pop_heap; a raw
     *  vector (unlike std::priority_queue) lets dumpDiag walk it without
     *  copying every in-flight message on the crash path. */
    std::vector<Pending> inFlight;
    /** Last delivery cycle per (src,dst), flat-indexed src*numNodes+dst,
     *  enforcing point-to-point order. 0 (never delivered) is a no-op
     *  lower bound, so no occupancy map is needed. */
    std::vector<Cycle> lastDelivery;
    /** Precomputed one-way latency per (src,dst), same flat indexing, so
     *  send() does no Manhattan math. */
    std::vector<Cycle> pairLatency;
    /** Precomputed hop count per (src,dst) for the hops stat. */
    std::vector<unsigned> pairHops;
    std::uint64_t nextOrder = 0;
    DelayHook delayHook;
    SpanTracker *spans_ = nullptr;

    /** Per-message-type delivery-latency histograms, cached by MsgType
     *  index. The pointers alias StatGroup storage, which restore()
     *  replaces wholesale, so restore() re-zeroes this cache. */
    std::vector<Histogram *> latHist_;

    Histogram &typeLatencyHist(MsgType t);

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_NET_NETWORK_HH
