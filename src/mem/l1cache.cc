#include "mem/l1cache.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"
#include "common/trace.hh"
#include "mem/memsystem.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"

namespace rowsim
{

PrivateCache::PrivateCache(CoreId core, const MemParams &p, Network *network,
                           FunctionalMemory *functional)
    : lockStealThreshold(p.lockStealThreshold), coreId(core), params(p),
      net(network), fmem(functional), l1Array(p.l1Sets, p.l1Ways),
      l2Array(p.l2Sets, p.l2Ways), stats_(strprintf("l1d%u", core))
{
}

void
PrivateCache::sendRequest(Addr line, bool exclusive, bool prefetch,
                          std::uint64_t span_id, Cycle now)
{
    Msg m;
    m.type = exclusive ? MsgType::GetX : MsgType::GetS;
    m.line = line;
    m.src = coreId;
    m.dst = net->homeBank(line);
    m.requester = coreId;
    m.spanId = span_id;
    net->send(m, now);
    stats_.counter(prefetch ? "prefetchRequests" : "demandRequests")++;
}

void
PrivateCache::completeWaiter(const MshrWaiter &w, FillSource src,
                             Cycle fill_cycle, Cycle net_issue,
                             bool contention_hint, Cycle now)
{
    if (w.isAtomic) {
        // The lock window starts the instant the exclusive line is in the
        // private cache; the core sets the AQ locked bit synchronously.
        client->atomicLineReady(w.token, lineAlign(w.addr), src, net_issue,
                                contention_hint, now);
        return;
    }
    MemResult r;
    r.token = w.token;
    r.addr = w.addr;
    r.source = src;
    r.requestCycle = w.requestCycle;
    if (w.isWrite) {
        // Permission is held right now: update the value store.
        fmem->write64(w.addr, w.writeValue);
        r.doneCycle = std::max(now + 1, fill_cycle + 1);
    } else {
        r.value = fmem->read64(w.addr);
        r.doneCycle = std::max(now, fill_cycle) + params.l1HitLatency;
    }
    dueResults.emplace(r.doneCycle, r);
}

void
PrivateCache::access(const MemAccess &a, Cycle now)
{
    const Addr line = lineAlign(a.addr);
    stats_.counter("accesses")++;

    auto *l2line = l2Array.lookup(line, now);
    const bool have_perm =
        l2line && (l2line->state == CacheState::Modified || !a.needExclusive);

    if (have_perm) {
        const bool l1hit = l1Array.lookup(line, now) != nullptr;
        const FillSource src = l1hit ? FillSource::L1Hit : FillSource::L2Hit;
        const Cycle lat = l1hit ? params.l1HitLatency : params.l2HitLatency;
        if (!l1hit) {
            stats_.counter("l1Misses")++;
            stats_.average("missLatency").sample(static_cast<double>(lat));
            auto *way = l1Array.victim(line,
                [this](Addr t) { return client->lineLocked(t); }, now);
            if (way)
                l1Array.fill(way, line, l2line->state, now);
        } else {
            stats_.counter("l1Hits")++;
        }

        if (a.isAtomic) {
            client->atomicLineReady(a.token, line, src, now, false, now);
        } else {
            MemResult r;
            r.token = a.token;
            r.addr = a.addr;
            r.source = src;
            r.requestCycle = now;
            if (a.isWrite) {
                fmem->write64(a.addr, a.writeValue);
                r.doneCycle = now + lat;
            } else {
                r.value = fmem->read64(a.addr);
                r.doneCycle = now + lat;
            }
            dueResults.emplace(r.doneCycle, r);
        }
        return;
    }

    // Miss (or S->M upgrade).
    stats_.counter("l1Misses")++;
    ROWSIM_TRACE(TraceCategory::Coherence, now,
                 "l1d%u miss line=%#llx excl=%d atomic=%d", coreId,
                 static_cast<unsigned long long>(line),
                 a.needExclusive ? 1 : 0, a.isAtomic ? 1 : 0);
    // The atomic's span leaves execute here; whether the request goes
    // out now, coalesces, or waits for a free MSHR, it is in the memory
    // system either way (idempotent on drainPending re-entry).
    if (SpanTracker::enabled() && spans_ && a.spanId)
        spans_->transition(a.spanId, SpanSeg::L1Miss, now);
    MshrWaiter w;
    w.token = a.token;
    w.requestCycle = now;
    w.needExclusive = a.needExclusive;
    w.isAtomic = a.isAtomic;
    w.isWrite = a.isWrite;
    w.writeValue = a.writeValue;
    w.addr = a.addr;
    w.spanId = a.spanId;

    auto it = mshrs.find(line);
    if (it != mshrs.end()) {
        if (it->second.prefetchOnly)
            it->second.prefetchOnly = false;
        it->second.waiters.push_back(w);
        stats_.counter("mshrCoalesced")++;
        return;
    }
    if (mshrs.size() >= params.mshrs) {
        pendingAccesses.emplace_back(a, now);
        stats_.counter("mshrFull")++;
        return;
    }

    Mshr m;
    m.line = line;
    m.exclusiveRequested = a.needExclusive;
    m.netIssueCycle = now;
    m.waiters.push_back(w);
    mshrs.emplace(line, std::move(m));
    sendRequest(line, a.needExclusive, false, a.spanId, now);

    if (params.prefetcher && !a.isWrite && !a.isAtomic)
        maybePrefetch(line, now);
}

void
PrivateCache::maybePrefetch(Addr line, Cycle now)
{
    const Addr next = line + lineBytes;
    if (l2Array.peek(next) || mshrs.count(next) || evicting.count(next))
        return;
    if (mshrs.size() + 1 >= params.mshrs)
        return; // keep headroom for demand misses
    Mshr m;
    m.line = next;
    m.exclusiveRequested = false;
    m.prefetchOnly = true;
    m.netIssueCycle = now;
    mshrs.emplace(next, std::move(m));
    sendRequest(next, false, true, 0, now);
}

void
PrivateCache::evictLine(CacheArray::Line *way, Cycle now)
{
    const Addr victim_line = way->tag;
    if (way->state == CacheState::Modified) {
        evicting[victim_line] = now;
        Msg m;
        m.type = MsgType::PutM;
        m.line = victim_line;
        m.src = coreId;
        m.dst = net->homeBank(victim_line);
        m.requester = coreId;
        net->send(m, now);
        stats_.counter("writebacks")++;
    }
    l1Array.invalidate(victim_line);
    way->state = CacheState::Invalid;
    way->tag = invalidAddr;
    way->lastUse = 0; // canonical invalid slot, see CacheArray::save
}

bool
PrivateCache::installLine(Addr line, CacheState state, Cycle now)
{
    auto pinned = [this](Addr t) { return client->lineLocked(t); };

    // Upgrade fills (S -> M) must update the existing entry in place;
    // installing a second copy would leave a stale Shared duplicate.
    if (auto *present = l2Array.lookup(line, now)) {
        present->state = state;
    } else {
        auto *way = l2Array.victim(line, pinned, now);
        if (!way)
            return false;
        if (way->valid())
            evictLine(way, now);
        l2Array.fill(way, line, state, now);
    }

    if (auto *l1present = l1Array.lookup(line, now)) {
        l1present->state = state;
    } else {
        auto *l1way = l1Array.victim(line, pinned, now);
        if (l1way)
            l1Array.fill(l1way, line, state, now);
    }
    return true;
}

void
PrivateCache::handleFill(const Msg &msg, Cycle now)
{
    const Addr line = msg.line;
    auto it = mshrs.find(line);
    ROWSIM_ASSERT(it != mshrs.end(), "fill without MSHR, line %#lx core %u",
                  static_cast<unsigned long>(line), coreId);
    Mshr &m = it->second;

    const CacheState state =
        msg.excl ? CacheState::Modified : CacheState::Shared;
    if (!installLine(line, state, now)) {
        deferredFills.push_back(msg);
        return;
    }

    Msg unb;
    unb.type = MsgType::Unblock;
    unb.line = line;
    unb.src = coreId;
    unb.dst = net->homeBank(line);
    unb.requester = coreId;
    unb.spanId = msg.spanId;
    net->send(unb, now);

    FillSource src = FillSource::LLCHit;
    if (msg.fromPrivateCache)
        src = FillSource::RemoteCache;
    else if (msg.fromMemory)
        src = FillSource::Memory;
    // Transfer provenance: a cache-to-cache fill means this line moved
    // between private caches (ping-pong ingredient).
    if (Profiler::enabled(ProfCategory::Lines) && prof_ &&
        msg.fromPrivateCache) {
        prof_->lineRemoteFill(line);
    }
    ROWSIM_TRACE(TraceCategory::Coherence, now,
                 "l1d%u fill line=%#llx state=%s from=%s latency=%llu",
                 coreId, static_cast<unsigned long long>(line),
                 state == CacheState::Modified ? "M" : "S",
                 msg.fromPrivateCache ? "remote-cache"
                 : msg.fromMemory    ? "memory"
                                     : "llc",
                 static_cast<unsigned long long>(now - m.netIssueCycle));

    std::vector<MshrWaiter> still_waiting;
    for (const auto &w : m.waiters) {
        if (w.needExclusive && state == CacheState::Shared) {
            still_waiting.push_back(w);
            continue;
        }
        stats_.average("missLatency").sample(
            static_cast<double>(now - w.requestCycle));
        if (msg.fromPrivateCache)
            stats_.counter("remoteFills")++;
        completeWaiter(w, src, now, m.netIssueCycle, msg.contentionHint,
                       now);
    }

    if (!still_waiting.empty()) {
        // A GetS fill cannot satisfy exclusive waiters: upgrade.
        m.waiters = std::move(still_waiting);
        m.exclusiveRequested = true;
        m.netIssueCycle = now;
        std::uint64_t sid = 0;
        for (const MshrWaiter &uw : m.waiters) {
            if (uw.spanId) {
                sid = uw.spanId;
                break;
            }
        }
        sendRequest(line, true, false, sid, now);
        return;
    }

    mshrs.erase(it);
    drainPending(now);
}

void
PrivateCache::applyExternal(const Msg &msg, Cycle now)
{
    const Addr line = msg.line;
    switch (msg.type) {
      case MsgType::Inv: {
        l1Array.invalidate(line);
        l2Array.invalidate(line);
        Msg ack;
        ack.type = MsgType::InvAck;
        ack.line = line;
        ack.src = coreId;
        ack.dst = msg.src;
        ack.requester = msg.requester;
        ack.spanId = msg.spanId;
        net->send(ack, now);
        stats_.counter("invalidations")++;
        break;
      }
      case MsgType::FwdGetS:
      case MsgType::FwdGetX: {
        const bool excl = msg.type == MsgType::FwdGetX;
        auto *l2line = l2Array.lookup(line, now);
        if (l2line) {
            ROWSIM_ASSERT(l2line->state == CacheState::Modified,
                          "forward %s to non-owner core %u, line %#lx "
                          "(state %d, mshr %d, evicting %d)",
                          msgTypeName(msg.type), coreId,
                          static_cast<unsigned long>(line),
                          static_cast<int>(l2line->state),
                          static_cast<int>(mshrs.count(line)),
                          static_cast<int>(evicting.count(line)));
            if (excl) {
                l1Array.invalidate(line);
                l2Array.invalidate(line);
            } else {
                l2line->state = CacheState::Shared;
                if (auto *l1line = l1Array.lookup(line, now))
                    l1line->state = CacheState::Shared;
            }
        } else {
            // Our PutM crossed with this forward: answer from the
            // writeback buffer.
            ROWSIM_ASSERT(evicting.count(line),
                          "forward for absent line %#lx at core %u",
                          static_cast<unsigned long>(line), coreId);
        }
        Msg data;
        data.type = MsgType::DataOwner;
        data.line = line;
        data.src = coreId;
        data.dst = msg.requester;
        data.requester = msg.requester;
        data.excl = excl;
        data.contentionHint = msg.contentionHint; // dir-notify extension
        data.fromPrivateCache = true;
        data.spanId = msg.spanId;
        net->send(data, now);
        stats_.counter("ownerForwards")++;
        break;
      }
      default:
        ROWSIM_PANIC("applyExternal: unexpected %s", msgTypeName(msg.type));
    }
}

void
PrivateCache::deliver(const Msg &msg, Cycle now)
{
    switch (msg.type) {
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::DataOwner:
        handleFill(msg, now);
        break;

      case MsgType::Inv:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
        // RoW snoop hook: EW/RW contention detection (§IV-A/B).
        client->externalRequestSnoop(msg.line, now);
        if (client->lineLocked(msg.line)) {
            stalledExternals.push_back({msg, now});
            stats_.counter("lockStalledExternals")++;
            ROWSIM_TRACE(TraceCategory::Coherence, now,
                         "l1d%u external %s stalled on locked line=%#llx "
                         "from core%u",
                         coreId, msgTypeName(msg.type),
                         static_cast<unsigned long long>(msg.line),
                         msg.requester);
        } else {
            applyExternal(msg, now);
        }
        break;

      case MsgType::WBAck:
        evicting.erase(msg.line);
        break;

      default:
        ROWSIM_PANIC("private cache cannot handle %s",
                     msgTypeName(msg.type));
    }
}

void
PrivateCache::unlockNotify(Addr line, Cycle now)
{
    for (auto it = stalledExternals.begin(); it != stalledExternals.end();) {
        if (it->msg.line == line && !client->lineLocked(line)) {
            Msg m = it->msg;
            const Cycle arrival = it->arrival;
            it = stalledExternals.erase(it);
            stats_.average("lockStallCycles").sample(
                static_cast<double>(now - m.sent));
            if (Profiler::enabled(ProfCategory::Lines) && prof_)
                prof_->lineLockStall(line, now - m.sent);
            // The victim span (the remote requester this Fwd/Inv serves)
            // spent [arrival, now] against our AQ lock.
            if (SpanTracker::enabled() && spans_ && m.spanId)
                spans_->lockStall(m.spanId, arrival, now);
            ROWSIM_TRACE_COMPLETE(
                TraceCategory::Coherence, static_cast<int>(coreId),
                traceTidCache, "lockStall", arrival, now,
                strprintf("{\"line\":\"%#llx\",\"type\":\"%s\","
                          "\"requester\":%u}",
                          static_cast<unsigned long long>(m.line),
                          msgTypeName(m.type), m.requester));
            applyExternal(m, now);
        } else {
            ++it;
        }
    }
}

void
PrivateCache::drainPending(Cycle now)
{
    while (!pendingAccesses.empty() && mshrs.size() < params.mshrs) {
        auto [a, req_cycle] = pendingAccesses.front();
        pendingAccesses.pop_front();
        (void)req_cycle; // conservatively re-time from now
        access(a, now);
    }
}

void
PrivateCache::tick(Cycle now)
{
    while (!dueResults.empty() && dueResults.begin()->first <= now) {
        MemResult r = dueResults.begin()->second;
        dueResults.erase(dueResults.begin());
        client->accessDone(r);
    }

    if (!deferredFills.empty()) {
        std::vector<Msg> retry;
        retry.swap(deferredFills);
        for (const auto &msg : retry)
            handleFill(msg, now);
    }

    if (!stalledExternals.empty()) {
        for (auto it = stalledExternals.begin();
             it != stalledExternals.end();) {
            if (now - it->arrival > lockStealThreshold)
                stats_.counter("stealAttempts")++;
            if (now - it->arrival > lockStealThreshold &&
                client->tryForceUnlock(it->msg.line, now)) {
                Msg m = it->msg;
                const Cycle arrival = it->arrival;
                it = stalledExternals.erase(it);
                stats_.counter("lockSteals")++;
                if (Profiler::enabled(ProfCategory::Lines) && prof_)
                    prof_->lineSteal(m.line);
                if (SpanTracker::enabled() && spans_ && m.spanId)
                    spans_->lockStall(m.spanId, arrival, now);
                ROWSIM_TRACE(TraceCategory::Coherence, now,
                             "l1d%u lock steal line=%#llx after %llu "
                             "stalled cycles (requester core%u)",
                             coreId,
                             static_cast<unsigned long long>(m.line),
                             static_cast<unsigned long long>(now - arrival),
                             m.requester);
                ROWSIM_TRACE_INSTANT(
                    TraceCategory::Coherence, static_cast<int>(coreId),
                    traceTidCache, "lockSteal", now,
                    strprintf("{\"line\":\"%#llx\",\"requester\":%u}",
                              static_cast<unsigned long long>(m.line),
                              m.requester));
                applyExternal(m, now);
            } else {
                ++it;
            }
        }
    }
}

bool
PrivateCache::idle() const
{
    return mshrs.empty() && dueResults.empty() && pendingAccesses.empty() &&
           evicting.empty() && stalledExternals.empty() &&
           deferredFills.empty();
}

Cycle
PrivateCache::nextEventCycle(Cycle now) const
{
    // Deferred fills are retried every tick until a victim frees up.
    if (!deferredFills.empty())
        return now + 1;
    Cycle next = invalidCycle;
    auto consider = [&](Cycle c) {
        if (c < next)
            next = c;
    };
    if (!dueResults.empty())
        consider(std::max(dueResults.begin()->first, now + 1));
    // A stalled external becomes actionable the first tick strictly past
    // the steal threshold; from then on the steal-attempt counter ticks
    // every cycle, so the bound collapses to now+1 (no skipping while a
    // steal is being attempted — the per-tick stat must keep advancing).
    for (const auto &s : stalledExternals)
        consider(std::max(s.arrival + lockStealThreshold + 1, now + 1));
    return next;
}

bool
PrivateCache::forceEvict(Addr line, Cycle now)
{
    line = lineAlign(line);
    auto *way = l2Array.lookup(line, now);
    if (!way || client->lineLocked(line) || mshrs.count(line) ||
        evicting.count(line)) {
        return false;
    }
    evictLine(way, now);
    stats_.counter("forcedEvictions")++;
    ROWSIM_TRACE(TraceCategory::Coherence, now,
                 "l1d%u fault-injected eviction line=%#llx", coreId,
                 static_cast<unsigned long long>(line));
    return true;
}

void
PrivateCache::testSetLineState(Addr line, CacheState state, Cycle now)
{
    line = lineAlign(line);
    if (auto *present = l2Array.lookup(line, now)) {
        present->state = state;
        return;
    }
    auto *way = l2Array.victim(line, nullptr, now);
    ROWSIM_ASSERT(way != nullptr, "testSetLineState: no victim way");
    if (way->valid())
        evictLine(way, now);
    l2Array.fill(way, line, state, now);
}

void
PrivateCache::funcInstall(Addr line, CacheState state, Cycle now,
                          std::vector<Addr> *evicted_dirty)
{
    line = lineAlign(line);
    if (auto *present = l2Array.lookup(line, now)) {
        present->state = state;
    } else {
        auto *way = l2Array.victim(line, nullptr, now);
        ROWSIM_ASSERT(way != nullptr, "funcInstall: no victim way");
        if (way->valid()) {
            if (way->state == CacheState::Modified && evicted_dirty)
                evicted_dirty->push_back(way->tag);
            l1Array.invalidate(way->tag);
            way->state = CacheState::Invalid;
            way->tag = invalidAddr;
            way->lastUse = 0; // canonical invalid slot (CacheArray::save)
        }
        l2Array.fill(way, line, state, now);
    }

    if (auto *l1present = l1Array.lookup(line, now)) {
        l1present->state = state;
    } else {
        auto *l1way = l1Array.victim(line, nullptr, now);
        if (l1way)
            l1Array.fill(l1way, line, state, now);
    }
}

CacheState
PrivateCache::funcDropLine(Addr line)
{
    line = lineAlign(line);
    const CacheState was = lineState(line);
    if (was != CacheState::Invalid) {
        l1Array.invalidate(line);
        l2Array.invalidate(line);
    }
    return was;
}

bool
PrivateCache::funcDowngrade(Addr line, Cycle now)
{
    line = lineAlign(line);
    auto *present = l2Array.lookup(line, now);
    if (!present)
        return false;
    present->state = CacheState::Shared;
    if (auto *l1present = l1Array.lookup(line, now))
        l1present->state = CacheState::Shared;
    return true;
}

void
PrivateCache::dumpDiag(std::FILE *out, Cycle now) const
{
    std::fprintf(out,
                 "{\"cache\":\"l1d%u\",\"idle\":%s,\"mshrs\":[", coreId,
                 idle() ? "true" : "false");
    bool first = true;
    for (const auto &kv : mshrs) {
        std::fprintf(out,
                     "%s{\"line\":\"%#llx\",\"excl\":%d,\"prefetch\":%d,"
                     "\"waiters\":%zu,\"age\":%llu}",
                     first ? "" : ",",
                     static_cast<unsigned long long>(kv.first),
                     kv.second.exclusiveRequested ? 1 : 0,
                     kv.second.prefetchOnly ? 1 : 0,
                     kv.second.waiters.size(),
                     static_cast<unsigned long long>(
                         now - kv.second.netIssueCycle));
        first = false;
    }
    std::fprintf(out, "],\"evicting\":[");
    first = true;
    for (const auto &kv : evicting) {
        std::fprintf(out, "%s{\"line\":\"%#llx\",\"age\":%llu}",
                     first ? "" : ",",
                     static_cast<unsigned long long>(kv.first),
                     static_cast<unsigned long long>(now - kv.second));
        first = false;
    }
    std::fprintf(out, "],\"stalledExternals\":[");
    first = true;
    for (const auto &s : stalledExternals) {
        std::fprintf(out,
                     "%s{\"type\":\"%s\",\"line\":\"%#llx\","
                     "\"requester\":%u,\"age\":%llu}",
                     first ? "" : ",", msgTypeName(s.msg.type),
                     static_cast<unsigned long long>(s.msg.line),
                     s.msg.requester,
                     static_cast<unsigned long long>(now - s.arrival));
        first = false;
    }
    std::fprintf(out,
                 "],\"pendingAccesses\":%zu,\"deferredFills\":%zu,"
                 "\"dueResults\":%zu}",
                 pendingAccesses.size(), deferredFills.size(),
                 dueResults.size());
}

CacheState
PrivateCache::lineState(Addr line) const
{
    const auto *l = l2Array.peek(line);
    return l ? l->state : CacheState::Invalid;
}

bool
PrivateCache::inL1(Addr line) const
{
    return l1Array.peek(line) != nullptr;
}

namespace
{

void
saveAccess(Ser &s, const MemAccess &a)
{
    s.u64(a.addr);
    s.u64(a.token);
    s.b(a.needExclusive);
    s.b(a.isAtomic);
    s.b(a.isWrite);
    s.u64(a.writeValue);
}

void
restoreAccess(Deser &d, MemAccess &a)
{
    a.addr = d.u64();
    a.token = d.u64();
    a.needExclusive = d.b();
    a.isAtomic = d.b();
    a.isWrite = d.b();
    a.writeValue = d.u64();
}

void
saveResult(Ser &s, const MemResult &r)
{
    s.u64(r.token);
    s.u64(r.addr);
    s.u8(static_cast<std::uint8_t>(r.source));
    s.u64(r.requestCycle);
    s.u64(r.doneCycle);
    s.u64(r.value);
}

void
restoreResult(Deser &d, MemResult &r)
{
    r.token = d.u64();
    r.addr = d.u64();
    r.source = static_cast<FillSource>(d.u8());
    r.requestCycle = d.u64();
    r.doneCycle = d.u64();
    r.value = d.u64();
}

} // namespace

void
PrivateCache::save(Ser &s) const
{
    s.section("l1cache");
    l1Array.save(s);
    l2Array.save(s);

    // Unordered maps are serialized in sorted key order so images are
    // identical regardless of hash-table iteration order.
    std::map<Addr, const Mshr *> sortedMshrs;
    for (const auto &kv : mshrs)
        sortedMshrs.emplace(kv.first, &kv.second);
    s.u64(sortedMshrs.size());
    for (const auto &[line, m] : sortedMshrs) {
        s.u64(line);
        s.u64(m->line);
        s.b(m->exclusiveRequested);
        s.b(m->prefetchOnly);
        s.u64(m->netIssueCycle);
        s.u64(m->waiters.size());
        for (const MshrWaiter &w : m->waiters) {
            s.u64(w.token);
            s.u64(w.requestCycle);
            s.b(w.needExclusive);
            s.b(w.isAtomic);
            s.b(w.isWrite);
            s.u64(w.writeValue);
            s.u64(w.addr);
        }
    }

    s.u64(pendingAccesses.size());
    for (const auto &[a, cycle] : pendingAccesses) {
        saveAccess(s, a);
        s.u64(cycle);
    }

    std::map<Addr, Cycle> sortedEvicting(evicting.begin(), evicting.end());
    s.u64(sortedEvicting.size());
    for (const auto &[line, cycle] : sortedEvicting) {
        s.u64(line);
        s.u64(cycle);
    }

    s.u64(stalledExternals.size());
    for (const StalledExternal &e : stalledExternals) {
        saveMsg(s, e.msg);
        s.u64(e.arrival);
    }

    s.u64(deferredFills.size());
    for (const Msg &m : deferredFills)
        saveMsg(s, m);

    s.u64(dueResults.size());
    for (const auto &[cycle, r] : dueResults) {
        s.u64(cycle);
        saveResult(s, r);
    }

    s.u64(lockStealThreshold);
}

void
PrivateCache::restore(Deser &d)
{
    d.section("l1cache");
    l1Array.restore(d);
    l2Array.restore(d);

    mshrs.clear();
    const std::uint64_t nMshrs = d.u64();
    for (std::uint64_t i = 0; i < nMshrs; i++) {
        const Addr key = d.u64();
        Mshr &m = mshrs[key];
        m.line = d.u64();
        m.exclusiveRequested = d.b();
        m.prefetchOnly = d.b();
        m.netIssueCycle = d.u64();
        m.waiters.resize(d.u64());
        for (MshrWaiter &w : m.waiters) {
            w.token = d.u64();
            w.requestCycle = d.u64();
            w.needExclusive = d.b();
            w.isAtomic = d.b();
            w.isWrite = d.b();
            w.writeValue = d.u64();
            w.addr = d.u64();
            w.spanId = 0; // spans never survive a restore
        }
    }

    pendingAccesses.clear();
    const std::uint64_t nPending = d.u64();
    for (std::uint64_t i = 0; i < nPending; i++) {
        MemAccess a;
        restoreAccess(d, a);
        const Cycle cycle = d.u64();
        pendingAccesses.emplace_back(a, cycle);
    }

    evicting.clear();
    const std::uint64_t nEvicting = d.u64();
    for (std::uint64_t i = 0; i < nEvicting; i++) {
        const Addr line = d.u64();
        evicting[line] = d.u64();
    }

    stalledExternals.clear();
    const std::uint64_t nStalled = d.u64();
    for (std::uint64_t i = 0; i < nStalled; i++) {
        StalledExternal e;
        restoreMsg(d, e.msg);
        e.arrival = d.u64();
        stalledExternals.push_back(e);
    }

    deferredFills.resize(d.u64());
    for (Msg &m : deferredFills)
        restoreMsg(d, m);

    dueResults.clear();
    const std::uint64_t nDue = d.u64();
    for (std::uint64_t i = 0; i < nDue; i++) {
        const Cycle cycle = d.u64();
        MemResult r;
        restoreResult(d, r);
        dueResults.emplace_hint(dueResults.end(), cycle, r);
    }

    lockStealThreshold = d.u64();
}

} // namespace rowsim
