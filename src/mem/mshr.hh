/**
 * @file
 * Miss Status Holding Register bookkeeping for the private cache unit.
 */

#ifndef ROWSIM_MEM_MSHR_HH
#define ROWSIM_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rowsim
{

/** One outstanding demand/prefetch access registered with an MSHR. */
struct MshrWaiter
{
    std::uint64_t token = 0;   ///< core-side identifier, echoed back
    Cycle requestCycle = 0;    ///< when the core issued the access
    bool needExclusive = false;
    bool isAtomic = false;
    bool isWrite = false;
    std::uint64_t writeValue = 0;
    Addr addr = invalidAddr;   ///< full (not line-aligned) address
    /** Atomic lifetime span of the waiting access (0 = untraced;
     *  observability-only, not serialized). */
    std::uint64_t spanId = 0;
};

/** An outstanding miss: one per line with a request in the network. */
struct Mshr
{
    Addr line = invalidAddr;
    /** Did the request in flight ask for exclusive permission? */
    bool exclusiveRequested = false;
    bool prefetchOnly = false;
    /** Cycle the GetS/GetX actually entered the network. */
    Cycle netIssueCycle = 0;
    std::vector<MshrWaiter> waiters;
};

} // namespace rowsim

#endif // ROWSIM_MEM_MSHR_HH
