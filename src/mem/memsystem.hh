/**
 * @file
 * Functional (value) memory and the memory-system container that owns the
 * network, private caches, and directory banks.
 *
 * Timing and values are deliberately separated: the coherence protocol
 * moves permissions, while values live here and are read/written at the
 * timing instants when the protocol holds the corresponding permission.
 * The atomicity invariant tests rely on this: if locking were broken, two
 * cores could read the same counter value and lose an update.
 */

#ifndef ROWSIM_MEM_MEMSYSTEM_HH
#define ROWSIM_MEM_MEMSYSTEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "mem/directory.hh"
#include "mem/l1cache.hh"
#include "net/network.hh"

namespace rowsim
{

/** Word-granular (8-byte) value store backing the whole address space. */
class FunctionalMemory
{
  public:
    std::uint64_t
    read64(Addr addr) const
    {
        auto it = words.find(addr & ~7ULL);
        return it == words.end() ? 0 : it->second;
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        words[addr & ~7ULL] = value;
    }

    /** Serialized in sorted address order (hash order never leaks). */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    std::unordered_map<Addr, std::uint64_t> words;
};

/**
 * Owns every memory-side component of the simulated chip. Cores attach
 * themselves as MemClients of their PrivateCache.
 */
class MemSystem
{
  public:
    explicit MemSystem(const SystemParams &params);

    PrivateCache &cache(CoreId core) { return *caches[core]; }
    Directory &directory(unsigned bank) { return *banks[bank]; }
    Network &network() { return net; }
    FunctionalMemory &functional() { return fmem; }
    unsigned numBanks() const { return static_cast<unsigned>(banks.size()); }

    /** Advance all memory-side components one cycle. */
    void tick(Cycle now);

    /**
     * Functional fast-mode access (src/sim/funcmode.cc): apply the MSI
     * protocol's end state for one request synchronously — requester
     * cache and LRU arrays warmed, remote copies dropped/downgraded,
     * directory entry and LLC presence updated, dirty victims written
     * back — with no message ever in flight. Must only be called when
     * the memory system is idle (func mode never overlaps a detail
     * transaction).
     *
     * @param exclusive store or atomic (GetX end state) vs load (GetS)
     * @return true when the data came from a remote private cache (the
     *         owner forward that detail mode reports as
     *         FillSource::RemoteCache — the RoW Dir detector's
     *         contention evidence)
     */
    bool funcAccess(CoreId core, Addr addr, bool exclusive, Cycle now);

    /** True when no message, miss, or transaction is outstanding. */
    bool idle() const;

    /** Earliest future cycle any memory-side component does anything
     *  (network delivery, cache completion, directory wake) absent new
     *  core activity. invalidCycle when quiescent (fast-forward bound). */
    Cycle nextEventCycle(Cycle now) const;

    /** Compose every memory-side component's architectural state. */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    Network net;
    FunctionalMemory fmem;
    std::vector<std::unique_ptr<PrivateCache>> caches;
    std::vector<std::unique_ptr<Directory>> banks;
};

} // namespace rowsim

#endif // ROWSIM_MEM_MEMSYSTEM_HH
