#include "mem/cache_array.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

const char *
fillSourceName(FillSource s)
{
    switch (s) {
      case FillSource::L1Hit: return "L1Hit";
      case FillSource::L2Hit: return "L2Hit";
      case FillSource::LLCHit: return "LLCHit";
      case FillSource::Memory: return "Memory";
      case FillSource::RemoteCache: return "RemoteCache";
      case FillSource::Forwarded: return "Forwarded";
    }
    return "?";
}

CacheArray::CacheArray(unsigned sets, unsigned ways)
    : numSets(sets), numWays(ways),
      lines(static_cast<std::size_t>(sets) * ways)
{
    ROWSIM_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
                  "cache sets must be a power of two, got %u", sets);
    ROWSIM_ASSERT(ways > 0, "cache must have at least one way");
}

unsigned
CacheArray::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>(lineNum(line_addr)) & (numSets - 1);
}

CacheArray::Line *
CacheArray::lookup(Addr line_addr, Cycle now)
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned) {
            l.lastUse = now;
            return &l;
        }
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::peek(Addr line_addr) const
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        const Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned)
            return &l;
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victim(Addr line_addr, const std::function<bool(Addr)> &pinned,
                   Cycle now)
{
    (void)now;
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    Line *best = nullptr;
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (!l.valid())
            return &l;
        if (pinned && pinned(l.tag))
            continue;
        if (!best || l.lastUse < best->lastUse)
            best = &l;
    }
    return best;
}

void
CacheArray::fill(Line *way, Addr line_addr, CacheState state, Cycle now)
{
    ROWSIM_ASSERT(way != nullptr, "fill into null way");
    way->tag = lineAlign(line_addr);
    way->state = state;
    way->lastUse = now;
}

bool
CacheArray::invalidate(Addr line_addr)
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned) {
            l.state = CacheState::Invalid;
            l.tag = invalidAddr;
            // Canonical invalid slot (snapshots serialize valid lines
            // only; a stale LRU stamp here is never read).
            l.lastUse = 0;
            return true;
        }
    }
    return false;
}

void
CacheArray::save(Ser &s) const
{
    // Sparse: only valid lines travel. Invalid slots are canonical
    // (default-constructed; invalidation resets the LRU stamp), so
    // skipping them is exact — and it shrinks large, mostly-cold
    // arrays from megabytes to the touched working set.
    s.section("cachearray");
    s.u32(numSets);
    s.u32(numWays);
    std::uint64_t valid = 0;
    for (const Line &l : lines)
        valid += l.valid();
    s.u64(valid);
    // Compact encoding: slot indices as ascending deltas, tags with the
    // always-zero line-offset bits shifted off, LRU stamps as varints.
    // Large arrays are second only to the directory in image size.
    std::uint64_t prevSlot = 0;
    for (std::size_t i = 0; i < lines.size(); i++) {
        const Line &l = lines[i];
        if (!l.valid())
            continue;
        s.vu64(i - prevSlot);
        prevSlot = i;
        s.vu64(l.tag >> 6); // tags are lineAlign()ed: low 6 bits zero
        s.u8(static_cast<std::uint8_t>(l.state));
        s.vu64(l.lastUse);
    }
}

void
CacheArray::restore(Deser &d)
{
    d.section("cachearray");
    const std::uint32_t sets = d.u32();
    const std::uint32_t ways = d.u32();
    if (sets != numSets || ways != numWays) {
        throw SnapshotError(strprintf(
            "cache array geometry mismatch: image %ux%u, configured "
            "%ux%u",
            sets, ways, numSets, numWays));
    }
    std::fill(lines.begin(), lines.end(), Line{});
    const std::uint64_t valid = d.u64();
    std::uint64_t prevSlot = 0;
    for (std::uint64_t k = 0; k < valid; k++) {
        const std::uint64_t i = prevSlot + d.vu64();
        prevSlot = i;
        if (i >= lines.size()) {
            throw SnapshotError(strprintf(
                "cache array slot %llu out of range (%zu lines)",
                static_cast<unsigned long long>(i), lines.size()));
        }
        Line &l = lines[i];
        l.tag = d.vu64() << 6;
        l.state = static_cast<CacheState>(d.u8());
        l.lastUse = d.vu64();
    }
}

} // namespace rowsim
