#include "mem/cache_array.hh"

#include "common/log.hh"

namespace rowsim
{

const char *
fillSourceName(FillSource s)
{
    switch (s) {
      case FillSource::L1Hit: return "L1Hit";
      case FillSource::L2Hit: return "L2Hit";
      case FillSource::LLCHit: return "LLCHit";
      case FillSource::Memory: return "Memory";
      case FillSource::RemoteCache: return "RemoteCache";
      case FillSource::Forwarded: return "Forwarded";
    }
    return "?";
}

CacheArray::CacheArray(unsigned sets, unsigned ways)
    : numSets(sets), numWays(ways),
      lines(static_cast<std::size_t>(sets) * ways)
{
    ROWSIM_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
                  "cache sets must be a power of two, got %u", sets);
    ROWSIM_ASSERT(ways > 0, "cache must have at least one way");
}

unsigned
CacheArray::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>(lineNum(line_addr)) & (numSets - 1);
}

CacheArray::Line *
CacheArray::lookup(Addr line_addr, Cycle now)
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned) {
            l.lastUse = now;
            return &l;
        }
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::peek(Addr line_addr) const
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        const Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned)
            return &l;
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victim(Addr line_addr, const std::function<bool(Addr)> &pinned,
                   Cycle now)
{
    (void)now;
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    Line *best = nullptr;
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (!l.valid())
            return &l;
        if (pinned && pinned(l.tag))
            continue;
        if (!best || l.lastUse < best->lastUse)
            best = &l;
    }
    return best;
}

void
CacheArray::fill(Line *way, Addr line_addr, CacheState state, Cycle now)
{
    ROWSIM_ASSERT(way != nullptr, "fill into null way");
    way->tag = lineAlign(line_addr);
    way->state = state;
    way->lastUse = now;
}

bool
CacheArray::invalidate(Addr line_addr)
{
    Addr aligned = lineAlign(line_addr);
    unsigned set = setIndex(aligned);
    for (unsigned w = 0; w < numWays; w++) {
        Line &l = lines[static_cast<std::size_t>(set) * numWays + w];
        if (l.valid() && l.tag == aligned) {
            l.state = CacheState::Invalid;
            l.tag = invalidAddr;
            return true;
        }
    }
    return false;
}

} // namespace rowsim
