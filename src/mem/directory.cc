#include "mem/directory.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"

namespace rowsim
{

namespace
{
std::uint64_t
coreBit(CoreId c)
{
    return 1ULL << c;
}
} // namespace

Directory::Directory(unsigned bank_index, unsigned num_cores,
                     const MemParams &p, Network *network)
    : bankIndex(bank_index), numCores(num_cores),
      myNode(num_cores + bank_index), params(p), net(network),
      llcArray(p.l3SetsPerBank, p.l3Ways),
      stats_(strprintf("dir%u", bank_index))
{
    ROWSIM_ASSERT(num_cores <= 64, "sharer bitmask supports <= 64 cores");
}

void
Directory::sendToCore(MsgType t, Addr line, CoreId core, CoreId requester,
                      Cycle now, bool excl, bool from_memory,
                      bool contention_hint, std::uint64_t span_id)
{
    Msg m;
    m.type = t;
    m.line = line;
    m.src = myNode;
    m.dst = core;
    m.requester = requester;
    m.excl = excl;
    m.fromMemory = from_memory;
    m.contentionHint = contention_hint;
    m.fromPrivateCache = false;
    m.spanId = span_id;
    net->send(m, now);
}

Cycle
Directory::dataLatency(Addr line, Cycle now, bool &from_memory)
{
    if (llcArray.lookup(line, now)) {
        from_memory = false;
        return params.l3HitLatency;
    }
    from_memory = true;
    // Fetch from memory and install the presence bit. LLC evictions only
    // drop presence (data always reachable in functional memory).
    auto *way = llcArray.victim(line, nullptr, now);
    llcArray.fill(way, line, CacheState::Shared, now);
    stats_.counter("llcMisses")++;
    return params.l3HitLatency + params.memoryLatency;
}

void
Directory::maybeSendData(Entry &e, Cycle now)
{
    if (!e.dataPending || e.pendingAcks > 0)
        return;
    if (e.dataReady > now) {
        wake.emplace(e.dataReady, e.dataMsg.line);
        return;
    }
    net->send(e.dataMsg, now);
    e.dataPending = false;
}

void
Directory::processRequest(Entry &e, const Msg &msg, Cycle now,
                          bool was_queued)
{
    ROWSIM_ASSERT(e.state != DirState::Blocked,
                  "processRequest on blocked entry");
    const Addr line = msg.line;
    const CoreId req = msg.requester;
    // Directory-notification extension: a request that had to queue, or
    // that leaves others queued behind it, observed contention.
    const bool hint = was_queued || !e.queued.empty();

    switch (msg.type) {
      case MsgType::GetS:
        stats_.counter("getS")++;
        if (e.state == DirState::Invalid || e.state == DirState::Shared) {
            bool from_mem = false;
            Cycle lat = dataLatency(line, now, from_mem);
            e.nextState = DirState::Shared;
            e.nextSharers = e.sharers | coreBit(req);
            e.nextOwner = invalidCore;
            e.dataMsg = Msg{};
            e.dataMsg.type = MsgType::Data;
            e.dataMsg.line = line;
            e.dataMsg.src = myNode;
            e.dataMsg.dst = req;
            e.dataMsg.requester = req;
            e.dataMsg.excl = false;
            e.dataMsg.fromMemory = from_mem;
            e.dataMsg.contentionHint = hint;
            e.dataMsg.spanId = msg.spanId;
            e.dataPending = true;
            e.dataReady = now + lat;
            e.pendingAcks = 0;
        } else { // Modified: forward to owner
            if (oracle)
                oracle(line, req, e.owner, false, now);
            stats_.counter("fwdGetS")++;
            sendToCore(MsgType::FwdGetS, line, e.owner, req, now, false,
                       false, hint, msg.spanId);
            e.nextState = DirState::Shared;
            e.nextSharers = coreBit(e.owner) | coreBit(req);
            e.nextOwner = invalidCore;
            e.dataPending = false;
        }
        break;

      case MsgType::GetX:
        stats_.counter("getX")++;
        if (e.state == DirState::Modified) {
            ROWSIM_ASSERT(e.owner != req,
                          "GetX from current owner, line %#lx",
                          static_cast<unsigned long>(line));
            if (oracle)
                oracle(line, req, e.owner, false, now);
            stats_.counter("fwdGetX")++;
            // Exclusive ownership moving between private caches: the
            // ping-pong transfer the contention profile counts.
            if (Profiler::enabled(ProfCategory::Lines) && prof_)
                prof_->lineOwnerSwap(line);
            sendToCore(MsgType::FwdGetX, line, e.owner, req, now, false,
                       false, hint, msg.spanId);
            e.nextState = DirState::Modified;
            e.nextOwner = req;
            e.nextSharers = 0;
            e.dataPending = false;
        } else {
            bool from_mem = false;
            Cycle lat = dataLatency(line, now, from_mem);
            unsigned acks = 0;
            if (e.state == DirState::Shared) {
                for (CoreId c = 0; c < numCores; c++) {
                    if (c != req && (e.sharers & coreBit(c))) {
                        if (oracle)
                            oracle(line, req, c, false, now);
                        sendToCore(MsgType::Inv, line, c, req, now, false,
                                   false, false, msg.spanId);
                        acks++;
                    }
                }
            }
            e.nextState = DirState::Modified;
            e.nextOwner = req;
            e.nextSharers = 0;
            e.dataMsg = Msg{};
            e.dataMsg.type = MsgType::DataExcl;
            e.dataMsg.line = line;
            e.dataMsg.src = myNode;
            e.dataMsg.dst = req;
            e.dataMsg.requester = req;
            e.dataMsg.excl = true;
            e.dataMsg.fromMemory = from_mem;
            e.dataMsg.contentionHint = hint || acks > 0;
            e.dataMsg.spanId = msg.spanId;
            e.dataPending = true;
            e.dataReady = now + lat;
            e.pendingAcks = acks;
        }
        break;

      default:
        ROWSIM_PANIC("unexpected request %s at directory",
                     msgTypeName(msg.type));
    }

    e.state = DirState::Blocked;
    e.txnRequester = req;
    e.txnSpanId = msg.spanId;
    e.blockedSince = now;
    blockedLines++;
    ROWSIM_TRACE(TraceCategory::Directory, now,
                 "dir%u block line=%#llx %s from core%u queued=%zu",
                 bankIndex, static_cast<unsigned long long>(line),
                 msgTypeName(msg.type), req, e.queued.size());
    maybeSendData(e, now);
}

void
Directory::finishTxn(Entry &e, Addr line, Cycle now)
{
    ROWSIM_ASSERT(e.state == DirState::Blocked,
                  "Unblock on unblocked line %#lx",
                  static_cast<unsigned long>(line));
    if (e.blockedSince != invalidCycle) {
        // The transaction's own Blocked residency, attributed causally
        // to the requesting atomic's span.
        if (SpanTracker::enabled() && spans_ && e.txnSpanId)
            spans_->dirBlockedWindow(e.txnSpanId, e.blockedSince, now);
        // Async span: several lines can be Blocked at one bank at once.
        ROWSIM_TRACE_SPAN(
            TraceCategory::Directory,
            tracePidDirBase + static_cast<int>(bankIndex), 0, "blocked",
            line, e.blockedSince, now,
            strprintf("{\"line\":\"%#llx\",\"requester\":%u,\"queued\":%zu}",
                      static_cast<unsigned long long>(line),
                      e.txnRequester, e.queued.size()));
        ROWSIM_TRACE(TraceCategory::Directory, now,
                     "dir%u unblock line=%#llx blocked=%llu queued=%zu",
                     bankIndex, static_cast<unsigned long long>(line),
                     static_cast<unsigned long long>(now - e.blockedSince),
                     e.queued.size());
        e.blockedSince = invalidCycle;
    }
    e.state = e.nextState;
    e.owner = e.nextOwner;
    e.sharers = e.nextSharers;
    e.txnRequester = invalidCore;
    e.txnSpanId = 0;
    ROWSIM_ASSERT(blockedLines > 0, "blockedLines underflow");
    blockedLines--;

    while (!e.queued.empty() && e.state != DirState::Blocked) {
        Msg next = e.queued.front();
        e.queued.pop_front();
        if (SpanTracker::enabled() && spans_ && next.spanId)
            spans_->dirDequeued(next.spanId, now);
        if (next.type == MsgType::PutM) {
            // Crossed eviction: handle with the now-current state.
            deliver(next, now);
        } else {
            processRequest(e, next, now, true);
        }
    }
}

void
Directory::deliver(const Msg &msg, Cycle now)
{
    // Fault injection: a stalled bank buffers every delivery. The buffer
    // also intercepts new arrivals while a drain is in progress so that
    // arrival order (and thus point-to-point ordering) is preserved.
    if (now < stalledUntil || !stallBuffer.empty()) {
        stallBuffer.push_back(msg);
        return;
    }

    Entry &e = entries[msg.line];

    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
        if (e.state == DirState::Blocked) {
            // Definite concurrent interest: oracle sees both the pending
            // requester/owner and the newcomer.
            if (oracle) {
                oracle(msg.line, msg.requester, e.txnRequester, true, now);
                if (e.owner != invalidCore && e.owner != msg.requester)
                    oracle(msg.line, msg.requester, e.owner, true, now);
            }
            // Notify the in-flight transaction's requester (extension):
            // the newcomer proves concurrent interest.
            if (e.dataPending)
                e.dataMsg.contentionHint = true;
            e.queued.push_back(msg);
            if (SpanTracker::enabled() && spans_ && msg.spanId)
                spans_->dirQueued(msg.spanId, now);
            stats_.counter("queuedRequests")++;
            stats_.average("queueDepth").sample(
                static_cast<double>(e.queued.size()));
            if (Profiler::enabled(ProfCategory::Lines) && prof_)
                prof_->lineQueueDepth(msg.line, e.queued.size());
            ROWSIM_TRACE(TraceCategory::Directory, now,
                         "dir%u queue line=%#llx %s from core%u depth=%zu",
                         bankIndex,
                         static_cast<unsigned long long>(msg.line),
                         msgTypeName(msg.type), msg.requester,
                         e.queued.size());
        } else {
            processRequest(e, msg, now);
        }
        break;

      case MsgType::PutM: {
        CoreId evictor = static_cast<CoreId>(msg.src);
        if (e.state == DirState::Modified && e.owner == evictor) {
            // Clean writeback: data now lives in the LLC.
            auto *way = llcArray.victim(msg.line, nullptr, now);
            llcArray.fill(way, msg.line, CacheState::Shared, now);
            e.state = DirState::Invalid;
            e.owner = invalidCore;
            e.sharers = 0;
            stats_.counter("writebacks")++;
        } else {
            // Crossed with an in-flight transaction; ownership already
            // moved (or is moving). Ack without touching state.
            stats_.counter("staleWritebacks")++;
        }
        sendToCore(MsgType::WBAck, msg.line, evictor, evictor, now);
        break;
      }

      case MsgType::InvAck:
        ROWSIM_ASSERT(e.state == DirState::Blocked && e.pendingAcks > 0,
                      "stray InvAck for line %#lx",
                      static_cast<unsigned long>(msg.line));
        e.pendingAcks--;
        maybeSendData(e, now);
        break;

      case MsgType::Unblock:
        finishTxn(e, msg.line, now);
        break;

      default:
        ROWSIM_PANIC("directory cannot handle %s", msgTypeName(msg.type));
    }
}

void
Directory::tick(Cycle now)
{
    if (stalledUntil != 0 && now >= stalledUntil) {
        // Swap to a local queue first: deliver() re-buffers while the
        // member buffer is non-empty (ordering), which would recurse.
        std::deque<Msg> drain;
        drain.swap(stallBuffer);
        stalledUntil = 0;
        for (const Msg &m : drain)
            deliver(m, now);
    }

    while (!wake.empty() && wake.begin()->first <= now) {
        Addr line = wake.begin()->second;
        wake.erase(wake.begin());
        auto it = entries.find(line);
        if (it != entries.end() && it->second.state == DirState::Blocked)
            maybeSendData(it->second, now);
    }
}

bool
Directory::idle() const
{
    return blockedLines == 0 && wake.empty() && stallBuffer.empty();
}

Cycle
Directory::nextEventCycle(Cycle now) const
{
    Cycle next = invalidCycle;
    if (stalledUntil != 0)
        next = std::max(stalledUntil, now + 1);
    if (!wake.empty())
        next = std::min(next, std::max(wake.begin()->first, now + 1));
    return next;
}

void
Directory::injectStall(Cycle until)
{
    if (until > stalledUntil)
        stalledUntil = until;
    stats_.counter("injectedStalls")++;
}

void
Directory::testSetLine(Addr line, DirState state, CoreId owner,
                       std::uint64_t sharers)
{
    line = lineAlign(line);
    Entry &e = entries[line];
    if (e.state == DirState::Blocked && state != DirState::Blocked) {
        ROWSIM_ASSERT(blockedLines > 0, "blockedLines underflow");
        blockedLines--;
    } else if (e.state != DirState::Blocked && state == DirState::Blocked) {
        blockedLines++;
    }
    e.state = state;
    e.owner = owner;
    e.sharers = sharers;
}

std::uint64_t
Directory::lineSharers(Addr line) const
{
    auto it = entries.find(lineAlign(line));
    return it == entries.end() ? 0 : it->second.sharers;
}

void
Directory::funcSetLine(Addr line, DirState state, CoreId owner,
                       std::uint64_t sharers)
{
    line = lineAlign(line);
    Entry &e = entries[line];
    ROWSIM_ASSERT(e.state != DirState::Blocked,
                  "funcSetLine on in-flight line %#lx",
                  static_cast<unsigned long>(line));
    e.state = state;
    e.owner = owner;
    e.sharers = sharers;
}

void
Directory::funcWriteback(Addr line, CoreId evictor, Cycle now)
{
    line = lineAlign(line);
    Entry &e = entries[line];
    ROWSIM_ASSERT(e.state != DirState::Blocked,
                  "funcWriteback on in-flight line %#lx",
                  static_cast<unsigned long>(line));
    if (e.state == DirState::Modified && e.owner == evictor) {
        auto *way = llcArray.victim(line, nullptr, now);
        llcArray.fill(way, line, CacheState::Shared, now);
        e.state = DirState::Invalid;
        e.owner = invalidCore;
        e.sharers = 0;
    }
}

void
Directory::funcTouchLlc(Addr line, Cycle now)
{
    line = lineAlign(line);
    if (llcArray.lookup(line, now))
        return;
    auto *way = llcArray.victim(line, nullptr, now);
    llcArray.fill(way, line, CacheState::Shared, now);
}

void
Directory::dumpDiag(std::FILE *out, Cycle now) const
{
    std::fprintf(out,
                 "{\"dir\":\"dir%u\",\"blocked\":%u,\"stallBuffer\":%zu,"
                 "\"blockedLines\":[",
                 bankIndex, blockedLines, stallBuffer.size());
    bool first = true;
    for (const auto &kv : entries) {
        const Entry &e = kv.second;
        if (e.state != DirState::Blocked)
            continue;
        std::fprintf(out,
                     "%s{\"line\":\"%#llx\",\"requester\":%u,"
                     "\"pendingAcks\":%u,\"dataPending\":%d,"
                     "\"queued\":%zu,\"blockedFor\":%llu}",
                     first ? "" : ",",
                     static_cast<unsigned long long>(kv.first),
                     e.txnRequester, e.pendingAcks, e.dataPending ? 1 : 0,
                     e.queued.size(),
                     static_cast<unsigned long long>(
                         e.blockedSince == invalidCycle
                             ? 0
                             : now - e.blockedSince));
        first = false;
    }
    std::fprintf(out, "]}");
}

DirState
Directory::lineState(Addr line) const
{
    auto it = entries.find(lineAlign(line));
    return it == entries.end() ? DirState::Invalid : it->second.state;
}

CoreId
Directory::lineOwner(Addr line) const
{
    auto it = entries.find(lineAlign(line));
    return it == entries.end() ? invalidCore : it->second.owner;
}

void
Directory::save(Ser &s) const
{
    s.section("directory");
    s.u32(bankIndex);

    // A dataMsg still holding its default-constructed field values —
    // the state on any line that never carried an in-flight data reply,
    // notably every line a functional run touched.
    const auto msgIsDefault = [](const Msg &m) {
        return m.type == MsgType::GetS && m.line == invalidAddr &&
               m.src == 0 && m.dst == 0 && m.requester == invalidCore &&
               !m.fromPrivateCache && !m.excl && !m.fromMemory &&
               !m.contentionHint && m.sent == 0;
    };
    // An entry with every transaction-in-flight field at its default
    // serializes as a 1-byte flag plus owner/sharers instead of the
    // full ~100-byte transaction record. The directory's full-map
    // entries are the bulk of a long run's checkpoint (one per line
    // ever touched, and almost all of them idle), so this fast path —
    // not fmem — is what keeps images small.
    const auto entryQuiescent = [&](const Entry &e) {
        return e.txnRequester == invalidCore &&
               e.nextState == DirState::Invalid &&
               e.nextOwner == invalidCore && e.nextSharers == 0 &&
               e.pendingAcks == 0 && e.dataReady == invalidCycle &&
               !e.dataPending && msgIsDefault(e.dataMsg) &&
               e.blockedSince == invalidCycle && e.queued.empty();
    };

    // Sorted key order: images must not depend on hash iteration order.
    // Flat copy + sort, not std::map — a node allocation per line is
    // measurable at checkpoint cadence on full-map directories.
    std::vector<std::pair<Addr, const Entry *>> sorted;
    sorted.reserve(entries.size());
    for (const auto &kv : entries)
        sorted.emplace_back(kv.first, &kv.second);
    std::sort(sorted.begin(), sorted.end());
    s.u64(sorted.size());
    Addr prevLine = 0;
    for (const auto &[line, e] : sorted) {
        s.vu64(line - prevLine);
        prevLine = line;
        // Flag byte: stable-state number, top bit = quiescent (no
        // transaction record follows). Owner travels +1 so invalidCore
        // (u32 max) encodes as a single zero byte.
        const bool quiet = entryQuiescent(*e);
        s.u8(static_cast<std::uint8_t>(e->state) |
             (quiet ? 0x80 : 0));
        s.vu64(e->sharers);
        s.vu64(e->owner == invalidCore ? 0 : e->owner + 1ULL);
        if (quiet)
            continue;
        s.u32(e->txnRequester);
        s.u8(static_cast<std::uint8_t>(e->nextState));
        s.u32(e->nextOwner);
        s.u64(e->nextSharers);
        s.u32(e->pendingAcks);
        s.u64(e->dataReady);
        s.b(e->dataPending);
        saveMsg(s, e->dataMsg);
        s.u64(e->blockedSince);
        s.u64(e->queued.size());
        for (const Msg &m : e->queued)
            saveMsg(s, m);
    }

    s.u64(wake.size());
    for (const auto &[cycle, line] : wake) {
        s.u64(cycle);
        s.u64(line);
    }

    s.u64(stallBuffer.size());
    for (const Msg &m : stallBuffer)
        saveMsg(s, m);
    s.u64(stalledUntil);

    llcArray.save(s);
    s.u32(blockedLines);
}

void
Directory::restore(Deser &d)
{
    d.section("directory");
    const std::uint32_t bank = d.u32();
    if (bank != bankIndex) {
        throw SnapshotError(strprintf(
            "directory bank mismatch: image bank %u restored into bank "
            "%u",
            bank, bankIndex));
    }

    entries.clear();
    const std::uint64_t nEntries = d.u64();
    Addr prevLine = 0;
    for (std::uint64_t i = 0; i < nEntries; i++) {
        const Addr line = prevLine + d.vu64();
        prevLine = line;
        Entry &e = entries[line];
        // Flag byte from save(): low bits = stable state, top bit =
        // quiescent (transaction fields stay default-constructed).
        const std::uint8_t flag = d.u8();
        e.state = static_cast<DirState>(flag & 0x7f);
        e.sharers = d.vu64();
        const std::uint64_t owner = d.vu64();
        e.owner = owner == 0 ? invalidCore
                             : static_cast<CoreId>(owner - 1);
        if (flag & 0x80)
            continue;
        e.txnRequester = d.u32();
        e.nextState = static_cast<DirState>(d.u8());
        e.nextOwner = d.u32();
        e.nextSharers = d.u64();
        e.pendingAcks = d.u32();
        e.dataReady = d.u64();
        e.dataPending = d.b();
        restoreMsg(d, e.dataMsg);
        e.blockedSince = d.u64();
        const std::uint64_t nQueued = d.u64();
        for (std::uint64_t q = 0; q < nQueued; q++) {
            Msg m;
            restoreMsg(d, m);
            e.queued.push_back(m);
        }
    }

    wake.clear();
    const std::uint64_t nWake = d.u64();
    for (std::uint64_t i = 0; i < nWake; i++) {
        const Cycle cycle = d.u64();
        const Addr line = d.u64();
        wake.emplace_hint(wake.end(), cycle, line);
    }

    stallBuffer.clear();
    const std::uint64_t nStalled = d.u64();
    for (std::uint64_t i = 0; i < nStalled; i++) {
        Msg m;
        restoreMsg(d, m);
        stallBuffer.push_back(m);
    }
    stalledUntil = d.u64();

    llcArray.restore(d);
    blockedLines = d.u32();
}

} // namespace rowsim
