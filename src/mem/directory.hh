/**
 * @file
 * One bank of the shared L3 / directory. Implements a blocking MSI
 * directory protocol: while a transaction is in flight for a line
 * (Blocked state), younger requests queue behind it. This serialisation
 * is what makes contended-line acquisition latency grow with the number
 * of requesters — the signal RoW's directory detector keys on — and it
 * reproduces the Unblock race of the paper's Fig. 8.
 */

#ifndef ROWSIM_MEM_DIRECTORY_HH
#define ROWSIM_MEM_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "net/message.hh"
#include "net/network.hh"
#include "sim/profile.hh"

namespace rowsim
{

class SpanTracker;

/**
 * Directory bank. Network endpoint NodeId == numCores + bankIndex.
 */
class Directory : public MsgHandler
{
  public:
    /**
     * Called when a request observes concurrent interest in a line.
     * The system uses it as the ground-truth contention oracle for
     * Fig. 5. @p holder is the current owner/sharer or invalidCore.
     * @p overlap distinguishes definite temporal overlap (the request
     * arrived while a transaction for the line was in flight — mark both
     * sides) from a forward/invalidation of a resident copy (the holder
     * is concurrently *using* the line — mark the holder only; a
     * migratory access with no overlap is not contention for the
     * requester).
     */
    using OracleHook =
        std::function<void(Addr line, CoreId requester, CoreId holder,
                           bool overlap, Cycle now)>;

    Directory(unsigned bank_index, unsigned num_cores,
              const MemParams &params, Network *net);

    void deliver(const Msg &msg, Cycle now) override;
    void tick(Cycle now);
    bool idle() const;

    /** Earliest future cycle tick() would do anything absent new
     *  deliveries: the next data-ready wake or the end of an injected
     *  stall. invalidCycle when quiescent (fast-forward bound). */
    Cycle nextEventCycle(Cycle now) const;

    void setOracleHook(OracleHook hook) { oracle = std::move(hook); }
    /** Attach the attribution profiler (System::setupProfiling). */
    void setProfiler(Profiler *p) { prof_ = p; }
    /** Attach the span tracker (System::setupSpans). */
    void setSpans(SpanTracker *s) { spans_ = s; }

    /** Directory state probe for tests. */
    DirState lineState(Addr line) const;
    CoreId lineOwner(Addr line) const;

    /** Read-only view of one directory entry (invariant checkers). */
    struct LineInfo
    {
        Addr line = invalidAddr;
        DirState state = DirState::Invalid;
        std::uint64_t sharers = 0;
        CoreId owner = invalidCore;
        CoreId txnRequester = invalidCore;
        unsigned pendingAcks = 0;
        bool dataPending = false;
        Cycle blockedSince = invalidCycle;
        std::size_t queued = 0;
    };

    /** Apply @p fn(const LineInfo &) to every directory entry. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        LineInfo info;
        for (const auto &kv : entries) {
            const Entry &e = kv.second;
            info.line = kv.first;
            info.state = e.state;
            info.sharers = e.sharers;
            info.owner = e.owner;
            info.txnRequester = e.txnRequester;
            info.pendingAcks = e.pendingAcks;
            info.dataPending = e.dataPending;
            info.blockedSince = e.blockedSince;
            info.queued = e.queued.size();
            fn(info);
        }
    }

    unsigned blockedCount() const { return blockedLines; }

    /**
     * Fault injection: stall the bank — buffer every delivery until
     * @p until, then process them in arrival order. Models a slow/backed
     * up bank; point-to-point ordering is preserved.
     */
    void injectStall(Cycle until);
    bool stalled() const { return !stallBuffer.empty() || stalledUntil > 0; }

    /** Crash diagnostics: one JSON object describing Blocked entries. */
    void dumpDiag(std::FILE *out, Cycle now) const;

    /** Test-only: corrupt the directory by overwriting one entry's
     *  stable state (checker death tests). */
    void testSetLine(Addr line, DirState state, CoreId owner,
                     std::uint64_t sharers);

    // ---- functional fast-mode hooks (src/sim/funcmode.cc) ----
    //
    // The functional interpreter applies each request's protocol *end
    // state* synchronously — no messages, no Blocked transients — so a
    // snapshot taken at a func-mode cycle boundary holds only stable
    // coherence states. These hooks assert the entry is not mid-flight.

    /** Sharer bitmask of @p line (0 when untracked). */
    std::uint64_t lineSharers(Addr line) const;
    /** Overwrite one entry's stable state with a transaction's end
     *  state (refuses Blocked entries: func mode never runs while a
     *  detail transaction is in flight). */
    void funcSetLine(Addr line, DirState state, CoreId owner,
                     std::uint64_t sharers);
    /** Apply a clean writeback's end state (PutM from the owner):
     *  entry Invalid, data presence in the LLC array. */
    void funcWriteback(Addr line, CoreId evictor, Cycle now);
    /** Install LLC data presence for a fill served by LLC/memory,
     *  mirroring dataLatency()'s insertion (latency discarded). */
    void funcTouchLlc(Addr line, Cycle now);

    /** Architectural state: entries (including Blocked transients and
     *  their queued requests), wake schedule, stall buffer, LLC array.
     *  Stats travel in the System's stats pass. */
    void save(Ser &s) const;
    void restore(Deser &d);

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        DirState state = DirState::Invalid;
        std::uint64_t sharers = 0; ///< bitmask, supports up to 64 cores
        CoreId owner = invalidCore;

        // --- transaction-in-flight (Blocked) bookkeeping ---
        CoreId txnRequester = invalidCore;
        /** State/owner/sharers to apply when the Unblock arrives. */
        DirState nextState = DirState::Invalid;
        CoreId nextOwner = invalidCore;
        std::uint64_t nextSharers = 0;
        /** Outstanding invalidation acks before data can be sent. */
        unsigned pendingAcks = 0;
        /** Earliest cycle LLC/memory data is available. */
        Cycle dataReady = invalidCycle;
        /** Data message to emit once acks are in and data is ready. */
        bool dataPending = false;
        Msg dataMsg;
        /** Cycle the entry entered Blocked (trace Blocked windows). */
        Cycle blockedSince = invalidCycle;
        /** Span of the in-flight transaction (0 = untraced; not
         *  serialized — restored transactions are untraced). */
        std::uint64_t txnSpanId = 0;

        std::deque<Msg> queued;
    };

    /** Process a request against an unblocked entry (may block it).
     *  @param was_queued the request waited behind an earlier transaction
     *  (feeds the directory-notification contention hint). */
    void processRequest(Entry &e, const Msg &msg, Cycle now,
                        bool was_queued = false);
    /** LLC/memory access latency for this line (inserts into LLC). */
    Cycle dataLatency(Addr line, Cycle now, bool &from_memory);
    /** Emit the blocked entry's data reply if acks and data are ready. */
    void maybeSendData(Entry &e, Cycle now);
    /** Apply the Unblock, then drain queued requests. */
    void finishTxn(Entry &e, Addr line, Cycle now);

    void
    sendToCore(MsgType t, Addr line, CoreId core, CoreId requester,
               Cycle now, bool excl = false, bool from_memory = false,
               bool contention_hint = false, std::uint64_t span_id = 0);

    unsigned bankIndex;
    unsigned numCores;
    NodeId myNode;
    MemParams params;
    Network *net;
    OracleHook oracle;

    std::unordered_map<Addr, Entry> entries;
    /** Lines whose data reply is waiting for the LLC/memory latency. */
    std::multimap<Cycle, Addr> wake;
    /** Fault injection: deliveries buffered while the bank is stalled. */
    std::deque<Msg> stallBuffer;
    Cycle stalledUntil = 0;
    CacheArray llcArray; ///< data-presence array (latency only)
    /** Number of lines currently Blocked (idle() fast path). */
    unsigned blockedLines = 0;

    Profiler *prof_ = nullptr;
    SpanTracker *spans_ = nullptr;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_MEM_DIRECTORY_HH
