/**
 * @file
 * Coherence state definitions shared by the private caches and directory.
 */

#ifndef ROWSIM_MEM_COHERENCE_HH
#define ROWSIM_MEM_COHERENCE_HH

#include <cstdint>

namespace rowsim
{

/** Stable line states at a private cache (MSI; E folded into M). */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** Stable + transient states at the directory. */
enum class DirState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
    /** A transaction for this line is in flight (between the data being
     *  sent out and the requester's Unblock). New requests queue. This is
     *  the window behind the Fig. 8 race that motivates the directory
     *  latency-based contention detector. */
    Blocked,
};

/** Where did a fill's data come from? Feeds latency stats and the RoW
 *  directory contention detector (remote-private-cache fills). */
enum class FillSource : std::uint8_t
{
    L1Hit,
    L2Hit,
    LLCHit,
    Memory,
    RemoteCache,
    Forwarded, ///< store-to-load forwarding inside the core
};

const char *fillSourceName(FillSource s);

} // namespace rowsim

#endif // ROWSIM_MEM_COHERENCE_HH
