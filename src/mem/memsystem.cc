#include "mem/memsystem.hh"

#include <algorithm>
#include <vector>

#include "sim/snapshot.hh"

namespace rowsim
{

MemSystem::MemSystem(const SystemParams &params)
    : net(params.numCores, params.net)
{
    caches.reserve(params.numCores);
    banks.reserve(params.numCores);
    for (CoreId c = 0; c < params.numCores; c++) {
        caches.emplace_back(
            std::make_unique<PrivateCache>(c, params.mem, &net, &fmem));
        net.attach(c, caches.back().get());
    }
    for (unsigned b = 0; b < params.numCores; b++) {
        banks.emplace_back(
            std::make_unique<Directory>(b, params.numCores, params.mem,
                                        &net));
        net.attach(params.numCores + b, banks.back().get());
    }
}

void
MemSystem::tick(Cycle now)
{
    net.tick(now);
    for (auto &b : banks)
        b->tick(now);
    for (auto &c : caches)
        c->tick(now);
}

Cycle
MemSystem::nextEventCycle(Cycle now) const
{
    Cycle next = net.nextDue();
    if (next != invalidCycle && next <= now)
        next = now + 1;
    for (const auto &b : banks)
        next = std::min(next, b->nextEventCycle(now));
    for (const auto &c : caches)
        next = std::min(next, c->nextEventCycle(now));
    return next;
}

bool
MemSystem::idle() const
{
    if (!net.idle())
        return false;
    for (const auto &b : banks)
        if (!b->idle())
            return false;
    for (const auto &c : caches)
        if (!c->idle())
            return false;
    return true;
}

bool
MemSystem::funcAccess(CoreId c, Addr addr, bool exclusive, Cycle now)
{
    const Addr line = lineAlign(addr);
    const unsigned cores = static_cast<unsigned>(caches.size());
    Directory &home = *banks[net.homeBank(line) - cores];
    const auto bit = [](CoreId id) { return 1ULL << id; };

    const CacheState mine = caches[c]->lineState(line);
    if (mine == CacheState::Modified ||
        (!exclusive && mine != CacheState::Invalid)) {
        return false; // hit with sufficient permission
    }

    bool remote = false;
    std::vector<Addr> dirtyVictims;

    if (exclusive) {
        // GetX end state: every other copy dropped, requester Modified,
        // directory M/{requester}/no sharers. An M holder elsewhere is
        // the cache-to-cache forward detail mode serves via FwdGetX.
        for (CoreId o = 0; o < cores; o++) {
            if (o != c && caches[o]->funcDropLine(line) ==
                              CacheState::Modified) {
                remote = true;
            }
        }
        if (!remote)
            home.funcTouchLlc(line, now);
        caches[c]->funcInstall(line, CacheState::Modified, now,
                               &dirtyVictims);
        home.funcSetLine(line, DirState::Modified, c, 0);
    } else {
        // GetS end state: an M owner is downgraded and becomes a
        // sharer (FwdGetS), otherwise data comes from the LLC/memory.
        std::uint64_t sharers = home.lineSharers(line) | bit(c);
        if (home.lineState(line) == DirState::Modified) {
            const CoreId o = home.lineOwner(line);
            if (o != invalidCore && o != c &&
                caches[o]->funcDowngrade(line, now)) {
                remote = true;
                sharers |= bit(o);
            }
        }
        if (!remote)
            home.funcTouchLlc(line, now);
        caches[c]->funcInstall(line, CacheState::Shared, now,
                               &dirtyVictims);
        home.funcSetLine(line, DirState::Shared, invalidCore, sharers);
    }

    // Dirty victims of the install: apply the PutM end state at each
    // victim's own home bank (data presence moves to the LLC).
    for (Addr v : dirtyVictims)
        banks[net.homeBank(v) - cores]->funcWriteback(v, c, now);
    return remote;
}

void
FunctionalMemory::save(Ser &s) const
{
    s.section("fmem");
    // The value memory reaches millions of words on long runs and is
    // the bulk of every checkpoint and functional digest, so this path
    // is deliberately cheap: a sorted flat copy (no per-word std::map
    // node), then delta-varint encoding — address gaps are mostly one
    // word (streams touch consecutive addresses) and data words are
    // mostly small, so an entry costs ~2-4 bytes instead of 16.
    std::vector<std::pair<Addr, std::uint64_t>> sorted(words.begin(),
                                                       words.end());
    std::sort(sorted.begin(), sorted.end());
    s.u64(sorted.size());
    Addr prev = 0;
    for (const auto &[addr, value] : sorted) {
        s.vu64(addr - prev);
        prev = addr;
        s.vu64(value);
    }
}

void
FunctionalMemory::restore(Deser &d)
{
    d.section("fmem");
    words.clear();
    const std::uint64_t n = d.u64();
    words.reserve(n);
    Addr prev = 0;
    for (std::uint64_t i = 0; i < n; i++) {
        const Addr addr = prev + d.vu64();
        prev = addr;
        words[addr] = d.vu64();
    }
}

void
MemSystem::save(Ser &s) const
{
    s.section("memsys");
    net.save(s);
    fmem.save(s);
    for (const auto &c : caches)
        c->save(s);
    for (const auto &b : banks)
        b->save(s);
}

void
MemSystem::restore(Deser &d)
{
    d.section("memsys");
    net.restore(d);
    fmem.restore(d);
    for (auto &c : caches)
        c->restore(d);
    for (auto &b : banks)
        b->restore(d);
}

} // namespace rowsim
