#include "mem/memsystem.hh"

#include <map>

#include "sim/snapshot.hh"

namespace rowsim
{

MemSystem::MemSystem(const SystemParams &params)
    : net(params.numCores, params.net)
{
    caches.reserve(params.numCores);
    banks.reserve(params.numCores);
    for (CoreId c = 0; c < params.numCores; c++) {
        caches.emplace_back(
            std::make_unique<PrivateCache>(c, params.mem, &net, &fmem));
        net.attach(c, caches.back().get());
    }
    for (unsigned b = 0; b < params.numCores; b++) {
        banks.emplace_back(
            std::make_unique<Directory>(b, params.numCores, params.mem,
                                        &net));
        net.attach(params.numCores + b, banks.back().get());
    }
}

void
MemSystem::tick(Cycle now)
{
    net.tick(now);
    for (auto &b : banks)
        b->tick(now);
    for (auto &c : caches)
        c->tick(now);
}

Cycle
MemSystem::nextEventCycle(Cycle now) const
{
    Cycle next = net.nextDue();
    if (next != invalidCycle && next <= now)
        next = now + 1;
    for (const auto &b : banks)
        next = std::min(next, b->nextEventCycle(now));
    for (const auto &c : caches)
        next = std::min(next, c->nextEventCycle(now));
    return next;
}

bool
MemSystem::idle() const
{
    if (!net.idle())
        return false;
    for (const auto &b : banks)
        if (!b->idle())
            return false;
    for (const auto &c : caches)
        if (!c->idle())
            return false;
    return true;
}

void
FunctionalMemory::save(Ser &s) const
{
    s.section("fmem");
    std::map<Addr, std::uint64_t> sorted(words.begin(), words.end());
    s.u64(sorted.size());
    for (const auto &[addr, value] : sorted) {
        s.u64(addr);
        s.u64(value);
    }
}

void
FunctionalMemory::restore(Deser &d)
{
    d.section("fmem");
    words.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; i++) {
        const Addr addr = d.u64();
        words[addr] = d.u64();
    }
}

void
MemSystem::save(Ser &s) const
{
    s.section("memsys");
    net.save(s);
    fmem.save(s);
    for (const auto &c : caches)
        c->save(s);
    for (const auto &b : banks)
        b->save(s);
}

void
MemSystem::restore(Deser &d)
{
    d.section("memsys");
    net.restore(d);
    fmem.restore(d);
    for (auto &c : caches)
        c->restore(d);
    for (auto &b : banks)
        b->restore(d);
}

} // namespace rowsim
