/**
 * @file
 * Generic set-associative tag array with LRU replacement and support for
 * pinning (locked lines are never chosen as victims).
 */

#ifndef ROWSIM_MEM_CACHE_ARRAY_HH
#define ROWSIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/coherence.hh"

namespace rowsim
{

class Ser;
class Deser;

/**
 * A set-associative array of cacheline tags. Holds coherence state per
 * line; data values live in the system-wide functional memory, so the
 * array only answers presence/permission questions.
 */
class CacheArray
{
  public:
    struct Line
    {
        Addr tag = invalidAddr;      ///< line-aligned address
        CacheState state = CacheState::Invalid;
        std::uint64_t lastUse = 0;   ///< LRU timestamp
        bool valid() const { return state != CacheState::Invalid; }
    };

    CacheArray(unsigned sets, unsigned ways);

    /** Look up a line; nullptr on miss. Touches LRU state on hit. */
    Line *lookup(Addr line_addr, Cycle now);
    /** Look up without perturbing replacement state. */
    const Line *peek(Addr line_addr) const;

    /**
     * Choose a victim way in the set of @p line_addr. Lines for which
     * @p pinned returns true are skipped (AQ-locked lines). Returns
     * nullptr when every way is pinned (caller must retry later).
     * Prefers invalid ways, then LRU.
     */
    Line *victim(Addr line_addr,
                 const std::function<bool(Addr)> &pinned, Cycle now);

    /** Install @p line_addr into @p way (previously chosen by victim()). */
    void fill(Line *way, Addr line_addr, CacheState state, Cycle now);

    /** Invalidate the line if present. Returns true if it was present. */
    bool invalidate(Addr line_addr);

    unsigned sets() const { return numSets; }
    unsigned ways() const { return numWays; }

    /** Set index for an address (exposed for AQ set/way annotations). */
    unsigned setIndex(Addr line_addr) const;

    /** Apply @p fn(tag, state) to every valid line (invariant checkers,
     *  diagnostics; does not touch replacement state). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &l : lines) {
            if (l.valid())
                fn(l.tag, l.state);
        }
    }

    /** Serialize the valid lines (sparse, with their slot indices and
     *  LRU stamps) so restored victim choices replay exactly. Invalid
     *  slots are canonical and need no bytes. */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned numSets;
    unsigned numWays;
    std::vector<Line> lines; ///< numSets x numWays, row-major
};

} // namespace rowsim

#endif // ROWSIM_MEM_CACHE_ARRAY_HH
