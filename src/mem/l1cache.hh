/**
 * @file
 * Per-core private cache unit: an L1D latency filter in front of an
 * L2-sized coherence array, with MSHRs, a writeback (evicting) buffer,
 * external-request stalling against AQ-locked lines, and the snoop hooks
 * RoW's contention detectors need.
 *
 * The L1D and private L2 form a single coherence unit (see DESIGN.md §5):
 * the directory tracks per-core ownership; the L1 array only decides
 * whether a present line costs the L1 or the L2 hit latency.
 */

#ifndef ROWSIM_MEM_L1CACHE_HH
#define ROWSIM_MEM_L1CACHE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "net/message.hh"
#include "net/network.hh"
#include "sim/profile.hh"

namespace rowsim
{

class FunctionalMemory;
class SpanTracker;

/** A memory access issued by the core to its private cache unit. */
struct MemAccess
{
    Addr addr = invalidAddr;
    std::uint64_t token = 0;     ///< echoed back in the completion
    bool needExclusive = false;  ///< store write or atomic
    bool isAtomic = false;       ///< lock the line on arrival
    bool isWrite = false;        ///< store write (performed functionally)
    std::uint64_t writeValue = 0;
    /** Atomic lifetime span (0 = untraced; src/sim/span.hh). */
    std::uint64_t spanId = 0;
};

/** Completion record for loads and store writes. */
struct MemResult
{
    std::uint64_t token = 0;
    Addr addr = invalidAddr;
    FillSource source = FillSource::L1Hit;
    Cycle requestCycle = 0;  ///< when the core called access()
    Cycle doneCycle = 0;
    std::uint64_t value = 0; ///< loaded value (loads only)
};

/**
 * Interface the core exposes to its private cache unit: completions,
 * AQ lock queries, atomic lock notification, and the RoW snoop hooks.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** A load or store write finished. */
    virtual void accessDone(const MemResult &r) = 0;

    /**
     * The line an atomic requested is now present in M state; the core
     * must set the AQ locked bit *now* (atomicity window starts here).
     *
     * @param token core-side id of the atomic access
     * @param line line-aligned address
     * @param source where the data came from
     * @param netIssueCycle when the GetX entered the network (14-bit
     *        timestamp base for the Dir detector)
     * @param contentionHint the directory flagged concurrent interest in
     *        the transaction (RWDirNotify extension)
     */
    virtual void atomicLineReady(std::uint64_t token, Addr line,
                                 FillSource source, Cycle netIssueCycle,
                                 bool contentionHint, Cycle now) = 0;

    /** Is this line currently locked by an in-flight atomic (AQ snoop)? */
    virtual bool lineLocked(Addr line) const = 0;

    /**
     * An external request (Inv/FwdGetS/FwdGetX) for @p line reached this
     * core. RoW marks matching AQ entries contended here (EW: only if
     * locked; RW: any in-flight atomic with a matching address).
     */
    virtual void externalRequestSnoop(Addr line, Cycle now) = 0;

    /**
     * Deadlock avoidance: an external request has been stalled on a
     * locked line for too long. If the locking atomic has not committed
     * yet, the core must squash and replay it, releasing the lock.
     * @return true when the lock was released.
     */
    virtual bool tryForceUnlock(Addr line, Cycle now) = 0;
};

/**
 * The private cache unit. One per core; network endpoint NodeId == CoreId.
 */
class PrivateCache : public MsgHandler
{
  public:
    PrivateCache(CoreId core, const MemParams &params, Network *net,
                 FunctionalMemory *fmem);

    void setClient(MemClient *c) { client = c; }
    /** Attach the attribution profiler (System::setupProfiling). */
    void setProfiler(Profiler *p) { prof_ = p; }
    /** Attach the span tracker (System::setupSpans). */
    void setSpans(SpanTracker *s) { spans_ = s; }

    /** Issue an access. Hits complete after the L1/L2 latency; misses
     *  allocate an MSHR and go to the directory. */
    void access(const MemAccess &a, Cycle now);

    /** The core wrote the STU and released the AQ lock for @p line:
     *  process any stalled external requests. */
    void unlockNotify(Addr line, Cycle now);

    /** Advance internal events (scheduled completions, stall timeouts). */
    void tick(Cycle now);

    /**
     * Earliest future cycle tick() would do anything absent new messages
     * or accesses: the next due completion, a deferred-fill retry, or a
     * stalled external crossing the lock-steal threshold (from which
     * point the steal-attempt counter advances every tick). invalidCycle
     * when fully quiescent. Conservative lower bound for fast-forward.
     */
    Cycle nextEventCycle(Cycle now) const;

    void deliver(const Msg &msg, Cycle now) override;

    /** True when nothing is outstanding (quiesced; used by tests). */
    bool idle() const;

    /** Presence/state probe for tests. */
    CacheState lineState(Addr line) const;
    /** True when the line hits in the (smaller) L1 array. */
    bool inL1(Addr line) const;

    // ---- invariant-checker / diagnostics probes (read-only) ----

    /** True when a miss for @p line is outstanding. */
    bool hasMshr(Addr line) const { return mshrs.count(lineAlign(line)); }
    /** True when a PutM for @p line is in flight (writeback buffer). */
    bool
    isEvicting(Addr line) const
    {
        return evicting.count(lineAlign(line));
    }
    std::size_t mshrCount() const { return mshrs.size(); }

    /** Apply @p fn(line, putmSentCycle) to every in-flight writeback. */
    template <typename Fn>
    void
    forEachEvicting(Fn &&fn) const
    {
        for (const auto &kv : evicting)
            fn(kv.first, kv.second);
    }

    /** Apply @p fn(line, mshr) to every outstanding MSHR. */
    template <typename Fn>
    void
    forEachMshr(Fn &&fn) const
    {
        for (const auto &kv : mshrs)
            fn(kv.first, kv.second);
    }

    /** Apply @p fn(line, state) to every valid coherence (L2) line. */
    template <typename Fn>
    void
    forEachL2Line(Fn &&fn) const
    {
        l2Array.forEachLine(fn);
    }

    /** Apply @p fn(line, state) to every valid L1 line. */
    template <typename Fn>
    void
    forEachL1Line(Fn &&fn) const
    {
        l1Array.forEachLine(fn);
    }

    /**
     * Fault injection: forcibly evict @p line from the unit as if chosen
     * as a victim (PutM if Modified — exercising the crossing races).
     * Refused (returns false) when the line is absent, AQ-locked, or has
     * an outstanding miss/writeback, mirroring what the replacement
     * policy could legally pick.
     */
    bool forceEvict(Addr line, Cycle now);

    /** Crash diagnostics: one JSON object describing outstanding state. */
    void dumpDiag(std::FILE *out, Cycle now) const;

    /** Test-only: corrupt the coherence array by force-installing @p line
     *  in @p state, bypassing the protocol (checker death tests). */
    void testSetLineState(Addr line, CacheState state, Cycle now);

    // ---- functional fast-mode hooks (src/sim/funcmode.cc) ----
    //
    // Message-free variants of install/evict for the functional
    // interpreter: replacement decisions go through the same LRU arrays
    // (so func-warmed contents match what a detail run would favour),
    // but dirty victims are returned to the caller instead of emitting
    // a PutM — MemSystem::funcAccess applies the writeback end state at
    // the home bank synchronously, leaving nothing in flight.

    /** Install @p line in both arrays; no pin checks (the AQ is empty
     *  in func mode). Dirty (Modified) coherence-array victims are
     *  appended to @p evicted_dirty. */
    void funcInstall(Addr line, CacheState state, Cycle now,
                     std::vector<Addr> *evicted_dirty);
    /** Drop @p line from both arrays (FwdGetX / Inv end state).
     *  @return the coherence state it held, Invalid when absent. */
    CacheState funcDropLine(Addr line);
    /** Downgrade @p line Modified -> Shared (FwdGetS end state).
     *  @return true when the line was present. */
    bool funcDowngrade(Addr line, Cycle now);

    /** Architectural state: arrays, MSHRs, buffers, due completions.
     *  Stats travel in the System's stats pass. */
    void save(Ser &s) const;
    void restore(Deser &d);

    StatGroup &stats() { return stats_; }

    /** Stall age beyond which a pre-commit lock is forcibly released
     *  (cross-core deadlock avoidance; initialised from
     *  MemParams::lockStealThreshold, writable for tests). */
    Cycle lockStealThreshold;

  private:
    struct StalledExternal
    {
        Msg msg;
        Cycle arrival;
    };

    /** Handle a data reply (fill) of any flavour. */
    void handleFill(const Msg &msg, Cycle now);
    /** Apply an external request that is (no longer) blocked by a lock. */
    void applyExternal(const Msg &msg, Cycle now);
    /** Send a request to the home bank, allocating the MSHR. */
    void sendRequest(Addr line, bool exclusive, bool prefetch,
                     std::uint64_t span_id, Cycle now);
    /** Complete a hit / fill for one waiter. */
    void completeWaiter(const MshrWaiter &w, FillSource src,
                        Cycle fill_cycle, Cycle net_issue,
                        bool contention_hint, Cycle now);
    /** Insert @p line into L1+L2 arrays, evicting as needed.
     *  @return false when every way is pinned and the fill must retry. */
    bool installLine(Addr line, CacheState state, Cycle now);
    /** Evict from the L2 (coherence) array: PutM if dirty. */
    void evictLine(CacheArray::Line *way, Cycle now);
    /** Issue a next-line prefetch after a demand miss. */
    void maybePrefetch(Addr line, Cycle now);
    /** Try to start pending accesses that were waiting for a free MSHR. */
    void drainPending(Cycle now);

    CoreId coreId;
    MemParams params;
    Network *net;
    FunctionalMemory *fmem;
    MemClient *client = nullptr;

    CacheArray l1Array;
    CacheArray l2Array; ///< the coherence array

    std::unordered_map<Addr, Mshr> mshrs;
    std::deque<std::pair<MemAccess, Cycle>> pendingAccesses;
    /** Dirty lines with a PutM in flight; they still answer forwards.
     *  Maps line -> cycle the PutM was sent (leak detection). */
    std::unordered_map<Addr, Cycle> evicting;
    std::vector<StalledExternal> stalledExternals;
    /** Fills that could not find an unpinned victim, retried each tick. */
    std::vector<Msg> deferredFills;

    std::multimap<Cycle, MemResult> dueResults;

    Profiler *prof_ = nullptr;
    SpanTracker *spans_ = nullptr;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_MEM_L1CACHE_HH
