/**
 * @file
 * Crash-safe, content-addressed result store.
 *
 * Every completed run can be persisted under a key that captures
 * everything the result depends on: the configuration fingerprint
 * (architecture, seed, fault-injection setup), the workload, the
 * resolved per-core quota, the config label, the effective
 * observability knobs that shape the RunResult (profiler mask, span
 * gate, interval-stats period), and the result-schema version. Reruns
 * with an identical key are served from disk — byte-identical, in
 * microseconds — so figure regressions become incremental queries
 * instead of hour-long batches.
 *
 * The store is designed to survive anything the execution layer throws
 * at it: entries are written atomically (tmp + rename via common/io),
 * carry a SHA-256 payload trailer, and are self-describing (magic +
 * schema version + embedded key). A corrupted, truncated, stale, or
 * misplaced entry is detected on load, quarantined aside, and reported
 * as a miss — the caller transparently recomputes; store damage is
 * never fatal and never returns wrong data.
 *
 * Enabled via ROWSIM_RESULTS=on (directory: ROWSIM_RESULTS_DIR,
 * default "rowsim-results"); the experiment layer consults it in
 * runExperiment / runExperimentParams (see ResultStore::fromEnv).
 */

#ifndef ROWSIM_SIM_RESULTSTORE_HH
#define ROWSIM_SIM_RESULTSTORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rowsim
{

struct SystemParams;

/** Version of the serialized RunResult payload. Bumped on any layout
 *  change; it is part of the key preimage, so a bump turns every old
 *  entry into a clean miss instead of a decode error.
 *  v2: time-series blob + convergence outcome fields.
 *  v3: sampling summary blob; the resolved execution mode keys the
 *      store (a func run and a detail run share a fingerprint by
 *      design — checkpoints interchange — but not results). */
constexpr std::uint32_t resultSchemaVersion = 3;

/** SHA-256 store key. */
using ResultKey = std::array<std::uint8_t, 32>;

/** Serialize @p r into the canonical little-endian payload (everything
 *  except the transient fromCache flag). Also the process-isolation
 *  handoff format of the sweep engine. */
std::vector<std::uint8_t> encodeResult(const RunResult &r);

/** Decode an encodeResult payload. Throws SnapshotError on any damage
 *  (bounds, section drift, trailing bytes). */
RunResult decodeResult(const std::vector<std::uint8_t> &payload);

class ResultStore
{
  public:
    /** Store rooted at @p dir (created lazily on first write). */
    explicit ResultStore(std::string dir);

    /**
     * The store the environment asks for: nullptr unless
     * ROWSIM_RESULTS is on (on/1/yes/true; off/0/no/false/unset
     * disable; anything else is a user error). ROWSIM_RESULTS_DIR
     * overrides the default "rowsim-results" directory.
     */
    static std::unique_ptr<ResultStore> fromEnv();

    /**
     * Key for one (params, workload, label, quota) run. Includes the
     * config fingerprint (resolved exactly as a live System would —
     * fault env vars and all), the result-schema version, and the
     * effective profiler / span / interval-stats settings, since those
     * change which RunResult fields are populated.
     */
    static ResultKey keyFor(const SystemParams &params,
                            const std::string &workload,
                            const std::string &label, std::uint64_t quota);

    static std::string keyHex(const ResultKey &key);

    /** Entry path for @p key: `<dir>/<hex>.res`. */
    std::string pathFor(const ResultKey &key) const;

    /**
     * Look up @p key. Returns true and fills @p out on a valid hit.
     * A missing entry or a schema-version skew is a clean miss; a
     * damaged entry (bad magic, wrong embedded key, truncation, digest
     * mismatch, undecodable payload) is quarantined to
     * `<entry>.quarantined` and reported as a miss. Never throws.
     */
    bool load(const ResultKey &key, RunResult &out);

    /**
     * Persist @p r under @p key (atomic write; concurrent writers on
     * one key are safe — last complete write wins and every read sees
     * a complete entry). Best-effort: failures warn and are counted,
     * never thrown.
     */
    void store(const ResultKey &key, const RunResult &r);

    const std::string &dir() const { return dir_; }

    // Session counters (observability + tests).
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t quarantined() const { return quarantined_; }

  private:
    void quarantine(const std::string &path, const char *why);

    std::string dir_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t quarantined_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_SIM_RESULTSTORE_HH
