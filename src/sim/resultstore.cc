#include "sim/resultstore.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/config.hh"
#include "common/io.hh"
#include "common/log.hh"
#include "common/sha256.hh"
#include "common/timeseries.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"

namespace rowsim
{

namespace
{

/** Entry-file magic: "ROWRES\0\0". */
constexpr std::uint8_t kResMagic[8] = {'R', 'O', 'W', 'R', 'E', 'S', 0, 0};

/** magic + u32 schema version + 32-byte key + u64 payload length. */
constexpr std::size_t kResHeaderBytes = 8 + 4 + 32 + 8;
constexpr std::size_t kResTrailerBytes = 32;

} // namespace

std::vector<std::uint8_t>
encodeResult(const RunResult &r)
{
    Ser s;
    s.section("result");
    s.str(r.workload);
    s.str(r.config);
    s.u8(static_cast<std::uint8_t>(r.status));
    s.str(r.error);
    s.u32(r.attempts);
    s.u64(r.cycles);
    s.u64(r.instructions);
    s.u64(r.atomicsCommitted);
    s.f64(r.atomicsPer10k);
    s.u64(r.atomicsUnlocked);
    s.u64(r.detectedContended);
    s.u64(r.oracleContended);
    s.f64(r.contendedPct);
    s.f64(r.missLatency);
    s.f64(r.dispatchToIssue);
    s.f64(r.issueToLock);
    s.f64(r.lockToUnlock);
    s.f64(r.dispatchToIssueP50);
    s.f64(r.dispatchToIssueP90);
    s.f64(r.dispatchToIssueP99);
    s.f64(r.issueToLockP50);
    s.f64(r.issueToLockP90);
    s.f64(r.issueToLockP99);
    s.f64(r.lockToUnlockP50);
    s.f64(r.lockToUnlockP90);
    s.f64(r.lockToUnlockP99);
    s.f64(r.olderUnexecuted);
    s.f64(r.youngerStarted);
    s.f64(r.predAccuracy);
    s.u64(r.atomicsForwarded);
    s.u64(r.atomicsPromoted);
    s.u64(r.forcedUnlocks);
    s.u64(r.eagerIssued);
    s.u64(r.lazyIssued);
    s.section("converge");
    s.str(r.convergeMetric);
    s.f64(r.convergeTarget);
    s.f64(r.convergeConfidence);
    s.f64(r.convergeAchieved);
    s.b(r.converged);
    s.section("blobs");
    s.str(r.statsJson);
    s.str(r.profileJson);
    s.str(r.spanJson);
    s.str(r.tsJson);
    s.str(r.samplingJson);
    return s.bytes();
}

RunResult
decodeResult(const std::vector<std::uint8_t> &payload)
{
    Deser d(payload);
    RunResult r;
    d.section("result");
    r.workload = d.str();
    r.config = d.str();
    const std::uint8_t status = d.u8();
    if (status > static_cast<std::uint8_t>(RunStatus::TimedOut))
        throw SnapshotError(strprintf("corrupted run status %u", status));
    r.status = static_cast<RunStatus>(status);
    r.error = d.str();
    r.attempts = d.u32();
    r.cycles = d.u64();
    r.instructions = d.u64();
    r.atomicsCommitted = d.u64();
    r.atomicsPer10k = d.f64();
    r.atomicsUnlocked = d.u64();
    r.detectedContended = d.u64();
    r.oracleContended = d.u64();
    r.contendedPct = d.f64();
    r.missLatency = d.f64();
    r.dispatchToIssue = d.f64();
    r.issueToLock = d.f64();
    r.lockToUnlock = d.f64();
    r.dispatchToIssueP50 = d.f64();
    r.dispatchToIssueP90 = d.f64();
    r.dispatchToIssueP99 = d.f64();
    r.issueToLockP50 = d.f64();
    r.issueToLockP90 = d.f64();
    r.issueToLockP99 = d.f64();
    r.lockToUnlockP50 = d.f64();
    r.lockToUnlockP90 = d.f64();
    r.lockToUnlockP99 = d.f64();
    r.olderUnexecuted = d.f64();
    r.youngerStarted = d.f64();
    r.predAccuracy = d.f64();
    r.atomicsForwarded = d.u64();
    r.atomicsPromoted = d.u64();
    r.forcedUnlocks = d.u64();
    r.eagerIssued = d.u64();
    r.lazyIssued = d.u64();
    d.section("converge");
    r.convergeMetric = d.str();
    r.convergeTarget = d.f64();
    r.convergeConfidence = d.f64();
    r.convergeAchieved = d.f64();
    r.converged = d.b();
    d.section("blobs");
    r.statsJson = d.str();
    r.profileJson = d.str();
    r.spanJson = d.str();
    r.tsJson = d.str();
    r.samplingJson = d.str();
    d.expectEnd();
    return r;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {}

std::unique_ptr<ResultStore>
ResultStore::fromEnv()
{
    const char *env = std::getenv("ROWSIM_RESULTS");
    if (!env || !*env)
        return nullptr;
    const std::string v = env;
    if (v == "off" || v == "0" || v == "no" || v == "false")
        return nullptr;
    if (v != "on" && v != "1" && v != "yes" && v != "true") {
        ROWSIM_FATAL("bad ROWSIM_RESULTS '%s' (valid: on, off; directory "
                     "via ROWSIM_RESULTS_DIR)",
                     env);
    }
    const char *dir = std::getenv("ROWSIM_RESULTS_DIR");
    return std::make_unique<ResultStore>(
        (dir && *dir) ? dir : "rowsim-results");
}

ResultKey
ResultStore::keyFor(const SystemParams &params, const std::string &workload,
                    const std::string &label, std::uint64_t quota)
{
    // The fingerprint covers everything that changes the simulated
    // trajectory (architecture, seed, faults). On top of that, the key
    // carries the knobs that change what a RunResult *contains* without
    // changing the simulation: the profiler mask (pcs fills the
    // percentile fields), the span gate (spanJson), and the
    // interval-stats period (statsJson interval series). Resolution
    // mirrors System::setupObservability: params override environment.
    const std::uint32_t profMask =
        params.profileCategories.empty()
            ? Profiler::envMask()
            : parseProfileCategories(params.profileCategories);
    const bool spansOn = params.spans.empty()
                             ? SpanTracker::envEnabled()
                             : parseSpanSpec(params.spans);
    std::uint64_t interval = params.statsInterval;
    if (interval == 0) {
        if (const char *env = std::getenv("ROWSIM_STATS_INTERVAL");
            env && *env) {
            interval = parseEnvU64("ROWSIM_STATS_INTERVAL", env);
        }
    }
    // Time-series / convergence resolution, mirroring
    // System::setupObservability. The convergence spec is special among
    // observability knobs: it changes the *results* (the run stops at
    // the convergence cycle), so it must key the store; the engine
    // enable and window change what the RunResult contains (tsJson).
    std::string convSpec = params.converge;
    if (convSpec.empty()) {
        if (const char *env = std::getenv("ROWSIM_CONVERGE"); env && *env)
            convSpec = env;
    }
    const ConvergeSpec conv = parseConvergeSpec("ROWSIM_CONVERGE",
                                                convSpec);
    std::string tsSpec = params.timeseries;
    if (tsSpec.empty()) {
        if (const char *env = std::getenv("ROWSIM_TS"); env && *env)
            tsSpec = env;
    }
    const bool tsOn =
        conv.active ||
        (!tsSpec.empty() && parseOnOffSpec("ROWSIM_TS", tsSpec));
    std::uint64_t tsWindow = TimeSeriesEngine::kDefaultWindow;
    if (const char *env = std::getenv("ROWSIM_TS_WINDOW"); env && *env)
        tsWindow = parseEnvU64("ROWSIM_TS_WINDOW", env);

    Ser s;
    s.section("rowres-key");
    s.u32(resultSchemaVersion);
    s.u64(configFingerprint(params));
    s.str(workload);
    s.str(label);
    s.u64(quota);
    s.u32(profMask);
    s.b(spansOn);
    s.u64(interval);
    s.b(tsOn);
    s.u64(tsOn ? tsWindow : 0);
    s.b(conv.active);
    s.str(conv.metric);
    s.f64(conv.relHalfwidth);
    s.f64(conv.confidence);
    // The execution mode is deliberately outside the fingerprint (so
    // checkpoints interchange between modes) but changes every metric
    // a run produces — it must key the store.
    s.str(funcModeFor(params) ? "func" : "detail");

    Sha256 h;
    h.update(s.bytes().data(), s.bytes().size());
    return h.digest();
}

std::string
ResultStore::keyHex(const ResultKey &key)
{
    return Sha256::hex(key);
}

std::string
ResultStore::pathFor(const ResultKey &key) const
{
    return dir_ + "/" + keyHex(key) + ".res";
}

void
ResultStore::quarantine(const std::string &path, const char *why)
{
    // Move the damaged entry aside (keeping it for post-mortems) so the
    // recompute path can overwrite the slot; deleting is the fallback
    // when even the rename fails.
    quarantined_++;
    const std::string dst = path + ".quarantined";
    if (std::rename(path.c_str(), dst.c_str()) == 0) {
        ROWSIM_WARN("result store: quarantined '%s' (%s)", path.c_str(),
                    why);
    } else if (std::remove(path.c_str()) == 0) {
        ROWSIM_WARN("result store: removed damaged '%s' (%s)",
                    path.c_str(), why);
    } else {
        ROWSIM_WARN("result store: cannot quarantine '%s' (%s)",
                    path.c_str(), why);
    }
}

bool
ResultStore::load(const ResultKey &key, RunResult &out)
{
    const std::string path = pathFor(key);
    std::vector<std::uint8_t> raw;
    if (!readFileBytes(path, raw)) {
        misses_++;
        return false;
    }

    // Validate the container before trusting a single payload byte.
    if (raw.size() < kResHeaderBytes + kResTrailerBytes ||
        std::memcmp(raw.data(), kResMagic, sizeof(kResMagic)) != 0) {
        quarantine(path, "not a result entry");
        misses_++;
        return false;
    }
    Deser d(raw.data(), raw.size());
    for (std::size_t i = 0; i < sizeof(kResMagic); i++)
        d.u8();
    std::uint32_t version = 0;
    ResultKey embedded{};
    std::uint64_t payloadLen = 0;
    try {
        version = d.u32();
        for (auto &b : embedded)
            b = d.u8();
        payloadLen = d.u64();
    } catch (const SnapshotError &) {
        quarantine(path, "truncated header");
        misses_++;
        return false;
    }
    if (version != resultSchemaVersion) {
        // Stale schema, not damage: the entry was valid for another
        // build. Leave it in place (a store() under the current schema
        // overwrites the slot) and miss cleanly.
        misses_++;
        return false;
    }
    if (embedded != key) {
        quarantine(path, "embedded key mismatch (misplaced entry)");
        misses_++;
        return false;
    }
    if (payloadLen != raw.size() - kResHeaderBytes - kResTrailerBytes) {
        quarantine(path, "truncated payload");
        misses_++;
        return false;
    }
    Sha256 h;
    h.update(raw.data() + kResHeaderBytes,
             static_cast<std::size_t>(payloadLen));
    const auto want = h.digest();
    if (std::memcmp(want.data(), raw.data() + kResHeaderBytes + payloadLen,
                    kResTrailerBytes) != 0) {
        quarantine(path, "payload digest mismatch");
        misses_++;
        return false;
    }

    try {
        out = decodeResult(std::vector<std::uint8_t>(
            raw.begin() + kResHeaderBytes,
            raw.begin() +
                static_cast<std::ptrdiff_t>(kResHeaderBytes + payloadLen)));
    } catch (const SnapshotError &e) {
        // Digest-valid but undecodable means a same-version layout bug;
        // quarantine rather than loop on it.
        quarantine(path, e.what());
        misses_++;
        return false;
    }
    hits_++;
    return true;
}

void
ResultStore::store(const ResultKey &key, const RunResult &r)
{
    const std::vector<std::uint8_t> payload = encodeResult(r);

    Ser file;
    for (std::uint8_t c : kResMagic)
        file.u8(c);
    file.u32(resultSchemaVersion);
    file.raw(key.data(), key.size());
    file.u64(payload.size());
    file.raw(payload.data(), payload.size());
    Sha256 h;
    h.update(payload.data(), payload.size());
    const auto trailer = h.digest();
    file.raw(trailer.data(), trailer.size());

    try {
        atomicWriteFile(pathFor(key), file.bytes());
        stores_++;
    } catch (const IoError &e) {
        // A full disk or bad permissions cost the cache, not the run.
        ROWSIM_WARN("result store: %s", e.what());
    }
}

} // namespace rowsim
