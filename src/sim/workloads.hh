/**
 * @file
 * Synthetic workload substrate.
 *
 * The paper evaluates RoW on PARSEC / Splash-4 / fine-grain-synchronization
 * binaries driven through a Sniper front-end. Those traces are not
 * available here, so each benchmark is replaced by a parameterised kernel
 * that reproduces the behavioural profile the paper's analysis depends on
 * (DESIGN.md §2): atomic intensity, contention degree, dependency shape
 * around the atomic, and store->atomic locality. The eager/lazy trade-off
 * then emerges from the simulated microarchitecture.
 */

#ifndef ROWSIM_SIM_WORKLOADS_HH
#define ROWSIM_SIM_WORKLOADS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/microop.hh"
#include "cpu/stream.hh"

namespace rowsim
{

/** Fixed regions of the simulated address space. */
namespace addrmap
{
/** Shared atomic words, one per cacheline (word i at base + 64*i). */
constexpr Addr sharedAtomicBase = 0x1'0000'0000ULL;
/** Shared data lines (e.g. queue payloads, DB rows). */
constexpr Addr sharedDataBase = 0x2'0000'0000ULL;
/** Per-thread private regions. */
constexpr Addr privateBase = 0x4'0000'0000ULL;
constexpr Addr privateSpan = 0x0'1000'0000ULL;

constexpr Addr
sharedAtomicWord(std::uint64_t i)
{
    return sharedAtomicBase + i * lineBytes;
}

constexpr Addr
sharedDataLine(std::uint64_t i)
{
    return sharedDataBase + i * lineBytes;
}

constexpr Addr
privateLine(CoreId tid, std::uint64_t i)
{
    return privateBase + tid * privateSpan + i * lineBytes;
}
} // namespace addrmap

/**
 * Behavioural profile of one benchmark. See profiles.cc for the
 * per-benchmark instantiations and the rationale for each.
 */
struct WorkloadProfile
{
    std::string name;

    // --- iteration structure (instruction mix) ---
    unsigned aluOps = 20;       ///< dependent ALU chain per iteration
    unsigned aluLatency = 1;
    unsigned loadsBefore = 4;   ///< independent private loads before atomic
    unsigned loadsAfter = 4;    ///< independent private loads after atomic
    unsigned storesPerIter = 1; ///< trailing private stores
    unsigned branches = 2;
    double branchTakenProb = 0.0; ///< 0/1 = predictable; 0.5 = random
    unsigned fillerAlu = 0;       ///< extra independent ALU padding

    // --- atomic behaviour ---
    double atomicProb = 1.0; ///< P(iteration contains an atomic)
    AtomicOp aop = AtomicOp::FetchAdd;
    unsigned numAtomicPCs = 1;

    // --- contention structure ---
    /** Atomics target one of this many shared words (small => contended;
     *  very large => effectively uncontended, canneal-style). */
    std::uint64_t sharedAtomicWords = 1;
    /** Fraction of atomics aimed at the shared pool; the rest go to a
     *  per-thread private pool. */
    double sharedFraction = 1.0;
    std::uint64_t privateAtomicWords = 1024;

    // --- locality (cq/tatp/barnes pattern, §IV-E) ---
    /** P(a store to the atomic's target precedes it in the iteration). */
    double storeBeforeAtomicProb = 0.0;
    /** P(that store hits the same word — forwardable — rather than a
     *  different word of the same line). */
    double storeSameWordProb = 1.0;
    /** Payload stores (shared-data lines) emitted between the slot store
     *  and the atomic. Their store-buffer drain time opens the window in
     *  which a lazily-executed atomic loses the line (§IV-E locality). */
    unsigned payloadStores = 0;

    // --- dependency shaping (Fig. 4) ---
    /** Atomic's address operand depends on the ALU chain (late ready). */
    bool atomicDependsOnChain = false;
    /** Post-atomic work depends on the atomic's result (no younger ILP). */
    bool chainAfterAtomic = false;

    // --- private working set ---
    std::uint64_t privateLines = 1ULL << 12;

    // --- shared data (queue payloads, DB rows) ---
    std::uint64_t sharedDataLines = 0;
    /** P(a leading load targets the shared data region). */
    double sharedDataProb = 0.0;
    /** P(a trailing store targets the shared data region) — creates real
     *  producer/consumer invalidation traffic (pc, tpcc). */
    double sharedStoreProb = 0.0;

    Addr pcBase = 0x400000;

    /** Approximate instructions per iteration (reporting only). */
    unsigned approxInstsPerIter() const;
};

/**
 * The kernel stream: generates iterations of the profile forever,
 * deterministically from (profile, thread id, seed).
 */
class KernelStream : public InstStream
{
  public:
    KernelStream(const WorkloadProfile &profile, CoreId tid,
                 std::uint64_t seed);

    MicroOp next() override;

    void save(Ser &s) const override;
    void restore(Deser &d) override;

  private:
    void genIteration();

    WorkloadProfile p;
    CoreId tid;
    Rng rng;
    std::uint64_t iterCount = 0;
    std::vector<MicroOp> buf;
    std::size_t bufPos = 0;
};

/** Build one stream per core for @p profile. */
std::vector<std::unique_ptr<InstStream>>
makeStreams(const WorkloadProfile &profile, unsigned num_cores,
            std::uint64_t seed);

} // namespace rowsim

#endif // ROWSIM_SIM_WORKLOADS_HH
