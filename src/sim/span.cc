/**
 * @file
 * Span tracker implementation: segment accounting, conservation
 * enforcement, bounded retention, aggregation and the JSON dump.
 */

#include "sim/span.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/trace.hh"

namespace rowsim
{

const char *
spanSegName(SpanSeg s)
{
    switch (s) {
      case SpanSeg::DispatchWait: return "dispatchWait";
      case SpanSeg::SbDrain:      return "sbDrain";
      case SpanSeg::AqWait:       return "aqWait";
      case SpanSeg::Execute:      return "execute";
      case SpanSeg::L1Miss:       return "l1Miss";
      case SpanSeg::UnblockWait:  return "unblockWait";
      case SpanSeg::LockHeld:     return "lockHeld";
      case SpanSeg::NumSegs:      break;
    }
    return "?";
}

bool
parseSpanSpec(const std::string &spec)
{
    if (spec == "0" || spec == "off" || spec == "no" || spec == "false")
        return false;
    if (spec == "1" || spec == "on" || spec == "yes" || spec == "true")
        return true;
    ROWSIM_FATAL("bad span-tracing spec '%s' (valid: 0, off, no, false, "
                 "1, on, yes, true)",
                 spec.c_str());
}

bool
SpanTracker::envEnabled()
{
    // The environment cannot change mid-process; parse once, share
    // across worker threads (function-local static is thread-safe).
    static const bool on = [] {
        const char *s = std::getenv("ROWSIM_SPANS");
        if (!s || !*s)
            return false;
        return parseSpanSpec(s);
    }();
    return on;
}

std::uint64_t
SpanTracker::topK()
{
    if (topKOverride_)
        return topKOverride_;
    static const std::uint64_t k = [] {
        const char *s = std::getenv("ROWSIM_SPANS_TOPK");
        if (!s || !*s)
            return std::uint64_t{64};
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (!end || *end != '\0' || v == 0)
            ROWSIM_FATAL("ROWSIM_SPANS_TOPK: malformed value '%s' "
                         "(expected a positive decimal number)", s);
        return static_cast<std::uint64_t>(v);
    }();
    return k;
}

SpanTracker::SpanTracker(unsigned num_cores)
    : numCores_(num_cores), active_(enabled_)
{
}

std::uint64_t
SpanTracker::open(CoreId core, Addr pc, bool lazy, Cycle now)
{
    const std::uint64_t id = nextId_++;
    Record r;
    r.id = id;
    r.core = core;
    r.pc = pc;
    r.dispatch = now;
    r.lazy = lazy;
    r.cur = SpanSeg::DispatchWait;
    r.segStart = now;
    open_.emplace(id, r);
    return id;
}

void
SpanTracker::transition(std::uint64_t id, SpanSeg seg, Cycle now)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    Record &r = it->second;
    if (r.cur == seg)
        return;
    ROWSIM_ASSERT(now >= r.segStart,
                  "span %llu: segment transition going backwards "
                  "(%llu < %llu)",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(r.segStart));
    if (Trace::enabled(TraceCategory::Span) && now > r.segStart) {
        Trace::instance().complete(
            TraceCategory::Span, static_cast<int>(r.core), traceTidSpans,
            spanSegName(r.cur), r.segStart, now,
            strprintf("{\"span\":%llu,\"pc\":\"%#llx\"}",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(r.pc)));
        // Flow arrows across the remote leg: start when the request
        // leaves for the memory system, finish when the wait ends.
        if (seg == SpanSeg::L1Miss) {
            Trace::instance().flow(TraceCategory::Span,
                                   static_cast<int>(r.core), traceTidSpans,
                                   "miss", id, now, 's');
        } else if (r.cur == SpanSeg::L1Miss) {
            Trace::instance().flow(TraceCategory::Span,
                                   static_cast<int>(r.core), traceTidSpans,
                                   "miss", id, now, 'f');
        }
    }
    r.segs[static_cast<unsigned>(r.cur)] += now - r.segStart;
    r.cur = seg;
    r.segStart = now;
}

void
SpanTracker::setLine(std::uint64_t id, Addr line)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it != open_.end())
        it->second.line = line;
}

void
SpanTracker::replay(std::uint64_t id, Cycle now)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    it->second.replays++;
    // The stolen lock sends the atomic back into a wait; the replay
    // window is charged to aqWait.
    transition(id, SpanSeg::AqWait, now);
    // A steal forces the replay to re-issue lazily.
    it->second.lazy = true;
}

void
SpanTracker::close(std::uint64_t id, Cycle commit)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    ROWSIM_ASSERT(it != open_.end(),
                  "span %llu closed twice (or never opened)",
                  static_cast<unsigned long long>(id));
    Record r = it->second;
    open_.erase(it);

    ROWSIM_ASSERT(commit >= r.segStart,
                  "span %llu: commit %llu before last transition %llu",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(commit),
                  static_cast<unsigned long long>(r.segStart));
    r.segs[static_cast<unsigned>(r.cur)] += commit - r.segStart;
    r.commit = commit;
    // Any queue-wait bookkeeping left behind (request satisfied without
    // a dequeue notification) must not leak into a future span ID.
    dirQueuedAt_.erase(id);

    // Conservation: the segments must exactly tile dispatch→commit.
    // Transitions make this structural, so a violation means a hook
    // charged time outside the span or the clock went backwards.
    std::uint64_t sum = 0;
    for (std::uint64_t s : r.segs)
        sum += s;
    if (sum != r.total()) {
        ROWSIM_PANIC("[span] span %llu (core%u pc=%#llx): segments sum "
                     "to %llu cycles, expected commit-dispatch = %llu",
                     static_cast<unsigned long long>(id), r.core,
                     static_cast<unsigned long long>(r.pc),
                     static_cast<unsigned long long>(sum),
                     static_cast<unsigned long long>(r.total()));
    }

    closedCount_++;
    aggregate(r);
    retain(r);

    if (Trace::enabled(TraceCategory::Span)) {
        Trace &t = Trace::instance();
        if (r.commit > r.segStart) {
            t.complete(TraceCategory::Span, static_cast<int>(r.core),
                       traceTidSpans, spanSegName(r.cur), r.segStart,
                       r.commit,
                       strprintf("{\"span\":%llu,\"pc\":\"%#llx\"}",
                                 static_cast<unsigned long long>(id),
                                 static_cast<unsigned long long>(r.pc)));
        }
        t.span(TraceCategory::Span, static_cast<int>(r.core),
               traceTidSpans, "atomic", id, r.dispatch, r.commit,
               strprintf("{\"pc\":\"%#llx\",\"line\":\"%#llx\","
                         "\"lazy\":%s,\"replays\":%u}",
                         static_cast<unsigned long long>(r.pc),
                         static_cast<unsigned long long>(r.line),
                         r.lazy ? "true" : "false", r.replays));
    }
}

void
SpanTracker::netHop(std::uint64_t id, Cycle sent, Cycle now)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return; // e.g. an Unblock delivered after the span committed
    it->second.netCycles += now >= sent ? now - sent : 0;
    it->second.netHops++;
    if (Trace::enabled(TraceCategory::Span)) {
        Trace::instance().flow(TraceCategory::Span, tracePidNetwork, 0,
                               "miss", id, now, 't');
    }
}

void
SpanTracker::dirBlockedWindow(std::uint64_t id, Cycle since, Cycle now)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    it->second.dirBlocked += now >= since ? now - since : 0;
}

void
SpanTracker::dirQueued(std::uint64_t id, Cycle now)
{
    if (id == 0)
        return;
    if (open_.count(id))
        dirQueuedAt_.emplace(id, now);
}

void
SpanTracker::dirDequeued(std::uint64_t id, Cycle now)
{
    if (id == 0)
        return;
    auto q = dirQueuedAt_.find(id);
    if (q == dirQueuedAt_.end())
        return;
    const Cycle since = q->second;
    dirQueuedAt_.erase(q);
    auto it = open_.find(id);
    if (it != open_.end())
        it->second.dirBlocked += now >= since ? now - since : 0;
}

void
SpanTracker::lockStall(std::uint64_t id, Cycle arrival, Cycle now)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    it->second.lockStall += now >= arrival ? now - arrival : 0;
}

void
SpanTracker::truncateOpen()
{
    truncated_ += open_.size();
    open_.clear();
    dirQueuedAt_.clear();
}

void
SpanTracker::aggregate(const Record &r)
{
    for (unsigned s = 0; s < numSpanSegs; s++)
        segTotals_[s] += r.segs[s];
    netTotal_ += r.netCycles;
    dirBlockedTotal_ += r.dirBlocked;
    lockStallTotal_ += r.lockStall;
    grandTotal_ += r.total();

    totalHist_.sample(static_cast<double>(r.total()));
    lockHeldHist_.sample(static_cast<double>(
        r.segs[static_cast<unsigned>(SpanSeg::LockHeld)]));
    const std::uint64_t miss =
        r.segs[static_cast<unsigned>(SpanSeg::L1Miss)];
    if (miss)
        missHist_.sample(static_cast<double>(miss));

    auto fold = [&r](Agg &a) {
        a.count++;
        a.total += r.total();
        for (unsigned s = 0; s < numSpanSegs; s++)
            a.segs[s] += r.segs[s];
        a.netCycles += r.netCycles;
        a.dirBlocked += r.dirBlocked;
        a.lockStall += r.lockStall;
        if (r.lazy)
            a.lazy++;
        a.replays += r.replays;
    };
    fold(pcs_[r.pc]);
    if (r.line != invalidAddr)
        fold(lines_[r.line]);
}

void
SpanTracker::retain(const Record &r)
{
    const std::uint64_t k = topK();
    if (retained_.size() < k) {
        retained_.push_back(r);
        return;
    }
    // Replace the current fastest retained span when strictly slower;
    // ties keep the earlier span (deterministic).
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < retained_.size(); i++) {
        if (retained_[i].total() < retained_[min_i].total() ||
            (retained_[i].total() == retained_[min_i].total() &&
             retained_[i].id > retained_[min_i].id)) {
            min_i = i;
        }
    }
    if (r.total() > retained_[min_i].total())
        retained_[min_i] = r;
}

std::vector<SpanTracker::Record>
SpanTracker::retained() const
{
    std::vector<Record> out = retained_;
    std::sort(out.begin(), out.end(), [](const Record &a, const Record &b) {
        if (a.total() != b.total())
            return a.total() > b.total();
        return a.id < b.id;
    });
    return out;
}

namespace
{

std::string
histJson(const Histogram &h)
{
    return strprintf(
        "{\"count\":%llu,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,"
        "\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g}",
        static_cast<unsigned long long>(h.summary().count()),
        h.summary().mean(), h.summary().min(), h.summary().max(),
        h.percentile(0.50), h.percentile(0.90), h.percentile(0.99));
}

std::string
aggJson(const SpanTracker::Agg &a)
{
    std::string out = strprintf(
        "\"count\":%llu,\"total\":%llu,\"lazy\":%llu,\"replays\":%llu",
        static_cast<unsigned long long>(a.count),
        static_cast<unsigned long long>(a.total),
        static_cast<unsigned long long>(a.lazy),
        static_cast<unsigned long long>(a.replays));
    for (unsigned s = 0; s < numSpanSegs; s++)
        out += strprintf(",\"%s\":%llu",
                         spanSegName(static_cast<SpanSeg>(s)),
                         static_cast<unsigned long long>(a.segs[s]));
    out += strprintf(",\"netCycles\":%llu,\"dirBlocked\":%llu,"
                     "\"lockStall\":%llu",
                     static_cast<unsigned long long>(a.netCycles),
                     static_cast<unsigned long long>(a.dirBlocked),
                     static_cast<unsigned long long>(a.lockStall));
    return out;
}

/** Top-K (by total, ties by address) slice of an aggregate map. */
std::vector<std::pair<Addr, const SpanTracker::Agg *>>
topAggs(const std::unordered_map<Addr, SpanTracker::Agg> &m,
        std::uint64_t k)
{
    std::vector<std::pair<Addr, const SpanTracker::Agg *>> sorted;
    sorted.reserve(m.size());
    for (const auto &kv : m)
        sorted.emplace_back(kv.first, &kv.second);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->total != b.second->total)
                      return a.second->total > b.second->total;
                  return a.first < b.first;
              });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

} // namespace

std::string
SpanTracker::toJson() const
{
    std::string out = strprintf(
        "{\"opened\":%llu,\"closed\":%llu,\"openAtEnd\":%llu,"
        "\"truncated\":%llu",
        static_cast<unsigned long long>(opened()),
        static_cast<unsigned long long>(closed()),
        static_cast<unsigned long long>(openCount()),
        static_cast<unsigned long long>(truncated_));

    out += ",\"segTotals\":{";
    for (unsigned s = 0; s < numSpanSegs; s++)
        out += strprintf("%s\"%s\":%llu", s ? "," : "",
                         spanSegName(static_cast<SpanSeg>(s)),
                         static_cast<unsigned long long>(segTotals_[s]));
    out += strprintf(",\"total\":%llu,\"netCycles\":%llu,"
                     "\"dirBlocked\":%llu,\"lockStall\":%llu}",
                     static_cast<unsigned long long>(grandTotal_),
                     static_cast<unsigned long long>(netTotal_),
                     static_cast<unsigned long long>(dirBlockedTotal_),
                     static_cast<unsigned long long>(lockStallTotal_));

    out += ",\"latency\":" + histJson(totalHist_);
    out += ",\"missLatency\":" + histJson(missHist_);
    out += ",\"lockHeld\":" + histJson(lockHeldHist_);

    const std::uint64_t k = topK();
    out += strprintf(",\"pcsTracked\":%zu,\"pcs\":[", pcs_.size());
    auto pcs = topAggs(pcs_, k);
    for (std::size_t i = 0; i < pcs.size(); i++) {
        out += strprintf("%s{\"pc\":\"%#llx\",", i ? "," : "",
                         static_cast<unsigned long long>(pcs[i].first));
        out += aggJson(*pcs[i].second);
        out += "}";
    }
    out += strprintf("],\"linesTracked\":%zu,\"lines\":[", lines_.size());
    auto lines = topAggs(lines_, k);
    for (std::size_t i = 0; i < lines.size(); i++) {
        out += strprintf("%s{\"line\":\"%#llx\",", i ? "," : "",
                         static_cast<unsigned long long>(lines[i].first));
        out += aggJson(*lines[i].second);
        out += "}";
    }

    out += "],\"spans\":[";
    const std::vector<Record> recs = retained();
    for (std::size_t i = 0; i < recs.size(); i++) {
        const Record &r = recs[i];
        out += strprintf(
            "%s{\"id\":%llu,\"core\":%u,\"pc\":\"%#llx\","
            "\"line\":\"%#llx\",\"dispatch\":%llu,\"commit\":%llu,"
            "\"total\":%llu,\"lazy\":%s,\"replays\":%u,\"segs\":{",
            i ? "," : "", static_cast<unsigned long long>(r.id), r.core,
            static_cast<unsigned long long>(r.pc),
            static_cast<unsigned long long>(r.line),
            static_cast<unsigned long long>(r.dispatch),
            static_cast<unsigned long long>(r.commit),
            static_cast<unsigned long long>(r.total()),
            r.lazy ? "true" : "false", r.replays);
        for (unsigned s = 0; s < numSpanSegs; s++)
            out += strprintf("%s\"%s\":%llu", s ? "," : "",
                             spanSegName(static_cast<SpanSeg>(s)),
                             static_cast<unsigned long long>(r.segs[s]));
        // Critical-path decomposition: the miss window, split into its
        // overlapping remote legs; the residual is local protocol /
        // queuing time none of the legs explain.
        const std::uint64_t miss =
            r.segs[static_cast<unsigned>(SpanSeg::L1Miss)];
        const std::uint64_t legs =
            r.netCycles + r.dirBlocked + r.lockStall;
        const std::uint64_t residual = miss > legs ? miss - legs : 0;
        // The dominant contributor along dispatch→commit, with the miss
        // window replaced by its decomposition.
        const char *dom = "dispatchWait";
        std::uint64_t dom_v = 0;
        for (unsigned s = 0; s < numSpanSegs; s++) {
            if (s == static_cast<unsigned>(SpanSeg::L1Miss))
                continue;
            if (r.segs[s] > dom_v) {
                dom_v = r.segs[s];
                dom = spanSegName(static_cast<SpanSeg>(s));
            }
        }
        const std::pair<const char *, std::uint64_t> parts[] = {
            {"netHops", r.netCycles},
            {"dirBlocked", r.dirBlocked},
            {"lockStall", r.lockStall},
            {"missOther", residual},
        };
        for (const auto &p : parts) {
            if (p.second > dom_v) {
                dom_v = p.second;
                dom = p.first;
            }
        }
        out += strprintf(
            "},\"netHops\":%llu,\"netCycles\":%llu,\"dirBlocked\":%llu,"
            "\"lockStall\":%llu,"
            "\"critical\":{\"missOther\":%llu,\"dominant\":\"%s\"}}",
            static_cast<unsigned long long>(r.netHops),
            static_cast<unsigned long long>(r.netCycles),
            static_cast<unsigned long long>(r.dirBlocked),
            static_cast<unsigned long long>(r.lockStall),
            static_cast<unsigned long long>(residual), dom);
    }
    out += "]}";
    return out;
}

} // namespace rowsim
