/**
 * @file
 * Runtime-gated protocol invariant checker.
 *
 * Modelled on the trace layer (src/common/trace.hh): every check point
 * compiles to a single branch on a static category bitmask, so leaving
 * checking off costs one predictable branch per tick. With categories
 * enabled (ROWSIM_CHECK env var or SystemParams::checkCategories) the
 * checker sweeps the whole system every N cycles and validates the
 * protocol invariants DESIGN.md promises:
 *
 *  - swmr:      at most one Modified copy of any line; the directory's
 *               sharer/owner records agree with actual L1/L2 contents.
 *  - locks:     every locked line maps to a live in-flight atomic and is
 *               held in M; no lock is held past the deadlock bound.
 *  - leaks:     MSHRs, writeback-buffer entries and directory Blocked
 *               entries do not outlive the deadlock bound; queue depths
 *               stay sane.
 *  - messages:  mesh message conservation (injected == delivered +
 *               in flight), no overdue deliveries, InvAck counts within
 *               range — every request eventually produces a response.
 *  - occupancy: ROB / LQ / SQ / AQ / IQ occupancy within configured
 *               capacity.
 *
 * A violation panics with a message naming the offending core / cache /
 * bank / line; the System's panic hook then emits a crash-diagnostics
 * dump (see System::dumpCrashDiagnostics) before the panic propagates.
 */

#ifndef ROWSIM_SIM_CHECKER_HH
#define ROWSIM_SIM_CHECKER_HH

#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace rowsim
{

class System;

/** One bit per invariant family; combined into the runtime check mask. */
enum class CheckCategory : std::uint32_t
{
    Swmr      = 1u << 0, ///< single-writer / directory agreement
    Locks     = 1u << 1, ///< locked-line accounting
    Leaks     = 1u << 2, ///< MSHR / Blocked-entry / writeback leaks
    Messages  = 1u << 3, ///< mesh message conservation + request TTL
    Occupancy = 1u << 4, ///< ROB / LQ / SQ / AQ / IQ bounds
};

constexpr std::uint32_t checkCategoryAll = (1u << 5) - 1;

const char *checkCategoryName(CheckCategory c);

/**
 * Parse a comma-separated category list ("swmr,locks", "all", "none")
 * into a bitmask. Unknown names are a user error (fatal). An empty
 * string yields 0 (checking off).
 */
std::uint32_t parseCheckCategories(const std::string &spec);

/**
 * The whole-system checker. One per System; the category mask is static
 * (like the trace mask) so the per-tick and per-event gates are one
 * branch with no instance lookup.
 */
class Checker
{
  public:
    Checker(System *sys, Cycle interval);

    /** Fast inline gates. */
    static bool anyEnabled() { return mask_ != 0; }
    static bool
    enabled(CheckCategory c)
    {
        return (mask_ & static_cast<std::uint32_t>(c)) != 0;
    }

    /** Programmatic mask control (tests, SystemParams). */
    static void configure(std::uint32_t mask) { mask_ = mask; }
    static std::uint32_t mask() { return mask_; }

    /** One-time env-var initialisation (ROWSIM_CHECK,
     *  ROWSIM_CHECK_INTERVAL); idempotent. */
    static void initFromEnv();
    /** Sweep interval from ROWSIM_CHECK_INTERVAL (default 1024). */
    static Cycle envInterval();

    /** Called every tick when any category is enabled; runs a sweep
     *  every `interval` cycles. */
    void
    tick(Cycle now)
    {
        if (now - lastSweep_ >= interval_)
            sweep(now);
    }

    /** Run every enabled invariant sweep immediately (tests call this
     *  directly; panics on the first violation found). */
    void sweep(Cycle now);

    std::uint64_t sweepsRun() const { return sweeps_; }
    Cycle interval() const { return interval_; }
    /** First cycle at which tick() would sweep again (service hoist). */
    Cycle nextSweepAt() const { return lastSweep_ + interval_; }

    /** Snapshot support: sweep schedule position (System aux pass). */
    Cycle lastSweepAt() const { return lastSweep_; }
    void
    restoreSweepState(Cycle last_sweep, std::uint64_t sweeps)
    {
        lastSweep_ = last_sweep;
        sweeps_ = sweeps;
    }

  private:
    void checkSwmr(Cycle now);
    void checkLocks(Cycle now);
    void checkLeaks(Cycle now);
    void checkMessages(Cycle now);
    void checkOccupancy(Cycle now);

    System *sys;
    Cycle interval_;
    Cycle lastSweep_ = 0;
    std::uint64_t sweeps_ = 0;

    // Thread-local like the trace mask: each sweep worker carries its
    // own check mask, so concurrent Systems gate independently.
    static inline thread_local std::uint32_t mask_ = 0;
};

/**
 * Event-level check point for protocol components (one branch when the
 * category is off; the condition and message arguments are only
 * evaluated when it is on). Panics — and thus triggers the crash dump —
 * when @p cond is false.
 */
#define ROWSIM_CHECK_EVENT(cat, cond, ...)                                 \
    do {                                                                   \
        if (::rowsim::Checker::enabled(cat) && !(cond)) {                  \
            ::rowsim::panicImpl(                                           \
                __FILE__, __LINE__,                                        \
                ::rowsim::strprintf("[check:%s] violated: %s — ",          \
                                    ::rowsim::checkCategoryName(cat),      \
                                    #cond) +                               \
                    ::rowsim::strprintf(__VA_ARGS__));                     \
        }                                                                  \
    } while (0)

} // namespace rowsim

#endif // ROWSIM_SIM_CHECKER_HH
