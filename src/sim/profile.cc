/**
 * @file
 * Attribution profiler implementation: category parsing, the
 * slot-conservation check, and the single-line JSON dump.
 */

#include "sim/profile.hh"

#include <algorithm>
#include <cstdlib>

namespace rowsim
{

const char *
profCategoryName(ProfCategory c)
{
    switch (c) {
      case ProfCategory::Cpi:   return "cpi";
      case ProfCategory::Lines: return "lines";
      case ProfCategory::Row:   return "row";
      case ProfCategory::Pcs:   return "pcs";
      case ProfCategory::Check: return "check";
    }
    return "?";
}

const char *
cpiBucketName(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Retired:        return "retired";
      case CpiBucket::FrontendStall:  return "frontendStall";
      case CpiBucket::RobFull:        return "robFull";
      case CpiBucket::Exec:           return "exec";
      case CpiBucket::SqDrainWait:    return "sqDrainWait";
      case CpiBucket::AtomicLazyWait: return "atomicLazyWait";
      case CpiBucket::AtomicExecute:  return "atomicExecute";
      case CpiBucket::CoherenceMiss:  return "coherenceMiss";
      case CpiBucket::Idle:           return "idle";
      case CpiBucket::NumBuckets:     break;
    }
    return "?";
}

std::uint32_t
parseProfileCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= profCategoryAll;
        } else if (tok == "none") {
            // explicit off; keeps "none" scripts readable
        } else if (tok == "cpi") {
            mask |= static_cast<std::uint32_t>(ProfCategory::Cpi);
        } else if (tok == "lines") {
            mask |= static_cast<std::uint32_t>(ProfCategory::Lines);
        } else if (tok == "row") {
            mask |= static_cast<std::uint32_t>(ProfCategory::Row);
        } else if (tok == "pcs") {
            mask |= static_cast<std::uint32_t>(ProfCategory::Pcs);
        } else if (tok == "check") {
            // conservation check needs the cpi slots it checks
            mask |= static_cast<std::uint32_t>(ProfCategory::Check) |
                    static_cast<std::uint32_t>(ProfCategory::Cpi);
        } else {
            ROWSIM_FATAL("unknown profile category '%s' (valid: cpi, "
                         "lines, row, pcs, check, all, none)",
                         tok.c_str());
        }
    }
    return mask;
}

std::uint32_t
Profiler::envMask()
{
    // The environment cannot change mid-process; parse once, share
    // across worker threads (function-local static is thread-safe).
    static const std::uint32_t mask = [] {
        const char *spec = std::getenv("ROWSIM_PROFILE");
        return spec ? parseProfileCategories(spec) : 0u;
    }();
    return mask;
}

Profiler::Profiler(unsigned num_cores, unsigned commit_width)
    : numCores_(num_cores), commitWidth_(commit_width),
      activeMask_(mask_), cpi_(num_cores)
{
    for (auto &stack : cpi_)
        stack.fill(0);
}

void
Profiler::checkConservation(Cycle cycles, const char *where) const
{
    const std::uint64_t expect =
        static_cast<std::uint64_t>(cycles) * commitWidth_;
    for (unsigned c = 0; c < numCores_; ++c) {
        std::uint64_t total = 0;
        for (std::uint64_t slots : cpi_[c])
            total += slots;
        if (total != expect) {
            ROWSIM_PANIC("[profile:check] %s: core%u CPI stack has "
                         "%llu slots, expected %llu cycles x %u width "
                         "= %llu",
                         where, c,
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(cycles),
                         commitWidth_,
                         static_cast<unsigned long long>(expect));
        }
    }
}

Profiler::RowProf
Profiler::rowTotals() const
{
    RowProf t;
    for (const auto &kv : rowAudit_) {
        for (int p = 0; p < 2; ++p)
            for (int o = 0; o < 2; ++o)
                t.cell[p][o] += kv.second.cell[p][o];
        t.lazyWasteCycles += kv.second.lazyWasteCycles;
        t.eagerContendedCycles += kv.second.eagerContendedCycles;
    }
    return t;
}

namespace
{

std::uint64_t
topK()
{
    static const std::uint64_t k = [] {
        const char *s = std::getenv("ROWSIM_PROFILE_TOPK");
        if (!s || !*s)
            return std::uint64_t{16};
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (!end || *end != '\0' || v == 0)
            ROWSIM_FATAL("ROWSIM_PROFILE_TOPK: malformed value '%s' "
                         "(expected a positive decimal number)", s);
        return static_cast<std::uint64_t>(v);
    }();
    return k;
}

unsigned
popcount64(std::uint64_t v)
{
    unsigned n = 0;
    while (v) {
        v &= v - 1;
        n++;
    }
    return n;
}

} // namespace

std::string
Profiler::toJson() const
{
    std::string out = "{";
    out += strprintf("\"commitWidth\":%u,\"categories\":\"", commitWidth_);
    bool firstCat = true;
    for (std::uint32_t bit = 1; bit < (1u << 5); bit <<= 1) {
        if (activeMask_ & bit) {
            if (!firstCat)
                out += ",";
            out += profCategoryName(static_cast<ProfCategory>(bit));
            firstCat = false;
        }
    }
    out += "\"";

    if (activeMask_ & static_cast<std::uint32_t>(ProfCategory::Cpi)) {
        out += ",\"cpi\":[";
        for (unsigned c = 0; c < numCores_; ++c) {
            out += strprintf("%s{\"core\":%u", c ? "," : "", c);
            for (unsigned b = 0; b < numCpiBuckets; ++b)
                out += strprintf(
                    ",\"%s\":%llu",
                    cpiBucketName(static_cast<CpiBucket>(b)),
                    static_cast<unsigned long long>(cpi_[c][b]));
            out += "}";
        }
        out += "]";
    }

    if (activeMask_ & static_cast<std::uint32_t>(ProfCategory::Lines)) {
        std::vector<std::pair<Addr, const LineProf *>> sorted;
        sorted.reserve(lines_.size());
        for (const auto &kv : lines_)
            sorted.emplace_back(kv.first, &kv.second);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second->holdCycles != b.second->holdCycles)
                          return a.second->holdCycles >
                                 b.second->holdCycles;
                      return a.first < b.first; // deterministic ties
                  });
        const std::uint64_t k = topKOverride_ ? topKOverride_ : topK();
        if (sorted.size() > k)
            sorted.resize(k);
        out += strprintf(",\"linesTracked\":%zu,\"lines\":[",
                         lines_.size());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            const LineProf &p = *sorted[i].second;
            out += strprintf(
                "%s{\"line\":\"%#llx\",\"acquires\":%llu,"
                "\"holdCycles\":%llu,\"contendedUnlocks\":%llu,"
                "\"remoteFills\":%llu,\"ownerSwaps\":%llu,"
                "\"lockStalls\":%llu,\"lockStallCycles\":%llu,"
                "\"steals\":%llu,\"queuedMax\":%llu,\"cores\":%u}",
                i ? "," : "",
                static_cast<unsigned long long>(sorted[i].first),
                static_cast<unsigned long long>(p.acquires),
                static_cast<unsigned long long>(p.holdCycles),
                static_cast<unsigned long long>(p.contendedUnlocks),
                static_cast<unsigned long long>(p.remoteFills),
                static_cast<unsigned long long>(p.ownerSwaps),
                static_cast<unsigned long long>(p.lockStalls),
                static_cast<unsigned long long>(p.lockStallCycles),
                static_cast<unsigned long long>(p.steals),
                static_cast<unsigned long long>(p.queuedMax),
                popcount64(p.coresMask));
        }
        out += "]";
    }

    if (activeMask_ & static_cast<std::uint32_t>(ProfCategory::Row)) {
        std::vector<std::pair<Addr, const RowProf *>> sorted;
        sorted.reserve(rowAudit_.size());
        for (const auto &kv : rowAudit_)
            sorted.emplace_back(kv.first, &kv.second);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        out += ",\"row\":{\"pcs\":[";
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            const RowProf &p = *sorted[i].second;
            out += strprintf(
                "%s{\"pc\":\"%#llx\",\"eagerUncontended\":%llu,"
                "\"eagerContended\":%llu,\"lazyUncontended\":%llu,"
                "\"lazyContended\":%llu,\"lazyWasteCycles\":%llu,"
                "\"eagerContendedCycles\":%llu}",
                i ? "," : "",
                static_cast<unsigned long long>(sorted[i].first),
                static_cast<unsigned long long>(p.cell[0][0]),
                static_cast<unsigned long long>(p.cell[0][1]),
                static_cast<unsigned long long>(p.cell[1][0]),
                static_cast<unsigned long long>(p.cell[1][1]),
                static_cast<unsigned long long>(p.lazyWasteCycles),
                static_cast<unsigned long long>(
                    p.eagerContendedCycles));
        }
        const RowProf t = rowTotals();
        const std::uint64_t total = t.cell[0][0] + t.cell[0][1] +
                                    t.cell[1][0] + t.cell[1][1];
        const std::uint64_t agree = t.cell[0][0] + t.cell[1][1];
        out += strprintf(
            "],\"totals\":{\"eagerUncontended\":%llu,"
            "\"eagerContended\":%llu,\"lazyUncontended\":%llu,"
            "\"lazyContended\":%llu,\"updates\":%llu,"
            "\"contendedOutcomes\":%llu,\"lazyWasteCycles\":%llu,"
            "\"eagerContendedCycles\":%llu},"
            "\"dispatchAccuracy\":%.6f}",
            static_cast<unsigned long long>(t.cell[0][0]),
            static_cast<unsigned long long>(t.cell[0][1]),
            static_cast<unsigned long long>(t.cell[1][0]),
            static_cast<unsigned long long>(t.cell[1][1]),
            static_cast<unsigned long long>(total),
            static_cast<unsigned long long>(t.cell[0][1] +
                                            t.cell[1][1]),
            static_cast<unsigned long long>(t.lazyWasteCycles),
            static_cast<unsigned long long>(t.eagerContendedCycles),
            total ? static_cast<double>(agree) /
                        static_cast<double>(total)
                  : 0.0);
    }

    if (activeMask_ & static_cast<std::uint32_t>(ProfCategory::Pcs)) {
        std::vector<std::pair<Addr, const PcProf *>> sorted;
        sorted.reserve(pcs_.size());
        for (const auto &kv : pcs_)
            sorted.emplace_back(kv.first, &kv.second);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        out += ",\"pcs\":[";
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            const PcProf &p = *sorted[i].second;
            out += strprintf(
                "%s{\"pc\":\"%#llx\",\"count\":%llu,"
                "\"dispatchToIssue\":%llu,\"issueToLock\":%llu,"
                "\"lockToUnlock\":%llu}",
                i ? "," : "",
                static_cast<unsigned long long>(sorted[i].first),
                static_cast<unsigned long long>(p.count),
                static_cast<unsigned long long>(p.dispatchToIssue),
                static_cast<unsigned long long>(p.issueToLock),
                static_cast<unsigned long long>(p.lockToUnlock));
        }
        out += "]";
    }

    out += "}";
    return out;
}

} // namespace rowsim
