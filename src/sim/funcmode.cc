/**
 * @file
 * Functional fast-mode interpreter (ROWSIM_MODE=func).
 *
 * A multi-instruction-per-tick execution path that retires the kernel
 * streams architecturally — the gem5 AtomicSimpleCPU / esesc
 * AtomicProcessor analogue — while skipping every out-of-order
 * structure. Each simulated cycle, every unhalted core retires a fixed
 * batch of micro-ops; memory operations go through the synchronous
 * MemSystem::funcAccess path, which applies each coherence
 * transaction's end state directly (caches, LRU order, directory
 * entries, and LLC presence all stay warm), and branches/atomics train
 * the branch and RoW predictors with the same update calls the detail
 * pipeline uses. Because nothing is ever in flight, any func-mode
 * cycle boundary is a legal snapshot point: the ordinary three-pass
 * save/restore round-trips func-warmed state into a detail run (and
 * back) without a dedicated format.
 *
 * What func mode deliberately does NOT model (the functional/detail
 * state contract; DESIGN.md): timing statistics, the StoreSet
 * dependence predictor (its only training input — memory-order
 * violations — is a speculation artifact that functional execution
 * cannot observe; it carries over unchanged), prefetching, and the
 * fault injector (runFunctional is refused under fault injection).
 */

#include <algorithm>

#include "common/log.hh"
#include "common/sha256.hh"
#include "common/trace.hh"
#include "cpu/core.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"

namespace rowsim
{

namespace
{
/** Micro-ops retired per core per functional cycle. The exact value
 *  only scales how fast currentCycle advances relative to retirement
 *  (func-mode cycles are bookkeeping, not time); it is fixed so
 *  func-warmed checkpoints are deterministic. */
constexpr unsigned kFuncBatchOps = 64;
} // namespace

std::uint64_t
Core::funcRun(const std::function<bool(Addr, bool)> &access,
              unsigned max_ops, std::uint64_t iter_limit,
              std::uint64_t inst_limit, Cycle now)
{
    std::uint64_t retired = 0;
    while (retired < max_ops && !halted) {
        if (iter_limit && iterations >= iter_limit)
            break;
        if (inst_limit && committedInsts >= inst_limit)
            break;
        const MicroOp op = stream->next();
        switch (op.cls) {
          case OpClass::Branch:
            // Same training call dispatch makes; the mispredict
            // penalty is timing and does not exist here.
            branchPred.update(op.pc, op.takenBranch);
            break;
          case OpClass::Load:
            access(op.addr, false);
            break;
          case OpClass::Store:
            access(op.addr, true);
            fmem->write64(op.addr, op.value);
            break;
          case OpClass::AtomicRMW: {
            // A cache-to-cache transfer is the same evidence the RWDir
            // detector keys on in detail mode (remote fill); the
            // latency half of the heuristic has no functional
            // equivalent, so "remote" stands in for "contended".
            const bool remote = access(op.addr, true);
            const std::uint64_t old = fmem->read64(op.addr);
            fmem->write64(op.addr, atomicModify(op, old));
            committedAtomicCount++;
            if (params.atomicPolicy == AtomicPolicy::RoW)
                rowPredictor.update(op.pc, remote, now);
            break;
          }
          default:
            // IntAlu / FpAlu / Fence / Nop: no architectural side
            // effect outside the counters (fences order nothing when
            // nothing is ever reordered).
            break;
        }
        committedInsts++;
        if (op.endOfIteration)
            iterations++;
        retired++;
    }
    return retired;
}

Cycle
System::runFunctional(std::uint64_t iter_quota, std::uint64_t warm_iters)
{
    if (faults_) {
        ROWSIM_FATAL("functional fast mode is incompatible with fault "
                     "injection (per-tick RNG draws have no functional "
                     "equivalent); run ROWSIM_MODE=detail");
    }
    if (warm_iters) {
        ROWSIM_ASSERT(warm_iters < iter_quota,
                      "warmup stop %llu must lie inside the quota %llu",
                      static_cast<unsigned long long>(warm_iters),
                      static_cast<unsigned long long>(iter_quota));
    }
    ROWSIM_ASSERT(memsys.idle(),
                  "runFunctional needs a quiesced memory system");

    // Successive warm-up calls with non-decreasing marks (the sampling
    // checkpoint grid) must not advance past a mark that is already
    // met: reaching the warm point is a return condition, not a
    // progress obligation.
    if (warm_iters) {
        bool reached = true;
        for (const auto &c : cores) {
            if (c->committedIterations() < warm_iters) {
                reached = false;
                break;
            }
        }
        if (reached)
            return currentCycle;
    }

    const auto accessFor = [this](CoreId c) {
        return [this, c](Addr addr, bool exclusive) {
            return memsys.funcAccess(c, addr, exclusive, currentCycle);
        };
    };

    while (true) {
        currentCycle++;
        if (Trace::anyEnabled())
            Trace::setNow(currentCycle);

        bool all_done = true;
        bool warm = warm_iters != 0;
        for (CoreId c = 0; c < cores.size(); c++) {
            Core &core = *cores[c];
            if (core.committedIterations() >= iter_quota) {
                if (!core.isHalted())
                    core.halt();
                continue;
            }
            all_done = false;
            core.funcRun(accessFor(c), kFuncBatchOps, iter_quota, 0,
                         currentCycle);
            if (warm && core.committedIterations() < warm_iters)
                warm = false;
        }
        if (all_done || warm)
            break;
    }

    // Re-anchor the timing-side bookkeeping at the new cycle: the
    // watchdog / service schedule must not see the functional segment
    // as a detail-mode commit drought, and interval sampling resumes
    // from here.
    for (CoreId c = 0; c < cores.size(); c++) {
        coreProgress_[c].insts = cores[c]->committedInstructions();
        coreProgress_[c].cycle = currentCycle;
    }
    lastWatchdogScan_ = currentCycle;
    lastStructScan_ = currentCycle;
    recomputeNextService();
    return currentCycle;
}

void
System::runFunctionalToInstCounts(
    const std::vector<std::uint64_t> &targets)
{
    if (faults_) {
        ROWSIM_FATAL("functional fast mode is incompatible with fault "
                     "injection (per-tick RNG draws have no functional "
                     "equivalent); run ROWSIM_MODE=detail");
    }
    ROWSIM_ASSERT(targets.size() == cores.size(),
                  "need one instruction target per core (%zu vs %zu)",
                  targets.size(), cores.size());
    ROWSIM_ASSERT(memsys.idle(),
                  "runFunctional needs a quiesced memory system");

    while (true) {
        currentCycle++;
        bool all_done = true;
        for (CoreId c = 0; c < cores.size(); c++) {
            Core &core = *cores[c];
            if (core.committedInstructions() >= targets[c])
                continue;
            all_done = false;
            const auto access = [this, c](Addr addr, bool exclusive) {
                return memsys.funcAccess(c, addr, exclusive,
                                         currentCycle);
            };
            core.funcRun(access, kFuncBatchOps, 0, targets[c],
                         currentCycle);
        }
        if (all_done)
            break;
    }

    for (CoreId c = 0; c < cores.size(); c++) {
        coreProgress_[c].insts = cores[c]->committedInstructions();
        coreProgress_[c].cycle = currentCycle;
    }
    lastWatchdogScan_ = currentCycle;
    lastStructScan_ = currentCycle;
    recomputeNextService();
}

std::string
System::funcStateDigest() const
{
    // Mode-independent architectural facts only: committed-work
    // counters and the value memory. Everything timing-dependent
    // (cache/LRU contents, predictors, currentCycle itself) is
    // excluded — see the header comment for the contract.
    auto &self = const_cast<System &>(*this);
    Ser s;
    s.section("funcdigest");
    s.u64(cores.size());
    for (const auto &c : cores) {
        s.u64(c->committedInstructions());
        s.u64(c->committedAtomics());
        s.u64(c->committedIterations());
    }
    self.memsys.functional().save(s);

    const std::uint64_t fp = configFingerprint();
    std::uint8_t fp_bytes[8];
    for (unsigned i = 0; i < 8; i++)
        fp_bytes[i] = static_cast<std::uint8_t>(fp >> (8 * i));
    Sha256 h;
    h.update(fp_bytes, sizeof(fp_bytes));
    h.update(s.bytes().data(), s.bytes().size());
    return Sha256::hex(h.digest());
}

std::vector<std::pair<std::string, std::string>>
System::sectionDigests() const
{
    auto &self = const_cast<System &>(*this);
    std::vector<std::pair<std::string, std::string>> out;
    const auto digestOf = [](const Ser &s) {
        Sha256 h;
        h.update(s.bytes().data(), s.bytes().size());
        return Sha256::hex(h.digest());
    };

    {
        Ser s;
        s.u64(currentCycle);
        out.emplace_back("cycle", digestOf(s));
    }
    for (CoreId c = 0; c < cores.size(); c++) {
        Ser s;
        cores[c]->save(s);
        out.emplace_back(strprintf("core%u", c), digestOf(s));
    }
    {
        Ser s;
        self.memsys.network().save(s);
        out.emplace_back("network", digestOf(s));
    }
    {
        Ser s;
        self.memsys.functional().save(s);
        out.emplace_back("fmem", digestOf(s));
    }
    for (CoreId c = 0; c < cores.size(); c++) {
        Ser s;
        self.memsys.cache(c).save(s);
        out.emplace_back(strprintf("cache%u", c), digestOf(s));
    }
    for (unsigned b = 0; b < self.memsys.numBanks(); b++) {
        Ser s;
        self.memsys.directory(b).save(s);
        out.emplace_back(strprintf("dir%u", b), digestOf(s));
    }
    if (faults_) {
        Ser s;
        faults_->save(s);
        out.emplace_back("faults", digestOf(s));
    }
    return out;
}

} // namespace rowsim
