/**
 * @file
 * Named benchmark profiles: one WorkloadProfile per application the paper
 * evaluates, tuned to land in the same qualitative region of the paper's
 * Fig. 5 (atomic intensity / contentiousness plane). See DESIGN.md §2.
 */

#ifndef ROWSIM_SIM_PROFILES_HH
#define ROWSIM_SIM_PROFILES_HH

#include <string>
#include <vector>

#include "sim/workloads.hh"

namespace rowsim
{

/** Profile for @p name; fatal on unknown names. */
WorkloadProfile profileFor(const std::string &name);

/** The atomic-intensive subset shown in the paper's per-figure plots,
 *  in Fig. 1 order (best -> worst eager-vs-lazy speedup). */
const std::vector<std::string> &atomicIntensiveWorkloads();

/** All workloads (atomic-intensive + the synchronisation-poor rest) for
 *  the "all applications" averages quoted in §VI. */
const std::vector<std::string> &allWorkloads();

/** Default per-core iteration quota giving a stable measurement for
 *  @p name (bigger iterations need fewer of them). */
std::uint64_t defaultQuota(const std::string &name);

} // namespace rowsim

#endif // ROWSIM_SIM_PROFILES_HH
