/**
 * @file
 * Causal span tracing for atomic lifetimes.
 *
 * Every atomic RMW opens a *span* at dispatch and closes it at commit.
 * Between those two points the span is always in exactly one *segment*
 * (dispatchWait, sbDrain, aqWait, execute, l1Miss, unblockWait,
 * lockHeld): the core, cache and directory report phase transitions and
 * the tracker charges the elapsed cycles to the segment being left.
 * Because segments are recorded as transitions of one cursor, they tile
 * dispatch→commit *by construction*, and close() asserts the
 * conservation invariant (Σ segments == commit − dispatch) so any
 * missed or reordered transition panics instead of skewing data.
 *
 * On top of the tiling segments, three *overlapping legs* attribute the
 * remote portion of a miss causally: the span ID travels on coherence
 * messages (Msg::spanId), so
 *
 *  - netHops  — Σ per-message network latency of every hop of the
 *               span's transaction (request, forward, data, acks),
 *  - dirBlocked — directory residency charged to the span: its own
 *               transaction's Blocked window plus any wait in a bank's
 *               queue behind another transaction's Blocked window,
 *  - lockStall — cycles the span's request spent stalled at a remote
 *               core against an AQ-locked line
 *
 * are accumulated per span. They overlap the l1Miss segment (and each
 * other), so they are *not* part of the conservation sum; critical-path
 * extraction subtracts them from the miss window instead (the
 * "critical" object on every retained record; rendered by
 * tools/span_report).
 *
 * Modelled on the attribution profiler (src/sim/profile.hh): state is
 * per-System, the enable gate is a static thread-local flag that
 * System::setupSpans() unconditionally re-applies per construction
 * (ROWSIM_SPANS env, overridden by SystemParams::spans), so parallel
 * sweep jobs never leak the gate across worker threads. Aggregates
 * (per-PC / per-line segment breakdowns, whole-run segment histograms
 * with p50/p90/p99) cover *every* span; full per-span records are
 * bounded by the ROWSIM_SPANS_TOPK retention policy (the K slowest
 * spans are kept, default 64), so fig-scale sweeps stay cheap.
 *
 * Snapshot interaction: span state is never serialized and every
 * restored structure carries spanId = 0. Restoring a checkpoint drops
 * the tracker's open spans and counts atomics in flight inside the
 * image under `truncated` — their lifetime crossed the restore point
 * and cannot be attributed — so a restored run never observes a
 * dangling span ID.
 */

#ifndef ROWSIM_SIM_SPAN_HH
#define ROWSIM_SIM_SPAN_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rowsim
{

/** The tiling segments of an atomic's dispatch→commit lifetime. */
enum class SpanSeg : unsigned
{
    DispatchWait = 0, ///< dispatched, waiting for operands / first issue
    SbDrain,          ///< waiting on store-buffer drain / an older store
    AqWait,           ///< lazy wait to become the oldest memory op (and
                      ///< replay wait after a lock steal)
    Execute,          ///< memory access issued; line present path
    L1Miss,           ///< miss outstanding (GetX in the memory system)
    UnblockWait,      ///< line filled, but an older atomic must lock first
    LockHeld,         ///< line locked until commit
    NumSegs,
};

constexpr unsigned numSpanSegs = static_cast<unsigned>(SpanSeg::NumSegs);

const char *spanSegName(SpanSeg s);

/** Parse a span-tracing spec ("on"/"off" and synonyms); fatal on
 *  anything else. */
bool parseSpanSpec(const std::string &spec);

/**
 * The per-System span tracker. All state lives in the instance; only
 * the enable gate is static and thread-local so the hook sites cost one
 * branch with no instance lookup when spans are off.
 */
class SpanTracker
{
  public:
    explicit SpanTracker(unsigned num_cores);

    /** Fast inline gate for every hook site. */
    static bool enabled() { return enabled_; }
    /** Programmatic gate control (System::setupSpans, tests). */
    static void configure(bool on) { enabled_ = on; }
    /** ROWSIM_SPANS gate ("" / "0" off, anything else on); parsed once
     *  per process. */
    static bool envEnabled();

    /** Retained-record bound: ROWSIM_SPANS_TOPK (default 64). */
    static std::uint64_t topK();
    /** Top-K override hook (tests); 0 restores the env/default value. */
    static void setTopK(std::uint64_t k) { topKOverride_ = k; }

    /** Gate captured at construction: did this instance collect? */
    bool active() const { return active_; }
    unsigned numCores() const { return numCores_; }

    /** One traced atomic lifetime. */
    struct Record
    {
        std::uint64_t id = 0;
        CoreId core = invalidCore;
        Addr pc = 0;
        Addr line = invalidAddr;
        Cycle dispatch = invalidCycle;
        Cycle commit = invalidCycle;
        bool lazy = false;     ///< eager/lazy decision at dispatch
        unsigned replays = 0;  ///< lock steals suffered
        std::uint64_t segs[numSpanSegs] = {};
        // Overlapping legs (inside the l1Miss window; not in the tiling
        // sum).
        std::uint64_t netCycles = 0;   ///< Σ per-message network latency
        std::uint64_t netHops = 0;     ///< messages attributed
        std::uint64_t dirBlocked = 0;  ///< own Blocked window + queue wait
        std::uint64_t lockStall = 0;   ///< stalled against a remote lock

        std::uint64_t total() const { return commit - dispatch; }

        // Live-tracking cursor (meaningless once closed).
        SpanSeg cur = SpanSeg::DispatchWait;
        Cycle segStart = invalidCycle;
    };

    // ---- lifecycle (core-side hooks) ----

    /** Open a span at dispatch. @return the span ID (never 0). */
    std::uint64_t open(CoreId core, Addr pc, bool lazy, Cycle now);
    /** Move the span into @p seg, charging [segStart, now) to the
     *  segment being left. Idempotent for seg == current segment. */
    void transition(std::uint64_t id, SpanSeg seg, Cycle now);
    /** Record the effective line address once computed. */
    void setLine(std::uint64_t id, Addr line);
    /** A lock steal forced a replay (decision may flip to lazy). */
    void replay(std::uint64_t id, Cycle now);
    /** Close the span at commit; asserts segment conservation, feeds
     *  the aggregates and the bounded retention heap, and emits the
     *  Chrome-trace events when the "span" trace category is live. */
    void close(std::uint64_t id, Cycle commit);

    // ---- overlapping legs (cache / directory / network hooks) ----

    /** A message carrying this span delivered after @p sent→@p now. */
    void netHop(std::uint64_t id, Cycle sent, Cycle now);
    /** The span's own directory transaction left Blocked. */
    void dirBlockedWindow(std::uint64_t id, Cycle since, Cycle now);
    /** The span's request was queued behind a Blocked line. */
    void dirQueued(std::uint64_t id, Cycle now);
    /** ... and is being processed now. */
    void dirDequeued(std::uint64_t id, Cycle now);
    /** The span's request sat stalled against a remote AQ lock. */
    void lockStall(std::uint64_t id, Cycle arrival, Cycle now);

    // ---- snapshot interaction ----

    /** Drop every open span (restore crossed their lifetime); adds the
     *  count to `truncated`. */
    void truncateOpen();
    /** Count @p n in-flight atomics restored from a checkpoint image
     *  as truncated (their spans cannot be reconstructed). */
    void noteTruncated(std::uint64_t n) { truncated_ += n; }
    std::uint64_t truncated() const { return truncated_; }

    // ---- results ----

    std::uint64_t opened() const { return nextId_ - 1; }
    std::uint64_t closed() const { return closedCount_; }
    std::uint64_t openCount() const
    {
        return static_cast<std::uint64_t>(open_.size());
    }

    /** The retained (top-K slowest) records, slowest first. */
    std::vector<Record> retained() const;

    /** Per-PC / per-line aggregate of every closed span. */
    struct Agg
    {
        std::uint64_t count = 0;
        std::uint64_t total = 0;
        std::uint64_t segs[numSpanSegs] = {};
        std::uint64_t netCycles = 0;
        std::uint64_t dirBlocked = 0;
        std::uint64_t lockStall = 0;
        std::uint64_t lazy = 0;
        std::uint64_t replays = 0;
    };

    const std::unordered_map<Addr, Agg> &pcs() const { return pcs_; }
    const std::unordered_map<Addr, Agg> &lines() const { return lines_; }

    /** Whole-run total-latency histogram (p50/p90/p99 source). */
    const Histogram &totalHist() const { return totalHist_; }

    /** Single-line JSON: counts, per-segment sums + percentiles, per-PC
     *  and per-line breakdowns, and the retained span records with
     *  their critical-path decomposition. */
    std::string toJson() const;

  private:
    void aggregate(const Record &r);
    void retain(const Record &r);

    unsigned numCores_;
    bool active_;

    std::uint64_t nextId_ = 1;
    std::uint64_t closedCount_ = 0;
    std::uint64_t truncated_ = 0;

    std::unordered_map<std::uint64_t, Record> open_;
    /** Requests queued at a directory bank: span ID -> queue-entry
     *  cycle (a span has at most one outstanding request). */
    std::unordered_map<std::uint64_t, Cycle> dirQueuedAt_;

    /** Bounded retention: the K slowest closed spans. */
    std::vector<Record> retained_;

    std::unordered_map<Addr, Agg> pcs_;
    std::unordered_map<Addr, Agg> lines_;

    /** Global segment sums over every closed span. */
    std::uint64_t segTotals_[numSpanSegs] = {};
    std::uint64_t netTotal_ = 0, dirBlockedTotal_ = 0,
                  lockStallTotal_ = 0, grandTotal_ = 0;

    Histogram totalHist_{0, 8192, 64};
    Histogram missHist_{0, 8192, 64};
    Histogram lockHeldHist_{0, 2048, 64};

    // Thread-local like the trace/profile masks: each sweep worker
    // gates independently; setupSpans resets it per System
    // construction.
    static inline thread_local bool enabled_ = false;
    static inline std::uint64_t topKOverride_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_SIM_SPAN_HH
