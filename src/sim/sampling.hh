/**
 * @file
 * SMARTS-style checkpointed sampling (ROWSIM_SAMPLE).
 *
 * Detail simulation is the bottleneck of every figure: tens of
 * kilocycles per wall-clock second, for runs whose metrics are
 * near-stationary after warm-up. Sampling replaces one long detail run
 * with (1) a functional fast-mode warm-up that drops a grid of n
 * checkpoints at the marks m_k = floor(Q * k / n), k = 0..n-1, of the
 * per-core iteration quota Q, (2) n short detail windows — restore
 * checkpoint k, detail-warm for `warm` iterations, measure `detail`
 * iterations — executed as ordinary sweep jobs, so they run in
 * parallel, survive crashes, and are individually served by the
 * content-addressed result store, and (3) a batch-means aggregation:
 * each metric's window values give a mean, a standard deviation, and a
 * Student-t confidence interval; additive counters are additionally
 * extrapolated by Q / detail to whole-run estimates.
 *
 * The aggregate rides in RunResult::samplingJson (reported as the
 * "sampling" key); the headline RunResult fields carry the estimates,
 * so figure scripts rank policies from sampled runs unchanged.
 *
 * Sampling is incompatible with the attribution profiler (checkpoints
 * do not carry its state), convergence-bounded runs (the stop cycle
 * would depend on the sampling layout), and fault injection (no
 * functional equivalent of per-tick fault draws); all three are fatal.
 * Latency-mean metrics (missLatency, phase means) include the short
 * detail warm-up segment of each window — the timing stats are empty
 * at every func-written checkpoint, so a window cannot be polluted by
 * anything before its own restore point.
 */

#ifndef ROWSIM_SIM_SAMPLING_HH
#define ROWSIM_SIM_SAMPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace rowsim
{

/** Parsed ROWSIM_SAMPLE spec: `<n_ckpts>:<warm>:<detail>[:<conf>]`
 *  (iterations per core; confidence defaults to 0.95). */
struct SampleSpec
{
    bool active = false;
    unsigned checkpoints = 0;
    std::uint64_t warmIters = 0;
    std::uint64_t detailIters = 0;
    double confidence = 0.95;
};

/** Parse a sampling spec; empty = inactive, anything malformed
 *  (n < 1, detail < 1, confidence outside (0, 1), trailing junk) is a
 *  user error (fatal). @p name is the env var for error messages. */
SampleSpec parseSampleSpec(const char *name, const std::string &spec);

/** The ROWSIM_SAMPLE environment spec (inactive when unset). */
SampleSpec sampleSpecFromEnv();

/** Checkpoint marks m_k = floor(quota * k / n), k = 0..n-1. */
std::vector<std::uint64_t> sampleGrid(std::uint64_t quota, unsigned n);

/**
 * Run one (workload, params) experiment under sampling. @p quota must
 * already be resolved (non-zero). Returns the aggregated RunResult —
 * headline counters are whole-run estimates, latency means are window
 * means, and samplingJson holds the full grid / window / CI summary.
 * A failed window fails the whole sampled run (the sweep layer already
 * retried it if retries were configured).
 */
RunResult runSampled(const std::string &workload,
                     const SystemParams &params, const std::string &label,
                     std::uint64_t quota, const SampleSpec &spec);

/** Execute one measurement window (SweepJob::ckptPath non-empty);
 *  called by the sweep engine's executeJob. */
RunResult runDetailWindow(const SweepJob &job);

} // namespace rowsim

#endif // ROWSIM_SIM_SAMPLING_HH
