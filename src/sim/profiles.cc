#include "sim/profiles.hh"

#include <map>

#include "common/log.hh"

namespace rowsim
{

namespace
{

/**
 * Profile table. Tuning rationale (paper Fig. 1 / Fig. 5 targets):
 *
 *  - canneal / freqmine: atomic-intensive, essentially uncontended
 *    (random elements of huge arrays), long-latency atomics that eager
 *    execution hides under older independent misses. Eager wins big.
 *  - pc / sps / tpcc: fine-grain-synchronisation kernels hammering a
 *    handful of shared counters from 32 threads; locks held while older
 *    slow loads commit make eager execution serialise the whole chip.
 *    Lazy wins big.
 *  - cq / tatp: contended but with store->atomic locality on the same
 *    word; eager (and forwarding) wins despite contention (§IV-E).
 *  - barnes: moderate contention, partial locality.
 *  - streamcluster / raytrace: contended atomics whose surrounding code
 *    is a dependence chain (little independent younger work): lazy
 *    mildly wins.
 *  - volrend / fmm / radiosity: atomic-poor; insensitive.
 *  - blackscholes .. fft: synchronisation-poor PARSEC/Splash stand-ins
 *    for the "all applications" average (§VI: +4.0% overall).
 */
std::map<std::string, WorkloadProfile>
buildTable()
{
    std::map<std::string, WorkloadProfile> t;

    auto add = [&t](WorkloadProfile p) {
        t[p.name] = p;
    };

    {
        WorkloadProfile p;
        p.name = "canneal";
        p.aop = AtomicOp::Swap;
        p.sharedAtomicWords = 1ULL << 20; // random swaps, never contended
        p.loadsBefore = 6;
        p.loadsAfter = 4;
        p.privateLines = 1ULL << 15; // 2MB: misses past the private L2
        p.aluOps = 10;
        p.fillerAlu = 40;
        p.storesPerIter = 2;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "freqmine";
        p.aop = AtomicOp::FetchAdd;
        p.sharedAtomicWords = 1ULL << 16; // wide counter array
        p.sharedFraction = 0.1;          // most hit warm private counters
        p.privateAtomicWords = 128;      // cache-resident counter block
        p.loadsBefore = 5;
        p.loadsAfter = 3;
        p.privateLines = 1ULL << 10;     // mostly cache-resident tree
        p.aluOps = 14;
        p.fillerAlu = 250;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "cq"; // circular queue: store slot record, bump index
        p.aop = AtomicOp::FetchAdd;
        p.sharedAtomicWords = 32; // slots cycle; moderate per-line overlap
        p.storeBeforeAtomicProb = 1.0;
        p.storeSameWordProb = 1.0; // slot flag word == atomic word
        p.payloadStores = 3;       // record body follows the flag
        p.chainAfterAtomic = true; // dequeue consumes the index
        p.loadsBefore = 2;
        p.loadsAfter = 3;
        p.privateLines = 1ULL << 12;
        p.aluOps = 12;
        p.fillerAlu = 400;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "barnes";
        p.aop = AtomicOp::FetchAdd;
        p.sharedAtomicWords = 128; // tree nodes, occasional collisions
        p.sharedFraction = 0.7;
        p.storeBeforeAtomicProb = 0.4;
        p.storeSameWordProb = 0.0; // body update next to the lock word
        p.loadsBefore = 6;
        p.privateLines = 1ULL << 14;
        p.aluOps = 20;
        p.fillerAlu = 800;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "tatp"; // update-location transaction
        p.aop = AtomicOp::CompareSwap;
        p.sharedAtomicWords = 64; // hot subscriber rows
        p.storeBeforeAtomicProb = 0.8;
        p.storeSameWordProb = 0.9;
        p.payloadStores = 1;
        p.loadsBefore = 4;
        p.loadsAfter = 4;
        p.sharedDataLines = 2048;
        p.sharedDataProb = 0.3;
        p.aluOps = 16;
        p.fillerAlu = 500;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "volrend";
        p.atomicProb = 0.5;
        p.sharedAtomicWords = 128;
        p.loadsBefore = 4;
        p.privateLines = 1ULL << 12;
        p.aluOps = 20;
        p.fillerAlu = 600;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "fmm";
        p.atomicProb = 0.3;
        p.sharedAtomicWords = 256;
        p.loadsBefore = 5;
        p.privateLines = 1ULL << 13;
        p.aluOps = 24;
        p.fillerAlu = 800;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "radiosity";
        p.atomicProb = 0.4;
        p.sharedAtomicWords = 64;
        p.loadsBefore = 4;
        p.privateLines = 1ULL << 12;
        p.aluOps = 20;
        p.fillerAlu = 700;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "streamcluster"; // barrier-style counter in a chain
        p.sharedAtomicWords = 12;
        p.atomicDependsOnChain = true;
        p.chainAfterAtomic = true;
        p.loadsBefore = 4;
        p.loadsAfter = 0;
        p.privateLines = 1ULL << 13;
        p.aluOps = 30;
        p.aluLatency = 2;
        p.fillerAlu = 250;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "raytrace"; // work-stealing ray counter
        p.sharedAtomicWords = 12;
        p.atomicDependsOnChain = true;
        p.chainAfterAtomic = true;
        p.loadsBefore = 5;
        p.loadsAfter = 0;
        p.privateLines = 1ULL << 13;
        p.aluOps = 24;
        p.aluLatency = 2;
        p.fillerAlu = 450;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "tpcc"; // new-order: warehouse counters + row traffic
        p.sharedAtomicWords = 12;
        p.loadsBefore = 8;
        p.loadsAfter = 8;
        p.sharedDataLines = 4096;
        p.sharedDataProb = 0.5;
        p.sharedStoreProb = 0.4;
        p.storesPerIter = 3;
        p.privateLines = 1ULL << 14;
        p.aluOps = 30;
        p.fillerAlu = 150;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "sps"; // swaps on a small shared array
        p.aop = AtomicOp::Swap;
        p.sharedAtomicWords = 4;
        p.loadsBefore = 4;
        p.loadsAfter = 6;
        p.privateLines = 1ULL << 15;
        p.aluOps = 10;
        p.fillerAlu = 50;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "counter"; // one shared counter, all cores (Fig. 2 shape)
        p.sharedAtomicWords = 1;
        p.loadsBefore = 4;
        p.loadsAfter = 4;
        p.privateLines = 1ULL << 15;
        p.aluOps = 8;
        p.fillerAlu = 40;
        p.storesPerIter = 1;
        add(p);
    }
    {
        WorkloadProfile p;
        p.name = "pc"; // producer/consumer head+tail counters
        p.sharedAtomicWords = 2;
        p.loadsBefore = 4;
        p.loadsAfter = 6;
        p.sharedDataLines = 256;
        p.sharedDataProb = 0.3;
        p.sharedStoreProb = 0.3;
        p.privateLines = 1ULL << 15;
        p.aluOps = 10;
        p.fillerAlu = 60;
        add(p);
    }

    // ---- synchronisation-poor applications ("all apps" average) ----
    auto addQuiet = [&](const char *name, unsigned filler,
                        double atomic_prob) {
        WorkloadProfile p;
        p.name = name;
        p.atomicProb = atomic_prob;
        p.sharedAtomicWords = 1024;
        p.loadsBefore = 8;
        p.loadsAfter = 4;
        p.privateLines = 1ULL << 13;
        p.aluOps = 24;
        p.fillerAlu = filler;
        add(p);
    };
    addQuiet("blackscholes", 400, 0.0);
    addQuiet("swaptions", 350, 0.0);
    addQuiet("bodytrack", 450, 0.05);
    addQuiet("fluidanimate", 380, 0.05);
    addQuiet("ocean", 420, 0.02);
    addQuiet("fft", 300, 0.0);

    return t;
}

const std::map<std::string, WorkloadProfile> &
table()
{
    static const std::map<std::string, WorkloadProfile> t = buildTable();
    return t;
}

} // namespace

WorkloadProfile
profileFor(const std::string &name)
{
    auto it = table().find(name);
    if (it == table().end())
        ROWSIM_FATAL("unknown workload '%s'", name.c_str());
    return it->second;
}

const std::vector<std::string> &
atomicIntensiveWorkloads()
{
    // Fig. 1 order: best -> worst eager-vs-lazy speedup.
    static const std::vector<std::string> v = {
        "canneal", "freqmine", "cq",        "barnes",        "tatp",
        "volrend", "fmm",      "radiosity", "streamcluster", "raytrace",
        "tpcc",    "sps",      "pc",
    };
    return v;
}

const std::vector<std::string> &
allWorkloads()
{
    static const std::vector<std::string> v = [] {
        std::vector<std::string> out = atomicIntensiveWorkloads();
        out.insert(out.end(), {"blackscholes", "swaptions", "bodytrack",
                               "fluidanimate", "ocean", "fft"});
        return out;
    }();
    return v;
}

std::uint64_t
defaultQuota(const std::string &name)
{
    static const std::map<std::string, std::uint64_t> q = {
        {"canneal", 200},   {"freqmine", 400},      {"cq", 100},
        {"barnes", 100},    {"tatp", 80},           {"volrend", 60},
        {"fmm", 50},        {"radiosity", 50},      {"streamcluster", 120},
        {"raytrace", 100},  {"tpcc", 120},          {"sps", 150},
        {"pc", 150},        {"counter", 150},       {"blackscholes", 40},
        {"swaptions", 40},
        {"bodytrack", 40},  {"fluidanimate", 40},   {"ocean", 40},
        {"fft", 40},
    };
    auto it = q.find(name);
    return it == q.end() ? 100 : it->second;
}

} // namespace rowsim
