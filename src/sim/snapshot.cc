#include "sim/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"
#include "common/sha256.hh"
#include "cpu/microop.hh"
#include "net/message.hh"

namespace rowsim
{

namespace
{

/** File magic: "ROWSNAP\0". */
constexpr std::uint8_t kMagic[8] = {'R', 'O', 'W', 'S', 'N', 'A', 'P', 0};

/** Limit one string/section read to something sane so a corrupted length
 *  field fails fast instead of attempting a huge allocation. */
constexpr std::uint64_t kMaxString = 1u << 20;

} // namespace

void
Ser::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Ser::str(const std::string &s)
{
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
Ser::section(const char *tag)
{
    u8(0xA5);
    str(tag);
}

void
Deser::need(std::size_t n) const
{
    if (size_ - pos_ < n) {
        throw SnapshotError(
            strprintf("truncated image: need %zu bytes at offset %zu, "
                      "only %zu remain",
                      n, pos_, size_ - pos_));
    }
}

std::uint8_t
Deser::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint16_t
Deser::u16()
{
    need(2);
    std::uint16_t v = 0;
    for (unsigned i = 0; i < 2; i++)
        v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint32_t
Deser::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
Deser::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

bool
Deser::b()
{
    const std::uint8_t v = u8();
    if (v > 1)
        throw SnapshotError(strprintf("corrupted bool value %u", v));
    return v != 0;
}

double
Deser::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deser::str()
{
    const std::uint64_t n = u64();
    if (n > kMaxString)
        throw SnapshotError(
            strprintf("corrupted string length %llu",
                      static_cast<unsigned long long>(n)));
    need(static_cast<std::size_t>(n));
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

void
Deser::section(const char *tag)
{
    const std::uint8_t marker = u8();
    if (marker != 0xA5) {
        throw SnapshotError(
            strprintf("section marker for '%s' missing (stream out of "
                      "sync at offset %zu)",
                      tag, pos_ - 1));
    }
    const std::string found = str();
    if (found != tag) {
        throw SnapshotError(strprintf(
            "section mismatch: expected '%s', found '%s'", tag,
            found.c_str()));
    }
}

void
Deser::expectEnd() const
{
    if (pos_ != size_) {
        throw SnapshotError(
            strprintf("%zu trailing bytes after restore", size_ - pos_));
    }
}

void
saveMsg(Ser &s, const Msg &m)
{
    s.u8(static_cast<std::uint8_t>(m.type));
    s.u64(m.line);
    s.u32(m.src);
    s.u32(m.dst);
    s.u32(m.requester);
    s.b(m.fromPrivateCache);
    s.b(m.excl);
    s.b(m.fromMemory);
    s.b(m.contentionHint);
    s.u64(m.sent);
}

void
restoreMsg(Deser &d, Msg &m)
{
    m.type = static_cast<MsgType>(d.u8());
    m.line = d.u64();
    m.src = d.u32();
    m.dst = d.u32();
    m.requester = d.u32();
    m.fromPrivateCache = d.b();
    m.excl = d.b();
    m.fromMemory = d.b();
    m.contentionHint = d.b();
    m.sent = d.u64();
}

void
saveOp(Ser &s, const MicroOp &op)
{
    s.u8(static_cast<std::uint8_t>(op.cls));
    s.u8(static_cast<std::uint8_t>(op.aop));
    s.u64(op.addr);
    s.u64(op.pc);
    s.u16(op.execLatency);
    s.u32(op.src0);
    s.u32(op.src1);
    s.b(op.takenBranch);
    s.u64(op.value);
    s.b(op.casExpectMismatch);
    s.b(op.endOfIteration);
}

void
restoreOp(Deser &d, MicroOp &op)
{
    op.cls = static_cast<OpClass>(d.u8());
    op.aop = static_cast<AtomicOp>(d.u8());
    op.addr = d.u64();
    op.pc = d.u64();
    op.execLatency = d.u16();
    op.src0 = d.u32();
    op.src1 = d.u32();
    op.takenBranch = d.b();
    op.value = d.u64();
    op.casExpectMismatch = d.b();
    op.endOfIteration = d.b();
}

void
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &payload,
                  std::uint64_t fingerprint)
{
    Ser header;
    for (std::uint8_t c : kMagic)
        header.u8(c);
    header.u32(snapshotFormatVersion);
    header.u64(fingerprint);
    header.u64(payload.size());

    Sha256 hasher;
    hasher.update(payload.data(), payload.size());
    const auto trailer = hasher.digest();

    // Write-then-rename: readers only ever observe complete images, even
    // when parallel sweep workers race on the same checkpoint key.
    const std::string tmp =
        path + strprintf(".tmp.%p", static_cast<const void *>(&payload));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SnapshotError(
            strprintf("cannot create '%s'", tmp.c_str()));
    bool ok =
        std::fwrite(header.bytes().data(), 1, header.bytes().size(), f) ==
            header.bytes().size() &&
        (payload.empty() ||
         std::fwrite(payload.data(), 1, payload.size(), f) ==
             payload.size()) &&
        std::fwrite(trailer.data(), 1, trailer.size(), f) ==
            trailer.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SnapshotError(strprintf("write to '%s' failed", tmp.c_str()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError(
            strprintf("cannot rename '%s' into place", tmp.c_str()));
    }
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string &path, std::uint64_t expect_fingerprint)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError(strprintf("cannot open '%s'", path.c_str()));
    std::vector<std::uint8_t> raw;
    std::uint8_t chunk[1 << 14];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        raw.insert(raw.end(), chunk, chunk + n);
    std::fclose(f);

    Deser d(raw.data(), raw.size());
    std::uint8_t magic[8];
    for (auto &c : magic)
        c = d.u8();
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw SnapshotError(
            strprintf("'%s' is not a rowsim snapshot (bad magic)",
                      path.c_str()));
    const std::uint32_t version = d.u32();
    if (version != snapshotFormatVersion) {
        throw SnapshotError(strprintf(
            "'%s' has snapshot format version %u; this build reads only "
            "version %u",
            path.c_str(), version, snapshotFormatVersion));
    }
    const std::uint64_t fingerprint = d.u64();
    if (fingerprint != expect_fingerprint) {
        throw SnapshotError(strprintf(
            "'%s' was produced under a different configuration "
            "(fingerprint %016llx, expected %016llx)",
            path.c_str(), static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(expect_fingerprint)));
    }
    const std::uint64_t payloadLen = d.u64();
    constexpr std::size_t headerBytes = 8 + 4 + 8 + 8;
    constexpr std::size_t trailerBytes = 32;
    if (raw.size() < headerBytes + trailerBytes ||
        payloadLen != raw.size() - headerBytes - trailerBytes) {
        throw SnapshotError(strprintf(
            "'%s' is truncated (payload %llu bytes, file holds %zu)",
            path.c_str(), static_cast<unsigned long long>(payloadLen),
            raw.size()));
    }

    Sha256 hasher;
    hasher.update(raw.data() + headerBytes,
                  static_cast<std::size_t>(payloadLen));
    const auto want = hasher.digest();
    if (std::memcmp(want.data(), raw.data() + headerBytes + payloadLen,
                    trailerBytes) != 0) {
        throw SnapshotError(strprintf(
            "'%s' is corrupted (payload digest mismatch)", path.c_str()));
    }

    return std::vector<std::uint8_t>(
        raw.begin() + headerBytes,
        raw.begin() + static_cast<std::ptrdiff_t>(headerBytes + payloadLen));
}

} // namespace rowsim
