#include "sim/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "common/config.hh"
#include "common/io.hh"
#include "common/log.hh"
#include "common/sha256.hh"
#include "cpu/microop.hh"
#include "net/message.hh"
#include "sim/faults.hh"

namespace rowsim
{

namespace
{

/** File magic: "ROWSNAP\0". */
constexpr std::uint8_t kMagic[8] = {'R', 'O', 'W', 'S', 'N', 'A', 'P', 0};

/** Limit one string/section read to something sane so a corrupted length
 *  field fails fast instead of attempting a huge allocation. Sized to
 *  admit a full captured statsJson (result-store entries embed one; a
 *  32-core interval-sampled dump runs to tens of MB). */
constexpr std::uint64_t kMaxString = 1u << 26;

} // namespace

void
Ser::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Ser::str(const std::string &s)
{
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
Ser::raw(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Ser::section(const char *tag)
{
    u8(0xA5);
    str(tag);
}

void
Deser::need(std::size_t n) const
{
    if (size_ - pos_ < n) {
        throw SnapshotError(
            strprintf("truncated image: need %zu bytes at offset %zu, "
                      "only %zu remain",
                      n, pos_, size_ - pos_));
    }
}

std::uint8_t
Deser::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint16_t
Deser::u16()
{
    need(2);
    std::uint16_t v = 0;
    for (unsigned i = 0; i < 2; i++)
        v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint32_t
Deser::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
Deser::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
Deser::vu64()
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        need(1);
        const std::uint8_t byte = data_[pos_++];
        if (shift == 63 && byte > 1)
            throw SnapshotError("varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
    }
    throw SnapshotError("varint longer than 10 bytes");
}

bool
Deser::b()
{
    const std::uint8_t v = u8();
    if (v > 1)
        throw SnapshotError(strprintf("corrupted bool value %u", v));
    return v != 0;
}

double
Deser::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deser::str()
{
    const std::uint64_t n = u64();
    if (n > kMaxString)
        throw SnapshotError(
            strprintf("corrupted string length %llu",
                      static_cast<unsigned long long>(n)));
    need(static_cast<std::size_t>(n));
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

void
Deser::section(const char *tag)
{
    const std::uint8_t marker = u8();
    if (marker != 0xA5) {
        throw SnapshotError(
            strprintf("section marker for '%s' missing (stream out of "
                      "sync at offset %zu)",
                      tag, pos_ - 1));
    }
    const std::string found = str();
    if (found != tag) {
        throw SnapshotError(strprintf(
            "section mismatch: expected '%s', found '%s'", tag,
            found.c_str()));
    }
}

void
Deser::expectEnd() const
{
    if (pos_ != size_) {
        throw SnapshotError(
            strprintf("%zu trailing bytes after restore", size_ - pos_));
    }
}

void
saveMsg(Ser &s, const Msg &m)
{
    s.u8(static_cast<std::uint8_t>(m.type));
    s.u64(m.line);
    s.u32(m.src);
    s.u32(m.dst);
    s.u32(m.requester);
    s.b(m.fromPrivateCache);
    s.b(m.excl);
    s.b(m.fromMemory);
    s.b(m.contentionHint);
    s.u64(m.sent);
}

void
restoreMsg(Deser &d, Msg &m)
{
    m.type = static_cast<MsgType>(d.u8());
    m.line = d.u64();
    m.src = d.u32();
    m.dst = d.u32();
    m.requester = d.u32();
    m.fromPrivateCache = d.b();
    m.excl = d.b();
    m.fromMemory = d.b();
    m.contentionHint = d.b();
    m.sent = d.u64();
}

void
saveOp(Ser &s, const MicroOp &op)
{
    s.u8(static_cast<std::uint8_t>(op.cls));
    s.u8(static_cast<std::uint8_t>(op.aop));
    s.u64(op.addr);
    s.u64(op.pc);
    s.u16(op.execLatency);
    s.u32(op.src0);
    s.u32(op.src1);
    s.b(op.takenBranch);
    s.u64(op.value);
    s.b(op.casExpectMismatch);
    s.b(op.endOfIteration);
}

void
restoreOp(Deser &d, MicroOp &op)
{
    op.cls = static_cast<OpClass>(d.u8());
    op.aop = static_cast<AtomicOp>(d.u8());
    op.addr = d.u64();
    op.pc = d.u64();
    op.execLatency = d.u16();
    op.src0 = d.u32();
    op.src1 = d.u32();
    op.takenBranch = d.b();
    op.value = d.u64();
    op.casExpectMismatch = d.b();
    op.endOfIteration = d.b();
}

std::uint64_t
configFingerprint(const SystemParams &params, std::uint32_t fault_mask,
                  std::uint64_t fault_seed, std::uint32_t fault_rate)
{
    // Serialize every numeric architectural parameter and hash the
    // bytes. Observability knobs (tracing, interval stats, profiling,
    // checker cadence) are deliberately excluded: they never change
    // simulated behaviour, so images stay interchangeable across them.
    Ser s;
    const CoreParams &cp = params.core;
    const RowConfig &rc = cp.row;
    const MemParams &mp = params.mem;
    s.u32(params.numCores);
    s.u64(params.seed);
    s.u64(params.deadlockCycles);
    s.u32(cp.fetchWidth);
    s.u32(cp.issueWidth);
    s.u32(cp.commitWidth);
    s.u32(cp.robEntries);
    s.u32(cp.lqEntries);
    s.u32(cp.sbEntries);
    s.u32(cp.aqEntries);
    s.u32(cp.iqEntries);
    s.u32(cp.mispredictPenalty);
    s.u32(cp.atomicReissueDelay);
    s.b(cp.storeToLoadForwarding);
    s.b(cp.forwardToAtomics);
    s.u8(static_cast<std::uint8_t>(cp.atomicPolicy));
    s.u8(static_cast<std::uint8_t>(rc.detector));
    s.u8(static_cast<std::uint8_t>(rc.update));
    s.u32(rc.predictorEntries);
    s.u32(rc.counterBits);
    s.u64(rc.latencyThreshold);
    s.u32(rc.timestampBits);
    s.b(rc.localityPromotion);
    s.u32(mp.l1Sets);
    s.u32(mp.l1Ways);
    s.u64(mp.l1HitLatency);
    s.u32(mp.l2Sets);
    s.u32(mp.l2Ways);
    s.u64(mp.l2HitLatency);
    s.u32(mp.l3SetsPerBank);
    s.u32(mp.l3Ways);
    s.u64(mp.l3HitLatency);
    s.u64(mp.memoryLatency);
    s.u32(mp.mshrs);
    s.b(mp.prefetcher);
    s.u64(mp.lockStealThreshold);
    s.u64(params.net.hopLatency);
    // Fault injection changes the architectural trajectory, so its
    // whole setup is part of the fingerprint.
    s.b(fault_mask != 0);
    if (fault_mask != 0) {
        s.u32(fault_mask);
        s.u64(fault_seed);
        s.u32(fault_rate);
    }
    Sha256 h;
    h.update(s.bytes().data(), s.bytes().size());
    const auto digest = h.digest();
    std::uint64_t fp = 0;
    for (int i = 7; i >= 0; i--)
        fp = (fp << 8) | digest[static_cast<std::size_t>(i)];
    return fp;
}

std::uint64_t
configFingerprint(const SystemParams &params)
{
    const FaultSetup fs = resolveFaultSetup(params);
    return configFingerprint(params, fs.mask, fs.seed, fs.rate);
}

void
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &payload,
                  std::uint64_t fingerprint)
{
    Ser file;
    for (std::uint8_t c : kMagic)
        file.u8(c);
    file.u32(snapshotFormatVersion);
    file.u64(fingerprint);
    file.u64(payload.size());
    file.raw(payload.data(), payload.size());

    Sha256 hasher;
    hasher.update(payload.data(), payload.size());
    const auto trailer = hasher.digest();
    file.raw(trailer.data(), trailer.size());

    // Tmp+rename via the shared helper: readers only ever observe
    // complete images, even when parallel sweep workers race on the
    // same checkpoint key.
    try {
        atomicWriteFile(path, file.bytes());
    } catch (const IoError &e) {
        throw SnapshotError(e.what());
    }
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string &path, std::uint64_t expect_fingerprint)
{
    std::vector<std::uint8_t> raw;
    if (!readFileBytes(path, raw))
        throw SnapshotError(strprintf("cannot open '%s'", path.c_str()));

    Deser d(raw.data(), raw.size());
    std::uint8_t magic[8];
    for (auto &c : magic)
        c = d.u8();
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw SnapshotError(
            strprintf("'%s' is not a rowsim snapshot (bad magic)",
                      path.c_str()));
    const std::uint32_t version = d.u32();
    if (version != snapshotFormatVersion) {
        throw SnapshotError(strprintf(
            "'%s' has snapshot format version %u; this build reads only "
            "version %u",
            path.c_str(), version, snapshotFormatVersion));
    }
    const std::uint64_t fingerprint = d.u64();
    if (fingerprint != expect_fingerprint) {
        throw SnapshotError(strprintf(
            "'%s' was produced under a different configuration "
            "(fingerprint %016llx, expected %016llx)",
            path.c_str(), static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(expect_fingerprint)));
    }
    const std::uint64_t payloadLen = d.u64();
    constexpr std::size_t headerBytes = 8 + 4 + 8 + 8;
    constexpr std::size_t trailerBytes = 32;
    if (raw.size() < headerBytes + trailerBytes ||
        payloadLen != raw.size() - headerBytes - trailerBytes) {
        throw SnapshotError(strprintf(
            "'%s' is truncated (payload %llu bytes, file holds %zu)",
            path.c_str(), static_cast<unsigned long long>(payloadLen),
            raw.size()));
    }

    Sha256 hasher;
    hasher.update(raw.data() + headerBytes,
                  static_cast<std::size_t>(payloadLen));
    const auto want = hasher.digest();
    if (std::memcmp(want.data(), raw.data() + headerBytes + payloadLen,
                    trailerBytes) != 0) {
        throw SnapshotError(strprintf(
            "'%s' is corrupted (payload digest mismatch)", path.c_str()));
    }

    return std::vector<std::uint8_t>(
        raw.begin() + headerBytes,
        raw.begin() + static_cast<std::ptrdiff_t>(headerBytes + payloadLen));
}

} // namespace rowsim
