/**
 * @file
 * Parallel deterministic sweep engine.
 *
 * Figure reproductions are embarrassingly parallel: dozens of fully
 * independent (workload, config) simulations whose results are only
 * combined at print time. The engine runs them on a pool of worker
 * threads and returns RunResults in submission order.
 *
 * Determinism: each simulation is a pure function of its SweepJob — a
 * System touches no cross-run mutable state (trace sinks, checker
 * masks, and panic hooks are thread-local; see DESIGN.md "Performance &
 * threading model"), so parallel results are bit-identical to running
 * the same jobs serially, whatever the thread count or scheduling.
 */

#ifndef ROWSIM_SIM_SWEEP_HH
#define ROWSIM_SIM_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rowsim
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string workload;
    ExpConfig cfg;
    unsigned numCores = 32;
    /** Per-core iterations; 0 = the workload's default quota. */
    std::uint64_t quota = 0;
    std::uint64_t seed = 1;
    /** Capture System::dumpStatsJson into RunResult::statsJson
     *  (determinism audits; large, so off by default). */
    bool captureStatsJson = false;
};

/**
 * Fixed-size thread pool running SweepJobs.
 *
 * Workers claim jobs in submission order from a shared index, so a
 * sweep of N jobs on T threads keeps all T busy until the tail. Worker
 * threads disable tracing for themselves (concurrent Systems would
 * clobber each other's sink files); everything else — run reports,
 * crash dumps — is serialized internally and safe.
 */
class SweepEngine
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreads().
     */
    explicit SweepEngine(unsigned threads = 0);

    /**
     * Run every job and return results in submission order (results[i]
     * belongs to jobs[i]). If any job panics/throws, the first failure
     * in submission order is rethrown after all workers have stopped.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    unsigned threads() const { return threads_; }

    /** ROWSIM_SWEEP_THREADS when set (0 = serial fallback of 1), else
     *  std::thread::hardware_concurrency(), else 1. */
    static unsigned defaultThreads();

  private:
    unsigned threads_;
};

/** Convenience: run @p jobs on defaultThreads() workers. */
std::vector<RunResult> runSweep(const std::vector<SweepJob> &jobs);

} // namespace rowsim

#endif // ROWSIM_SIM_SWEEP_HH
