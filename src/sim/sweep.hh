/**
 * @file
 * Parallel, fault-tolerant deterministic sweep engine.
 *
 * Figure reproductions are embarrassingly parallel: dozens of fully
 * independent (workload, config) simulations whose results are only
 * combined at print time. The engine runs them either on a pool of
 * worker threads (fast, shared address space) or in forked worker
 * processes (isolated: a crashing or hanging job cannot take the sweep
 * down), and returns RunResults in submission order.
 *
 * Failure handling: a failed job no longer aborts the sweep. Each
 * result carries a RunStatus (+ error text); the sweep completes every
 * remaining job and reports partial results. Callers that want the old
 * all-or-nothing behaviour opt into SweepOptions::strict. Under
 * process isolation each job additionally gets a wall-clock timeout
 * and bounded retries with exponential backoff (crashes and timeouts
 * are retried — a clean in-simulator failure is deterministic and is
 * not).
 *
 * Determinism: each simulation is a pure function of its SweepJob — a
 * System touches no cross-run mutable state (trace sinks, checker
 * masks, and panic hooks are thread-local; see DESIGN.md "Performance &
 * threading model"), so parallel results are bit-identical to running
 * the same jobs serially, whatever the thread count, scheduling, or
 * isolation mode.
 */

#ifndef ROWSIM_SIM_SWEEP_HH
#define ROWSIM_SIM_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rowsim
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string workload;
    ExpConfig cfg;
    unsigned numCores = 32;
    /** Per-core iterations; 0 = the workload's default quota. */
    std::uint64_t quota = 0;
    std::uint64_t seed = 1;
    /** Capture System::dumpStatsJson into RunResult::statsJson
     *  (determinism audits; large, so off by default). */
    bool captureStatsJson = false;

    // ---- SMARTS measurement-window support (src/sim/sampling.cc) ----
    // A non-empty ckptPath turns the job into one detail window of a
    // sampled run: restore the (func-warmed) checkpoint, detail-warm
    // to windowStartIters + windowWarmIters, then measure exactly
    // windowIters more iterations per core and report the deltas.
    // `cfg` then only carries the window's reporting label; the
    // simulated configuration comes from windowParams (ExpConfig
    // cannot express every ablation runExperimentParams can).
    std::string ckptPath;
    SystemParams windowParams;
    /** Checkpoint mark m_k in per-core committed iterations. */
    std::uint64_t windowStartIters = 0;
    /** Detail warm-up iterations before measurement starts. */
    std::uint64_t windowWarmIters = 0;
    /** Measured iterations per core. */
    std::uint64_t windowIters = 0;

    // Resilience-drill support (tests + the CI fault drill): make the
    // worker misbehave before simulating. Under process isolation a
    // crash is a real SIGABRT and a hang trips the timeout; under
    // thread isolation both degrade to a clean Failed (a thread cannot
    // be safely killed).
    bool injectCrash = false;
    unsigned injectHangMs = 0;
};

/** Where a sweep job executes. */
enum class SweepIsolation : std::uint8_t
{
    Thread,  ///< worker threads in this process (fastest)
    Process, ///< one forked worker per job (crash/hang containment)
};

/** Execution policy for one sweep. */
struct SweepOptions
{
    /** Concurrent workers; 0 = SweepEngine::defaultThreads(). */
    unsigned threads = 0;
    SweepIsolation isolation = SweepIsolation::Thread;
    /** Per-job wall-clock budget in ms (process isolation only;
     *  0 = unlimited). An overrunning worker is SIGKILLed. */
    std::uint64_t timeoutMs = 0;
    /** Extra attempts after a crash or timeout (process isolation
     *  only). Clean in-simulator failures are deterministic and never
     *  retried. */
    unsigned retries = 0;
    /** Base retry delay; attempt k waits backoffMs * 2^(k-1). */
    std::uint64_t backoffMs = 100;
    /** Rethrow (thread mode: the original exception; process mode: a
     *  summary) for the first failed job in submission order, after
     *  every job has run. */
    bool strict = false;

    /** Environment-driven policy: ROWSIM_SWEEP_ISOLATE (thread |
     *  process), ROWSIM_SWEEP_TIMEOUT_MS, ROWSIM_SWEEP_RETRIES,
     *  ROWSIM_SWEEP_BACKOFF_MS, threads via ROWSIM_SWEEP_THREADS. */
    static SweepOptions fromEnv();
};

/**
 * Sweep executor. Thread mode: a fixed pool claims jobs in submission
 * order from a shared index. Process mode: the calling thread — and
 * only it; fork() from a threaded scheduler is not async-signal-safe —
 * schedules forked workers, handing results back through validated
 * files (see DESIGN.md §12).
 */
class SweepEngine
{
  public:
    /** Thread-mode engine; @p threads 0 picks defaultThreads(). */
    explicit SweepEngine(unsigned threads = 0);

    explicit SweepEngine(const SweepOptions &opts);

    /**
     * Run every job and return results in submission order (results[i]
     * belongs to jobs[i]). Failed jobs come back with a non-Ok status
     * instead of aborting the sweep; with opts.strict the first
     * failure in submission order is (re)thrown after all jobs ran.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    unsigned threads() const { return opts_.threads; }
    const SweepOptions &options() const { return opts_; }

    /** ROWSIM_SWEEP_THREADS when set (0 = serial fallback of 1), else
     *  std::thread::hardware_concurrency(), else 1. */
    static unsigned defaultThreads();

  private:
    std::vector<RunResult> runThreaded(const std::vector<SweepJob> &jobs);
    std::vector<RunResult> runIsolated(const std::vector<SweepJob> &jobs);

    SweepOptions opts_;
};

/** Convenience: run @p jobs under the environment policy
 *  (SweepOptions::fromEnv()). */
std::vector<RunResult> runSweep(const std::vector<SweepJob> &jobs);

} // namespace rowsim

#endif // ROWSIM_SIM_SWEEP_HH
