#include "sim/faults.hh"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"

namespace rowsim
{

const char *
faultCategoryName(FaultCategory c)
{
    switch (c) {
      case FaultCategory::NetDelay: return "netdelay";
      case FaultCategory::DirStall: return "dirstall";
      case FaultCategory::Evict: return "evict";
      case FaultCategory::UnblockDelay: return "unblockdelay";
    }
    return "?";
}

std::uint32_t
parseFaultCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
            tok.erase(tok.begin());
        while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
            tok.pop_back();
        for (auto &ch : tok)
            ch = static_cast<char>(std::tolower(ch));
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= faultCategoryAll;
            continue;
        }
        if (tok == "none")
            continue;
        bool known = false;
        for (std::uint32_t bit = 1; bit <= faultCategoryAll; bit <<= 1) {
            if (tok == faultCategoryName(static_cast<FaultCategory>(bit))) {
                mask |= bit;
                known = true;
                break;
            }
        }
        if (!known)
            ROWSIM_FATAL("unknown fault category '%s' (valid: netdelay, "
                         "dirstall, evict, unblockdelay, all, none)",
                         tok.c_str());
    }
    return mask;
}

FaultSetup
resolveFaultSetup(const SystemParams &params)
{
    // Precedence mirrors the other gates: explicit params override the
    // environment; the seed falls back to a splitmix of the system seed
    // so fault schedules stay replayable without any env var set.
    FaultSetup f;
    if (!params.faultCategories.empty()) {
        f.mask = parseFaultCategories(params.faultCategories);
    } else if (const char *env = std::getenv("ROWSIM_FAULTS");
               env && *env) {
        f.mask = parseFaultCategories(env);
    }
    if (!f.mask)
        return f;
    f.seed = params.faultSeed;
    if (f.seed == 0) {
        if (const char *env = std::getenv("ROWSIM_FAULTS_SEED");
            env && *env) {
            f.seed = parseEnvU64("ROWSIM_FAULTS_SEED", env);
        }
    }
    if (f.seed == 0)
        f.seed = params.seed * 0x9e3779b97f4a7c15ULL + 1;
    std::uint64_t rate = params.faultRate;
    if (rate == 0) {
        if (const char *env = std::getenv("ROWSIM_FAULTS_RATE");
            env && *env) {
            rate = parseEnvU64("ROWSIM_FAULTS_RATE", env);
        }
    }
    if (rate == 0)
        rate = 50;
    f.rate = static_cast<unsigned>(rate);
    return f;
}

FaultInjector::FaultInjector(System *system, std::uint32_t mask,
                             std::uint64_t seed, unsigned rate)
    : sys(system), mask_(mask), seed_(seed), rate_(rate), rng(seed),
      stats_("faults")
{
}

Cycle
FaultInjector::extraDelay(const Msg &msg, Cycle now)
{
    Cycle extra = 0;
    if (enabled(FaultCategory::NetDelay) && rng.below(10000) < rate_) {
        extra += 1 + rng.below(16);
        stats_.counter("delayedMessages")++;
    }
    // Unblocks get an aggressive extra-delay multiplier: the window
    // between a transaction finishing at the caches and the directory
    // learning about it is exactly where the Fig. 8 race lives.
    if (enabled(FaultCategory::UnblockDelay) &&
        msg.type == MsgType::Unblock && rng.below(10000) < 8 * rate_) {
        extra += 8 + rng.below(56);
        stats_.counter("delayedUnblocks")++;
    }
    if (extra) {
        ROWSIM_TRACE(TraceCategory::Network, now,
                     "fault: +%llu cycles on %s",
                     static_cast<unsigned long long>(extra),
                     msg.toString().c_str());
    }
    return extra;
}

void
FaultInjector::tick(Cycle now)
{
    if (enabled(FaultCategory::DirStall) && rng.below(40000) < rate_) {
        const unsigned bank =
            static_cast<unsigned>(rng.below(sys->mem().numBanks()));
        const Cycle until = now + 16 + rng.below(112);
        sys->mem().directory(bank).injectStall(until);
        stats_.counter("injectedStalls")++;
        ROWSIM_TRACE(TraceCategory::Coherence, now,
                     "fault: stall dir%u until %llu", bank,
                     static_cast<unsigned long long>(until));
    }
    if (enabled(FaultCategory::Evict) && rng.below(10000) < rate_)
        attemptEviction(now);
}

void
FaultInjector::attemptEviction(Cycle now)
{
    const unsigned n = sys->numCores();

    // Prefer lines the atomics are actually working on: evicting near a
    // locked line forces refetch-while-locked and PutM-crossing traffic.
    std::vector<Addr> targets;
    for (CoreId c = 0; c < n; c++) {
        sys->core(c).atomicQueue().forEach([&](const AqEntry &a) {
            if (a.addr != invalidAddr)
                targets.push_back(a.line());
        });
    }

    Addr victim = invalidAddr;
    if (!targets.empty() && rng.below(4) != 0) {
        victim = targets[rng.below(targets.size())];
    } else {
        // Fall back to any resident line of a random cache.
        const CoreId c = static_cast<CoreId>(rng.below(n));
        std::vector<Addr> resident;
        sys->mem().cache(c).forEachL2Line(
            [&](Addr line, CacheState) { resident.push_back(line); });
        if (resident.empty())
            return;
        victim = resident[rng.below(resident.size())];
    }

    // Try every core's copy starting from a random one; forceEvict
    // refuses locked/in-transit lines, so the first taker is legal.
    const CoreId start = static_cast<CoreId>(rng.below(n));
    for (unsigned i = 0; i < n; i++) {
        const CoreId c = static_cast<CoreId>((start + i) % n);
        if (sys->mem().cache(c).forceEvict(victim, now)) {
            stats_.counter("forcedEvictions")++;
            return;
        }
    }
}

void
FaultInjector::save(Ser &s) const
{
    s.section("faults");
    s.u32(mask_);
    s.u32(rate_);
    std::uint64_t state[4];
    rng.getState(state);
    for (std::uint64_t w : state)
        s.u64(w);
}

void
FaultInjector::restore(Deser &d)
{
    d.section("faults");
    const std::uint32_t mask = d.u32();
    const std::uint32_t rate = d.u32();
    if (mask != mask_ || rate != rate_) {
        throw SnapshotError(strprintf(
            "fault injector config mismatch: image mask %#x rate %u, "
            "this run mask %#x rate %u",
            mask, rate, mask_, rate_));
    }
    std::uint64_t state[4];
    for (std::uint64_t &w : state)
        w = d.u64();
    rng.setState(state);
}

} // namespace rowsim
