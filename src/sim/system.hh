/**
 * @file
 * Whole-chip assembly: cores + private caches + directory banks + network,
 * with the run loop and aggregate statistics used by every experiment.
 */

#ifndef ROWSIM_SIM_SYSTEM_HH
#define ROWSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/timeseries.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "cpu/stream.hh"
#include "mem/memsystem.hh"
#include "sim/checker.hh"
#include "sim/faults.hh"
#include "sim/profile.hh"
#include "sim/span.hh"

namespace rowsim
{

/**
 * A simulated multicore running one InstStream per core.
 */
class System
{
  public:
    System(const SystemParams &params,
           std::vector<std::unique_ptr<InstStream>> streams);
    ~System();

    /**
     * Run until every core has committed @p iter_quota workload
     * iterations (cores halt individually on reaching the quota, like
     * threads arriving at a final barrier).
     *
     * @return the cycle at which the last core reached the quota — the
     *         "execution time" every figure normalises.
     */
    Cycle run(std::uint64_t iter_quota);

    /**
     * Run like run(), but return as soon as every core has committed at
     * least @p warm_iters iterations, without halting any core: the
     * caller can checkpoint the warmed-up system here and a later
     * restore + run(iter_quota) replays the cold run bit-exactly.
     * @p warm_iters must satisfy 0 < warm_iters < iter_quota.
     */
    Cycle runWarmup(std::uint64_t iter_quota, std::uint64_t warm_iters);

    /** Advance exactly @p cycles (micro-tests). */
    void runCycles(Cycle cycles);

    // ---- functional fast mode (src/sim/funcmode.cc) ----

    /**
     * Run the functional fast-mode interpreter: every cycle each
     * unhalted core architecturally retires a batch of micro-ops —
     * values, caches, directory state, and branch/RoW predictors stay
     * warm via the synchronous funcAccess path — with no out-of-order
     * bookkeeping and nothing ever in flight. Same quota/warmup
     * contract as run()/runWarmup(): when @p warm_iters is non-zero the
     * loop returns (cores unhalted) once every core committed that
     * many iterations, and the state can be checkpointed and resumed
     * in either mode at any cycle boundary. Refused (fatal) under
     * fault injection, whose per-tick RNG draws have no functional
     * equivalent. Must start from a quiesced system (nothing in
     * flight), which construction and drain() both guarantee.
     */
    Cycle runFunctional(std::uint64_t iter_quota,
                        std::uint64_t warm_iters = 0);

    /**
     * Functionally retire until core @p c has committed exactly
     * @p targets[c] instructions (targets below the current counts are
     * already met). The cross-validation drill runs detail to quota,
     * reads each core's committed count, and replays a func run to the
     * same per-core counts before comparing funcStateDigest()s.
     */
    void runFunctionalToInstCounts(
        const std::vector<std::uint64_t> &targets);

    /**
     * SHA-256 hex digest of the mode-independent architectural facts:
     * config fingerprint, per-core committed instruction / atomic /
     * iteration counts, and the functional memory image. Cache arrays,
     * predictors, and LRU state are deliberately excluded — they are
     * timing-dependent and legitimately differ between modes — so this
     * digest is equal between a detail run and a func run of the same
     * order-insensitive workload stopped at the same per-core counts
     * (see DESIGN.md, functional/detail state contract).
     */
    std::string funcStateDigest() const;

    /** Per-component digests of the architectural pass, in save order
     *  (one entry per snapshot section marker: cycle, core0.., memsys,
     *  faults). CI uses these to turn a bare golden-digest mismatch
     *  into a named-structure diff. */
    std::vector<std::pair<std::string, std::string>> sectionDigests() const;

    // ---- checkpoint / restore (see src/sim/snapshot.hh) ----

    /** Serialize the complete simulation state: the architectural pass
     *  (everything deciding future simulated behaviour — integer-only,
     *  hashed by stateDigest()), the auxiliary pass (watchdog /
     *  fast-forward bookkeeping) and the statistics pass. */
    void save(Ser &s) const;
    /** Restore a state written by save() into this — identically
     *  configured — System; throws SnapshotError naming the first
     *  mismatching structure otherwise. */
    void restore(Deser &d);

    /** 64-bit digest of the architectural configuration (widths, queue
     *  capacities, cache geometry, policies, seed, fault setup).
     *  Embedded in checkpoint files so an image can never be restored
     *  under different parameters; observability knobs are excluded
     *  because they never change simulated behaviour. */
    std::uint64_t configFingerprint() const;

    /** Canonical SHA-256 hex digest over the architectural state (config
     *  fingerprint + the integer-only arch pass). Bit-stable across
     *  compilers and platforms; CI compares these as golden values. */
    std::string stateDigest() const;

    /** Write / read a whole-System checkpoint file (container format in
     *  snapshot.hh). Throws SnapshotError on any failure; refused while
     *  the attribution profiler is active, whose incremental state the
     *  v1 format does not carry. */
    void saveCheckpoint(const std::string &path) const;
    void restoreCheckpoint(const std::string &path);

    /** Halt every core and tick until pipelines and the memory system
     *  fully quiesce (atomicity invariant checks read memory after).
     *  Panics — naming the components that failed to quiesce — when the
     *  system does not settle within the deadlock bound. */
    void drain();

    Core &core(CoreId id) { return *cores[id]; }
    unsigned numCores() const { return static_cast<unsigned>(cores.size()); }
    MemSystem &mem() { return memsys; }
    Cycle now() const { return currentCycle; }
    const SystemParams &params() const { return params_; }

    /** Dump every statistic group (cores, caches, banks, network) in a
     *  gem5-style "group.stat value" format. */
    void dumpStats(std::FILE *out) const;

    /** Dump the same statistics as one machine-readable JSON object:
     *  sim totals, every group's counters/averages/formulas, and the
     *  interval-stats time series when sampling is enabled. */
    void dumpStatsJson(std::FILE *out) const;

    /** Interval sampler (enabled via SystemParams::statsInterval or the
     *  ROWSIM_STATS_INTERVAL env var; see common/stats.hh). */
    IntervalStats &intervalStats() { return intervalStats_; }
    const IntervalStats &intervalStats() const { return intervalStats_; }

    /** System-level derived stats (ipc, contendedPct, ...). */
    StatGroup &simStats() { return simStats_; }

    /** The invariant checker (always constructed; sweeps only when the
     *  static check mask is non-zero). */
    Checker &checker() { return *checker_; }
    /** The fault injector; nullptr unless faults are enabled. */
    FaultInjector *faults() { return faults_.get(); }
    /** The attribution profiler; nullptr unless profiling is enabled. */
    Profiler *profiler() { return profiler_.get(); }
    const Profiler *profiler() const { return profiler_.get(); }
    /** The span tracker; nullptr unless span tracing is enabled. */
    SpanTracker *spans() { return spans_.get(); }
    const SpanTracker *spans() const { return spans_.get(); }
    /** The metric time-series engine; nullptr unless enabled (ROWSIM_TS
     *  / SystemParams::timeseries, or implied by ROWSIM_CONVERGE). */
    TimeSeriesEngine *timeseries() { return ts_.get(); }
    const TimeSeriesEngine *timeseries() const { return ts_.get(); }

    /**
     * Emit the crash diagnostics snapshot: a human-visible marker pair
     * around one JSON object (per-core pipeline heads and locked lines,
     * per-cache MSHRs/writebacks, directory Blocked entries, in-flight
     * messages, and the last-K trace events from the retroactive ring)
     * to stderr, and to the ROWSIM_CRASH_JSON file when set. Installed
     * as a panic hook, so every panic (checker violation, watchdog,
     * drain failure) dumps before unwinding.
     */
    void dumpCrashDiagnostics(const char *reason);

    /** One-line "what is stuck" summary naming un-quiesced components. */
    std::string stuckSummary();

    /** Cycles elided by the idle fast-forward so far (perf telemetry;
     *  deliberately not a statistic, so stats dumps are bit-identical
     *  with fast-forward on and off). */
    Cycle fastForwardedCycles() const { return ffSkipped_; }

    /** Sum of a per-core counter across all cores. */
    std::uint64_t totalCounter(const std::string &name) const;
    /** Count-weighted mean of a per-core Average across all cores. */
    double meanAverage(const std::string &name) const;
    /** Count-weighted mean of a per-cache Average across all caches. */
    double meanCacheAverage(const std::string &name) const;
    std::uint64_t totalInstructions() const;
    std::uint64_t totalAtomics() const;

  private:
    /** Fast-forward operating mode (params + ROWSIM_FF env). */
    enum class FastForward : std::uint8_t
    {
        Off,
        On,
        /** Equivalence-assert mode: tick through each predicted idle
         *  window and panic if any instruction would have committed. */
        Check,
    };

    void tick();
    /** Shared body of run() / runWarmup(): run to @p iter_quota, or —
     *  when @p warm_iters is non-zero — return early (cores unhalted)
     *  once every core has committed warm_iters iterations. */
    Cycle runLoop(std::uint64_t iter_quota, std::uint64_t warm_iters);
    /** The three save() passes (see save()). */
    void saveArch(Ser &s) const;
    void saveAux(Ser &s) const;
    void saveStats(Ser &s) const;
    /** Rare per-tick services (interval sample, checker sweep, watchdog
     *  scan), entered only when currentCycle reaches the precomputed
     *  nextServiceCycle_ — the common-case tick does one comparison. */
    void serviceTick();
    void recomputeNextService();
    /** Earliest cycle anything can happen absent new work; invalidCycle
     *  when fully quiescent. */
    Cycle nextEventCycle() const;
    /** Jump currentCycle to just before the next event when the whole
     *  system is idle (run() only). */
    void maybeFastForward();
    /** Apply trace/interval-stats configuration (params + env vars). */
    void setupObservability();
    /** Heartbeat run-progress probe, entered from runLoop on a coarse
     *  cycle grid; emits when the wall-clock period elapsed. */
    void heartbeatProbe(std::uint64_t iter_quota);
    /** Wire the invariant checker and fault injector (params + env). */
    void setupSelfChecking();
    /** Reset the profile mask (params override env, always re-applied)
     *  and wire the Profiler into cores / caches / directory banks. */
    void setupProfiling();
    /** Reset the span gate (params override env, always re-applied) and
     *  wire the SpanTracker into cores / caches / banks / network. */
    void setupSpans();
    /** Per-core / per-structure forward-progress watchdog: panics naming
     *  the stuck component instead of a bare global "deadlock?". */
    void watchdogScan();
    /** Body of dumpCrashDiagnostics, reusable per sink. */
    void emitCrashJson(std::FILE *out, const char *reason);

    SystemParams params_;
    MemSystem memsys;
    std::vector<std::unique_ptr<InstStream>> streams_;
    std::vector<std::unique_ptr<Core>> cores;

    Cycle currentCycle = 0;

    /** Per-core commit progress for the watchdog. */
    struct CoreProgress
    {
        std::uint64_t insts = 0;
        Cycle cycle = 0;
    };
    std::vector<CoreProgress> coreProgress_;
    Cycle watchdogPeriod_ = 4096;
    Cycle lastWatchdogScan_ = 0;
    Cycle lastStructScan_ = 0;
    bool dumpingCrash_ = false;

    /** Next cycle any rare service (interval sample, checker sweep,
     *  watchdog scan) is due; 0 forces a recompute on the first tick. */
    Cycle nextServiceCycle_ = 0;
    FastForward ffMode_ = FastForward::On;
    Cycle ffSkipped_ = 0;
    /** Ticks to wait before the next skip attempt. A failed attempt
     *  (something is schedulable next tick) costs an O(cores) scan, so
     *  busy phases back off instead of paying it every tick; skipping
     *  later or less is always result-equivalent. */
    Cycle ffBackoff_ = 0;
    /** Current backoff magnitude; doubles on consecutive failed probes
     *  (capped), resets to 0 on a successful skip. */
    Cycle ffBackoffLen_ = 0;

    std::unique_ptr<Checker> checker_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<Profiler> profiler_;
    std::unique_ptr<SpanTracker> spans_;

    IntervalStats intervalStats_;
    StatGroup simStats_{"sim"};
    std::unique_ptr<TimeSeriesEngine> ts_;

    /** Heartbeat sink state (common/heartbeat.hh). The enable flag is
     *  resolved once per System; the run loop then pays one comparison
     *  per tick until the next coarse-grid probe. */
    bool hbEnabled_ = false;
    std::uint64_t hbPeriodMs_ = 250;
    std::uint64_t hbStartMs_ = 0;
    std::uint64_t hbLastMs_ = 0;
    Cycle hbLastCycle_ = 0;
    Cycle hbNextProbe_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_SIM_SYSTEM_HH
