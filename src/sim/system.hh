/**
 * @file
 * Whole-chip assembly: cores + private caches + directory banks + network,
 * with the run loop and aggregate statistics used by every experiment.
 */

#ifndef ROWSIM_SIM_SYSTEM_HH
#define ROWSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "cpu/stream.hh"
#include "mem/memsystem.hh"

namespace rowsim
{

/**
 * A simulated multicore running one InstStream per core.
 */
class System
{
  public:
    System(const SystemParams &params,
           std::vector<std::unique_ptr<InstStream>> streams);

    /**
     * Run until every core has committed @p iter_quota workload
     * iterations (cores halt individually on reaching the quota, like
     * threads arriving at a final barrier).
     *
     * @return the cycle at which the last core reached the quota — the
     *         "execution time" every figure normalises.
     */
    Cycle run(std::uint64_t iter_quota);

    /** Advance exactly @p cycles (micro-tests). */
    void runCycles(Cycle cycles);

    /** Halt every core and tick until pipelines and the memory system
     *  fully quiesce (atomicity invariant checks read memory after). */
    void drain();

    Core &core(CoreId id) { return *cores[id]; }
    unsigned numCores() const { return static_cast<unsigned>(cores.size()); }
    MemSystem &mem() { return memsys; }
    Cycle now() const { return currentCycle; }
    const SystemParams &params() const { return params_; }

    /** Dump every statistic group (cores, caches, banks, network) in a
     *  gem5-style "group.stat value" format. */
    void dumpStats(std::FILE *out) const;

    /** Dump the same statistics as one machine-readable JSON object:
     *  sim totals, every group's counters/averages/formulas, and the
     *  interval-stats time series when sampling is enabled. */
    void dumpStatsJson(std::FILE *out) const;

    /** Interval sampler (enabled via SystemParams::statsInterval or the
     *  ROWSIM_STATS_INTERVAL env var; see common/stats.hh). */
    IntervalStats &intervalStats() { return intervalStats_; }
    const IntervalStats &intervalStats() const { return intervalStats_; }

    /** System-level derived stats (ipc, contendedPct, ...). */
    StatGroup &simStats() { return simStats_; }

    /** Sum of a per-core counter across all cores. */
    std::uint64_t totalCounter(const std::string &name) const;
    /** Count-weighted mean of a per-core Average across all cores. */
    double meanAverage(const std::string &name) const;
    /** Count-weighted mean of a per-cache Average across all caches. */
    double meanCacheAverage(const std::string &name) const;
    std::uint64_t totalInstructions() const;
    std::uint64_t totalAtomics() const;

  private:
    void tick();
    /** Apply trace/interval-stats configuration (params + env vars). */
    void setupObservability();

    SystemParams params_;
    MemSystem memsys;
    std::vector<std::unique_ptr<InstStream>> streams_;
    std::vector<std::unique_ptr<Core>> cores;

    Cycle currentCycle = 0;
    std::uint64_t lastProgressInsts = 0;
    Cycle lastProgressCycle = 0;

    IntervalStats intervalStats_;
    StatGroup simStats_{"sim"};
};

} // namespace rowsim

#endif // ROWSIM_SIM_SYSTEM_HH
