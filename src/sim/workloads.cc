#include "sim/workloads.hh"

#include "common/log.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

unsigned
WorkloadProfile::approxInstsPerIter() const
{
    unsigned n = aluOps + loadsBefore + loadsAfter + storesPerIter +
                 branches + fillerAlu;
    n += static_cast<unsigned>(atomicProb *
                               (1.0 + storeBeforeAtomicProb));
    if (chainAfterAtomic)
        n += 4;
    return n;
}

KernelStream::KernelStream(const WorkloadProfile &profile, CoreId thread,
                           std::uint64_t seed)
    : p(profile), tid(thread),
      rng(seed * 0x9e3779b97f4a7c15ULL + thread * 0x2545f4914f6cdd1dULL + 1)
{
}

MicroOp
KernelStream::next()
{
    if (bufPos >= buf.size())
        genIteration();
    return buf[bufPos++];
}

void
KernelStream::genIteration()
{
    buf.clear();
    bufPos = 0;
    iterCount++;

    // Per-op PC: stable per position so predictors see consistent PCs.
    auto pc_at = [this](unsigned pos) {
        return p.pcBase + 4ULL * pos;
    };
    unsigned pos = 0;

    auto emit = [&](MicroOp op) -> std::size_t {
        op.pc = pc_at(pos++);
        buf.push_back(op);
        return buf.size() - 1;
    };
    auto dist_from = [&](std::size_t producer_idx) -> std::uint32_t {
        return static_cast<std::uint32_t>(buf.size() - producer_idx);
    };

    const bool has_atomic = p.atomicProb >= 1.0 || rng.chance(p.atomicProb);

    // ---- leading independent loads (MLP feeding eager execution) ----
    for (unsigned i = 0; i < p.loadsBefore; i++) {
        MicroOp op;
        op.cls = OpClass::Load;
        if (p.sharedDataLines > 0 && rng.chance(p.sharedDataProb)) {
            op.addr = addrmap::sharedDataLine(rng.below(p.sharedDataLines));
        } else {
            op.addr = addrmap::privateLine(tid, rng.below(p.privateLines));
        }
        emit(op);
    }

    // ---- dependent ALU chain ----
    std::size_t last_alu = SIZE_MAX;
    for (unsigned i = 0; i < p.aluOps; i++) {
        MicroOp op;
        op.cls = OpClass::IntAlu;
        op.execLatency = static_cast<std::uint16_t>(p.aluLatency);
        if (last_alu != SIZE_MAX)
            op.src0 = dist_from(last_alu);
        last_alu = emit(op);
    }

    // ---- independent filler ALU work ----
    for (unsigned i = 0; i < p.fillerAlu; i++) {
        MicroOp op;
        op.cls = OpClass::IntAlu;
        emit(op);
    }

    // ---- branches ----
    for (unsigned i = 0; i < p.branches; i++) {
        MicroOp op;
        op.cls = OpClass::Branch;
        op.takenBranch = p.branchTakenProb <= 0.0
                             ? false
                             : (p.branchTakenProb >= 1.0
                                    ? true
                                    : rng.chance(p.branchTakenProb));
        emit(op);
    }

    std::size_t atomic_idx = SIZE_MAX;
    if (has_atomic) {
        // Target selection: shared pool (contention-prone) or private.
        Addr target;
        if (p.sharedFraction >= 1.0 || rng.chance(p.sharedFraction)) {
            target = addrmap::sharedAtomicWord(
                rng.below(p.sharedAtomicWords));
        } else {
            target = addrmap::privateBase + tid * addrmap::privateSpan +
                     addrmap::privateSpan / 2 +
                     rng.below(p.privateAtomicWords) * lineBytes;
        }

        // Optional store to the same word/line first (atomic locality).
        if (p.storeBeforeAtomicProb > 0.0 &&
            rng.chance(p.storeBeforeAtomicProb)) {
            MicroOp st;
            st.cls = OpClass::Store;
            st.addr = rng.chance(p.storeSameWordProb) ? target : target + 8;
            st.value = rng.next();
            emit(st);

            // Payload record written after the slot store but before the
            // index bump (their drain delays a lazy atomic past the
            // point where the line gets stolen).
            for (unsigned i = 0; i < p.payloadStores; i++) {
                MicroOp ps;
                ps.cls = OpClass::Store;
                // A small, cache-resident record area: the drain delay
                // comes from store-buffer serialisation, not misses.
                ps.addr = addrmap::privateLine(tid, rng.below(64));
                ps.value = rng.next();
                emit(ps);
            }
        }

        MicroOp at;
        at.cls = OpClass::AtomicRMW;
        at.aop = p.aop;
        at.addr = target;
        at.value = p.aop == AtomicOp::FetchAdd ? 1 : rng.next();
        if (p.atomicDependsOnChain && last_alu != SIZE_MAX)
            at.src0 = dist_from(last_alu);
        // Distinct atomic PCs map distinct predictor entries.
        at.pc = p.pcBase + 0x1000 +
                4ULL * (iterCount % p.numAtomicPCs);
        pos++;
        buf.push_back(at);
        atomic_idx = buf.size() - 1;
    }

    // ---- younger work: independent unless chained on the atomic ----
    for (unsigned i = 0; i < p.loadsAfter; i++) {
        MicroOp op;
        op.cls = OpClass::Load;
        op.addr = addrmap::privateLine(tid, rng.below(p.privateLines));
        if (p.chainAfterAtomic && atomic_idx != SIZE_MAX)
            op.src0 = dist_from(atomic_idx);
        emit(op);
    }
    if (p.chainAfterAtomic && atomic_idx != SIZE_MAX) {
        std::size_t prev = atomic_idx;
        for (unsigned i = 0; i < 4; i++) {
            MicroOp op;
            op.cls = OpClass::IntAlu;
            op.src0 = dist_from(prev);
            prev = emit(op);
        }
    }

    // ---- trailing stores (private, or shared payload traffic) ----
    for (unsigned i = 0; i < p.storesPerIter; i++) {
        MicroOp op;
        op.cls = OpClass::Store;
        if (p.sharedDataLines > 0 && rng.chance(p.sharedStoreProb)) {
            op.addr = addrmap::sharedDataLine(rng.below(p.sharedDataLines));
        } else {
            op.addr = addrmap::privateLine(tid, rng.below(p.privateLines));
        }
        op.value = rng.next();
        emit(op);
    }

    ROWSIM_ASSERT(!buf.empty(), "empty workload iteration");
    buf.back().endOfIteration = true;
}

std::vector<std::unique_ptr<InstStream>>
makeStreams(const WorkloadProfile &profile, unsigned num_cores,
            std::uint64_t seed)
{
    std::vector<std::unique_ptr<InstStream>> out;
    out.reserve(num_cores);
    for (CoreId c = 0; c < num_cores; c++)
        out.push_back(std::make_unique<KernelStream>(profile, c, seed));
    return out;
}

// The profile itself is config-derived; the RNG and iteration buffer are
// the stream's only evolving state.
void
KernelStream::save(Ser &s) const
{
    s.section("kernelstream");
    s.u32(tid);
    std::uint64_t rngState[4];
    rng.getState(rngState);
    for (std::uint64_t w : rngState)
        s.u64(w);
    s.u64(iterCount);
    s.u64(buf.size());
    for (const MicroOp &op : buf)
        saveOp(s, op);
    s.u64(bufPos);
}

void
KernelStream::restore(Deser &d)
{
    d.section("kernelstream");
    const CoreId id = d.u32();
    if (id != tid) {
        throw SnapshotError(strprintf(
            "kernel stream thread mismatch: image tid %u restored into "
            "tid %u",
            id, tid));
    }
    std::uint64_t rngState[4];
    for (std::uint64_t &w : rngState)
        w = d.u64();
    rng.setState(rngState);
    iterCount = d.u64();
    buf.resize(d.u64());
    for (MicroOp &op : buf)
        restoreOp(d, op);
    bufPos = static_cast<std::size_t>(d.u64());
    if (bufPos > buf.size())
        throw SnapshotError("kernel stream position out of range");
}

} // namespace rowsim
