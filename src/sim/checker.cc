#include "sim/checker.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "sim/system.hh"

namespace rowsim
{

const char *
checkCategoryName(CheckCategory c)
{
    switch (c) {
      case CheckCategory::Swmr: return "swmr";
      case CheckCategory::Locks: return "locks";
      case CheckCategory::Leaks: return "leaks";
      case CheckCategory::Messages: return "messages";
      case CheckCategory::Occupancy: return "occupancy";
    }
    return "?";
}

std::uint32_t
parseCheckCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
            tok.erase(tok.begin());
        while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
            tok.pop_back();
        for (auto &ch : tok)
            ch = static_cast<char>(std::tolower(ch));
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= checkCategoryAll;
            continue;
        }
        if (tok == "none")
            continue;
        bool known = false;
        for (std::uint32_t bit = 1; bit <= checkCategoryAll; bit <<= 1) {
            if (tok == checkCategoryName(static_cast<CheckCategory>(bit))) {
                mask |= bit;
                known = true;
                break;
            }
        }
        if (!known)
            ROWSIM_FATAL("unknown check category '%s' (valid: swmr, locks, "
                         "leaks, messages, occupancy, all, none)",
                         tok.c_str());
    }
    return mask;
}

Checker::Checker(System *system, Cycle interval)
    : sys(system), interval_(interval ? interval : 1)
{
}

void
Checker::initFromEnv()
{
    // Per-thread, like the mask itself: sweep workers re-run the env
    // parse so ROWSIM_CHECK applies to their Systems too.
    static thread_local bool done = false;
    if (done)
        return;
    done = true;
    if (const char *spec = std::getenv("ROWSIM_CHECK"); spec && *spec)
        configure(parseCheckCategories(spec));
}

Cycle
Checker::envInterval()
{
    static Cycle interval = [] {
        if (const char *env = std::getenv("ROWSIM_CHECK_INTERVAL");
            env && *env) {
            return static_cast<Cycle>(
                parseEnvU64("ROWSIM_CHECK_INTERVAL", env));
        }
        return static_cast<Cycle>(1024);
    }();
    return interval;
}

void
Checker::sweep(Cycle now)
{
    lastSweep_ = now;
    sweeps_++;
    if (enabled(CheckCategory::Swmr))
        checkSwmr(now);
    if (enabled(CheckCategory::Locks))
        checkLocks(now);
    if (enabled(CheckCategory::Leaks))
        checkLeaks(now);
    if (enabled(CheckCategory::Messages))
        checkMessages(now);
    if (enabled(CheckCategory::Occupancy))
        checkOccupancy(now);
}

namespace
{

/** Per-line holder summary built from the actual cache arrays. */
struct Holders
{
    std::uint64_t anyMask = 0; ///< cores holding the line in S or M
    CoreId mOwner = invalidCore;
};

} // namespace

void
Checker::checkSwmr(Cycle /* now */)
{
    const unsigned n = sys->numCores();
    MemSystem &mem = sys->mem();

    // Pass 1: summarise actual cache contents and enforce single-writer
    // and L1-subset-of-L2 locally.
    std::unordered_map<Addr, Holders> holders;
    for (CoreId c = 0; c < n; c++) {
        PrivateCache &pc = mem.cache(c);
        pc.forEachL2Line([&](Addr line, CacheState st) {
            Holders &h = holders[line];
            h.anyMask |= 1ULL << c;
            if (st != CacheState::Modified)
                return;
            if (h.mOwner != invalidCore) {
                ROWSIM_PANIC("[check:swmr] line %#llx is Modified in both "
                             "l1d%u and l1d%u (single-writer violated)",
                             static_cast<unsigned long long>(line),
                             h.mOwner, c);
            }
            h.mOwner = c;
        });
        pc.forEachL1Line([&](Addr line, CacheState st) {
            const CacheState l2 = pc.lineState(line);
            if (l2 != st) {
                ROWSIM_PANIC("[check:swmr] l1d%u line %#llx: L1 state %d "
                             "disagrees with L2 state %d",
                             c, static_cast<unsigned long long>(line),
                             static_cast<int>(st), static_cast<int>(l2));
            }
        });
    }

    // Pass 2: each M copy must be known to its home bank. Transactions
    // in flight leave the entry Blocked, which is exempt.
    for (const auto &kv : holders) {
        if (kv.second.mOwner == invalidCore)
            continue;
        const Addr line = kv.first;
        const CoreId owner = kv.second.mOwner;
        const unsigned bank =
            static_cast<unsigned>(mem.network().homeBank(line)) - n;
        const DirState st = mem.directory(bank).lineState(line);
        if (st == DirState::Blocked)
            continue;
        if (st != DirState::Modified) {
            ROWSIM_PANIC("[check:swmr] l1d%u holds line %#llx Modified "
                         "but dir%u records state %d",
                         owner, static_cast<unsigned long long>(line),
                         bank, static_cast<int>(st));
        }
        const CoreId recorded = mem.directory(bank).lineOwner(line);
        if (recorded != owner) {
            ROWSIM_PANIC("[check:swmr] dir%u owner of line %#llx is "
                         "core%u but l1d%u holds the Modified copy",
                         bank, static_cast<unsigned long long>(line),
                         recorded, owner);
        }
    }

    // Pass 3: directory records agree with actual contents for every
    // non-Blocked entry: recorded sharers/owner are a superset of actual
    // holders (silent Shared evictions shrink only the actual set), and
    // a recorded owner can be trusted to produce the data (M copy, or a
    // writeback / refetch in flight).
    for (unsigned b = 0; b < mem.numBanks(); b++) {
        mem.directory(b).forEachLine([&](const Directory::LineInfo &i) {
            if (i.state == DirState::Blocked)
                return;
            auto it = holders.find(i.line);
            const std::uint64_t actual =
                it == holders.end() ? 0 : it->second.anyMask;
            std::uint64_t recorded = i.sharers;
            if (i.state == DirState::Modified) {
                if (i.owner >= n) {
                    ROWSIM_PANIC("[check:swmr] dir%u line %#llx Modified "
                                 "with invalid owner %u",
                                 b,
                                 static_cast<unsigned long long>(i.line),
                                 i.owner);
                }
                recorded |= 1ULL << i.owner;
                PrivateCache &oc = mem.cache(i.owner);
                const bool evidence =
                    oc.lineState(i.line) == CacheState::Modified ||
                    oc.isEvicting(i.line) || oc.hasMshr(i.line);
                if (!evidence) {
                    ROWSIM_PANIC("[check:swmr] dir%u says core%u owns "
                                 "line %#llx but l1d%u has no Modified "
                                 "copy, writeback, or refetch in flight",
                                 b, i.owner,
                                 static_cast<unsigned long long>(i.line),
                                 i.owner);
                }
            }
            if (actual & ~recorded) {
                ROWSIM_PANIC("[check:swmr] dir%u line %#llx: actual "
                             "holder mask %#llx is not covered by "
                             "recorded sharers/owner %#llx (state %d)",
                             b, static_cast<unsigned long long>(i.line),
                             static_cast<unsigned long long>(actual),
                             static_cast<unsigned long long>(recorded),
                             static_cast<int>(i.state));
            }
        });
    }
}

void
Checker::checkLocks(Cycle now)
{
    const unsigned n = sys->numCores();
    const Cycle bound = sys->params().deadlockCycles;
    std::unordered_map<Addr, CoreId> lockedBy;
    for (CoreId c = 0; c < n; c++) {
        Core &core = sys->core(c);
        core.atomicQueue().forEach([&](const AqEntry &a) {
            if (!a.locked)
                return;
            if (a.addr == invalidAddr) {
                ROWSIM_PANIC("[check:locks] core%u AQ seq %llu is locked "
                             "without a resolved address",
                             c, static_cast<unsigned long long>(a.seq));
            }
            const Addr line = a.line();
            if (sys->mem().cache(c).lineState(line) !=
                CacheState::Modified) {
                ROWSIM_PANIC("[check:locks] core%u AQ seq %llu holds the "
                             "lock on line %#llx but l1d%u does not hold "
                             "the line in M",
                             c, static_cast<unsigned long long>(a.seq),
                             static_cast<unsigned long long>(line), c);
            }
            if (!core.seqInFlight(a.seq) && !core.hasPendingUnlock(a.seq)) {
                ROWSIM_PANIC("[check:locks] core%u line %#llx is locked "
                             "by seq %llu which is neither in flight nor "
                             "pending unlock (leaked lock)",
                             c, static_cast<unsigned long long>(line),
                             static_cast<unsigned long long>(a.seq));
            }
            if (a.lockCycle != invalidCycle && now > a.lockCycle &&
                now - a.lockCycle > bound) {
                ROWSIM_PANIC("[check:locks] core%u has held the lock on "
                             "line %#llx for %llu cycles (seq %llu; no "
                             "forced unlock happened)",
                             c, static_cast<unsigned long long>(line),
                             static_cast<unsigned long long>(
                                 now - a.lockCycle),
                             static_cast<unsigned long long>(a.seq));
            }
            auto ins = lockedBy.emplace(line, c);
            if (!ins.second) {
                ROWSIM_PANIC("[check:locks] line %#llx is locked by both "
                             "core%u and core%u",
                             static_cast<unsigned long long>(line),
                             ins.first->second, c);
            }
        });
    }
}

void
Checker::checkLeaks(Cycle now)
{
    const unsigned n = sys->numCores();
    const Cycle bound = sys->params().deadlockCycles;
    MemSystem &mem = sys->mem();
    for (CoreId c = 0; c < n; c++) {
        mem.cache(c).forEachMshr([&](Addr line, const Mshr &m) {
            if (now > m.netIssueCycle && now - m.netIssueCycle > bound) {
                ROWSIM_PANIC("[check:leaks] l1d%u MSHR for line %#llx "
                             "outstanding for %llu cycles (request lost?)",
                             c, static_cast<unsigned long long>(line),
                             static_cast<unsigned long long>(
                                 now - m.netIssueCycle));
            }
        });
        mem.cache(c).forEachEvicting([&](Addr line, Cycle since) {
            if (now > since && now - since > bound) {
                ROWSIM_PANIC("[check:leaks] l1d%u writeback of line "
                             "%#llx unacknowledged for %llu cycles",
                             c, static_cast<unsigned long long>(line),
                             static_cast<unsigned long long>(now - since));
            }
        });
    }
    for (unsigned b = 0; b < mem.numBanks(); b++) {
        mem.directory(b).forEachLine([&](const Directory::LineInfo &i) {
            if (i.state == DirState::Blocked &&
                i.blockedSince != invalidCycle && now > i.blockedSince &&
                now - i.blockedSince > bound) {
                ROWSIM_PANIC("[check:leaks] dir%u line %#llx Blocked for "
                             "%llu cycles (requester core%u, %zu queued; "
                             "Unblock lost?)",
                             b, static_cast<unsigned long long>(i.line),
                             static_cast<unsigned long long>(
                                 now - i.blockedSince),
                             i.txnRequester, i.queued);
            }
            if (i.queued > 4 * static_cast<std::size_t>(n)) {
                ROWSIM_PANIC("[check:leaks] dir%u line %#llx has %zu "
                             "queued requests for %u cores (queue leak)",
                             b, static_cast<unsigned long long>(i.line),
                             i.queued, n);
            }
        });
    }
}

void
Checker::checkMessages(Cycle now)
{
    Network &net = sys->mem().network();
    const std::uint64_t injected = net.stats().counterValue("messages");
    const std::uint64_t delivered = net.stats().counterValue("delivered");
    const std::uint64_t inflight = net.inFlightCount();
    if (injected != delivered + inflight) {
        ROWSIM_PANIC("[check:messages] network message conservation "
                     "violated: %llu injected != %llu delivered + %llu "
                     "in flight",
                     static_cast<unsigned long long>(injected),
                     static_cast<unsigned long long>(delivered),
                     static_cast<unsigned long long>(inflight));
    }
    if (inflight && net.nextDue() < now) {
        ROWSIM_PANIC("[check:messages] network has an overdue message "
                     "(due cycle %llu < now %llu): delivery stuck",
                     static_cast<unsigned long long>(net.nextDue()),
                     static_cast<unsigned long long>(now));
    }
    const unsigned n = sys->numCores();
    for (unsigned b = 0; b < sys->mem().numBanks(); b++) {
        sys->mem().directory(b).forEachLine(
            [&](const Directory::LineInfo &i) {
                if (i.pendingAcks > n) {
                    ROWSIM_PANIC("[check:messages] dir%u line %#llx "
                                 "expects %u InvAcks with only %u cores",
                                 b,
                                 static_cast<unsigned long long>(i.line),
                                 i.pendingAcks, n);
                }
            });
    }
}

void
Checker::checkOccupancy(Cycle now)
{
    (void)now;
    const CoreParams &cp = sys->params().core;
    for (CoreId c = 0; c < sys->numCores(); c++) {
        Core &core = sys->core(c);
        if (core.robOccupancy() > cp.robEntries) {
            ROWSIM_PANIC("[check:occupancy] core%u ROB occupancy %u "
                         "exceeds capacity %u",
                         c, core.robOccupancy(), cp.robEntries);
        }
        if (core.loadQueue().size() > cp.lqEntries) {
            ROWSIM_PANIC("[check:occupancy] core%u LQ occupancy %u "
                         "exceeds capacity %u",
                         c, core.loadQueue().size(), cp.lqEntries);
        }
        if (core.storeQueue().size() > cp.sbEntries) {
            ROWSIM_PANIC("[check:occupancy] core%u SQ occupancy %u "
                         "exceeds capacity %u",
                         c, core.storeQueue().size(), cp.sbEntries);
        }
        if (core.iqOcc() > cp.iqEntries) {
            ROWSIM_PANIC("[check:occupancy] core%u IQ occupancy %u "
                         "exceeds capacity %u",
                         c, core.iqOcc(), cp.iqEntries);
        }
        const AtomicQueue &aq = core.atomicQueue();
        if (aq.size() > cp.aqEntries || aq.entries() != cp.aqEntries) {
            ROWSIM_PANIC("[check:occupancy] core%u AQ occupancy %u / "
                         "capacity %u inconsistent with configured %u",
                         c, aq.size(), aq.entries(), cp.aqEntries);
        }
        unsigned valid = 0;
        aq.forEach([&](const AqEntry &) { valid++; });
        if (valid != aq.size()) {
            ROWSIM_PANIC("[check:occupancy] core%u AQ valid-entry count "
                         "%u disagrees with occupancy %u",
                         c, valid, aq.size());
        }
    }
}

} // namespace rowsim
