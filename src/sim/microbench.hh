/**
 * @file
 * The §II-A microbenchmark (Fig. 2): a single thread performing RMW
 * operations on random elements of an array far larger than the caches,
 * in four variants (±lock prefix, ±explicit mfences), on two simulated
 * microarchitectures: "old" (fenced atomics, Kentsfield-like) and "new"
 * (unfenced atomics, Coffee-Lake-like).
 */

#ifndef ROWSIM_SIM_MICROBENCH_HH
#define ROWSIM_SIM_MICROBENCH_HH

#include <cstdint>
#include <string>

#include "cpu/microop.hh"

namespace rowsim
{

/** RMW instruction under test. */
enum class RmwKind : std::uint8_t
{
    FAA,  ///< (lock) xadd
    CAS,  ///< (lock) cmpxchg
    SWAP, ///< xchg — implicitly locked even without the prefix [18]
};

const char *rmwKindName(RmwKind k);

struct MicrobenchVariant
{
    RmwKind kind = RmwKind::FAA;
    bool lockPrefix = false;  ///< atomic RMW vs plain load-op-store
    bool mfence = false;      ///< explicit mfence before and after
    bool oldCore = false;     ///< fenced-atomic microarchitecture
};

/**
 * Run the microbenchmark and return cycles per iteration.
 * Note the x86 xchg rule: SWAP executes locked regardless of the prefix.
 */
double microbenchCyclesPerIter(const MicrobenchVariant &v,
                               std::uint64_t iterations = 2000,
                               std::uint64_t seed = 1);

} // namespace rowsim

#endif // ROWSIM_SIM_MICROBENCH_HH
