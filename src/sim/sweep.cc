#include "sim/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/log.hh"
#include "common/trace.hh"

namespace rowsim
{

SweepEngine::SweepEngine(unsigned threads) : threads_(threads)
{
    if (threads_ == 0)
        threads_ = defaultThreads();
}

unsigned
SweepEngine::defaultThreads()
{
    if (const char *env = std::getenv("ROWSIM_SWEEP_THREADS");
        env && *env) {
        const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        return n ? n : 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<RunResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> nextJob{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const SweepJob &job = jobs[i];
            // Multiple concurrent Systems would race on the shared
            // trace / profile / span sink files; scope this worker's
            // sinks to the job so every job writes its own suffixed
            // file set. The key is derived from the job *index*, not
            // the worker, so a 1-thread sweep and an 8-thread sweep
            // produce identical file sets. Stats are unaffected —
            // tracing is observe-only.
            Trace::scopeToJob(strprintf("j%zu", i));
            try {
                results[i] = runExperiment(job.workload, job.cfg,
                                           job.numCores, job.quota,
                                           job.seed, job.captureStatsJson);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    // Always run jobs on pool threads — a 1-thread sweep takes exactly
    // the code path of an 8-thread sweep, so serial-vs-parallel
    // comparisons differ only in scheduling.
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs.size()));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; t++)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    // Deterministic failure reporting: first failed job in submission
    // order, independent of which worker hit it first.
    for (std::size_t i = 0; i < errors.size(); i++) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs)
{
    return SweepEngine().run(jobs);
}

} // namespace rowsim
