#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <csignal>
#include <unistd.h>

#include "common/heartbeat.hh"
#include "common/io.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "sim/resultstore.hh"
#include "sim/sampling.hh"

namespace rowsim
{

SweepEngine::SweepEngine(unsigned threads)
{
    opts_.threads = threads ? threads : defaultThreads();
}

SweepEngine::SweepEngine(const SweepOptions &opts) : opts_(opts)
{
    if (opts_.threads == 0)
        opts_.threads = defaultThreads();
}

unsigned
SweepEngine::defaultThreads()
{
    if (const char *env = std::getenv("ROWSIM_SWEEP_THREADS");
        env && *env) {
        const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        return n ? n : 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepOptions
SweepOptions::fromEnv()
{
    SweepOptions o;
    if (const char *env = std::getenv("ROWSIM_SWEEP_ISOLATE");
        env && *env) {
        if (std::strcmp(env, "process") == 0)
            o.isolation = SweepIsolation::Process;
        else if (std::strcmp(env, "thread") == 0)
            o.isolation = SweepIsolation::Thread;
        else
            ROWSIM_FATAL("bad ROWSIM_SWEEP_ISOLATE '%s' (valid: thread, "
                         "process)",
                         env);
    }
    if (const char *env = std::getenv("ROWSIM_SWEEP_TIMEOUT_MS");
        env && *env) {
        o.timeoutMs = parseEnvU64("ROWSIM_SWEEP_TIMEOUT_MS", env);
    }
    if (const char *env = std::getenv("ROWSIM_SWEEP_RETRIES");
        env && *env) {
        o.retries = static_cast<unsigned>(
            parseEnvU64("ROWSIM_SWEEP_RETRIES", env));
    }
    if (const char *env = std::getenv("ROWSIM_SWEEP_BACKOFF_MS");
        env && *env) {
        o.backoffMs = parseEnvU64("ROWSIM_SWEEP_BACKOFF_MS", env);
    }
    return o;
}

namespace
{

/** Stamp the identity of @p job onto a failure result. */
RunResult
failedResult(const SweepJob &job, RunStatus status, std::string error,
             unsigned attempts)
{
    RunResult r;
    r.workload = job.workload;
    r.config = job.cfg.label;
    r.status = status;
    r.error = std::move(error);
    r.attempts = attempts;
    return r;
}

/** One job, executed in the calling thread/process (shared by both
 *  isolation modes — the forked worker calls this too, so thread and
 *  process sweeps run byte-identical simulations). The crash drill is
 *  handled by the caller: only process isolation can survive a real
 *  abort, so thread mode degrades it to a thrown error. */
RunResult
executeJob(const SweepJob &job, std::size_t index)
{
    // Scope the trace / profile / span / crash sinks to the job so
    // concurrent (or retried) jobs write disjoint suffixed files. The
    // key is derived from the job *index*, not the worker, so the file
    // set is identical for any thread count or isolation mode.
    Trace::scopeToJob(strprintf("j%zu", index));
    if (job.injectHangMs) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(job.injectHangMs));
    }
    if (!job.ckptPath.empty())
        return runDetailWindow(job);
    return runExperiment(job.workload, job.cfg, job.numCores, job.quota,
                         job.seed, job.captureStatsJson);
}

/** Non-strict completion report: name every failed job. */
void
warnFailures(const std::vector<SweepJob> &jobs,
             const std::vector<RunResult> &results)
{
    for (std::size_t i = 0; i < results.size(); i++) {
        if (!results[i].ok()) {
            ROWSIM_WARN("sweep: job %zu (%s/%s) %s after %u attempt%s: %s",
                        i, jobs[i].workload.c_str(),
                        jobs[i].cfg.label.c_str(),
                        runStatusName(results[i].status),
                        results[i].attempts,
                        results[i].attempts == 1 ? "" : "s",
                        results[i].error.c_str());
        }
    }
}

} // namespace

std::vector<RunResult>
SweepEngine::runThreaded(const std::vector<SweepJob> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());

    std::atomic<std::size_t> nextJob{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            Heartbeat::emitJob(i, "started", jobs[i].workload,
                               jobs[i].cfg.label, 1, nullptr);
            try {
                if (jobs[i].injectCrash)
                    throw std::runtime_error(
                        "injected crash (thread isolation cannot contain "
                        "a real abort)");
                results[i] = executeJob(jobs[i], i);
            } catch (const std::exception &e) {
                errors[i] = std::current_exception();
                results[i] = failedResult(jobs[i], RunStatus::Failed,
                                          e.what(), 1);
            } catch (...) {
                errors[i] = std::current_exception();
                results[i] = failedResult(jobs[i], RunStatus::Failed,
                                          "unknown exception", 1);
            }
            Heartbeat::emitJob(i, "finished", jobs[i].workload,
                               jobs[i].cfg.label, 1,
                               runStatusName(results[i].status));
        }
    };

    // Always run jobs on pool threads — a 1-thread sweep takes exactly
    // the code path of an 8-thread sweep, so serial-vs-parallel
    // comparisons differ only in scheduling.
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(opts_.threads, jobs.size()));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; t++)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (opts_.strict) {
        // Deterministic failure reporting: first failed job in
        // submission order, independent of which worker hit it first.
        for (std::size_t i = 0; i < errors.size(); i++) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }
    } else {
        warnFailures(jobs, results);
    }
    return results;
}

std::vector<RunResult>
SweepEngine::runIsolated(const std::vector<SweepJob> &jobs)
{
    using clock = std::chrono::steady_clock;

    // Handoff directory for worker → parent result files. PID-scoped so
    // concurrent sweeps (tests!) never collide; every path below is
    // written atomically, so a killed worker leaves no partial file.
    const char *tmproot = std::getenv("TMPDIR");
    const std::string dir =
        strprintf("%s/rowsim-sweep.%ld",
                  (tmproot && *tmproot) ? tmproot : "/tmp",
                  static_cast<long>(::getpid()));

    struct Attempt
    {
        std::size_t job;
        unsigned number; // 1-based attempt counter
        clock::time_point notBefore;
    };
    struct Worker
    {
        std::size_t job;
        unsigned number;
        pid_t pid;
        clock::time_point deadline;
        bool hasDeadline;
        bool killed;
        std::string path;
    };

    std::vector<RunResult> results(jobs.size());
    std::deque<Attempt> pending;
    for (std::size_t i = 0; i < jobs.size(); i++)
        pending.push_back({i, 1, clock::now()});
    std::vector<Worker> running;

    const std::size_t slots =
        std::max<std::size_t>(1, std::min<std::size_t>(opts_.threads,
                                                       jobs.size()));

    auto finishAttempt = [&](const Worker &w, RunStatus status,
                             std::string error) {
        if (status != RunStatus::Ok) {
            const bool retryable = status == RunStatus::Crashed ||
                                   status == RunStatus::TimedOut;
            if (retryable && w.number <= opts_.retries) {
                Heartbeat::emitJob(w.job, "retrying",
                                   jobs[w.job].workload,
                                   jobs[w.job].cfg.label, w.number,
                                   runStatusName(status));
                // Exponential backoff: transient-looking failures
                // (OOM-killed worker, a loaded machine tripping the
                // timeout) get breathing room before the retry.
                const std::uint64_t delay = opts_.backoffMs
                                            << (w.number - 1);
                ROWSIM_WARN("sweep: job %zu (%s/%s) %s (attempt %u); "
                            "retrying in %llu ms",
                            w.job, jobs[w.job].workload.c_str(),
                            jobs[w.job].cfg.label.c_str(),
                            runStatusName(status), w.number,
                            static_cast<unsigned long long>(delay));
                pending.push_back(
                    {w.job, w.number + 1,
                     clock::now() + std::chrono::milliseconds(delay)});
                return;
            }
            results[w.job] = failedResult(jobs[w.job], status,
                                          std::move(error), w.number);
            Heartbeat::emitJob(w.job, "finished", jobs[w.job].workload,
                               jobs[w.job].cfg.label, w.number,
                               runStatusName(status));
        }
        std::remove(w.path.c_str());
    };

    auto reap = [&](Worker &w, int wstatus) {
        if (w.killed) {
            finishAttempt(w, RunStatus::TimedOut,
                          strprintf("exceeded %llu ms wall-clock budget",
                                    static_cast<unsigned long long>(
                                        opts_.timeoutMs)));
            return;
        }
        const bool exitedClean =
            WIFEXITED(wstatus) && (WEXITSTATUS(wstatus) == 0 ||
                                   WEXITSTATUS(wstatus) == 1);
        std::vector<std::uint8_t> raw;
        if (exitedClean && readFileBytes(w.path, raw)) {
            try {
                RunResult r = decodeResult(raw);
                r.attempts = w.number;
                if (r.ok()) {
                    results[w.job] = std::move(r);
                    std::remove(w.path.c_str());
                    Heartbeat::emitJob(w.job, "finished",
                                       jobs[w.job].workload,
                                       jobs[w.job].cfg.label, w.number,
                                       runStatusName(RunStatus::Ok));
                } else {
                    // The worker failed in-simulator and said why;
                    // deterministic, so never retried.
                    finishAttempt(w, r.status, r.error);
                }
                return;
            } catch (const std::exception &) {
                // fall through: treat an undecodable handoff as a crash
            }
        }
        std::string why;
        if (WIFSIGNALED(wstatus)) {
            why = strprintf("worker killed by signal %d",
                            WTERMSIG(wstatus));
        } else if (WIFEXITED(wstatus)) {
            why = strprintf("worker exited with status %d and no valid "
                            "result",
                            WEXITSTATUS(wstatus));
        } else {
            why = "worker vanished without a valid result";
        }
        finishAttempt(w, RunStatus::Crashed, std::move(why));
    };

    while (!pending.empty() || !running.empty()) {
        // Launch every ready attempt while worker slots are free.
        bool launched = false;
        for (auto it = pending.begin();
             running.size() < slots && it != pending.end();) {
            if (it->notBefore > clock::now()) {
                ++it;
                continue;
            }
            const Attempt a = *it;
            it = pending.erase(it);
            const SweepJob &job = jobs[a.job];
            const std::string path =
                strprintf("%s/job%zu.a%u.res", dir.c_str(), a.job,
                          a.number);
            // fork() only clones the calling thread; buffered stdio in
            // other threads' ownership would be flushed twice. The
            // isolated scheduler is single-threaded by design — flush
            // before forking so the child starts with clean buffers.
            std::fflush(stdout);
            std::fflush(stderr);
            const pid_t pid = ::fork();
            if (pid < 0) {
                ROWSIM_FATAL("sweep: fork failed: %s",
                             std::strerror(errno));
            }
            if (pid == 0) {
                // Worker. Everything funnels into one handoff file;
                // _Exit (not exit) so no parent-registered atexit state
                // runs twice.
                if (job.injectCrash)
                    std::abort(); // resilience drill: a genuine SIGABRT
                int code = 0;
                try {
                    RunResult r = executeJob(job, a.job);
                    atomicWriteFile(path, encodeResult(r));
                } catch (const std::exception &e) {
                    code = 1;
                    try {
                        atomicWriteFile(
                            path, encodeResult(failedResult(
                                      job, RunStatus::Failed, e.what(),
                                      a.number)));
                    } catch (...) {
                        code = 2; // no handoff → parent records a crash
                    }
                } catch (...) {
                    code = 2;
                }
                std::fflush(nullptr);
                std::_Exit(code);
            }
            // Parent. Lifecycle events come from the scheduler, never
            // from executeJob — the forked worker would duplicate them.
            Heartbeat::emitJob(a.job, "started", job.workload,
                               job.cfg.label, a.number, nullptr);
            Worker w;
            w.job = a.job;
            w.number = a.number;
            w.pid = pid;
            w.hasDeadline = opts_.timeoutMs > 0;
            w.deadline = clock::now() +
                         std::chrono::milliseconds(opts_.timeoutMs);
            w.killed = false;
            w.path = path;
            running.push_back(std::move(w));
            launched = true;
        }

        // Reap finished workers and kill overdue ones.
        bool reaped = false;
        for (auto it = running.begin(); it != running.end();) {
            int wstatus = 0;
            const pid_t got = ::waitpid(it->pid, &wstatus, WNOHANG);
            if (got == it->pid) {
                reap(*it, wstatus);
                it = running.erase(it);
                reaped = true;
                continue;
            }
            if (it->hasDeadline && !it->killed &&
                clock::now() >= it->deadline) {
                // SIGKILL, not SIGTERM: a worker stuck in a simulator
                // livelock will not honour anything catchable, and the
                // atomic handoff protocol makes hard death safe.
                ::kill(it->pid, SIGKILL);
                it->killed = true;
            }
            ++it;
        }

        if (!launched && !reaped && !running.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (running.empty() && !pending.empty()) {
            // Everything alive is backing off; sleep to the earliest
            // retry point instead of spinning.
            auto earliest = pending.front().notBefore;
            for (const Attempt &a : pending)
                earliest = std::min(earliest, a.notBefore);
            const auto now = clock::now();
            if (earliest > now)
                std::this_thread::sleep_for(
                    std::min<clock::duration>(
                        earliest - now, std::chrono::milliseconds(50)));
        }
    }
    ::rmdir(dir.c_str());

    if (opts_.strict) {
        for (std::size_t i = 0; i < results.size(); i++) {
            if (!results[i].ok()) {
                throw std::runtime_error(strprintf(
                    "sweep: job %zu (%s/%s) %s after %u attempt%s: %s",
                    i, jobs[i].workload.c_str(),
                    jobs[i].cfg.label.c_str(),
                    runStatusName(results[i].status), results[i].attempts,
                    results[i].attempts == 1 ? "" : "s",
                    results[i].error.c_str()));
            }
        }
    } else {
        warnFailures(jobs, results);
    }
    return results;
}

std::vector<RunResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    if (jobs.empty())
        return {};
    const bool isolated = opts_.isolation == SweepIsolation::Process;
    const char *iso = isolated ? "process" : "thread";
    if (Heartbeat::enabled()) {
        Heartbeat::emitSweep("start", jobs.size(), 0, 0, iso);
        for (std::size_t i = 0; i < jobs.size(); i++) {
            Heartbeat::emitJob(i, "queued", jobs[i].workload,
                               jobs[i].cfg.label, 1, nullptr);
        }
    }
    std::vector<RunResult> results =
        isolated ? runIsolated(jobs) : runThreaded(jobs);
    if (Heartbeat::enabled()) {
        std::size_t ok = 0;
        for (const RunResult &r : results)
            ok += r.ok() ? 1 : 0;
        Heartbeat::emitSweep("end", jobs.size(), ok, results.size() - ok,
                             iso);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs)
{
    return SweepEngine(SweepOptions::fromEnv()).run(jobs);
}

} // namespace rowsim
