/**
 * @file
 * Versioned, self-describing binary snapshot layer.
 *
 * `Ser` serializes into a byte buffer with an explicit little-endian
 * encoding (so images and state digests are identical across platforms
 * and compilers); `Deser` reads the same stream back with full bounds
 * checking. Section tags make streams self-describing: every component
 * frames its state with a named marker, and a reader that drifts out of
 * sync fails with a named `SnapshotError` instead of undefined behaviour.
 *
 * Checkpoint files wrap one serialized payload in a header carrying a
 * magic, the snapshot format version, and the producing System's
 * configuration fingerprint, followed by a SHA-256 trailer over the
 * payload. Truncated, corrupted, version-skewed, or config-mismatched
 * files are all rejected with distinct named errors (see DESIGN.md
 * "Snapshot format & compatibility").
 *
 * Every stateful component implements `save(Ser &) const` /
 * `restore(Deser &)`; `System::save`/`System::restore` compose them, and
 * `System::stateDigest()` hashes the architectural sections into the
 * canonical golden digest CI compares across compilers.
 */

#ifndef ROWSIM_SIM_SNAPSHOT_HH
#define ROWSIM_SIM_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rowsim
{

struct Msg;
struct MicroOp;

/** Current on-disk snapshot format version. Bumped on any incompatible
 *  payload layout change; readers reject other versions by name.
 *  v2: the stats pass carries time-series engine state.
 *  v3: the value memory serializes as delta-varint (sorted addresses as
 *      LEB128 gaps, values as LEB128) — it dominates checkpoint size on
 *      long runs and its save/restore cost bounds the SMARTS sampling
 *      speedup. Changes the digested byte stream, so the golden digests
 *      were regenerated in the same commit. */
constexpr std::uint32_t snapshotFormatVersion = 3;

/** Named failure of any snapshot operation: truncated or corrupted
 *  files, format-version skew, configuration mismatch, section drift,
 *  or an attempt to snapshot un-snapshottable state (active profiler). */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error("snapshot: " + what)
    {
    }
};

/** Serializer: appends explicitly little-endian fields to a buffer. */
class Ser
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; i++)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; i++)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void b(bool v) { u8(v ? 1 : 0); }

    /** Unsigned LEB128: 1 byte for values < 128, up to 10 for the full
     *  u64 range. The value-memory encoder (sorted address gaps, small
     *  data words) is the intended user — bulk state whose fixed-width
     *  encoding would dominate image size and checkpoint I/O. */
    void
    vu64(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    /** Doubles travel as IEEE-754 bit patterns: exact round-trips, and
     *  bit-identical images whenever the computation that produced the
     *  value is (all digested state is integral, keeping cross-compiler
     *  digests safe from FP formatting differences). */
    void f64(double v);

    void str(const std::string &s);

    /** Append @p len raw bytes with no length prefix (key preimages,
     *  digests — anything whose framing the caller owns). */
    void raw(const void *data, std::size_t len);

    /** Open a named section. Purely a framing marker: the reader
     *  verifies it by name, catching any producer/consumer drift at the
     *  first misaligned field instead of yielding garbage state. */
    void section(const char *tag);

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Deserializer over a byte buffer; every read is bounds-checked and
 *  failures throw SnapshotError. */
class Deser
{
  public:
    Deser(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deser(const std::vector<std::uint8_t> &buf)
        : Deser(buf.data(), buf.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::uint64_t vu64();
    bool b();
    double f64();
    std::string str();

    /** Verify the next section marker is @p tag. */
    void section(const char *tag);

    bool atEnd() const { return pos_ == size_; }
    /** Reject images with bytes left over after a full restore. */
    void expectEnd() const;

  private:
    void need(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// Shared aggregate encoders (used by the cache, directory, network, core
// and workload serializers).
void saveMsg(Ser &s, const Msg &m);
void restoreMsg(Deser &d, Msg &m);
void saveOp(Ser &s, const MicroOp &op);
void restoreOp(Deser &d, MicroOp &op);

struct SystemParams;

/**
 * The canonical configuration fingerprint: every numeric architectural
 * parameter of @p params serialized in a fixed little-endian order and
 * hashed. The three-argument overload appends a resolved fault-injection
 * setup (mask/seed/rate) exactly as a live System with that injector
 * would; the one-argument overload resolves the fault setup from
 * @p params and the ROWSIM_FAULTS* environment first — so it matches
 * `System::configFingerprint()` for the System those params construct,
 * without building one. Observability knobs (tracing, profiling,
 * interval stats, checker cadence) are deliberately excluded: they
 * never change simulated behaviour.
 */
std::uint64_t configFingerprint(const SystemParams &params);
std::uint64_t configFingerprint(const SystemParams &params,
                                std::uint32_t fault_mask,
                                std::uint64_t fault_seed,
                                std::uint32_t fault_rate);

/**
 * Write one checkpoint file: magic, format version, @p fingerprint,
 * payload length, payload, SHA-256(payload). The file is written to a
 * temporary name and atomically renamed, so concurrent sweep workers
 * racing on the same checkpoint key never expose a partial image.
 * Throws SnapshotError on I/O failure.
 */
void writeSnapshotFile(const std::string &path,
                       const std::vector<std::uint8_t> &payload,
                       std::uint64_t fingerprint);

/**
 * Read and validate a checkpoint file, returning the payload. Rejects —
 * each with a distinct named SnapshotError — files that are not rowsim
 * snapshots, carry another format version, were produced under a
 * different configuration fingerprint, are truncated, or fail the
 * SHA-256 payload check.
 */
std::vector<std::uint8_t> readSnapshotFile(const std::string &path,
                                           std::uint64_t expect_fingerprint);

} // namespace rowsim

#endif // ROWSIM_SIM_SNAPSHOT_HH
