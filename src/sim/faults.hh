/**
 * @file
 * Deterministic fault injector: a chaos layer that perturbs timing while
 * preserving functional correctness, so the torture tests can hammer the
 * protocol's rare windows (PutM crossings, the Fig. 8 Unblock race, lock
 * steals) on demand instead of waiting for them to line up naturally.
 *
 * All faults are *legal* timings — extra network delay, a backed-up
 * directory bank, an unlucky replacement victim — so any invariant or
 * atomicity violation they expose is a real protocol bug. The injector
 * draws from its own seeded xoshiro256** stream, making every fault
 * schedule replayable: same (seed, rate, mask, workload) → the same
 * faults on the same cycles, cycle for cycle.
 */

#ifndef ROWSIM_SIM_FAULTS_HH
#define ROWSIM_SIM_FAULTS_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "net/message.hh"

namespace rowsim
{

class System;
class Ser;
class Deser;
struct SystemParams;

/** One bit per fault family; combined into the injection mask. */
enum class FaultCategory : std::uint32_t
{
    NetDelay     = 1u << 0, ///< random extra hops on any message
    DirStall     = 1u << 1, ///< temporarily backed-up directory banks
    Evict        = 1u << 2, ///< forced evictions near locked lines
    UnblockDelay = 1u << 3, ///< delayed Unblocks (widens the Fig. 8 race)
};

constexpr std::uint32_t faultCategoryAll = (1u << 4) - 1;

const char *faultCategoryName(FaultCategory c);

/**
 * Parse a comma-separated category list ("netdelay,evict", "all",
 * "none") into a bitmask. Unknown names are a user error (fatal).
 */
std::uint32_t parseFaultCategories(const std::string &spec);

/** The fully-resolved fault-injection setup a System would run with:
 *  params override environment, seed defaults derive from the system
 *  seed, rate defaults to 50 per 10k. mask == 0 means no injector. */
struct FaultSetup
{
    std::uint32_t mask = 0;
    std::uint64_t seed = 0;
    unsigned rate = 0;
};

/**
 * Resolve @p params + the ROWSIM_FAULTS{,_SEED,_RATE} environment into
 * the exact FaultSetup `System`'s constructor would build an injector
 * from. Shared by System::setupSelfChecking and the standalone
 * configFingerprint(), so a fingerprint computed without a System can
 * never drift from one computed by it.
 */
FaultSetup resolveFaultSetup(const SystemParams &params);

/**
 * The injector. One per System; wired into Network::setDelayHook for the
 * message-delay faults and ticked once per cycle for the bank/eviction
 * faults. @p rate is in events per 10k opportunities.
 */
class FaultInjector
{
  public:
    FaultInjector(System *sys, std::uint32_t mask, std::uint64_t seed,
                  unsigned rate);

    bool enabled(FaultCategory c) const
    {
        return (mask_ & static_cast<std::uint32_t>(c)) != 0;
    }
    std::uint32_t mask() const { return mask_; }
    std::uint64_t seed() const { return seed_; }
    unsigned rate() const { return rate_; }

    /** Network delay hook: extra cycles to add to @p msg's delivery. */
    Cycle extraDelay(const Msg &msg, Cycle now);

    /** Once per cycle: maybe stall a bank or force an eviction. */
    void tick(Cycle now);

    StatGroup &stats() { return stats_; }

    /** Snapshot support: the RNG stream is the injector's only evolving
     *  state (mask/seed/rate are config), and its position decides every
     *  future fault, so it is part of the architectural image. */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    /** Pick a line near the locked set (or any cached line) and try to
     *  force-evict a copy of it. */
    void attemptEviction(Cycle now);

    System *sys;
    std::uint32_t mask_;
    std::uint64_t seed_;
    unsigned rate_;
    Rng rng;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_SIM_FAULTS_HH
