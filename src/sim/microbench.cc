#include "sim/microbench.hh"

#include <memory>

#include "common/rng.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

namespace rowsim
{

const char *
rmwKindName(RmwKind k)
{
    switch (k) {
      case RmwKind::FAA: return "FAA";
      case RmwKind::CAS: return "CAS";
      case RmwKind::SWAP: return "SWAP";
    }
    return "?";
}

namespace
{

/** The microbenchmark loop body, regenerated with fresh random indices. */
class MicrobenchStream : public InstStream
{
  public:
    MicrobenchStream(const MicrobenchVariant &v, std::uint64_t seed)
        : var(v), rng(seed)
    {
        // xchg with a memory operand is always locked on x86 [18].
        effectiveLock = var.lockPrefix || var.kind == RmwKind::SWAP;
    }

    MicroOp
    next() override
    {
        if (pos >= buf.size())
            genIteration();
        return buf[pos++];
    }

  private:
    static constexpr std::uint64_t arrayWords = 1ULL << 20; // 64MB of lines

    void
    genIteration()
    {
        buf.clear();
        pos = 0;
        const Addr target =
            addrmap::privateLine(0, rng.below(arrayWords));

        auto emit = [this](MicroOp op) {
            op.pc = 0x500000 + 4 * buf.size();
            buf.push_back(op);
        };

        // A couple of index-computation ALU ops.
        MicroOp alu;
        alu.cls = OpClass::IntAlu;
        emit(alu);
        emit(alu);

        if (var.mfence) {
            MicroOp f;
            f.cls = OpClass::Fence;
            emit(f);
        }

        if (effectiveLock) {
            MicroOp at;
            at.cls = OpClass::AtomicRMW;
            at.aop = var.kind == RmwKind::FAA   ? AtomicOp::FetchAdd
                     : var.kind == RmwKind::CAS ? AtomicOp::CompareSwap
                                                : AtomicOp::Swap;
            at.addr = target;
            at.value = 1;
            emit(at);
        } else {
            // Plain RMW: load, modify, store to the same word.
            MicroOp ld;
            ld.cls = OpClass::Load;
            ld.addr = target;
            emit(ld);
            MicroOp op;
            op.cls = OpClass::IntAlu;
            op.src0 = 1;
            emit(op);
            MicroOp st;
            st.cls = OpClass::Store;
            st.addr = target;
            st.value = 1;
            st.src0 = 1;
            emit(st);
        }

        if (var.mfence) {
            MicroOp f;
            f.cls = OpClass::Fence;
            emit(f);
        }

        buf.back().endOfIteration = true;
    }

    MicrobenchVariant var;
    bool effectiveLock;
    Rng rng;
    std::vector<MicroOp> buf;
    std::size_t pos = 0;
};

} // namespace

double
microbenchCyclesPerIter(const MicrobenchVariant &v, std::uint64_t iterations,
                        std::uint64_t seed)
{
    SystemParams sp;
    sp.numCores = 1;
    sp.seed = seed;
    sp.core.atomicPolicy =
        v.oldCore ? AtomicPolicy::Fenced : AtomicPolicy::Eager;

    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<MicrobenchStream>(v, seed));

    System sys(sp, std::move(streams));
    const Cycle cycles = sys.run(iterations);
    return static_cast<double>(cycles) / static_cast<double>(iterations);
}

} // namespace rowsim
