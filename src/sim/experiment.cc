#include "sim/experiment.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "common/heartbeat.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/profiles.hh"
#include "sim/resultstore.hh"
#include "sim/sampling.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

namespace rowsim
{

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Failed: return "failed";
      case RunStatus::Crashed: return "crashed";
      case RunStatus::TimedOut: return "timeout";
    }
    return "?";
}

std::string
RunResult::toJson() const
{
    std::string j = strprintf(
        "{\"workload\":\"%s\",\"config\":\"%s\",\"cycles\":%llu,"
        "\"instructions\":%llu,\"atomicsCommitted\":%llu,"
        "\"atomicsPer10k\":%.4f,\"atomicsUnlocked\":%llu,"
        "\"detectedContended\":%llu,\"oracleContended\":%llu,"
        "\"contendedPct\":%.4f,\"missLatency\":%.4f,"
        "\"dispatchToIssue\":%.4f,\"issueToLock\":%.4f,"
        "\"lockToUnlock\":%.4f,"
        "\"dispatchToIssueP50\":%.4f,\"dispatchToIssueP90\":%.4f,"
        "\"dispatchToIssueP99\":%.4f,"
        "\"issueToLockP50\":%.4f,\"issueToLockP90\":%.4f,"
        "\"issueToLockP99\":%.4f,"
        "\"lockToUnlockP50\":%.4f,\"lockToUnlockP90\":%.4f,"
        "\"lockToUnlockP99\":%.4f,\"olderUnexecuted\":%.4f,"
        "\"youngerStarted\":%.4f,\"predAccuracy\":%.4f,"
        "\"atomicsForwarded\":%llu,\"atomicsPromoted\":%llu,"
        "\"forcedUnlocks\":%llu,\"eagerIssued\":%llu,\"lazyIssued\":%llu",
        workload.c_str(), config.c_str(),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(instructions),
        static_cast<unsigned long long>(atomicsCommitted), atomicsPer10k,
        static_cast<unsigned long long>(atomicsUnlocked),
        static_cast<unsigned long long>(detectedContended),
        static_cast<unsigned long long>(oracleContended), contendedPct,
        missLatency, dispatchToIssue, issueToLock, lockToUnlock,
        dispatchToIssueP50, dispatchToIssueP90, dispatchToIssueP99,
        issueToLockP50, issueToLockP90, issueToLockP99, lockToUnlockP50,
        lockToUnlockP90, lockToUnlockP99, olderUnexecuted, youngerStarted,
        predAccuracy,
        static_cast<unsigned long long>(atomicsForwarded),
        static_cast<unsigned long long>(atomicsPromoted),
        static_cast<unsigned long long>(forcedUnlocks),
        static_cast<unsigned long long>(eagerIssued),
        static_cast<unsigned long long>(lazyIssued));
    if (!spanJson.empty())
        j += ",\"spans\":" + spanJson;
    if (!tsJson.empty())
        j += ",\"timeseries\":" + tsJson;
    if (!samplingJson.empty())
        j += ",\"sampling\":" + samplingJson;
    if (!convergeMetric.empty()) {
        j += strprintf(
            ",\"converge\":{\"metric\":\"%s\",\"target\":%.6g,"
            "\"confidence\":%.6g,\"achieved\":%s,\"converged\":%s}",
            convergeMetric.c_str(), convergeTarget, convergeConfidence,
            std::isfinite(convergeAchieved)
                ? strprintf("%.6g", convergeAchieved).c_str()
                : "null",
            converged ? "true" : "false");
    }
    // Failure fields only when there is a failure: ok-run report lines
    // keep their historical byte layout.
    if (status != RunStatus::Ok) {
        j += strprintf(",\"status\":\"%s\",\"error\":\"%s\","
                       "\"attempts\":%u",
                       runStatusName(status), jsonEscape(error).c_str(),
                       attempts);
    }
    j += "}";
    return j;
}

void
writeRunReport(const RunResult &r, const std::string &path)
{
    // Sweep workers report concurrently; serialize so every JSON line
    // lands intact (append-mode writes interleave at the stdio level).
    static std::mutex reportMutex;
    std::lock_guard<std::mutex> lock(reportMutex);

    const std::string line = r.toJson();
    if (path == "-") {
        std::fprintf(stdout, "%s\n", line.c_str());
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        ROWSIM_WARN("cannot open run report file '%s'", path.c_str());
        return;
    }
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
}

ExpConfig
eagerConfig(bool forwarding)
{
    ExpConfig c;
    c.label = forwarding ? "eager+fwd" : "eager";
    c.policy = AtomicPolicy::Eager;
    c.forwardToAtomics = forwarding;
    return c;
}

ExpConfig
lazyConfig()
{
    ExpConfig c;
    c.label = "lazy";
    c.policy = AtomicPolicy::Lazy;
    return c;
}

ExpConfig
fencedConfig()
{
    ExpConfig c;
    c.label = "fenced";
    c.policy = AtomicPolicy::Fenced;
    return c;
}

namespace
{
const char *
detectorName(ContentionDetector d)
{
    switch (d) {
      case ContentionDetector::EW: return "EW";
      case ContentionDetector::RW: return "RW";
      case ContentionDetector::RWDir: return "RW+Dir";
      case ContentionDetector::RWDirNotify: return "RW+DirNtf";
    }
    return "?";
}

const char *
updateName(PredictorUpdate u)
{
    switch (u) {
      case PredictorUpdate::UpDown: return "U/D";
      case PredictorUpdate::SaturateOnContention: return "Sat";
      case PredictorUpdate::TwoUpOneDown: return "+2/-1";
    }
    return "?";
}
} // namespace

ExpConfig
rowConfig(ContentionDetector det, PredictorUpdate upd, bool forwarding)
{
    ExpConfig c;
    c.label = std::string(detectorName(det)) + "_" + updateName(upd) +
              (forwarding ? "+fwd" : "");
    c.policy = AtomicPolicy::RoW;
    c.detector = det;
    c.update = upd;
    c.forwardToAtomics = forwarding;
    return c;
}

std::vector<ExpConfig>
fig9Configs()
{
    std::vector<ExpConfig> v;
    v.push_back(eagerConfig());
    v.push_back(lazyConfig());
    for (auto det : {ContentionDetector::EW, ContentionDetector::RW,
                     ContentionDetector::RWDir}) {
        for (auto upd : {PredictorUpdate::UpDown,
                         PredictorUpdate::SaturateOnContention}) {
            v.push_back(rowConfig(det, upd));
        }
    }
    return v;
}

SystemParams
makeParams(const ExpConfig &cfg, unsigned num_cores, std::uint64_t seed)
{
    SystemParams sp;
    sp.numCores = num_cores;
    sp.seed = seed;
    sp.core.atomicPolicy = cfg.policy;
    sp.core.forwardToAtomics = cfg.forwardToAtomics;
    sp.core.row.detector = cfg.detector;
    sp.core.row.update = cfg.update;
    sp.core.row.latencyThreshold = cfg.latencyThreshold;
    sp.core.row.predictorEntries = cfg.predictorEntries;
    sp.core.row.localityPromotion = cfg.localityPromotion;
    sp.profileCategories = cfg.profile;
    sp.spans = cfg.spans;
    sp.timeseries = cfg.timeseries;
    sp.converge = cfg.converge;
    sp.mode = cfg.mode;
    return sp;
}

bool
funcModeFor(const SystemParams &params)
{
    std::string m = params.mode;
    if (m.empty()) {
        if (const char *env = std::getenv("ROWSIM_MODE"); env && *env)
            m = env;
    }
    if (m.empty() || m == "detail")
        return false;
    if (m == "func")
        return true;
    ROWSIM_FATAL("bad ROWSIM_MODE '%s' (valid: detail, func)", m.c_str());
    return false;
}

namespace
{

/**
 * Merge one named per-core histogram across every core and read its
 * tail percentiles. Leaves the outputs untouched when no core recorded
 * the histogram (profiling off / no samples).
 */
void
mergedPercentiles(System &sys, const char *name, double &p50, double &p90,
                  double &p99)
{
    const Histogram *first = nullptr;
    for (CoreId c = 0; c < sys.numCores(); c++) {
        if (const Histogram *h = sys.core(c).stats().findHistogram(name)) {
            first = h;
            break;
        }
    }
    if (!first)
        return;
    Histogram merged(first->lo(), first->hi(),
                     static_cast<unsigned>(first->buckets().size()));
    for (CoreId c = 0; c < sys.numCores(); c++) {
        if (const Histogram *h = sys.core(c).stats().findHistogram(name))
            merged.merge(*h);
    }
    if (merged.summary().count() == 0)
        return;
    p50 = merged.percentile(0.50);
    p90 = merged.percentile(0.90);
    p99 = merged.percentile(0.99);
}

/** Append a profiled run's record as one JSON line to @p path
 *  ("-" = stdout); same serialization discipline as writeRunReport. */
void
writeProfileRecord(const RunResult &r, const std::string &path)
{
    static std::mutex profileMutex;
    std::lock_guard<std::mutex> lock(profileMutex);

    const std::string line = strprintf(
        "{\"workload\":\"%s\",\"config\":\"%s\",\"cycles\":%llu,"
        "\"profile\":%s}",
        r.workload.c_str(), r.config.c_str(),
        static_cast<unsigned long long>(r.cycles), r.profileJson.c_str());
    if (path == "-") {
        std::fprintf(stdout, "%s\n", line.c_str());
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        ROWSIM_WARN("cannot open profile JSON file '%s'", path.c_str());
        return;
    }
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
}

/** Append a span-traced run's record as one JSON line to @p path
 *  ("-" = stdout) — the input format of tools/span_report. */
void
writeSpanRecord(const RunResult &r, const std::string &path)
{
    static std::mutex spanMutex;
    std::lock_guard<std::mutex> lock(spanMutex);

    const std::string line = strprintf(
        "{\"workload\":\"%s\",\"config\":\"%s\",\"cycles\":%llu,"
        "\"spans\":%s}",
        r.workload.c_str(), r.config.c_str(),
        static_cast<unsigned long long>(r.cycles), r.spanJson.c_str());
    if (path == "-") {
        std::fprintf(stdout, "%s\n", line.c_str());
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        ROWSIM_WARN("cannot open span JSON file '%s'", path.c_str());
        return;
    }
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
}

/** Checkpoint file name for one (workload, config, run-shape) tuple.
 *  Everything that decides the warmup trajectory is part of the key, so
 *  a stale file can never be restored into the wrong run (and the
 *  config fingerprint embedded in the file backstops the rest). */
std::string
checkpointPath(const std::string &workload, const std::string &label,
               unsigned num_cores, std::uint64_t seed, std::uint64_t quota,
               std::uint64_t warm)
{
    const char *dir_env = std::getenv("ROWSIM_CKPT_DIR");
    const std::string dir =
        (dir_env && *dir_env) ? dir_env : "rowsim-ckpt";
    auto sanitize = [](const std::string &in) {
        std::string out;
        for (const char ch : in) {
            out += std::isalnum(static_cast<unsigned char>(ch)) ? ch
                                                                : '_';
        }
        return out;
    };
    return dir + "/" + sanitize(workload) + "-" + sanitize(label) +
           strprintf("-c%u-s%llu-q%llu-w%llu.ckpt", num_cores,
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(quota),
                     static_cast<unsigned long long>(warm));
}

/**
 * sys.run(quota), optionally short-circuited through a warmup
 * checkpoint (ROWSIM_CKPT=save|restore|auto):
 *
 *  - save:    run to the warmup point, write the checkpoint, continue.
 *  - restore: resume from the checkpoint (missing file is fatal).
 *  - auto:    restore when the file exists, else run + save it.
 *
 * ROWSIM_CKPT_AT sets the warmup point in committed iterations per core
 * (default quota/4); ROWSIM_CKPT_DIR the directory (default
 * "rowsim-ckpt"). Because save→restore→run is bit-identical to an
 * uninterrupted run, every downstream metric and stats dump is
 * unaffected — only the wall-clock cost of re-simulating the warmup is.
 */
Cycle
runMaybeCheckpointed(System &sys, const std::string &workload,
                     const std::string &label, std::uint64_t quota)
{
    const char *mode_env = std::getenv("ROWSIM_CKPT");
    if (!mode_env || !*mode_env)
        return sys.run(quota);
    const std::string mode = mode_env;
    if (mode != "save" && mode != "restore" && mode != "auto") {
        ROWSIM_FATAL("bad ROWSIM_CKPT '%s' (valid: save, restore, auto)",
                     mode_env);
    }
    if (sys.profiler() && sys.profiler()->active()) {
        ROWSIM_WARN("ROWSIM_CKPT ignored: the attribution profiler is "
                    "active and the snapshot format does not carry its "
                    "state");
        return sys.run(quota);
    }
    if (sys.timeseries() && sys.timeseries()->converge().active) {
        // A convergence-bounded run can stop before the warmup point,
        // which would leave a checkpoint that no cold run reproduces;
        // warmup therefore ignores convergence, and mixing the two
        // would make the stop cycle depend on ROWSIM_CKPT. Refuse.
        ROWSIM_WARN("ROWSIM_CKPT ignored: ROWSIM_CONVERGE bounds the "
                    "run at a data-dependent cycle");
        return sys.run(quota);
    }

    std::uint64_t warm = quota / 4;
    if (const char *at = std::getenv("ROWSIM_CKPT_AT"); at && *at)
        warm = parseEnvU64("ROWSIM_CKPT_AT", at);
    if (warm == 0 || warm >= quota) {
        ROWSIM_WARN("ROWSIM_CKPT ignored: warmup point %llu outside "
                    "(0, quota %llu)",
                    static_cast<unsigned long long>(warm),
                    static_cast<unsigned long long>(quota));
        return sys.run(quota);
    }

    const std::string path = checkpointPath(
        workload, label, sys.numCores(), sys.params().seed, quota, warm);

    bool restored = false;
    if (mode == "restore" || mode == "auto") {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            sys.restoreCheckpoint(path);
            restored = true;
        } else if (mode == "restore") {
            ROWSIM_FATAL("ROWSIM_CKPT=restore: checkpoint '%s' not "
                         "found (populate it with ROWSIM_CKPT=save or "
                         "auto)",
                         path.c_str());
        }
    }
    if (!restored) {
        sys.runWarmup(quota, warm);
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), ec);
        sys.saveCheckpoint(path);
    }
    // Degenerate case: every core already reached the quota at the
    // warmup point, so the run is over — run(quota) would tick once
    // more and report one extra cycle.
    bool done = true;
    for (CoreId c = 0; c < sys.numCores(); c++) {
        if (sys.core(c).committedIterations() < quota) {
            done = false;
            break;
        }
    }
    return done ? sys.now() : sys.run(quota);
}

/** The per-run JSON sinks that need only the RunResult (run report,
 *  profile record, span record) — shared by live runs and result-store
 *  hits, so a warm rerun still feeds every figure script. */
void
emitRunSinks(const RunResult &r)
{
    // ROWSIM_REPORT=<path>: append a one-line JSON report per run (any
    // bench or test), "-" for stdout. Lets figure scripts collect every
    // run without touching the harness call sites.
    if (const char *report = std::getenv("ROWSIM_REPORT");
        report && *report) {
        writeRunReport(r, report);
    }
    // ROWSIM_PROFILE_JSON=<path>: append one profiler record per
    // profiled run ({"workload","config","cycles","profile"}), "-" for
    // stdout — the input format of tools/profile_report. Inside a sweep
    // worker the path carries the job key (like the trace sinks), so
    // concurrent jobs never interleave one file.
    if (const char *pj = std::getenv("ROWSIM_PROFILE_JSON");
        pj && *pj && !r.profileJson.empty()) {
        writeProfileRecord(r, std::strcmp(pj, "-") == 0
                                  ? std::string("-")
                                  : suffixJobPath(pj, Trace::jobKey()));
    }
    // ROWSIM_SPANS_JSON=<path>: append one span record per span-traced
    // run ({"workload","config","cycles","spans"}), "-" for stdout —
    // the input format of tools/span_report.
    if (const char *sj = std::getenv("ROWSIM_SPANS_JSON");
        sj && *sj && !r.spanJson.empty()) {
        writeSpanRecord(r, std::strcmp(sj, "-") == 0
                                ? std::string("-")
                                : suffixJobPath(sj, Trace::jobKey()));
    }
}

/** Run @p workload on a fully-specified system and harvest the metrics. */
RunResult
runAndCollect(const std::string &workload, const SystemParams &sp,
              const std::string &label, std::uint64_t quota,
              bool capture_stats)
{
    const WorkloadProfile profile = profileFor(workload);
    if (quota == 0)
        quota = defaultQuota(workload);

    // ROWSIM_SAMPLE=<n>:<warm>:<detail>: divert to SMARTS-style
    // checkpointed sampling — functional warm-up to a checkpoint grid,
    // short detail windows from each checkpoint (sweep jobs, so they
    // cache and parallelize individually), batch-means aggregation. The
    // windows go through the result store themselves; the aggregate
    // bypasses it.
    if (const SampleSpec sample = sampleSpecFromEnv(); sample.active) {
        RunResult r = runSampled(workload, sp, label, quota, sample);
        emitRunSinks(r);
        return r;
    }

    const bool funcMode = funcModeFor(sp);

    // Content-addressed result store (ROWSIM_RESULTS=on): serve a prior
    // identical run from disk instead of re-simulating. Bypassed when
    // the caller needs live-System side artifacts a cached RunResult
    // cannot reproduce (the full-stats sink or any trace sink). The
    // trace env is normally parsed at System construction, which is
    // after this decision — force it now so the first run of a traced
    // process bypasses too instead of serving a hit that emits nothing.
    Trace::initFromEnv();
    std::unique_ptr<ResultStore> store = ResultStore::fromEnv();
    const char *statsSink = std::getenv("ROWSIM_STATS_JSON");
    // The heartbeat is a live sink like the trace / stats sinks: a
    // store hit would silently emit no telemetry, so it bypasses too.
    const bool bypassStore = (statsSink && *statsSink) ||
                             Trace::anyEnabled() || Heartbeat::enabled();
    ResultKey key{};
    if (store && !bypassStore) {
        key = ResultStore::keyFor(sp, workload, label, quota);
        RunResult cached;
        if (store->load(key, cached)) {
            // An entry written by a no-stats run cannot serve a caller
            // that wants statsJson — recompute (and upgrade the entry).
            if (!capture_stats || !cached.statsJson.empty()) {
                if (!capture_stats)
                    cached.statsJson.clear();
                cached.fromCache = true;
                emitRunSinks(cached);
                return cached;
            }
        }
    }

    System sys(sp, makeStreams(profile, sp.numCores, sp.seed));

    RunResult r;
    r.workload = workload;
    r.config = label;
    // Functional fast mode retires the whole quota architecturally;
    // the warmup-checkpoint shortcut is pointless there (the func run
    // IS the fast path) and is ignored.
    r.cycles = funcMode ? sys.runFunctional(quota)
                        : runMaybeCheckpointed(sys, workload, label, quota);

    r.instructions = sys.totalInstructions();
    r.atomicsCommitted = sys.totalAtomics();
    r.atomicsPer10k =
        r.instructions
            ? 1e4 * static_cast<double>(r.atomicsCommitted) /
                  static_cast<double>(r.instructions)
            : 0.0;

    r.atomicsUnlocked = sys.totalCounter("atomicsUnlocked");
    r.detectedContended = sys.totalCounter("atomicsDetectedContended");
    r.oracleContended = sys.totalCounter("atomicsOracleContended");
    r.contendedPct =
        r.atomicsUnlocked
            ? 100.0 * static_cast<double>(r.oracleContended) /
                  static_cast<double>(r.atomicsUnlocked)
            : 0.0;

    r.missLatency = sys.meanCacheAverage("missLatency");
    r.dispatchToIssue = sys.meanAverage("atomicDispatchToIssue");
    r.issueToLock = sys.meanAverage("atomicIssueToLock");
    r.lockToUnlock = sys.meanAverage("atomicLockToUnlock");
    mergedPercentiles(sys, "atomicDispatchToIssueHist",
                      r.dispatchToIssueP50, r.dispatchToIssueP90,
                      r.dispatchToIssueP99);
    mergedPercentiles(sys, "atomicIssueToLockHist", r.issueToLockP50,
                      r.issueToLockP90, r.issueToLockP99);
    mergedPercentiles(sys, "atomicLockToUnlockHist", r.lockToUnlockP50,
                      r.lockToUnlockP90, r.lockToUnlockP99);
    r.olderUnexecuted = sys.meanAverage("olderUnexecutedAtIssue");
    r.youngerStarted = sys.meanAverage("youngerStartedAtIssue");

    std::uint64_t updates = 0, correct = 0;
    for (CoreId c = 0; c < sys.numCores(); c++) {
        updates += sys.core(c).predictor().stats().counterValue("updates");
        correct += sys.core(c).predictor().stats().counterValue("correct");
    }
    r.predAccuracy = updates ? 100.0 * static_cast<double>(correct) /
                                   static_cast<double>(updates)
                             : 0.0;

    r.atomicsForwarded = sys.totalCounter("atomicsForwarded");
    r.atomicsPromoted = sys.totalCounter("atomicsPromotedEager");
    r.forcedUnlocks = sys.totalCounter("forcedUnlocks");
    r.eagerIssued = sys.totalCounter("atomicsIssuedEager");
    r.lazyIssued = sys.totalCounter("atomicsIssuedLazy");

    if (capture_stats) {
        // Render the full stats tree into memory while the System is
        // still alive (sweeps compare these dumps byte-for-byte).
        char *buf = nullptr;
        std::size_t len = 0;
        if (std::FILE *mem = open_memstream(&buf, &len)) {
            sys.dumpStatsJson(mem);
            std::fclose(mem);
            r.statsJson.assign(buf, len);
            std::free(buf);
        } else {
            ROWSIM_WARN("open_memstream failed; statsJson not captured");
        }
    }

    if (const Profiler *prof = sys.profiler(); prof && prof->active())
        r.profileJson = prof->toJson();
    if (const SpanTracker *sp = sys.spans(); sp && sp->active())
        r.spanJson = sp->toJson();
    if (const TimeSeriesEngine *ts = sys.timeseries()) {
        r.tsJson = ts->toJson();
        if (ts->converge().active) {
            r.convergeMetric = ts->converge().metric;
            r.convergeTarget = ts->converge().relHalfwidth;
            r.convergeConfidence = ts->converge().confidence;
            r.convergeAchieved = ts->achievedRelHalfwidth();
            r.converged = ts->converged();
        }
    }

    // Persist the completed run before emitting sinks: once stored, a
    // rerun with the same key never simulates again.
    if (store && !bypassStore)
        store->store(key, r);

    emitRunSinks(r);
    // ROWSIM_STATS_JSON=<path>: the full stats tree (every group's
    // counters/averages/formulas + interval series) of the most recent
    // run, "-" for stdout.
    if (statsSink && *statsSink) {
        if (std::string(statsSink) == "-") {
            sys.dumpStatsJson(stdout);
        } else if (std::FILE *f = std::fopen(statsSink, "w")) {
            sys.dumpStatsJson(f);
            std::fclose(f);
        } else {
            ROWSIM_WARN("cannot open stats JSON file '%s'", statsSink);
        }
    }
    return r;
}

} // namespace

RunResult
runExperiment(const std::string &workload, const ExpConfig &cfg,
              unsigned num_cores, std::uint64_t quota, std::uint64_t seed,
              bool capture_stats)
{
    return runAndCollect(workload, makeParams(cfg, num_cores, seed),
                         cfg.label, quota, capture_stats);
}

RunResult
runExperimentParams(const std::string &workload, const SystemParams &params,
                    const std::string &label, std::uint64_t quota,
                    bool capture_stats)
{
    return runAndCollect(workload, params, label, quota, capture_stats);
}

} // namespace rowsim
