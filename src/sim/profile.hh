/**
 * @file
 * Runtime-gated attribution profiler.
 *
 * Modelled on the trace (src/common/trace.hh) and checker
 * (src/sim/checker.hh) layers: every profile point compiles to a single
 * branch on a static, thread-local category bitmask, so leaving
 * profiling off costs one predictable branch per hook. With categories
 * enabled (ROWSIM_PROFILE env var or SystemParams::profileCategories)
 * the profiler aggregates — without storing per-event logs — the three
 * attributions the paper's evidence rests on:
 *
 *  - cpi:   per-core CPI stacks. Every commit slot of every cycle is
 *           classified as retired or charged to the reason the commit
 *           head could not retire (frontend starvation, ROB full,
 *           store-queue drain, lazy-atomic wait, atomic execution,
 *           coherence miss, idle), gem5-O3 style, so the lazy-vs-eager
 *           cost of an atomic policy is read directly off the stack.
 *  - lines: per-cacheline contention profiles, keyed by line address:
 *           lock-hold cycles, acquire counts, distinct acquiring cores,
 *           ping-pong ownership transfers, lock steals, directory queue
 *           depth. A top-K dump names the hot lock lines.
 *  - row:   RoW decision audit: per-PC cross-tab of predicted
 *           eager/lazy × observed contended/uncontended (the Fig. 12
 *           accuracy from first principles) plus a mispredict-cost
 *           estimate in cycles.
 *  - pcs:   per-PC atomic latency attribution (dispatch→issue,
 *           issue→lock, lock→unlock sums) feeding the Fig. 6 breakdown.
 *  - check: slot-conservation self-check — at end of run (and at dump)
 *           every core's CPI stack must sum to cycles × commitWidth;
 *           a mismatch panics naming the core (ROWSIM_FF=check style).
 *
 * State is per-System (one Profiler instance), so profiled jobs compose
 * with the parallel sweep engine; only the category mask is static and
 * thread-local, and System::setupProfiling() unconditionally resets it
 * per construction, so a profiled job never leaks its mask into the
 * next job on the same worker thread.
 */

#ifndef ROWSIM_SIM_PROFILE_HH
#define ROWSIM_SIM_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace rowsim
{

/** One bit per attribution family; combined into the runtime mask. */
enum class ProfCategory : std::uint32_t
{
    Cpi   = 1u << 0, ///< per-core commit-slot CPI stacks
    Lines = 1u << 1, ///< per-cacheline contention table
    Row   = 1u << 2, ///< RoW predicted × observed decision audit
    Pcs   = 1u << 3, ///< per-PC atomic latency attribution
    Check = 1u << 4, ///< slot-conservation assertion (implies cpi use)
};

constexpr std::uint32_t profCategoryAll = (1u << 5) - 1;

const char *profCategoryName(ProfCategory c);

/**
 * Parse a comma-separated category list ("cpi,lines", "all", "none")
 * into a bitmask. Unknown names are a user error (fatal). An empty
 * string yields 0 (profiling off).
 */
std::uint32_t parseProfileCategories(const std::string &spec);

/** Where each commit slot of each cycle goes. Retired is the useful
 *  slot; the rest are the one reason the commit head was blocked (all
 *  unfilled slots of a cycle are charged to that single reason). */
enum class CpiBucket : unsigned
{
    Retired = 0,    ///< instruction committed in this slot
    FrontendStall,  ///< ROB empty: fetch/decode starvation
    RobFull,        ///< dispatch backpressure (head still executing)
    Exec,           ///< head incomplete in the execution core
    SqDrainWait,    ///< head blocked on store-queue / store-buffer drain
    AtomicLazyWait, ///< lazy atomic waiting to reach LQ/SQ head
    AtomicExecute,  ///< atomic locking / executing at the L1
    CoherenceMiss,  ///< head blocked on an outstanding miss (MSHR live)
    Idle,           ///< core halted (quota reached) or FF-skipped window
    NumBuckets,
};

constexpr unsigned numCpiBuckets =
    static_cast<unsigned>(CpiBucket::NumBuckets);

const char *cpiBucketName(CpiBucket b);

/**
 * The per-System attribution profiler. All aggregation state lives in
 * the instance; the category mask is static thread-local so the hook
 * gates are one branch with no instance lookup.
 */
class Profiler
{
  public:
    Profiler(unsigned num_cores, unsigned commit_width);

    /** Fast inline gates. */
    static bool anyEnabled() { return mask_ != 0; }
    static bool
    enabled(ProfCategory c)
    {
        return (mask_ & static_cast<std::uint32_t>(c)) != 0;
    }

    /** Programmatic mask control (tests, SystemParams). */
    static void configure(std::uint32_t mask) { mask_ = mask; }
    static std::uint32_t mask() { return mask_; }

    /** Mask from ROWSIM_PROFILE ("" => 0); parsed once per process. */
    static std::uint32_t envMask();

    /** Mask captured at construction: what this instance collected. */
    std::uint32_t activeMask() const { return activeMask_; }
    bool active() const { return activeMask_ != 0; }

    unsigned numCores() const { return numCores_; }
    unsigned commitWidth() const { return commitWidth_; }

    // --- cpi ---

    /** Charge @p slots commit slots of @p core to @p bucket. */
    void
    cpiSlots(CoreId core, CpiBucket b, std::uint64_t slots)
    {
        cpi_[core][static_cast<unsigned>(b)] += slots;
    }

    /** Credit a fast-forwarded window: every core gains
     *  @p cycles × commitWidth explicit Idle slots. */
    void
    addIdleSlots(std::uint64_t cycles)
    {
        for (auto &stack : cpi_)
            stack[static_cast<unsigned>(CpiBucket::Idle)] +=
                cycles * commitWidth_;
    }

    /** Panic unless every core's stack sums to cycles × commitWidth. */
    void checkConservation(Cycle cycles, const char *where) const;

    using CpiStack = std::array<std::uint64_t, numCpiBuckets>;
    const std::vector<CpiStack> &cpi() const { return cpi_; }

    // --- lines ---

    struct LineProf
    {
        std::uint64_t acquires = 0;        ///< lock acquisitions
        std::uint64_t holdCycles = 0;      ///< Σ lock→unlock
        std::uint64_t contendedUnlocks = 0;///< releases seen contended
        std::uint64_t remoteFills = 0;     ///< fills served cache-to-cache
        std::uint64_t ownerSwaps = 0;      ///< M→M ping-pong transfers
        std::uint64_t lockStalls = 0;      ///< requests stalled on a lock
        std::uint64_t lockStallCycles = 0; ///< Σ stall durations
        std::uint64_t steals = 0;          ///< successful lock steals
        std::uint64_t queuedMax = 0;       ///< max directory queue depth
        std::uint64_t coresMask = 0;       ///< acquiring cores (bit per id)
    };

    void
    lineAcquire(Addr line, CoreId core)
    {
        LineProf &p = lines_[line];
        p.acquires++;
        if (core < 64)
            p.coresMask |= 1ull << core;
    }

    void
    lineRelease(Addr line, std::uint64_t hold_cycles, bool contended)
    {
        LineProf &p = lines_[line];
        p.holdCycles += hold_cycles;
        if (contended)
            p.contendedUnlocks++;
    }

    void lineRemoteFill(Addr line) { lines_[line].remoteFills++; }
    void lineOwnerSwap(Addr line) { lines_[line].ownerSwaps++; }
    void lineSteal(Addr line) { lines_[line].steals++; }

    void
    lineLockStall(Addr line, std::uint64_t cycles)
    {
        LineProf &p = lines_[line];
        p.lockStalls++;
        p.lockStallCycles += cycles;
    }

    void
    lineQueueDepth(Addr line, std::uint64_t depth)
    {
        LineProf &p = lines_[line];
        if (depth > p.queuedMax)
            p.queuedMax = depth;
    }

    const std::unordered_map<Addr, LineProf> &lines() const
    {
        return lines_;
    }

    // --- row ---

    struct RowProf
    {
        /** cell[predictedContended][observedContended] */
        std::uint64_t cell[2][2] = {{0, 0}, {0, 0}};
        /** Σ wasted wait (predicted lazy, turned out uncontended). */
        std::uint64_t lazyWasteCycles = 0;
        /** Σ contended acquisition (predicted eager, was contended). */
        std::uint64_t eagerContendedCycles = 0;
    };

    void
    rowOutcome(Addr pc, bool predicted_contended, bool contended,
               std::uint64_t mispredict_cost)
    {
        RowProf &p = rowAudit_[pc];
        p.cell[predicted_contended ? 1 : 0][contended ? 1 : 0]++;
        if (predicted_contended && !contended)
            p.lazyWasteCycles += mispredict_cost;
        else if (!predicted_contended && contended)
            p.eagerContendedCycles += mispredict_cost;
    }

    const std::unordered_map<Addr, RowProf> &rowAudit() const
    {
        return rowAudit_;
    }

    /** Totals across PCs: updates, per-cell sums, observed-contended. */
    RowProf rowTotals() const;

    // --- pcs ---

    struct PcProf
    {
        std::uint64_t count = 0;
        std::uint64_t dispatchToIssue = 0; ///< Σ dispatch→issue cycles
        std::uint64_t issueToLock = 0;     ///< Σ issue→lock cycles
        std::uint64_t lockToUnlock = 0;    ///< Σ lock→unlock cycles
    };

    void
    pcSample(Addr pc, std::uint64_t d2i, std::uint64_t i2l,
             std::uint64_t l2u)
    {
        PcProf &p = pcs_[pc];
        p.count++;
        p.dispatchToIssue += d2i;
        p.issueToLock += i2l;
        p.lockToUnlock += l2u;
    }

    const std::unordered_map<Addr, PcProf> &pcs() const { return pcs_; }

    /** Single-line JSON of everything collected (top-K lines by
     *  holdCycles; K from ROWSIM_PROFILE_TOPK, default 16). */
    std::string toJson() const;

    /** Top-K override hook (tests); 0 restores the env/default value. */
    static void setTopK(std::uint64_t k) { topKOverride_ = k; }

  private:
    unsigned numCores_;
    unsigned commitWidth_;
    std::uint32_t activeMask_;

    std::vector<CpiStack> cpi_;
    std::unordered_map<Addr, LineProf> lines_;
    std::unordered_map<Addr, RowProf> rowAudit_;
    std::unordered_map<Addr, PcProf> pcs_;

    // Thread-local like the trace/check masks: each sweep worker gates
    // independently; setupProfiling resets it per System construction.
    static inline thread_local std::uint32_t mask_ = 0;
    static inline std::uint64_t topKOverride_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_SIM_PROFILE_HH
