#include "sim/sampling.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "common/heartbeat.hh"
#include "common/log.hh"
#include "common/timeseries.hh"
#include "common/trace.hh"
#include "sim/profile.hh"
#include "sim/profiles.hh"
#include "sim/resultstore.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

namespace rowsim
{

SampleSpec
parseSampleSpec(const char *name, const std::string &spec)
{
    SampleSpec s;
    if (spec.empty())
        return s;
    unsigned n = 0;
    unsigned long long warm = 0, detail = 0;
    double conf = 0.95;
    char junk = 0;
    const int got = std::sscanf(spec.c_str(), "%u:%llu:%llu:%lf%c", &n,
                                &warm, &detail, &conf, &junk);
    if (got != 3 && got != 4) {
        ROWSIM_FATAL("bad %s '%s' (want <n_ckpts>:<warm>:<detail>"
                     "[:<confidence>], iterations per core)",
                     name, spec.c_str());
    }
    if (n < 1 || detail < 1) {
        ROWSIM_FATAL("bad %s '%s': need at least 1 checkpoint and 1 "
                     "measured iteration",
                     name, spec.c_str());
    }
    if (!(conf > 0.0 && conf < 1.0)) {
        ROWSIM_FATAL("bad %s '%s': confidence must be in (0, 1)", name,
                     spec.c_str());
    }
    s.active = true;
    s.checkpoints = n;
    s.warmIters = warm;
    s.detailIters = detail;
    s.confidence = conf;
    return s;
}

SampleSpec
sampleSpecFromEnv()
{
    if (const char *env = std::getenv("ROWSIM_SAMPLE"); env && *env)
        return parseSampleSpec("ROWSIM_SAMPLE", env);
    return {};
}

std::vector<std::uint64_t>
sampleGrid(std::uint64_t quota, unsigned n)
{
    std::vector<std::uint64_t> g(n);
    for (unsigned k = 0; k < n; k++)
        g[k] = quota * k / n;
    return g;
}

namespace
{

/** Additive counters snapshotted before the measured segment so the
 *  window reports deltas (the detail warm-up and — for the instruction
 *  counters — the functional prefix are both excluded). */
struct CounterBaseline
{
    Cycle cycle = 0;
    std::uint64_t insts = 0, atomics = 0;
    std::uint64_t unlocked = 0, detected = 0, oracle = 0;
    std::uint64_t forwarded = 0, promoted = 0, forced = 0;
    std::uint64_t eager = 0, lazy = 0;
    std::uint64_t predUpdates = 0, predCorrect = 0;
};

CounterBaseline
snapshotCounters(System &sys)
{
    CounterBaseline b;
    b.cycle = sys.now();
    b.insts = sys.totalInstructions();
    b.atomics = sys.totalAtomics();
    b.unlocked = sys.totalCounter("atomicsUnlocked");
    b.detected = sys.totalCounter("atomicsDetectedContended");
    b.oracle = sys.totalCounter("atomicsOracleContended");
    b.forwarded = sys.totalCounter("atomicsForwarded");
    b.promoted = sys.totalCounter("atomicsPromotedEager");
    b.forced = sys.totalCounter("forcedUnlocks");
    b.eager = sys.totalCounter("atomicsIssuedEager");
    b.lazy = sys.totalCounter("atomicsIssuedLazy");
    for (CoreId c = 0; c < sys.numCores(); c++) {
        b.predUpdates +=
            sys.core(c).predictor().stats().counterValue("updates");
        b.predCorrect +=
            sys.core(c).predictor().stats().counterValue("correct");
    }
    return b;
}

/** Same filename discipline as the warmup-checkpoint path in
 *  experiment.cc: everything deciding the func-warm trajectory is in
 *  the name, the embedded config fingerprint backstops the rest. */
std::string
sampleCkptPath(const std::string &workload, const std::string &label,
               unsigned num_cores, std::uint64_t seed,
               std::uint64_t quota, unsigned n_ckpts, unsigned k)
{
    const char *dir_env = std::getenv("ROWSIM_CKPT_DIR");
    const std::string dir = (dir_env && *dir_env) ? dir_env : "rowsim-ckpt";
    auto sanitize = [](const std::string &in) {
        std::string out;
        for (const char ch : in) {
            out += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
        }
        return out;
    };
    return dir + "/" + sanitize(workload) + "-" + sanitize(label) +
           strprintf("-c%u-s%llu-q%llu-n%u-k%u.fckpt", num_cores,
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(quota), n_ckpts, k);
}

/** Window reporting label; also the store key's label component, so it
 *  encodes everything of the sampling layout the window depends on. */
std::string
windowLabel(const std::string &label, const SampleSpec &spec,
            std::uint64_t quota, unsigned k)
{
    return label + strprintf("#s%u.%llu.%llu.q%llu.k%u", spec.checkpoints,
                             static_cast<unsigned long long>(spec.warmIters),
                             static_cast<unsigned long long>(
                                 spec.detailIters),
                             static_cast<unsigned long long>(quota), k);
}

/** One aggregated metric: how to read it from a window result, how to
 *  write the whole-run value back into the aggregate result, and
 *  whether the window value is an additive count (extrapolated by
 *  quota / detailIters) or already a rate/mean. */
struct MetricDef
{
    const char *name;
    double (*get)(const RunResult &);
    void (*set)(RunResult &, double);
    bool extrapolate;
};

constexpr MetricDef kSampledMetrics[] = {
    {"cycles", [](const RunResult &w) { return double(w.cycles); },
     [](RunResult &r, double v) {
         r.cycles = static_cast<Cycle>(std::llround(v));
     },
     true},
    {"instructions",
     [](const RunResult &w) { return double(w.instructions); },
     [](RunResult &r, double v) {
         r.instructions = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"atomicsCommitted",
     [](const RunResult &w) { return double(w.atomicsCommitted); },
     [](RunResult &r, double v) {
         r.atomicsCommitted = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"atomicsUnlocked",
     [](const RunResult &w) { return double(w.atomicsUnlocked); },
     [](RunResult &r, double v) {
         r.atomicsUnlocked = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"detectedContended",
     [](const RunResult &w) { return double(w.detectedContended); },
     [](RunResult &r, double v) {
         r.detectedContended = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"oracleContended",
     [](const RunResult &w) { return double(w.oracleContended); },
     [](RunResult &r, double v) {
         r.oracleContended = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"atomicsForwarded",
     [](const RunResult &w) { return double(w.atomicsForwarded); },
     [](RunResult &r, double v) {
         r.atomicsForwarded = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"atomicsPromoted",
     [](const RunResult &w) { return double(w.atomicsPromoted); },
     [](RunResult &r, double v) {
         r.atomicsPromoted = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"forcedUnlocks",
     [](const RunResult &w) { return double(w.forcedUnlocks); },
     [](RunResult &r, double v) {
         r.forcedUnlocks = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"eagerIssued",
     [](const RunResult &w) { return double(w.eagerIssued); },
     [](RunResult &r, double v) {
         r.eagerIssued = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"lazyIssued", [](const RunResult &w) { return double(w.lazyIssued); },
     [](RunResult &r, double v) {
         r.lazyIssued = static_cast<std::uint64_t>(std::llround(v));
     },
     true},
    {"atomicsPer10k",
     [](const RunResult &w) { return w.atomicsPer10k; },
     [](RunResult &r, double v) { r.atomicsPer10k = v; }, false},
    {"contendedPct", [](const RunResult &w) { return w.contendedPct; },
     [](RunResult &r, double v) { r.contendedPct = v; }, false},
    {"missLatency", [](const RunResult &w) { return w.missLatency; },
     [](RunResult &r, double v) { r.missLatency = v; }, false},
    {"dispatchToIssue",
     [](const RunResult &w) { return w.dispatchToIssue; },
     [](RunResult &r, double v) { r.dispatchToIssue = v; }, false},
    {"issueToLock", [](const RunResult &w) { return w.issueToLock; },
     [](RunResult &r, double v) { r.issueToLock = v; }, false},
    {"lockToUnlock", [](const RunResult &w) { return w.lockToUnlock; },
     [](RunResult &r, double v) { r.lockToUnlock = v; }, false},
    {"olderUnexecuted",
     [](const RunResult &w) { return w.olderUnexecuted; },
     [](RunResult &r, double v) { r.olderUnexecuted = v; }, false},
    {"youngerStarted",
     [](const RunResult &w) { return w.youngerStarted; },
     [](RunResult &r, double v) { r.youngerStarted = v; }, false},
    {"predAccuracy", [](const RunResult &w) { return w.predAccuracy; },
     [](RunResult &r, double v) { r.predAccuracy = v; }, false},
};

/** Refuse observability setups the checkpoint format cannot carry /
 *  the sampling layout would distort. Resolution mirrors
 *  System::setupObservability (params override environment). */
void
checkSamplingCompatible(const SystemParams &params)
{
    const std::uint32_t profMask =
        params.profileCategories.empty()
            ? Profiler::envMask()
            : parseProfileCategories(params.profileCategories);
    if (profMask) {
        ROWSIM_FATAL("ROWSIM_SAMPLE is incompatible with the attribution "
                     "profiler (checkpoints do not carry its state); "
                     "disable ROWSIM_PROFILE");
    }
    std::string convSpec = params.converge;
    if (convSpec.empty()) {
        if (const char *env = std::getenv("ROWSIM_CONVERGE"); env && *env)
            convSpec = env;
    }
    if (parseConvergeSpec("ROWSIM_CONVERGE", convSpec).active) {
        ROWSIM_FATAL("ROWSIM_SAMPLE is incompatible with "
                     "ROWSIM_CONVERGE (the stop cycle would depend on "
                     "the sampling layout)");
    }
}

} // namespace

RunResult
runDetailWindow(const SweepJob &job)
{
    SystemParams sp = job.windowParams;
    sp.mode = "detail";
    const std::uint64_t stop =
        job.windowStartIters + job.windowWarmIters + job.windowIters;

    // Windows are first-class store citizens: a sampled rerun with the
    // same layout restores, at most, nothing. Same live-sink bypass
    // rules as runAndCollect (a cached window emits no telemetry).
    Trace::initFromEnv();
    std::unique_ptr<ResultStore> store = ResultStore::fromEnv();
    const char *statsSink = std::getenv("ROWSIM_STATS_JSON");
    const bool bypassStore = (statsSink && *statsSink) ||
                             Trace::anyEnabled() || Heartbeat::enabled();
    ResultKey key{};
    if (store && !bypassStore) {
        key = ResultStore::keyFor(sp, job.workload, job.cfg.label, stop);
        RunResult cached;
        if (store->load(key, cached)) {
            if (!job.captureStatsJson || !cached.statsJson.empty()) {
                if (!job.captureStatsJson)
                    cached.statsJson.clear();
                cached.fromCache = true;
                return cached;
            }
        }
    }

    const WorkloadProfile profile = profileFor(job.workload);
    System sys(sp, makeStreams(profile, sp.numCores, sp.seed));
    sys.restoreCheckpoint(job.ckptPath);
    if (job.windowWarmIters)
        sys.runWarmup(stop, job.windowStartIters + job.windowWarmIters);

    const CounterBaseline base = snapshotCounters(sys);
    const Cycle end = sys.run(stop);

    RunResult r;
    r.workload = job.workload;
    r.config = job.cfg.label;
    r.cycles = end - base.cycle;
    r.instructions = sys.totalInstructions() - base.insts;
    r.atomicsCommitted = sys.totalAtomics() - base.atomics;
    r.atomicsPer10k =
        r.instructions ? 1e4 * static_cast<double>(r.atomicsCommitted) /
                             static_cast<double>(r.instructions)
                       : 0.0;
    r.atomicsUnlocked = sys.totalCounter("atomicsUnlocked") - base.unlocked;
    r.detectedContended =
        sys.totalCounter("atomicsDetectedContended") - base.detected;
    r.oracleContended =
        sys.totalCounter("atomicsOracleContended") - base.oracle;
    r.contendedPct =
        r.atomicsUnlocked
            ? 100.0 * static_cast<double>(r.oracleContended) /
                  static_cast<double>(r.atomicsUnlocked)
            : 0.0;
    r.atomicsForwarded =
        sys.totalCounter("atomicsForwarded") - base.forwarded;
    r.atomicsPromoted =
        sys.totalCounter("atomicsPromotedEager") - base.promoted;
    r.forcedUnlocks = sys.totalCounter("forcedUnlocks") - base.forced;
    r.eagerIssued = sys.totalCounter("atomicsIssuedEager") - base.eager;
    r.lazyIssued = sys.totalCounter("atomicsIssuedLazy") - base.lazy;

    // Latency means are read whole: the timing stats were empty at the
    // func-written checkpoint, so they cover exactly this window's
    // detail-warm + measured segment (see the header contract).
    r.missLatency = sys.meanCacheAverage("missLatency");
    r.dispatchToIssue = sys.meanAverage("atomicDispatchToIssue");
    r.issueToLock = sys.meanAverage("atomicIssueToLock");
    r.lockToUnlock = sys.meanAverage("atomicLockToUnlock");
    r.olderUnexecuted = sys.meanAverage("olderUnexecutedAtIssue");
    r.youngerStarted = sys.meanAverage("youngerStartedAtIssue");

    std::uint64_t updates = 0, correct = 0;
    for (CoreId c = 0; c < sys.numCores(); c++) {
        updates += sys.core(c).predictor().stats().counterValue("updates");
        correct += sys.core(c).predictor().stats().counterValue("correct");
    }
    updates -= base.predUpdates;
    correct -= base.predCorrect;
    r.predAccuracy = updates ? 100.0 * static_cast<double>(correct) /
                                   static_cast<double>(updates)
                             : 0.0;

    if (job.captureStatsJson) {
        char *buf = nullptr;
        std::size_t len = 0;
        if (std::FILE *mem = open_memstream(&buf, &len)) {
            sys.dumpStatsJson(mem);
            std::fclose(mem);
            r.statsJson.assign(buf, len);
            std::free(buf);
        } else {
            ROWSIM_WARN("open_memstream failed; statsJson not captured");
        }
    }

    if (store && !bypassStore)
        store->store(key, r);
    return r;
}

RunResult
runSampled(const std::string &workload, const SystemParams &params,
           const std::string &label, std::uint64_t quota,
           const SampleSpec &spec)
{
    ROWSIM_ASSERT(spec.active && quota > 0,
                  "runSampled needs an active spec and a resolved quota");
    checkSamplingCompatible(params);

    const unsigned n = spec.checkpoints;
    const std::vector<std::uint64_t> grid = sampleGrid(quota, n);

    // Phase 1: one functional system warms through the grid, dropping a
    // checkpoint at every mark. If the full grid already exists on disk
    // the func run is skipped entirely (the embedded config fingerprint
    // protects against restoring a stale layout into the wrong config).
    std::vector<std::string> paths(n);
    bool allExist = true;
    for (unsigned k = 0; k < n; k++) {
        paths[k] = sampleCkptPath(workload, label, params.numCores,
                                  params.seed, quota, n, k);
        std::error_code ec;
        if (!std::filesystem::exists(paths[k], ec))
            allExist = false;
    }
    if (!allExist) {
        SystemParams fp = params;
        fp.mode = "func";
        const WorkloadProfile profile = profileFor(workload);
        System sys(fp, makeStreams(profile, fp.numCores, fp.seed));
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(paths[0]).parent_path(), ec);
        for (unsigned k = 0; k < n; k++) {
            if (grid[k] > 0)
                sys.runFunctional(quota, grid[k]);
            sys.saveCheckpoint(paths[k]);
        }
    }

    // Phase 2: the measurement windows, as ordinary sweep jobs under
    // the environment's isolation / retry policy.
    std::vector<SweepJob> jobs(n);
    for (unsigned k = 0; k < n; k++) {
        SweepJob &j = jobs[k];
        j.workload = workload;
        j.cfg.label = windowLabel(label, spec, quota, k);
        j.numCores = params.numCores;
        j.seed = params.seed;
        j.ckptPath = paths[k];
        j.windowParams = params;
        j.windowStartIters = grid[k];
        j.windowWarmIters = spec.warmIters;
        j.windowIters = spec.detailIters;
    }
    const std::vector<RunResult> wins = runSweep(jobs);

    RunResult r;
    r.workload = workload;
    r.config = label;
    for (unsigned k = 0; k < n; k++) {
        if (!wins[k].ok()) {
            r.status = wins[k].status;
            r.attempts = wins[k].attempts;
            r.error = strprintf("sampling window %u (%s): %s", k,
                                jobs[k].cfg.label.c_str(),
                                wins[k].error.c_str());
            return r;
        }
    }

    // Phase 3: batch-means aggregation. Every metric gets a mean,
    // stddev, and Student-t CI over the window values; additive
    // counters are extrapolated by quota / detailIters into whole-run
    // estimates, which also fill the headline RunResult fields (so a
    // fig09 ranking of sampled runs works unchanged).
    const double scale = static_cast<double>(quota) /
                         static_cast<double>(spec.detailIters);
    std::string metricsJson;
    for (const MetricDef &m : kSampledMetrics) {
        double sum = 0.0;
        for (unsigned k = 0; k < n; k++)
            sum += m.get(wins[k]);
        const double mean = sum / n;
        double s2 = 0.0;
        for (unsigned k = 0; k < n; k++) {
            const double d = m.get(wins[k]) - mean;
            s2 += d * d;
        }
        const double stddev = n > 1 ? std::sqrt(s2 / (n - 1)) : 0.0;
        const double estimate = m.extrapolate ? mean * scale : mean;
        m.set(r, estimate);

        std::string ci = "null";
        if (n > 1) {
            const double p = 1.0 - (1.0 - spec.confidence) / 2.0;
            // CI of the window mean; for extrapolated counters the
            // same scale applies to the mean and the halfwidth.
            const double cs = m.extrapolate ? scale : 1.0;
            const double hw =
                tQuantile(p, n - 1) * stddev / std::sqrt(double(n)) * cs;
            ci = strprintf("{\"confidence\":%.6g,\"halfwidth\":%.17g,"
                           "\"lo\":%.17g,\"hi\":%.17g}",
                           spec.confidence, hw, estimate - hw,
                           estimate + hw);
        }
        if (!metricsJson.empty())
            metricsJson += ",";
        metricsJson += strprintf(
            "\"%s\":{\"mean\":%.17g,\"stddev\":%.17g,\"estimate\":%.17g,"
            "\"extrapolated\":%s,\"ci\":%s}",
            m.name, mean, stddev, estimate,
            m.extrapolate ? "true" : "false", ci.c_str());
    }

    std::string gridJson, windowsJson;
    for (unsigned k = 0; k < n; k++) {
        if (k) {
            gridJson += ",";
            windowsJson += ",";
        }
        gridJson += strprintf(
            "%llu", static_cast<unsigned long long>(grid[k]));
        std::string wm;
        for (const MetricDef &m : kSampledMetrics) {
            if (!wm.empty())
                wm += ",";
            wm += strprintf("\"%s\":%.17g", m.name, m.get(wins[k]));
        }
        windowsJson += strprintf(
            "{\"k\":%u,\"mark\":%llu,\"fromCache\":%s,\"attempts\":%u,"
            "\"metrics\":{%s}}",
            k, static_cast<unsigned long long>(grid[k]),
            wins[k].fromCache ? "true" : "false", wins[k].attempts,
            wm.c_str());
    }

    r.samplingJson = strprintf(
        "{\"spec\":{\"checkpoints\":%u,\"warmIters\":%llu,"
        "\"detailIters\":%llu,\"confidence\":%.6g},\"quota\":%llu,"
        "\"grid\":[%s],\"windows\":[%s],\"metrics\":{%s}}",
        n, static_cast<unsigned long long>(spec.warmIters),
        static_cast<unsigned long long>(spec.detailIters), spec.confidence,
        static_cast<unsigned long long>(quota), gridJson.c_str(),
        windowsJson.c_str(), metricsJson.c_str());
    return r;
}

} // namespace rowsim
