#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/heartbeat.hh"
#include "common/io.hh"
#include "common/log.hh"
#include "common/sha256.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

System::System(const SystemParams &params,
               std::vector<std::unique_ptr<InstStream>> streams)
    : params_(params), memsys(params), streams_(std::move(streams))
{
    ROWSIM_ASSERT(streams_.size() == params.numCores,
                  "need one instruction stream per core (%u vs %zu)",
                  params.numCores, streams_.size());
    cores.reserve(params.numCores);
    for (CoreId c = 0; c < params.numCores; c++) {
        cores.emplace_back(std::make_unique<Core>(
            c, params.core, &memsys.cache(c), &memsys.functional(),
            streams_[c].get()));
    }
    // Directory contention oracle (Fig. 5 ground truth): concurrent
    // interest in a line marks matching in-flight atomics on both the
    // requesting and holding cores.
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        memsys.directory(b).setOracleHook(
            [this](Addr line, CoreId requester, CoreId holder, bool overlap,
                   Cycle now) {
                // Holders are concurrently using the line; requesters only
                // face contention when the transaction truly overlapped.
                if (overlap && requester < cores.size())
                    cores[requester]->oracleContentionHint(line, now);
                if (holder != invalidCore && holder < cores.size())
                    cores[holder]->oracleContentionHint(line, now);
            });
    }

    setupObservability();
    setupSelfChecking();
    setupProfiling();
    setupSpans();

    // Idle fast-forward: params default, ROWSIM_FF env override, and a
    // hard disable under fault injection (the injector draws from its
    // RNG every cycle, so eliding ticks would change the fault
    // schedule).
    ffMode_ = params_.idleFastForward ? FastForward::On : FastForward::Off;
    if (const char *env = std::getenv("ROWSIM_FF"); env && *env) {
        if (std::strcmp(env, "0") == 0)
            ffMode_ = FastForward::Off;
        else if (std::strcmp(env, "1") == 0)
            ffMode_ = FastForward::On;
        else if (std::strcmp(env, "check") == 0)
            ffMode_ = FastForward::Check;
        else
            ROWSIM_FATAL("bad ROWSIM_FF '%s' (valid: 0, 1, check)", env);
    }
    if (faults_)
        ffMode_ = FastForward::Off;

    // Every panic — checker violation, watchdog fire, protocol assert —
    // dumps the diagnostics snapshot before unwinding.
    coreProgress_.assign(params_.numCores, CoreProgress{});
    watchdogPeriod_ = std::clamp<Cycle>(params_.deadlockCycles / 8,
                                        Cycle{32}, Cycle{4096});
    pushPanicHook(this, [this](const std::string &msg) {
        dumpCrashDiagnostics(msg.c_str());
    });
}

System::~System()
{
    removePanicHook(this);
}

void
System::setupObservability()
{
    // Tracing: env vars first (so every bench/example picks them up),
    // then explicit SystemParams overrides.
    Trace::initFromEnv();
    if (!params_.traceCategories.empty()) {
        Trace::instance().configure(
            parseTraceCategories(params_.traceCategories));
    }
    if (Trace::anyEnabled() && !params_.traceJsonPath.empty() &&
        !Trace::instance().jsonOpen()) {
        Trace::instance().openJson(params_.traceJsonPath);
    }
    if (Trace::instance().jsonOpen()) {
        Trace &t = Trace::instance();
        for (CoreId c = 0; c < params_.numCores; c++) {
            const int pid = static_cast<int>(c);
            t.nameProcess(pid, strprintf("core%u", c));
            t.nameThread(pid, traceTidPipeline, "pipeline");
            t.nameThread(pid, traceTidAtomics, "atomics");
            t.nameThread(pid, traceTidPredictor, "predictor");
            t.nameThread(pid, traceTidCache, "l1d");
        }
        for (unsigned b = 0; b < memsys.numBanks(); b++)
            t.nameProcess(tracePidDirBase + static_cast<int>(b),
                          strprintf("dir%u", b));
        t.nameProcess(tracePidNetwork, "network");
    }

    // Interval sampler: params override, then env var.
    Cycle period = params_.statsInterval;
    if (period == 0) {
        if (const char *env = std::getenv("ROWSIM_STATS_INTERVAL");
            env && *env) {
            period = parseEnvU64("ROWSIM_STATS_INTERVAL", env);
        }
    }

    // Metric time-series engine + convergence monitor. Like the profile
    // mask, both specs are re-resolved on every System construction
    // (params override env), so sweep workers never inherit stale
    // settings. An active convergence spec implies the engine.
    std::string convSpec = params_.converge;
    if (convSpec.empty()) {
        if (const char *env = std::getenv("ROWSIM_CONVERGE"); env && *env)
            convSpec = env;
    }
    const ConvergeSpec conv = parseConvergeSpec("ROWSIM_CONVERGE",
                                                convSpec);
    std::string tsSpec = params_.timeseries;
    if (tsSpec.empty()) {
        if (const char *env = std::getenv("ROWSIM_TS"); env && *env)
            tsSpec = env;
    }
    const bool tsOn =
        conv.active ||
        (!tsSpec.empty() && parseOnOffSpec("ROWSIM_TS", tsSpec));
    if (tsOn && period == 0)
        period = 8192; // default cadence when only the engine asked
    intervalStats_.configure(period);
    intervalStats_.addProbe(
        "instructions",
        [this] { return static_cast<double>(totalInstructions()); }, true);
    intervalStats_.addProbe(
        "atomics",
        [this] { return static_cast<double>(totalAtomics()); }, true);
    intervalStats_.addProbe(
        "contendedAtomics",
        [this] {
            return static_cast<double>(
                totalCounter("atomicsDetectedContended"));
        },
        true);
    intervalStats_.addProbe(
        "lazyIssued",
        [this] {
            return static_cast<double>(totalCounter("atomicsIssuedLazy"));
        },
        true);

    if (tsOn) {
        unsigned window = TimeSeriesEngine::kDefaultWindow;
        if (const char *env = std::getenv("ROWSIM_TS_WINDOW");
            env && *env) {
            const std::uint64_t w = parseEnvU64("ROWSIM_TS_WINDOW", env);
            if (w == 0 || w > (1u << 20))
                ROWSIM_FATAL("bad ROWSIM_TS_WINDOW %llu (valid: 1 .. "
                             "1048576)",
                             static_cast<unsigned long long>(w));
            window = static_cast<unsigned>(w);
        }
        ts_ = std::make_unique<TimeSeriesEngine>(period, window, conv);
        for (const auto &p : intervalStats_.probes())
            ts_->addMetric(p.name);
        if (conv.active && !ts_->hasMetric(conv.metric)) {
            std::string valid;
            for (const auto &p : intervalStats_.probes())
                valid += (valid.empty() ? "" : ", ") + p.name;
            ROWSIM_FATAL("ROWSIM_CONVERGE: unknown metric '%s' (valid: "
                         "%s)",
                         conv.metric.c_str(), valid.c_str());
        }
        intervalStats_.setObserver(
            [this](Cycle now, const std::vector<double> &vals) {
                ts_->observe(now, vals);
            });
    }

    // Heartbeat sink: resolved once (env only — a live telemetry path
    // is process-wide by nature), then polled from the run loop.
    hbEnabled_ = Heartbeat::enabled();
    if (hbEnabled_)
        hbPeriodMs_ = Heartbeat::periodMs();

    // Derived whole-system statistics (Formula exercising).
    simStats_.formula("ipc") = [this] {
        return currentCycle
                   ? static_cast<double>(totalInstructions()) /
                         static_cast<double>(currentCycle)
                   : 0.0;
    };
    simStats_.formula("atomicsPer10k") = [this] {
        const double insts = static_cast<double>(totalInstructions());
        return insts ? 1e4 * static_cast<double>(totalAtomics()) / insts
                     : 0.0;
    };
    simStats_.formula("contendedPct") = [this] {
        const double unlocked =
            static_cast<double>(totalCounter("atomicsUnlocked"));
        return unlocked ? 100.0 *
                              static_cast<double>(totalCounter(
                                  "atomicsOracleContended")) /
                              unlocked
                        : 0.0;
    };
}

void
System::setupSelfChecking()
{
    // Invariant checker: env vars first, then explicit params override
    // (same precedence as tracing). The Checker object always exists;
    // the static mask decides whether tick() ever calls into it.
    Checker::initFromEnv();
    if (!params_.checkCategories.empty())
        Checker::configure(parseCheckCategories(params_.checkCategories));
    checker_ = std::make_unique<Checker>(
        this, params_.checkInterval ? params_.checkInterval
                                    : Checker::envInterval());

    // Fault injector: only constructed when a category is selected, so
    // the per-tick cost with faults off is one null-pointer test. The
    // setup resolution is shared with the standalone configFingerprint()
    // (resolveFaultSetup), keeping store keys and live fingerprints in
    // lockstep.
    const FaultSetup fs = resolveFaultSetup(params_);
    if (fs.mask) {
        faults_ = std::make_unique<FaultInjector>(this, fs.mask, fs.seed,
                                                  fs.rate);
        memsys.network().setDelayHook(
            [this](const Msg &msg, Cycle now) {
                return faults_->extraDelay(msg, now);
            });
    }

    // Self-checking runs want post-mortem context: keep a retroactive
    // trace ring so crash dumps can replay the events leading up to a
    // violation, even with every trace sink off.
    if ((Checker::anyEnabled() || faults_) &&
        Trace::instance().ringCapacity() == 0) {
        Trace::instance().enableRing(256);
    }
}

void
System::setupProfiling()
{
    // Unlike the trace/check masks, the profile mask is unconditionally
    // re-applied on every System construction: params override the env
    // var, and an empty params spec restores the env value. A profiled
    // sweep job therefore never leaks its mask into the next job that
    // lands on the same worker thread.
    Profiler::configure(
        params_.profileCategories.empty()
            ? Profiler::envMask()
            : parseProfileCategories(params_.profileCategories));
    if (!Profiler::anyEnabled())
        return;
    profiler_ = std::make_unique<Profiler>(params_.numCores,
                                           params_.core.commitWidth);
    for (auto &c : cores)
        c->setProfiler(profiler_.get());
    for (CoreId c = 0; c < params_.numCores; c++)
        memsys.cache(c).setProfiler(profiler_.get());
    for (unsigned b = 0; b < memsys.numBanks(); b++)
        memsys.directory(b).setProfiler(profiler_.get());
}

void
System::setupSpans()
{
    // Same discipline as the profile mask: the gate is unconditionally
    // re-applied on every System construction (params override the env
    // var, an empty params spec restores the env value), so a spans-on
    // sweep job never leaks the gate into the next job that lands on
    // the same worker thread.
    SpanTracker::configure(params_.spans.empty()
                               ? SpanTracker::envEnabled()
                               : parseSpanSpec(params_.spans));
    if (!SpanTracker::enabled())
        return;
    spans_ = std::make_unique<SpanTracker>(params_.numCores);
    for (auto &c : cores)
        c->setSpans(spans_.get());
    for (CoreId c = 0; c < params_.numCores; c++)
        memsys.cache(c).setSpans(spans_.get());
    for (unsigned b = 0; b < memsys.numBanks(); b++)
        memsys.directory(b).setSpans(spans_.get());
    memsys.network().setSpans(spans_.get());
}

void
System::tick()
{
    currentCycle++;
    if (Trace::anyEnabled())
        Trace::setNow(currentCycle);
    if (faults_)
        faults_->tick(currentCycle);
    memsys.tick(currentCycle);
    for (auto &c : cores)
        c->tick(currentCycle);
    // Rare services (interval sample, checker sweep, watchdog scan) are
    // hoisted behind one precomputed deadline comparison.
    if (currentCycle >= nextServiceCycle_)
        serviceTick();
}

void
System::serviceTick()
{
    if (intervalStats_.enabled())
        intervalStats_.tick(currentCycle);
    if (Checker::anyEnabled())
        checker_->tick(currentCycle);
    if (currentCycle - lastWatchdogScan_ >= watchdogPeriod_)
        watchdogScan();
    recomputeNextService();
}

void
System::recomputeNextService()
{
    // The watchdog deadline is always finite, bounding both the service
    // gap and the fast-forward skip length.
    Cycle next = lastWatchdogScan_ + watchdogPeriod_;
    if (intervalStats_.enabled())
        next = std::min(next, intervalStats_.nextSampleAt());
    if (Checker::anyEnabled())
        next = std::min(next, checker_->nextSweepAt());
    nextServiceCycle_ = next;
}

Cycle
System::nextEventCycle() const
{
    // Cores answer "busy, tick next cycle" with a handful of flag
    // checks, so scan them first and bail as soon as the running min
    // collapses to the next tick — no skip is possible then and the
    // (pricier) memory-side scan would be wasted work.
    const Cycle next_tick = currentCycle + 1;
    Cycle next = nextServiceCycle_;
    for (const auto &c : cores) {
        next = std::min(next, c->nextEventCycle(currentCycle));
        if (next <= next_tick)
            return next;
    }
    return std::min(next, memsys.nextEventCycle(currentCycle));
}

void
System::maybeFastForward()
{
    const Cycle next = nextEventCycle();
    if (next == invalidCycle || next <= currentCycle + 1) {
        // Busy phases cluster: double the probe interval (up to 64
        // ticks) on consecutive failures. A late probe only shortens a
        // skip, never changes simulated behaviour.
        ffBackoffLen_ = std::min<Cycle>(ffBackoffLen_ ? ffBackoffLen_ * 2 : 4,
                                        64);
        ffBackoff_ = ffBackoffLen_;
        return;
    }
    ffBackoffLen_ = 0;
    if (ffMode_ == FastForward::Check) {
        auto &self = const_cast<System &>(*this);
        auto dumpAll = [&]() {
            std::string s;
            auto addGroup = [&](const StatGroup &g) {
                for (const auto &kv : g.counters())
                    s += g.name() + "." + kv.first + "=" +
                         std::to_string(kv.second.value()) + "\n";
                for (const auto &kv : g.averages())
                    s += g.name() + "." + kv.first + "=" +
                         std::to_string(kv.second.count()) + ":" +
                         std::to_string(kv.second.sum()) + "\n";
            };
            addGroup(simStats_);
            for (CoreId c = 0; c < cores.size(); c++) {
                addGroup(self.core(c).stats());
                addGroup(self.core(c).branchPredictor().stats());
                addGroup(self.core(c).predictor().stats());
                addGroup(self.mem().cache(c).stats());
            }
            for (unsigned b = 0; b < self.mem().numBanks(); b++)
                addGroup(self.mem().directory(b).stats());
            addGroup(self.mem().network().stats());
            // Interval samples must land at the same cycles with the
            // same deltas whether the window is skipped or ticked
            // through — compare the full series, not just counters.
            if (intervalStats_.enabled()) {
                const auto &cyc = intervalStats_.sampleCycles();
                for (std::size_t i = 0; i < cyc.size(); i++)
                    s += "interval.cycle=" + std::to_string(cyc[i]) + "\n";
                const auto &probes = intervalStats_.probes();
                const auto &series = intervalStats_.series();
                for (std::size_t p = 0; p < probes.size(); p++) {
                    for (std::size_t i = 0; i < series[p].size(); i++) {
                        s += "interval." + probes[p].name + "=" +
                             std::to_string(series[p][i]) + "\n";
                    }
                }
            }
            if (ts_)
                s += ts_->toJson();
            return s;
        };
        const std::string before = dumpAll();
        // Equivalence assert: tick through the predicted-idle window and
        // verify nothing the skip would elide actually happens.
        const std::uint64_t insts = totalInstructions();
        const std::uint64_t atomics = totalAtomics();
        const std::uint64_t delivered =
            memsys.network().stats().counterValue("delivered");
        std::uint64_t steals = 0;
        for (CoreId c = 0; c < cores.size(); c++) {
            steals += memsys.cache(c).stats()
                          .counterValue("stealAttempts");
        }
        const Cycle from = currentCycle;
        while (currentCycle < next - 1)
            tick();
        std::uint64_t steals_after = 0;
        for (CoreId c = 0; c < cores.size(); c++) {
            steals_after += memsys.cache(c).stats()
                                .counterValue("stealAttempts");
        }
        if (totalInstructions() != insts || totalAtomics() != atomics ||
            memsys.network().stats().counterValue("delivered") !=
                delivered ||
            steals_after != steals) {
            ROWSIM_PANIC("[ff-check] cycles %llu..%llu were predicted "
                         "idle but committed work (insts %llu->%llu, "
                         "atomics %llu->%llu)",
                         static_cast<unsigned long long>(from + 1),
                         static_cast<unsigned long long>(next - 1),
                         static_cast<unsigned long long>(insts),
                         static_cast<unsigned long long>(
                             totalInstructions()),
                         static_cast<unsigned long long>(atomics),
                         static_cast<unsigned long long>(totalAtomics()));
        }
        const std::string after = dumpAll();
        if (before != after) {
            std::size_t p = 0;
            while (p < before.size() && p < after.size() &&
                   before[p] == after[p])
                p++;
            std::fprintf(stderr, "[ff-check] stats drift in window "
                         "%llu..%llu near: %.120s\n",
                         static_cast<unsigned long long>(from + 1),
                         static_cast<unsigned long long>(next - 1),
                         before.substr(p > 60 ? p - 60 : 0, 120).c_str());
            ROWSIM_PANIC("[ff-check] full-stats drift");
        }
        return;
    }
    ROWSIM_TRACE(TraceCategory::Pipeline, currentCycle,
                 "ff skip %llu..%llu",
                 static_cast<unsigned long long>(currentCycle + 1),
                 static_cast<unsigned long long>(next - 1));
    // Skipped windows never get per-tick classification; credit them as
    // explicit Idle slots so the CPI stacks stay slot-conserving.
    if (profiler_ && Profiler::enabled(ProfCategory::Cpi))
        profiler_->addIdleSlots(next - 1 - currentCycle);
    ffSkipped_ += next - 1 - currentCycle;
    currentCycle = next - 1;
}

void
System::watchdogScan()
{
    lastWatchdogScan_ = currentCycle;

    // Per-core commit progress. A drained core is legitimately idle
    // (quota reached, pipeline empty); everything else must commit
    // within the deadlock bound.
    for (CoreId c = 0; c < cores.size(); c++) {
        Core &core = *cores[c];
        CoreProgress &p = coreProgress_[c];
        const std::uint64_t insts = core.committedInstructions();
        if (insts != p.insts || core.drained()) {
            p.insts = insts;
            p.cycle = currentCycle;
        } else if (currentCycle - p.cycle > params_.deadlockCycles) {
            ROWSIM_PANIC("[watchdog] core%u made no commit progress for "
                         "%llu cycles (rob=%u lq=%u sq=%u aq=%u, last "
                         "committed seq %llu)",
                         c,
                         static_cast<unsigned long long>(
                             currentCycle - p.cycle),
                         core.robOccupancy(), core.loadQueue().size(),
                         core.storeQueue().size(),
                         core.atomicQueue().size(),
                         static_cast<unsigned long long>(
                             core.lastCommittedSeq()));
        }
    }

    // Per-structure ages (MSHRs, directory Blocked entries). These scan
    // hash maps, so they run at a much coarser cadence than the per-core
    // counter comparison above.
    const Cycle struct_period = std::max<Cycle>(params_.deadlockCycles / 2,
                                                Cycle{1});
    if (currentCycle - lastStructScan_ < struct_period)
        return;
    lastStructScan_ = currentCycle;
    const Cycle bound = params_.deadlockCycles;
    for (CoreId c = 0; c < cores.size(); c++) {
        memsys.cache(c).forEachMshr([&](Addr line, const Mshr &m) {
            if (currentCycle > m.netIssueCycle &&
                currentCycle - m.netIssueCycle > bound) {
                ROWSIM_PANIC("[watchdog] l1d%u MSHR for line %#llx "
                             "outstanding for %llu cycles",
                             c, static_cast<unsigned long long>(line),
                             static_cast<unsigned long long>(
                                 currentCycle - m.netIssueCycle));
            }
        });
    }
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        memsys.directory(b).forEachLine(
            [&](const Directory::LineInfo &i) {
                if (i.state == DirState::Blocked &&
                    i.blockedSince != invalidCycle &&
                    currentCycle > i.blockedSince &&
                    currentCycle - i.blockedSince > bound) {
                    ROWSIM_PANIC("[watchdog] dir%u line %#llx Blocked "
                                 "for %llu cycles (requester core%u)",
                                 b,
                                 static_cast<unsigned long long>(i.line),
                                 static_cast<unsigned long long>(
                                     currentCycle - i.blockedSince),
                                 i.txnRequester);
                }
            });
    }
}

Cycle
System::run(std::uint64_t iter_quota)
{
    return runLoop(iter_quota, 0);
}

Cycle
System::runWarmup(std::uint64_t iter_quota, std::uint64_t warm_iters)
{
    ROWSIM_ASSERT(warm_iters > 0 && warm_iters < iter_quota,
                  "warmup stop %llu must lie inside the quota %llu",
                  static_cast<unsigned long long>(warm_iters),
                  static_cast<unsigned long long>(iter_quota));
    return runLoop(iter_quota, warm_iters);
}

Cycle
System::runLoop(std::uint64_t iter_quota, std::uint64_t warm_iters)
{
    if (hbEnabled_ && hbStartMs_ == 0) {
        hbStartMs_ = Heartbeat::wallMs();
        hbLastCycle_ = currentCycle;
    }
    while (true) {
        tick();
        if (hbEnabled_ && currentCycle >= hbNextProbe_) {
            // Coarse cycle grid keeps the hot loop at one comparison;
            // the probe itself rate-limits on wall clock.
            hbNextProbe_ = currentCycle + 4096;
            heartbeatProbe(iter_quota);
        }

        bool all_done = true;
        for (auto &c : cores) {
            if (c->committedIterations() >= iter_quota) {
                if (!c->isHalted())
                    c->halt();
            } else {
                all_done = false;
            }
        }
        if (all_done) {
            if (profiler_ && Profiler::enabled(ProfCategory::Check))
                profiler_->checkConservation(currentCycle, "end of run");
            return currentCycle;
        }
        if (warm_iters) {
            bool warm = true;
            for (auto &c : cores) {
                if (c->committedIterations() < warm_iters) {
                    warm = false;
                    break;
                }
            }
            // Return with every core still running: the state here is
            // exactly the state a cold run's loop continues from. (The
            // one skipped fast-forward probe below is result-equivalent
            // by construction — skipping later or less never changes
            // simulated behaviour.)
            if (warm)
                return currentCycle;
        }
        // Convergence-bounded run: the flag latches inside the interval
        // sample (in this very tick), so the stop lands exactly on the
        // sample cycle — a period multiple, identical with fast-forward
        // on, off, or check. Cores stay unhalted, like a warmup return;
        // the quota above remains the upper bound. Warmup runs ignore
        // convergence so a checkpoint is never cut short.
        if (!warm_iters && ts_ && ts_->converged())
            return currentCycle;
        // Deadlock detection lives in watchdogScan() (called from
        // tick()): per-core commit progress plus per-structure ages,
        // so a fire names the stuck component.
        if (ffMode_ != FastForward::Off) {
            if (ffBackoff_ == 0)
                maybeFastForward();
            else
                ffBackoff_--;
        }
    }
}

void
System::heartbeatProbe(std::uint64_t iter_quota)
{
    const std::uint64_t now_ms = Heartbeat::wallMs();
    if (hbLastMs_ != 0 && now_ms - hbLastMs_ < hbPeriodMs_)
        return;
    std::uint64_t iters = 0;
    for (const auto &c : cores)
        iters += std::min(c->committedIterations(), iter_quota);
    const std::uint64_t quota_total =
        iter_quota * static_cast<std::uint64_t>(cores.size());
    double kcps = 0;
    if (hbLastMs_ != 0 && now_ms > hbLastMs_) {
        // Kcycles/s == simulated cycles per wall-clock ms.
        kcps = static_cast<double>(currentCycle - hbLastCycle_) /
               static_cast<double>(now_ms - hbLastMs_);
    }
    double eta_ms = -1;
    if (iters > 0 && quota_total > iters && now_ms > hbStartMs_) {
        eta_ms = static_cast<double>(now_ms - hbStartMs_) *
                 static_cast<double>(quota_total - iters) /
                 static_cast<double>(iters);
    }
    Heartbeat::emitRun(currentCycle, iters, quota_total, kcps, eta_ms);
    hbLastMs_ = now_ms;
    hbLastCycle_ = currentCycle;
}

void
System::runCycles(Cycle cycles)
{
    const Cycle end = currentCycle + cycles;
    while (currentCycle < end)
        tick();
}

void
System::drain()
{
    for (auto &c : cores)
        c->halt();
    const Cycle start = currentCycle;
    while (true) {
        bool quiet = memsys.idle();
        for (auto &c : cores)
            quiet = quiet && c->drained();
        if (quiet)
            return;
        tick();
        if (currentCycle - start > params_.deadlockCycles) {
            ROWSIM_PANIC("drain did not quiesce after %llu cycles; "
                         "stuck: %s",
                         static_cast<unsigned long long>(
                             currentCycle - start),
                         stuckSummary().c_str());
        }
    }
}

void
System::saveArch(Ser &s) const
{
    // Integer-only pass: everything that decides future simulated
    // behaviour. stateDigest() hashes exactly these bytes, so no
    // floating-point value may land here (doubles travel in the stats
    // pass, which is outside the digest).
    s.section("arch");
    s.u64(currentCycle);
    for (const auto &c : cores)
        c->save(s);
    memsys.save(s);
    s.b(faults_ != nullptr);
    if (faults_)
        faults_->save(s);
}

void
System::saveAux(Ser &s) const
{
    // Bookkeeping that steers wall-clock behaviour (watchdog cadence,
    // fast-forward backoff) but never simulated results; kept out of
    // the digest so ROWSIM_FF settings cannot perturb it.
    s.section("aux");
    for (const auto &p : coreProgress_) {
        s.u64(p.insts);
        s.u64(p.cycle);
    }
    s.u64(lastWatchdogScan_);
    s.u64(lastStructScan_);
    s.u64(ffSkipped_);
    s.u64(ffBackoff_);
    s.u64(ffBackoffLen_);
    s.u64(checker_->lastSweepAt());
    s.u64(checker_->sweepsRun());
}

void
System::saveStats(Ser &s) const
{
    // Groups travel in dumpStats/dumpStatsJson order, the one canonical
    // walk of every group the simulator ever prints.
    auto &self = const_cast<System &>(*this);
    s.section("stats");
    self.simStats_.save(s);
    for (CoreId c = 0; c < cores.size(); c++) {
        self.core(c).stats().save(s);
        self.core(c).branchPredictor().stats().save(s);
        self.core(c).predictor().stats().save(s);
        self.mem().cache(c).stats().save(s);
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        self.mem().directory(b).stats().save(s);
    self.mem().network().stats().save(s);
    intervalStats_.save(s);
    s.b(ts_ != nullptr);
    if (ts_)
        ts_->save(s);
}

void
System::save(Ser &s) const
{
    saveArch(s);
    saveAux(s);
    saveStats(s);
}

void
System::restore(Deser &d)
{
    d.section("arch");
    currentCycle = d.u64();
    for (auto &c : cores)
        c->restore(d);
    memsys.restore(d);
    const bool had_faults = d.b();
    if (had_faults != (faults_ != nullptr)) {
        throw SnapshotError(strprintf(
            "fault-injection mismatch: image was taken %s fault "
            "injection, this run is %s it",
            had_faults ? "with" : "without",
            faults_ ? "with" : "without"));
    }
    if (faults_)
        faults_->restore(d);

    d.section("aux");
    for (auto &p : coreProgress_) {
        p.insts = d.u64();
        p.cycle = d.u64();
    }
    lastWatchdogScan_ = d.u64();
    lastStructScan_ = d.u64();
    ffSkipped_ = d.u64();
    ffBackoff_ = d.u64();
    ffBackoffLen_ = d.u64();
    const Cycle last_sweep = d.u64();
    const std::uint64_t sweeps = d.u64();
    checker_->restoreSweepState(last_sweep, sweeps);

    d.section("stats");
    simStats_.restore(d);
    for (CoreId c = 0; c < cores.size(); c++) {
        core(c).stats().restore(d);
        core(c).branchPredictor().stats().restore(d);
        core(c).predictor().stats().restore(d);
        mem().cache(c).stats().restore(d);
    }
    for (unsigned b = 0; b < mem().numBanks(); b++)
        mem().directory(b).stats().restore(d);
    mem().network().stats().restore(d);
    intervalStats_.restore(d);
    const bool had_ts = d.b();
    if (had_ts != (ts_ != nullptr)) {
        throw SnapshotError(strprintf(
            "time-series mismatch: image was taken %s the metric "
            "time-series engine, this run is %s it",
            had_ts ? "with" : "without", ts_ ? "with" : "without"));
    }
    if (ts_)
        ts_->restore(d);

    d.expectEnd();
    // Span state is never serialized: any span still open crossed the
    // restore point, and atomics in flight inside the image can never
    // open one. Both are dropped and counted, so no dangling span ID
    // survives a restore.
    if (spans_) {
        spans_->truncateOpen();
        std::uint64_t in_image = 0;
        for (const auto &c : cores) {
            c->atomicQueue().forEach([&](const AqEntry &a) {
                if (a.valid)
                    in_image++;
            });
        }
        spans_->noteTruncated(in_image);
    }
    // The service deadline is derived state: recompute it from the
    // restored watchdog / sampler / checker positions.
    recomputeNextService();
    if (Trace::anyEnabled())
        Trace::setNow(currentCycle);
}

std::uint64_t
System::configFingerprint() const
{
    // Delegate to the standalone encoder with this System's actual
    // injector setup, so the fingerprint reflects what is running, not
    // what the environment would resolve to now.
    return rowsim::configFingerprint(
        params_, faults_ ? faults_->mask() : 0,
        faults_ ? faults_->seed() : 0, faults_ ? faults_->rate() : 0);
}

std::string
System::stateDigest() const
{
    Ser arch;
    saveArch(arch);
    const std::uint64_t fp = configFingerprint();
    std::uint8_t fp_bytes[8];
    for (unsigned i = 0; i < 8; i++)
        fp_bytes[i] = static_cast<std::uint8_t>(fp >> (8 * i));
    Sha256 h;
    h.update(fp_bytes, sizeof(fp_bytes));
    h.update(arch.bytes().data(), arch.bytes().size());
    return Sha256::hex(h.digest());
}

void
System::saveCheckpoint(const std::string &path) const
{
    if (profiler_ && profiler_->active()) {
        throw SnapshotError(
            "cannot checkpoint while the attribution profiler is "
            "active (format v1 does not carry profiler state; rerun "
            "with profiling off)");
    }
    Ser s;
    save(s);
    writeSnapshotFile(path, s.bytes(), configFingerprint());
}

void
System::restoreCheckpoint(const std::string &path)
{
    if (profiler_ && profiler_->active()) {
        throw SnapshotError(
            "cannot restore a checkpoint while the attribution "
            "profiler is active (format v1 does not carry profiler "
            "state; rerun with profiling off)");
    }
    const std::vector<std::uint8_t> payload =
        readSnapshotFile(path, configFingerprint());
    Deser d(payload);
    restore(d);
}

std::string
System::stuckSummary()
{
    std::string s;
    for (CoreId c = 0; c < cores.size(); c++) {
        Core &core = *cores[c];
        if (!core.drained()) {
            s += strprintf("core%u(rob=%u,lq=%u,sq=%u,aq=%u) ", c,
                           core.robOccupancy(), core.loadQueue().size(),
                           core.storeQueue().size(),
                           core.atomicQueue().size());
        }
    }
    for (CoreId c = 0; c < cores.size(); c++) {
        if (!memsys.cache(c).idle()) {
            s += strprintf("l1d%u(mshr=%zu) ", c,
                           memsys.cache(c).mshrCount());
        }
    }
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        if (!memsys.directory(b).idle()) {
            s += strprintf("dir%u(blocked=%u) ", b,
                           memsys.directory(b).blockedCount());
        }
    }
    if (!memsys.network().idle()) {
        s += strprintf("network(%zu msgs) ",
                       memsys.network().inFlightCount());
    }
    if (s.empty())
        return "no stuck components identified";
    s.pop_back();
    return s;
}

void
System::emitCrashJson(std::FILE *out, const char *reason)
{
    std::fprintf(out, "{\"reason\":\"%s\",\"cycle\":%llu,\"cores\":[",
                 jsonEscape(reason).c_str(),
                 static_cast<unsigned long long>(currentCycle));
    for (CoreId c = 0; c < cores.size(); c++) {
        std::fprintf(out, "%s", c ? "," : "");
        cores[c]->dumpDiag(out, currentCycle);
    }
    std::fprintf(out, "],\"caches\":[");
    for (CoreId c = 0; c < cores.size(); c++) {
        std::fprintf(out, "%s", c ? "," : "");
        memsys.cache(c).dumpDiag(out, currentCycle);
    }
    std::fprintf(out, "],\"directories\":[");
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        std::fprintf(out, "%s", b ? "," : "");
        memsys.directory(b).dumpDiag(out, currentCycle);
    }
    std::fprintf(out, "],\"network\":");
    memsys.network().dumpDiag(out, currentCycle);
    std::fprintf(out, ",\"recentTrace\":[");
    const auto recent = Trace::instance().ringSnapshot();
    for (std::size_t i = 0; i < recent.size(); i++) {
        std::fprintf(out, "%s\"%s\"", i ? "," : "",
                     jsonEscape(recent[i]).c_str());
    }
    std::fprintf(out, "]}");
}

void
System::dumpCrashDiagnostics(const char *reason)
{
    if (dumpingCrash_)
        return; // a panic inside the dump must not recurse
    dumpingCrash_ = true;
    // Serialise whole dumps across threads: concurrent sweep workers
    // panicking together must not interleave marker pairs on stderr or
    // racily clobber the ROWSIM_CRASH_JSON file.
    static std::mutex crashDumpMutex;
    std::lock_guard<std::mutex> lock(crashDumpMutex);
    std::fprintf(stderr, "=== ROWSIM CRASH DUMP BEGIN ===\n");
    emitCrashJson(stderr, reason);
    std::fprintf(stderr, "\n=== ROWSIM CRASH DUMP END ===\n");
    // Both crash sinks carry the sweep job key (like the trace / span
    // sinks), so concurrently failing jobs — or the same job's retries
    // in different processes — write distinct files instead of
    // clobbering one shared path.
    if (const char *path = std::getenv("ROWSIM_CRASH_JSON");
        path && *path) {
        const std::string dst = suffixJobPath(path, Trace::jobKey());
        // Render in memory first: the dump must land atomically (the
        // sweep parent reads it while the dying child is still exiting)
        // and a panic inside a diagnostic printer must not leave a
        // half-written file.
        char *buf = nullptr;
        std::size_t len = 0;
        bool written = false;
        if (std::FILE *mem = open_memstream(&buf, &len)) {
            emitCrashJson(mem, reason);
            std::fprintf(mem, "\n");
            std::fclose(mem);
            try {
                atomicWriteFile(dst, buf, len);
                written = true;
            } catch (const std::exception &) {
            }
            std::free(buf);
        }
        if (!written) {
            std::fprintf(stderr,
                         "rowsim: cannot write crash dump to '%s'\n",
                         dst.c_str());
        }
    }
    // Crash checkpoint (ROWSIM_CRASH_CKPT): reuse the snapshot layer to
    // leave a resumable image behind. Best effort — a panic can fire
    // mid-tick, and a failed save must not mask the original panic.
    if (const char *ckpt = std::getenv("ROWSIM_CRASH_CKPT");
        ckpt && *ckpt) {
        const std::string dst = suffixJobPath(ckpt, Trace::jobKey());
        try {
            saveCheckpoint(dst);
            std::fprintf(stderr,
                         "rowsim: crash checkpoint written to '%s'\n",
                         dst.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rowsim: crash checkpoint failed: %s\n",
                         e.what());
        }
    }
    std::fflush(stderr);
    dumpingCrash_ = false;
}

namespace
{
void
dumpGroup(std::FILE *out, StatGroup &g)
{
    for (const auto &kv : g.counters()) {
        std::fprintf(out, "%s.%s %llu\n", g.name().c_str(),
                     kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second.value()));
    }
    for (const auto &kv : g.averages()) {
        std::fprintf(out, "%s.%s mean=%.2f min=%.0f max=%.0f n=%llu\n",
                     g.name().c_str(), kv.first.c_str(),
                     kv.second.mean(), kv.second.min(), kv.second.max(),
                     static_cast<unsigned long long>(kv.second.count()));
    }
    for (const auto &kv : g.formulas()) {
        std::fprintf(out, "%s.%s %.4f\n", g.name().c_str(),
                     kv.first.c_str(), kv.second.value());
    }
    for (const auto &kv : g.histograms()) {
        const Histogram &h = kv.second;
        std::fprintf(out,
                     "%s.%s mean=%.2f p50=%.0f p90=%.0f p99=%.0f "
                     "n=%llu\n",
                     g.name().c_str(), kv.first.c_str(),
                     h.summary().mean(), h.percentile(0.50),
                     h.percentile(0.90), h.percentile(0.99),
                     static_cast<unsigned long long>(
                         h.summary().count()));
    }
}

void
dumpGroupJson(std::FILE *out, StatGroup &g, bool &first_group)
{
    if (!first_group)
        std::fprintf(out, ",\n");
    first_group = false;
    std::fprintf(out, "    \"%s\": {", g.name().c_str());
    bool first = true;
    for (const auto &kv : g.counters()) {
        std::fprintf(out, "%s\"%s\": %llu", first ? "" : ", ",
                     kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second.value()));
        first = false;
    }
    for (const auto &kv : g.averages()) {
        std::fprintf(out,
                     "%s\"%s\": {\"mean\": %.6g, \"min\": %.6g, "
                     "\"max\": %.6g, \"count\": %llu}",
                     first ? "" : ", ", kv.first.c_str(),
                     kv.second.mean(), kv.second.min(), kv.second.max(),
                     static_cast<unsigned long long>(kv.second.count()));
        first = false;
    }
    for (const auto &kv : g.formulas()) {
        std::fprintf(out, "%s\"%s\": %.6g", first ? "" : ", ",
                     kv.first.c_str(), kv.second.value());
        first = false;
    }
    for (const auto &kv : g.histograms()) {
        const Histogram &h = kv.second;
        std::fprintf(out,
                     "%s\"%s\": {\"mean\": %.6g, \"min\": %.6g, "
                     "\"max\": %.6g, \"count\": %llu, "
                     "\"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g, "
                     "\"lo\": %.6g, \"hi\": %.6g, \"underflow\": %llu, "
                     "\"overflow\": %llu, \"buckets\": [",
                     first ? "" : ", ", kv.first.c_str(),
                     h.summary().mean(), h.summary().min(),
                     h.summary().max(),
                     static_cast<unsigned long long>(h.summary().count()),
                     h.percentile(0.50), h.percentile(0.90),
                     h.percentile(0.99), h.lo(), h.hi(),
                     static_cast<unsigned long long>(h.underflow()),
                     static_cast<unsigned long long>(h.overflow()));
        for (std::size_t i = 0; i < h.buckets().size(); i++) {
            std::fprintf(out, "%s%llu", i ? ", " : "",
                         static_cast<unsigned long long>(
                             h.buckets()[i]));
        }
        std::fprintf(out, "]}");
        first = false;
    }
    std::fprintf(out, "}");
}
} // namespace

void
System::dumpStats(std::FILE *out) const
{
    auto &self = const_cast<System &>(*this);
    std::fprintf(out, "sim.cycles %llu\n",
                 static_cast<unsigned long long>(currentCycle));
    std::fprintf(out, "sim.instructions %llu\n",
                 static_cast<unsigned long long>(totalInstructions()));
    std::fprintf(out, "sim.atomics %llu\n",
                 static_cast<unsigned long long>(totalAtomics()));
    dumpGroup(out, self.simStats_);
    for (CoreId c = 0; c < cores.size(); c++) {
        dumpGroup(out, self.core(c).stats());
        dumpGroup(out, self.core(c).branchPredictor().stats());
        dumpGroup(out, self.core(c).predictor().stats());
        dumpGroup(out, self.mem().cache(c).stats());
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        dumpGroup(out, self.mem().directory(b).stats());
    dumpGroup(out, self.mem().network().stats());
}

void
System::dumpStatsJson(std::FILE *out) const
{
    auto &self = const_cast<System &>(*this);
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(currentCycle));
    std::fprintf(out, "  \"instructions\": %llu,\n",
                 static_cast<unsigned long long>(totalInstructions()));
    std::fprintf(out, "  \"atomics\": %llu,\n",
                 static_cast<unsigned long long>(totalAtomics()));
    std::fprintf(out, "  \"numCores\": %u,\n", numCores());

    std::fprintf(out, "  \"groups\": {\n");
    bool first_group = true;
    dumpGroupJson(out, self.simStats_, first_group);
    for (CoreId c = 0; c < cores.size(); c++) {
        dumpGroupJson(out, self.core(c).stats(), first_group);
        dumpGroupJson(out, self.core(c).branchPredictor().stats(),
                      first_group);
        dumpGroupJson(out, self.core(c).predictor().stats(), first_group);
        dumpGroupJson(out, self.mem().cache(c).stats(), first_group);
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        dumpGroupJson(out, self.mem().directory(b).stats(), first_group);
    dumpGroupJson(out, self.mem().network().stats(), first_group);
    std::fprintf(out, "\n  }");

    if (intervalStats_.enabled()) {
        std::fprintf(out, ",\n  \"intervals\": {\n");
        std::fprintf(out, "    \"period\": %llu,\n",
                     static_cast<unsigned long long>(
                         intervalStats_.period()));
        std::fprintf(out, "    \"cycles\": [");
        const auto &cyc = intervalStats_.sampleCycles();
        for (std::size_t i = 0; i < cyc.size(); i++)
            std::fprintf(out, "%s%llu", i ? ", " : "",
                         static_cast<unsigned long long>(cyc[i]));
        std::fprintf(out, "],\n    \"series\": {");
        const auto &probes = intervalStats_.probes();
        const auto &series = intervalStats_.series();
        for (std::size_t p = 0; p < probes.size(); p++) {
            std::fprintf(out, "%s\"%s\": [", p ? ", " : "",
                         probes[p].name.c_str());
            for (std::size_t i = 0; i < series[p].size(); i++)
                std::fprintf(out, "%s%.6g", i ? ", " : "", series[p][i]);
            std::fprintf(out, "]");
        }
        std::fprintf(out, "}\n  }");
    }

    // Metric time-series engine (absent — not empty — when off, keeping
    // the off-mode dump byte-identical to pre-engine builds).
    if (ts_) {
        std::fprintf(out, ",\n  \"timeseries\": %s",
                     ts_->toJson().c_str());
    }
    // Attribution profiler (absent — not empty — when profiling is off,
    // keeping the off-mode dump byte-identical to pre-profiler builds).
    if (profiler_ && profiler_->active())
        std::fprintf(out, ",\n  \"profile\": %s",
                     profiler_->toJson().c_str());
    // Span tracker (same absent-when-off contract as "profile").
    if (spans_ && spans_->active())
        std::fprintf(out, ",\n  \"spans\": %s", spans_->toJson().c_str());
    std::fprintf(out, "\n}\n");
}

std::uint64_t
System::totalCounter(const std::string &name) const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += const_cast<Core &>(*c).stats().counterValue(name);
    return sum;
}

double
System::meanAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto &c : cores) {
        const Average *a =
            const_cast<Core &>(*c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
System::meanCacheAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (CoreId c = 0; c < cores.size(); c++) {
        const Average *a = const_cast<MemSystem &>(memsys)
                               .cache(c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedInstructions();
    return sum;
}

std::uint64_t
System::totalAtomics() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedAtomics();
    return sum;
}

} // namespace rowsim
