#include "sim/system.hh"

#include "common/log.hh"

namespace rowsim
{

System::System(const SystemParams &params,
               std::vector<std::unique_ptr<InstStream>> streams)
    : params_(params), memsys(params), streams_(std::move(streams))
{
    ROWSIM_ASSERT(streams_.size() == params.numCores,
                  "need one instruction stream per core (%u vs %zu)",
                  params.numCores, streams_.size());
    cores.reserve(params.numCores);
    for (CoreId c = 0; c < params.numCores; c++) {
        cores.emplace_back(std::make_unique<Core>(
            c, params.core, &memsys.cache(c), &memsys.functional(),
            streams_[c].get()));
    }
    // Directory contention oracle (Fig. 5 ground truth): concurrent
    // interest in a line marks matching in-flight atomics on both the
    // requesting and holding cores.
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        memsys.directory(b).setOracleHook(
            [this](Addr line, CoreId requester, CoreId holder, bool overlap,
                   Cycle now) {
                // Holders are concurrently using the line; requesters only
                // face contention when the transaction truly overlapped.
                if (overlap && requester < cores.size())
                    cores[requester]->oracleContentionHint(line, now);
                if (holder != invalidCore && holder < cores.size())
                    cores[holder]->oracleContentionHint(line, now);
            });
    }
}

void
System::tick()
{
    currentCycle++;
    memsys.tick(currentCycle);
    for (auto &c : cores)
        c->tick(currentCycle);
}

Cycle
System::run(std::uint64_t iter_quota)
{
    while (true) {
        tick();

        bool all_done = true;
        for (auto &c : cores) {
            if (c->committedIterations() >= iter_quota) {
                if (!c->isHalted())
                    c->halt();
            } else {
                all_done = false;
            }
        }
        if (all_done)
            return currentCycle;

        // Deadlock watchdog (DESIGN.md invariant #4).
        const std::uint64_t insts = totalInstructions();
        if (insts != lastProgressInsts) {
            lastProgressInsts = insts;
            lastProgressCycle = currentCycle;
        } else if (currentCycle - lastProgressCycle >
                   params_.deadlockCycles) {
            ROWSIM_PANIC("no global commit progress for %llu cycles "
                         "(deadlock?)",
                         static_cast<unsigned long long>(
                             params_.deadlockCycles));
        }
    }
}

void
System::runCycles(Cycle cycles)
{
    const Cycle end = currentCycle + cycles;
    while (currentCycle < end)
        tick();
}

void
System::drain()
{
    for (auto &c : cores)
        c->halt();
    const Cycle start = currentCycle;
    while (true) {
        bool quiet = memsys.idle();
        for (auto &c : cores)
            quiet = quiet && c->drained();
        if (quiet)
            return;
        tick();
        if (currentCycle - start > params_.deadlockCycles)
            ROWSIM_PANIC("drain did not quiesce");
    }
}

namespace
{
void
dumpGroup(std::FILE *out, StatGroup &g)
{
    for (const auto &kv : g.counters()) {
        std::fprintf(out, "%s.%s %llu\n", g.name().c_str(),
                     kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second.value()));
    }
    for (const auto &kv : g.averages()) {
        std::fprintf(out, "%s.%s mean=%.2f min=%.0f max=%.0f n=%llu\n",
                     g.name().c_str(), kv.first.c_str(),
                     kv.second.mean(), kv.second.min(), kv.second.max(),
                     static_cast<unsigned long long>(kv.second.count()));
    }
}
} // namespace

void
System::dumpStats(std::FILE *out) const
{
    auto &self = const_cast<System &>(*this);
    std::fprintf(out, "sim.cycles %llu\n",
                 static_cast<unsigned long long>(currentCycle));
    std::fprintf(out, "sim.instructions %llu\n",
                 static_cast<unsigned long long>(totalInstructions()));
    std::fprintf(out, "sim.atomics %llu\n",
                 static_cast<unsigned long long>(totalAtomics()));
    for (CoreId c = 0; c < cores.size(); c++) {
        dumpGroup(out, self.core(c).stats());
        dumpGroup(out, self.core(c).branchPredictor().stats());
        dumpGroup(out, self.core(c).predictor().stats());
        dumpGroup(out, self.mem().cache(c).stats());
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        dumpGroup(out, self.mem().directory(b).stats());
    dumpGroup(out, self.mem().network().stats());
}

std::uint64_t
System::totalCounter(const std::string &name) const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += const_cast<Core &>(*c).stats().counterValue(name);
    return sum;
}

double
System::meanAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto &c : cores) {
        const Average *a =
            const_cast<Core &>(*c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
System::meanCacheAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (CoreId c = 0; c < cores.size(); c++) {
        const Average *a = const_cast<MemSystem &>(memsys)
                               .cache(c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedInstructions();
    return sum;
}

std::uint64_t
System::totalAtomics() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedAtomics();
    return sum;
}

} // namespace rowsim
