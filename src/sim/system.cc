#include "sim/system.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/trace.hh"

namespace rowsim
{

System::System(const SystemParams &params,
               std::vector<std::unique_ptr<InstStream>> streams)
    : params_(params), memsys(params), streams_(std::move(streams))
{
    ROWSIM_ASSERT(streams_.size() == params.numCores,
                  "need one instruction stream per core (%u vs %zu)",
                  params.numCores, streams_.size());
    cores.reserve(params.numCores);
    for (CoreId c = 0; c < params.numCores; c++) {
        cores.emplace_back(std::make_unique<Core>(
            c, params.core, &memsys.cache(c), &memsys.functional(),
            streams_[c].get()));
    }
    // Directory contention oracle (Fig. 5 ground truth): concurrent
    // interest in a line marks matching in-flight atomics on both the
    // requesting and holding cores.
    for (unsigned b = 0; b < memsys.numBanks(); b++) {
        memsys.directory(b).setOracleHook(
            [this](Addr line, CoreId requester, CoreId holder, bool overlap,
                   Cycle now) {
                // Holders are concurrently using the line; requesters only
                // face contention when the transaction truly overlapped.
                if (overlap && requester < cores.size())
                    cores[requester]->oracleContentionHint(line, now);
                if (holder != invalidCore && holder < cores.size())
                    cores[holder]->oracleContentionHint(line, now);
            });
    }

    setupObservability();
}

void
System::setupObservability()
{
    // Tracing: env vars first (so every bench/example picks them up),
    // then explicit SystemParams overrides.
    Trace::initFromEnv();
    if (!params_.traceCategories.empty()) {
        Trace::instance().configure(
            parseTraceCategories(params_.traceCategories));
    }
    if (Trace::anyEnabled() && !params_.traceJsonPath.empty() &&
        !Trace::instance().jsonOpen()) {
        Trace::instance().openJson(params_.traceJsonPath);
    }
    if (Trace::instance().jsonOpen()) {
        Trace &t = Trace::instance();
        for (CoreId c = 0; c < params_.numCores; c++) {
            const int pid = static_cast<int>(c);
            t.nameProcess(pid, strprintf("core%u", c));
            t.nameThread(pid, traceTidPipeline, "pipeline");
            t.nameThread(pid, traceTidAtomics, "atomics");
            t.nameThread(pid, traceTidPredictor, "predictor");
            t.nameThread(pid, traceTidCache, "l1d");
        }
        for (unsigned b = 0; b < memsys.numBanks(); b++)
            t.nameProcess(tracePidDirBase + static_cast<int>(b),
                          strprintf("dir%u", b));
        t.nameProcess(tracePidNetwork, "network");
    }

    // Interval sampler: params override, then env var.
    Cycle period = params_.statsInterval;
    if (period == 0) {
        if (const char *env = std::getenv("ROWSIM_STATS_INTERVAL");
            env && *env) {
            period = std::strtoull(env, nullptr, 10);
        }
    }
    intervalStats_.configure(period);
    intervalStats_.addProbe(
        "instructions",
        [this] { return static_cast<double>(totalInstructions()); }, true);
    intervalStats_.addProbe(
        "atomics",
        [this] { return static_cast<double>(totalAtomics()); }, true);
    intervalStats_.addProbe(
        "contendedAtomics",
        [this] {
            return static_cast<double>(
                totalCounter("atomicsDetectedContended"));
        },
        true);
    intervalStats_.addProbe(
        "lazyIssued",
        [this] {
            return static_cast<double>(totalCounter("atomicsIssuedLazy"));
        },
        true);

    // Derived whole-system statistics (Formula exercising).
    simStats_.formula("ipc") = [this] {
        return currentCycle
                   ? static_cast<double>(totalInstructions()) /
                         static_cast<double>(currentCycle)
                   : 0.0;
    };
    simStats_.formula("atomicsPer10k") = [this] {
        const double insts = static_cast<double>(totalInstructions());
        return insts ? 1e4 * static_cast<double>(totalAtomics()) / insts
                     : 0.0;
    };
    simStats_.formula("contendedPct") = [this] {
        const double unlocked =
            static_cast<double>(totalCounter("atomicsUnlocked"));
        return unlocked ? 100.0 *
                              static_cast<double>(totalCounter(
                                  "atomicsOracleContended")) /
                              unlocked
                        : 0.0;
    };
}

void
System::tick()
{
    currentCycle++;
    if (Trace::anyEnabled())
        Trace::setNow(currentCycle);
    memsys.tick(currentCycle);
    for (auto &c : cores)
        c->tick(currentCycle);
    if (intervalStats_.enabled())
        intervalStats_.tick(currentCycle);
}

Cycle
System::run(std::uint64_t iter_quota)
{
    while (true) {
        tick();

        bool all_done = true;
        for (auto &c : cores) {
            if (c->committedIterations() >= iter_quota) {
                if (!c->isHalted())
                    c->halt();
            } else {
                all_done = false;
            }
        }
        if (all_done)
            return currentCycle;

        // Deadlock watchdog (DESIGN.md invariant #4).
        const std::uint64_t insts = totalInstructions();
        if (insts != lastProgressInsts) {
            lastProgressInsts = insts;
            lastProgressCycle = currentCycle;
        } else if (currentCycle - lastProgressCycle >
                   params_.deadlockCycles) {
            ROWSIM_PANIC("no global commit progress for %llu cycles "
                         "(deadlock?)",
                         static_cast<unsigned long long>(
                             params_.deadlockCycles));
        }
    }
}

void
System::runCycles(Cycle cycles)
{
    const Cycle end = currentCycle + cycles;
    while (currentCycle < end)
        tick();
}

void
System::drain()
{
    for (auto &c : cores)
        c->halt();
    const Cycle start = currentCycle;
    while (true) {
        bool quiet = memsys.idle();
        for (auto &c : cores)
            quiet = quiet && c->drained();
        if (quiet)
            return;
        tick();
        if (currentCycle - start > params_.deadlockCycles)
            ROWSIM_PANIC("drain did not quiesce");
    }
}

namespace
{
void
dumpGroup(std::FILE *out, StatGroup &g)
{
    for (const auto &kv : g.counters()) {
        std::fprintf(out, "%s.%s %llu\n", g.name().c_str(),
                     kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second.value()));
    }
    for (const auto &kv : g.averages()) {
        std::fprintf(out, "%s.%s mean=%.2f min=%.0f max=%.0f n=%llu\n",
                     g.name().c_str(), kv.first.c_str(),
                     kv.second.mean(), kv.second.min(), kv.second.max(),
                     static_cast<unsigned long long>(kv.second.count()));
    }
    for (const auto &kv : g.formulas()) {
        std::fprintf(out, "%s.%s %.4f\n", g.name().c_str(),
                     kv.first.c_str(), kv.second.value());
    }
}

void
dumpGroupJson(std::FILE *out, StatGroup &g, bool &first_group)
{
    if (!first_group)
        std::fprintf(out, ",\n");
    first_group = false;
    std::fprintf(out, "    \"%s\": {", g.name().c_str());
    bool first = true;
    for (const auto &kv : g.counters()) {
        std::fprintf(out, "%s\"%s\": %llu", first ? "" : ", ",
                     kv.first.c_str(),
                     static_cast<unsigned long long>(kv.second.value()));
        first = false;
    }
    for (const auto &kv : g.averages()) {
        std::fprintf(out,
                     "%s\"%s\": {\"mean\": %.6g, \"min\": %.6g, "
                     "\"max\": %.6g, \"count\": %llu}",
                     first ? "" : ", ", kv.first.c_str(),
                     kv.second.mean(), kv.second.min(), kv.second.max(),
                     static_cast<unsigned long long>(kv.second.count()));
        first = false;
    }
    for (const auto &kv : g.formulas()) {
        std::fprintf(out, "%s\"%s\": %.6g", first ? "" : ", ",
                     kv.first.c_str(), kv.second.value());
        first = false;
    }
    std::fprintf(out, "}");
}
} // namespace

void
System::dumpStats(std::FILE *out) const
{
    auto &self = const_cast<System &>(*this);
    std::fprintf(out, "sim.cycles %llu\n",
                 static_cast<unsigned long long>(currentCycle));
    std::fprintf(out, "sim.instructions %llu\n",
                 static_cast<unsigned long long>(totalInstructions()));
    std::fprintf(out, "sim.atomics %llu\n",
                 static_cast<unsigned long long>(totalAtomics()));
    dumpGroup(out, self.simStats_);
    for (CoreId c = 0; c < cores.size(); c++) {
        dumpGroup(out, self.core(c).stats());
        dumpGroup(out, self.core(c).branchPredictor().stats());
        dumpGroup(out, self.core(c).predictor().stats());
        dumpGroup(out, self.mem().cache(c).stats());
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        dumpGroup(out, self.mem().directory(b).stats());
    dumpGroup(out, self.mem().network().stats());
}

void
System::dumpStatsJson(std::FILE *out) const
{
    auto &self = const_cast<System &>(*this);
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(currentCycle));
    std::fprintf(out, "  \"instructions\": %llu,\n",
                 static_cast<unsigned long long>(totalInstructions()));
    std::fprintf(out, "  \"atomics\": %llu,\n",
                 static_cast<unsigned long long>(totalAtomics()));
    std::fprintf(out, "  \"numCores\": %u,\n", numCores());

    std::fprintf(out, "  \"groups\": {\n");
    bool first_group = true;
    dumpGroupJson(out, self.simStats_, first_group);
    for (CoreId c = 0; c < cores.size(); c++) {
        dumpGroupJson(out, self.core(c).stats(), first_group);
        dumpGroupJson(out, self.core(c).branchPredictor().stats(),
                      first_group);
        dumpGroupJson(out, self.core(c).predictor().stats(), first_group);
        dumpGroupJson(out, self.mem().cache(c).stats(), first_group);
    }
    for (unsigned b = 0; b < self.mem().numBanks(); b++)
        dumpGroupJson(out, self.mem().directory(b).stats(), first_group);
    dumpGroupJson(out, self.mem().network().stats(), first_group);
    std::fprintf(out, "\n  }");

    if (intervalStats_.enabled()) {
        std::fprintf(out, ",\n  \"intervals\": {\n");
        std::fprintf(out, "    \"period\": %llu,\n",
                     static_cast<unsigned long long>(
                         intervalStats_.period()));
        std::fprintf(out, "    \"cycles\": [");
        const auto &cyc = intervalStats_.sampleCycles();
        for (std::size_t i = 0; i < cyc.size(); i++)
            std::fprintf(out, "%s%llu", i ? ", " : "",
                         static_cast<unsigned long long>(cyc[i]));
        std::fprintf(out, "],\n    \"series\": {");
        const auto &probes = intervalStats_.probes();
        const auto &series = intervalStats_.series();
        for (std::size_t p = 0; p < probes.size(); p++) {
            std::fprintf(out, "%s\"%s\": [", p ? ", " : "",
                         probes[p].name.c_str());
            for (std::size_t i = 0; i < series[p].size(); i++)
                std::fprintf(out, "%s%.6g", i ? ", " : "", series[p][i]);
            std::fprintf(out, "]");
        }
        std::fprintf(out, "}\n  }");
    }
    std::fprintf(out, "\n}\n");
}

std::uint64_t
System::totalCounter(const std::string &name) const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += const_cast<Core &>(*c).stats().counterValue(name);
    return sum;
}

double
System::meanAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto &c : cores) {
        const Average *a =
            const_cast<Core &>(*c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
System::meanCacheAverage(const std::string &name) const
{
    double sum = 0;
    std::uint64_t n = 0;
    for (CoreId c = 0; c < cores.size(); c++) {
        const Average *a = const_cast<MemSystem &>(memsys)
                               .cache(c).stats().findAverage(name);
        if (a) {
            sum += a->sum();
            n += a->count();
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedInstructions();
    return sum;
}

std::uint64_t
System::totalAtomics() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c->committedAtomics();
    return sum;
}

} // namespace rowsim
