/**
 * @file
 * Experiment harness: configures a System for one (workload, policy)
 * pair, runs it to quota, and extracts every metric the paper's figures
 * report. All benches and integration tests go through this API.
 */

#ifndef ROWSIM_SIM_EXPERIMENT_HH
#define ROWSIM_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace rowsim
{

/** One experiment configuration (a bar in Fig. 9 / Fig. 13). */
struct ExpConfig
{
    std::string label = "eager";
    AtomicPolicy policy = AtomicPolicy::Eager;
    ContentionDetector detector = ContentionDetector::RWDir;
    PredictorUpdate update = PredictorUpdate::SaturateOnContention;
    bool forwardToAtomics = false;
    bool localityPromotion = true;
    Cycle latencyThreshold = 400;
    unsigned predictorEntries = 64;
    /** Profiler categories for this run ("cpi,lines,row,pcs,check" /
     *  "all"); empty defers to the ROWSIM_PROFILE environment. */
    std::string profile;
    /** Span tracing for this run ("on"/"off" and synonyms); empty
     *  defers to the ROWSIM_SPANS environment. */
    std::string spans;
    /** Metric time-series engine ("on"/"off" and synonyms); empty
     *  defers to the ROWSIM_TS environment. */
    std::string timeseries;
    /** Convergence-bounded run spec
     *  ("<metric>:<rel_halfwidth>[:<confidence>]"); empty defers to the
     *  ROWSIM_CONVERGE environment. Implies the time-series engine. */
    std::string converge;
    /** Execution mode ("detail"/"func"); empty defers to the
     *  ROWSIM_MODE environment. */
    std::string mode;
};

/** Outcome of one run. Anything but Ok means the metric fields are
 *  not meaningful; `error` says why. */
enum class RunStatus : std::uint8_t
{
    Ok = 0,       ///< completed normally
    Failed = 1,   ///< threw (panic, fatal, bad config) in-process
    Crashed = 2,  ///< isolated worker died (signal / abort / _Exit)
    TimedOut = 3, ///< isolated worker exceeded its wall-clock budget
};

const char *runStatusName(RunStatus s);

/** Everything a figure could want from one run. */
struct RunResult
{
    std::string workload;
    std::string config;

    /** Outcome of the run; metric fields below are meaningful only for
     *  Ok. Sweeps in non-strict mode report per-job failures here
     *  instead of throwing. */
    RunStatus status = RunStatus::Ok;
    /** Human-readable failure description (empty when Ok). */
    std::string error;
    /** Executions this result took (> 1 only for isolated sweep jobs
     *  that were retried after a crash / timeout). */
    std::uint32_t attempts = 1;
    /** True when the result was served from the content-addressed
     *  result store instead of being recomputed. */
    bool fromCache = false;

    bool ok() const { return status == RunStatus::Ok; }

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t atomicsCommitted = 0;
    double atomicsPer10k = 0;

    std::uint64_t atomicsUnlocked = 0;
    std::uint64_t detectedContended = 0;
    std::uint64_t oracleContended = 0;
    /** % of atomics facing contention (oracle; Fig. 5 red line). */
    double contendedPct = 0;

    /** Mean L1D miss latency over all memory instructions (Fig. 11). */
    double missLatency = 0;

    // Fig. 6 latency breakdown (means over unlocked atomics).
    double dispatchToIssue = 0;
    double issueToLock = 0;
    double lockToUnlock = 0;

    /** Fig. 6 tail percentiles, from the per-core atomic-phase
     *  histograms merged across cores. Populated only when the run
     *  profiles with the "pcs" category; 0 otherwise. */
    double dispatchToIssueP50 = 0, dispatchToIssueP90 = 0,
           dispatchToIssueP99 = 0;
    double issueToLockP50 = 0, issueToLockP90 = 0, issueToLockP99 = 0;
    double lockToUnlockP50 = 0, lockToUnlockP90 = 0, lockToUnlockP99 = 0;

    // Fig. 4 independent-instruction counts at atomic issue.
    double olderUnexecuted = 0;
    double youngerStarted = 0;

    /** Contention-prediction accuracy (Fig. 12); 0 when not RoW. */
    double predAccuracy = 0;

    std::uint64_t atomicsForwarded = 0;
    std::uint64_t atomicsPromoted = 0;
    std::uint64_t forcedUnlocks = 0;
    std::uint64_t eagerIssued = 0;
    std::uint64_t lazyIssued = 0;

    /** Full System::dumpStatsJson output, captured before the System is
     *  destroyed. Empty unless the run was asked to capture it
     *  (runExperiment's capture_stats / SweepJob::captureStatsJson) —
     *  it is large, and most callers only want the summary metrics. */
    std::string statsJson;

    /** Profiler::toJson() of the run, captured whenever the run was
     *  profiled (ROWSIM_PROFILE / ExpConfig::profile); empty otherwise. */
    std::string profileJson;

    /** SpanTracker::toJson() of the run, captured whenever span tracing
     *  was on (ROWSIM_SPANS / ExpConfig::spans); empty otherwise. */
    std::string spanJson;

    /** TimeSeriesEngine::toJson() of the run — per-metric series,
     *  online statistics, and batch-means CIs — captured whenever the
     *  engine was on (ROWSIM_TS / ROWSIM_CONVERGE / ExpConfig); empty
     *  otherwise. */
    std::string tsJson;

    /** Sampled-run summary (SMARTS-style checkpointed sampling,
     *  ROWSIM_SAMPLE): checkpoint grid, per-window detail results, and
     *  batch-means confidence intervals, as one JSON object. Empty
     *  unless sampling was active; rides along in toJson() as
     *  "sampling" so non-sampled reports stay byte-identical. */
    std::string samplingJson;

    /** Convergence-bounded run outcome; meaningful only when a
     *  convergence spec was active (convergeMetric non-empty). */
    std::string convergeMetric;
    double convergeTarget = 0;
    double convergeConfidence = 0;
    /** Relative CI half-width of the target metric at the stop cycle
     *  (or end of quota); +inf prints as null in JSON. */
    double convergeAchieved = 0;
    /** True when the run stopped on the CI bound before the quota. */
    bool converged = false;

    /** One-line JSON object with every field above except statsJson and
     *  profileJson (run reports); spanJson rides along as "spans" when
     *  the run traced spans, tsJson as "timeseries" (plus a "converge"
     *  object when a spec was active), and status/error/attempts appear
     *  only for failed runs (ok-run reports stay byte-identical across
     *  versions). */
    std::string toJson() const;
};

/** Append @p r as one JSON line to @p path ("-" = stdout). */
void writeRunReport(const RunResult &r, const std::string &path);

/** Standard configurations used across the figures. */
ExpConfig eagerConfig(bool forwarding = false);
ExpConfig lazyConfig();
ExpConfig fencedConfig();
ExpConfig rowConfig(ContentionDetector det, PredictorUpdate upd,
                    bool forwarding = false);
/** The Fig. 9 bar set: eager, lazy, EW/RW/RW+Dir x U/D / Sat. */
std::vector<ExpConfig> fig9Configs();

/**
 * Run @p workload under @p cfg.
 * @param quota per-core iterations (0: the workload's default)
 * @param capture_stats fill RunResult::statsJson with the full stats tree
 */
RunResult runExperiment(const std::string &workload, const ExpConfig &cfg,
                        unsigned num_cores = 32, std::uint64_t quota = 0,
                        std::uint64_t seed = 1, bool capture_stats = false);

/** Build the SystemParams for a config (exposed for tests). */
SystemParams makeParams(const ExpConfig &cfg, unsigned num_cores,
                        std::uint64_t seed);

/** Resolve the execution mode for @p params — SystemParams::mode when
 *  set, else the ROWSIM_MODE environment, else detail. True means the
 *  functional fast-mode interpreter; anything but "detail"/"func" is a
 *  user error (fatal). Shared by the run path and the result-store key
 *  (the two must never disagree on what a key means). */
bool funcModeFor(const SystemParams &params);

/**
 * Run @p workload with explicit SystemParams — the entry point for
 * microarchitectural ablations (AQ size, re-issue delay, lock-steal
 * threshold, ...) that ExpConfig does not expose.
 */
RunResult runExperimentParams(const std::string &workload,
                              const SystemParams &params,
                              const std::string &label,
                              std::uint64_t quota = 0,
                              bool capture_stats = false);

} // namespace rowsim

#endif // ROWSIM_SIM_EXPERIMENT_HH
