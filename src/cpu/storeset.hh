/**
 * @file
 * StoreSet memory-dependence predictor (Chrysos & Emer, ISCA'98).
 *
 * Loads that were previously squashed by an older store are placed in the
 * same store set as that store; a load predicted dependent waits for the
 * last fetched store of its set instead of issuing speculatively.
 */

#ifndef ROWSIM_CPU_STORESET_HH
#define ROWSIM_CPU_STORESET_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

class StoreSet
{
  public:
    static constexpr std::uint32_t invalidSet = 0xffffffffu;

    StoreSet(unsigned ssit_bits = 10, unsigned lfst_entries = 1024);

    /** Store-set id assigned to @p pc, or invalidSet. */
    std::uint32_t setOf(Addr pc) const;

    /** A store of set @p set was fetched with sequence number @p seq. */
    void storeFetched(std::uint32_t set, SeqNum seq);

    /** The store with @p seq of @p set executed (clears the LFST slot). */
    void storeExecuted(std::uint32_t set, SeqNum seq);

    /**
     * Sequence number of the in-flight store this load must wait for, or
     * 0 when it may issue speculatively.
     */
    SeqNum dependence(Addr load_pc) const;

    /** A memory-order violation between @p load_pc and @p store_pc was
     *  detected: merge both into one store set. */
    void violation(Addr load_pc, Addr store_pc);

    /** Periodic clearing keeps stale sets from serialising forever. */
    void clear();

    StatGroup &stats() { return stats_; }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned index(Addr pc) const;

    unsigned ssitBits;
    std::vector<std::uint32_t> ssit; ///< pc -> store-set id
    std::vector<SeqNum> lfst;        ///< set id -> last fetched store seq
    std::uint32_t nextSetId = 0;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_CPU_STORESET_HH
