/**
 * @file
 * Atomic Queue (AQ): the Free Atomics structure tracking in-flight atomic
 * RMWs (§II-B), augmented with RoW's per-entry contention-detection fields
 * (§IV): the contended bit, the only-calculate-address bit, and the 14-bit
 * request-issued-cycle timestamp.
 *
 * The AQ is a FIFO: entries allocate at dispatch and free at unlock, and
 * because stores write in order under TSO, the unlocking atomic is always
 * the head entry.
 */

#ifndef ROWSIM_CPU_ATOMIC_QUEUE_HH
#define ROWSIM_CPU_ATOMIC_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/coherence.hh"

namespace rowsim
{

class Ser;
class Deser;

/** One in-flight atomic RMW. */
struct AqEntry
{
    bool valid = false;
    SeqNum seq = 0;
    Addr pc = 0;

    /** Effective address; invalidAddr until the address-calculation issue
     *  (eager issue, or the only-calculate-address issue under RoW). */
    Addr addr = invalidAddr;

    /** The cacheline is held locked in the L1D (set/way pinned). */
    bool locked = false;
    /** Detector outcome used to train the predictor (§IV-A..C). */
    bool contended = false;
    /** Ground-truth contention from the directory oracle (Fig. 5). */
    bool oracleContended = false;
    /** RoW: predicted lazy, but issued once to compute the address and
     *  extend the contention-tracking window (§IV-B). */
    bool onlyCalcAddr = false;
    /** The prediction this atomic was dispatched with (lazy == true). */
    bool predictedContended = false;

    /** 14 LSBs of the cycle the GetX entered the network (§IV-C). */
    std::uint16_t issuedCycle14 = 0;
    bool timestampValid = false;

    /** Where the locked line came from (latency classification). */
    FillSource lockSource = FillSource::L1Hit;

    /** Post-commit unlock payload: the STU's value and SQ slot. The ROB
     *  entry may be reused before the unlock fires, so the AQ carries
     *  everything the unlock needs. */
    std::uint64_t newValue = 0;
    int sqIdx = -1;

    // Full-width timestamps for the Fig. 6 latency breakdown (statistics
    // only; not part of the hardware budget).
    Cycle dispatchCycle = invalidCycle;
    Cycle readyCycle = invalidCycle;
    Cycle issueCycle = invalidCycle;
    Cycle lockCycle = invalidCycle;

    /** Lifetime span of this atomic (0 = untraced; src/sim/span.hh).
     *  Observability-only: not serialized, 0 after a restore. */
    std::uint64_t spanId = 0;

    Addr line() const { return addr == invalidAddr ? invalidAddr
                                                   : lineAlign(addr); }
};

/** The queue itself: a circular FIFO of AqEntry. */
class AtomicQueue
{
  public:
    explicit AtomicQueue(unsigned entries);

    bool full() const { return count == capacity; }
    bool empty() const { return count == 0; }
    unsigned size() const { return count; }
    unsigned entries() const { return capacity; }

    /** Allocate the tail entry at dispatch. @return entry index. */
    unsigned allocate(SeqNum seq, Addr pc, Cycle now);

    /** Free the head entry at unlock. @pre head().seq == seq. */
    void freeHead(SeqNum seq);

    AqEntry &entry(unsigned idx) { return slots[idx]; }
    const AqEntry &entry(unsigned idx) const { return slots[idx]; }
    AqEntry &head();

    /** Is @p line locked by any entry (cache-locking snoop)? */
    bool lineLocked(Addr line) const;

    /**
     * True when every valid entry older than @p seq holds its lock.
     * Locks engage in AQ order: a younger atomic holding a lock while an
     * older one still waits for a contended line would keep other cores
     * stalled for the older atomic's whole acquisition time (and can
     * deadlock across cores), so fills for out-of-order atomics wait.
     */
    bool olderAllLocked(SeqNum seq) const;

    /**
     * Apply @p fn to every valid entry whose computed address matches
     * @p line (contention marking on external requests).
     */
    template <typename Fn>
    void
    forEachMatching(Addr line, Fn &&fn)
    {
        for (unsigned i = 0; i < capacity; i++) {
            AqEntry &e = slots[i];
            if (e.valid && e.addr != invalidAddr && e.line() == line)
                fn(e);
        }
    }

    /** Apply @p fn to every valid entry. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (unsigned i = 0; i < capacity; i++) {
            if (slots[i].valid)
                fn(slots[i]);
        }
    }

    /** Const overload (invariant checkers, diagnostics). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned i = 0; i < capacity; i++) {
            if (slots[i].valid)
                fn(slots[i]);
        }
    }

    /** Entry index holding @p seq, or -1. */
    int find(SeqNum seq) const;

    /** RoW storage overhead of the AQ augmentation in bits (§IV-F):
     *  contended + only-calculate-address + 14-bit timestamp per entry. */
    unsigned rowStorageBits() const { return capacity * (1 + 1 + 14); }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned capacity;
    unsigned headIdx = 0;
    unsigned tailIdx = 0;
    unsigned count = 0;
    std::vector<AqEntry> slots;
};

} // namespace rowsim

#endif // ROWSIM_CPU_ATOMIC_QUEUE_HH
