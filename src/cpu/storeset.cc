#include "cpu/storeset.hh"

namespace rowsim
{

StoreSet::StoreSet(unsigned ssit_bits, unsigned lfst_entries)
    : ssitBits(ssit_bits), ssit(1u << ssit_bits, invalidSet),
      lfst(lfst_entries, 0), stats_("storeset")
{
}

unsigned
StoreSet::index(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & ((1u << ssitBits) - 1);
}

std::uint32_t
StoreSet::setOf(Addr pc) const
{
    return ssit[index(pc)];
}

void
StoreSet::storeFetched(std::uint32_t set, SeqNum seq)
{
    if (set != invalidSet)
        lfst[set % lfst.size()] = seq;
}

void
StoreSet::storeExecuted(std::uint32_t set, SeqNum seq)
{
    if (set != invalidSet && lfst[set % lfst.size()] == seq)
        lfst[set % lfst.size()] = 0;
}

SeqNum
StoreSet::dependence(Addr load_pc) const
{
    std::uint32_t set = ssit[index(load_pc)];
    if (set == invalidSet)
        return 0;
    return lfst[set % lfst.size()];
}

void
StoreSet::violation(Addr load_pc, Addr store_pc)
{
    stats_.counter("violations")++;
    std::uint32_t &ls = ssit[index(load_pc)];
    std::uint32_t &ss = ssit[index(store_pc)];
    if (ls == invalidSet && ss == invalidSet) {
        ls = ss = nextSetId++ % static_cast<std::uint32_t>(lfst.size());
    } else if (ls == invalidSet) {
        ls = ss;
    } else if (ss == invalidSet) {
        ss = ls;
    } else {
        // Merge: convention is the smaller id wins.
        std::uint32_t winner = std::min(ls, ss);
        ls = ss = winner;
    }
}

void
StoreSet::clear()
{
    for (auto &s : ssit)
        s = invalidSet;
    for (auto &f : lfst)
        f = 0;
}

} // namespace rowsim
