#include "cpu/storeset.hh"

#include "sim/snapshot.hh"

namespace rowsim
{

StoreSet::StoreSet(unsigned ssit_bits, unsigned lfst_entries)
    : ssitBits(ssit_bits), ssit(1u << ssit_bits, invalidSet),
      lfst(lfst_entries, 0), stats_("storeset")
{
}

unsigned
StoreSet::index(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & ((1u << ssitBits) - 1);
}

std::uint32_t
StoreSet::setOf(Addr pc) const
{
    return ssit[index(pc)];
}

void
StoreSet::storeFetched(std::uint32_t set, SeqNum seq)
{
    if (set != invalidSet)
        lfst[set % lfst.size()] = seq;
}

void
StoreSet::storeExecuted(std::uint32_t set, SeqNum seq)
{
    if (set != invalidSet && lfst[set % lfst.size()] == seq)
        lfst[set % lfst.size()] = 0;
}

SeqNum
StoreSet::dependence(Addr load_pc) const
{
    std::uint32_t set = ssit[index(load_pc)];
    if (set == invalidSet)
        return 0;
    return lfst[set % lfst.size()];
}

void
StoreSet::violation(Addr load_pc, Addr store_pc)
{
    stats_.counter("violations")++;
    std::uint32_t &ls = ssit[index(load_pc)];
    std::uint32_t &ss = ssit[index(store_pc)];
    if (ls == invalidSet && ss == invalidSet) {
        ls = ss = nextSetId++ % static_cast<std::uint32_t>(lfst.size());
    } else if (ls == invalidSet) {
        ls = ss;
    } else if (ss == invalidSet) {
        ss = ls;
    } else {
        // Merge: convention is the smaller id wins.
        std::uint32_t winner = std::min(ls, ss);
        ls = ss = winner;
    }
}

void
StoreSet::clear()
{
    for (auto &s : ssit)
        s = invalidSet;
    for (auto &f : lfst)
        f = 0;
}

void
StoreSet::save(Ser &s) const
{
    s.section("storeset");
    s.u32(ssitBits);
    s.u64(lfst.size());
    for (std::uint32_t v : ssit)
        s.u32(v);
    for (SeqNum v : lfst)
        s.u64(v);
    s.u32(nextSetId);
}

void
StoreSet::restore(Deser &d)
{
    d.section("storeset");
    const std::uint32_t bits = d.u32();
    const std::uint64_t lfstEntries = d.u64();
    if (bits != ssitBits || lfstEntries != lfst.size()) {
        throw SnapshotError(strprintf(
            "store-set geometry mismatch: image %u bits / %llu LFST "
            "entries, configured %u / %zu",
            bits, static_cast<unsigned long long>(lfstEntries), ssitBits,
            lfst.size()));
    }
    for (std::uint32_t &v : ssit)
        v = d.u32();
    for (SeqNum &v : lfst)
        v = d.u64();
    nextSetId = d.u32();
}

} // namespace rowsim
