#include "cpu/lsq.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

LoadQueue::LoadQueue(unsigned entries) : capacity(entries), slots(entries)
{
    ROWSIM_ASSERT(entries > 0, "LQ needs at least one entry");
}

unsigned
LoadQueue::allocate(SeqNum seq, bool is_atomic)
{
    ROWSIM_ASSERT(!full(), "LQ allocate when full");
    unsigned idx = tailIdx;
    LqEntry &e = slots[idx];
    e = LqEntry{};
    e.valid = true;
    e.seq = seq;
    e.isAtomic = is_atomic;
    tailIdx = (tailIdx + 1) % capacity;
    count++;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "lq alloc seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
    return idx;
}

void
LoadQueue::freeHead(SeqNum seq)
{
    ROWSIM_ASSERT(!empty(), "LQ freeHead on empty queue");
    LqEntry &e = slots[headIdx];
    ROWSIM_ASSERT(e.seq == seq, "LQ dealloc out of order");
    e.valid = false;
    headIdx = (headIdx + 1) % capacity;
    count--;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "lq free seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
}

SeqNum
LoadQueue::oldestSeq() const
{
    return count == 0 ? 0 : slots[headIdx].seq;
}

bool
LoadQueue::isOldest(SeqNum seq) const
{
    return count > 0 && slots[headIdx].seq == seq;
}

StoreQueue::StoreQueue(unsigned entries) : capacity(entries), slots(entries)
{
    ROWSIM_ASSERT(entries > 0, "SQ needs at least one entry");
}

unsigned
StoreQueue::allocate(SeqNum seq, bool is_atomic)
{
    ROWSIM_ASSERT(!full(), "SQ allocate when full");
    unsigned idx = tailIdx;
    SqEntry &e = slots[idx];
    e = SqEntry{};
    e.valid = true;
    e.seq = seq;
    e.isAtomic = is_atomic;
    tailIdx = (tailIdx + 1) % capacity;
    count++;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "sq alloc seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
    return idx;
}

void
StoreQueue::freeHead(SeqNum seq)
{
    ROWSIM_ASSERT(!empty(), "SQ freeHead on empty queue");
    SqEntry &e = slots[headIdx];
    ROWSIM_ASSERT(e.seq == seq, "SQ dealloc out of order");
    e.valid = false;
    headIdx = (headIdx + 1) % capacity;
    count--;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "sq free seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
}

SqEntry *
StoreQueue::headEntry()
{
    return count == 0 ? nullptr : &slots[headIdx];
}

SqEntry *
StoreQueue::forwardSource(SeqNum seq, Addr addr, bool &unknown_older)
{
    unknown_older = false;
    const Addr word = wordAlign(addr);
    // Scan youngest -> oldest, stopping at the first (youngest) match.
    for (unsigned i = 0, idx = (tailIdx + capacity - 1) % capacity;
         i < count; i++, idx = (idx + capacity - 1) % capacity) {
        SqEntry &e = slots[idx];
        if (!e.valid || e.seq >= seq)
            continue;
        if (!e.addressReady) {
            unknown_older = true;
            continue;
        }
        if (wordAlign(e.addr) == word)
            return &e;
    }
    return nullptr;
}

SqEntry *
StoreQueue::olderSameLineUnwritten(SeqNum seq, Addr line)
{
    const Addr aligned = lineAlign(line);
    for (unsigned i = 0, idx = (tailIdx + capacity - 1) % capacity;
         i < count; i++, idx = (idx + capacity - 1) % capacity) {
        SqEntry &e = slots[idx];
        if (!e.valid || e.seq >= seq || e.written || e.isAtomic)
            continue;
        if (e.addressReady && lineAlign(e.addr) == aligned)
            return &e;
    }
    return nullptr;
}

bool
StoreQueue::noneOlderThan(SeqNum seq) const
{
    return count == 0 || slots[headIdx].seq >= seq;
}

bool
StoreQueue::sbEmpty() const
{
    for (unsigned i = 0, idx = headIdx; i < count;
         i++, idx = (idx + 1) % capacity) {
        const SqEntry &e = slots[idx];
        if (e.committed && !e.written)
            return false;
    }
    return true;
}

// All slots are serialized, invalid ones included: restored slot garbage
// then matches an uninterrupted run's, keeping later images bit-identical.

void
LoadQueue::save(Ser &s) const
{
    s.section("lq");
    s.u32(capacity);
    s.u32(headIdx);
    s.u32(tailIdx);
    s.u32(count);
    for (const LqEntry &e : slots) {
        s.b(e.valid);
        s.u64(e.seq);
        s.u64(e.addr);
        s.b(e.issued);
        s.b(e.completed);
        s.b(e.isAtomic);
        s.u64(e.fwdFrom);
    }
}

void
LoadQueue::restore(Deser &d)
{
    d.section("lq");
    const std::uint32_t cap = d.u32();
    if (cap != capacity) {
        throw SnapshotError(strprintf(
            "LQ capacity mismatch: image %u, configured %u", cap,
            capacity));
    }
    headIdx = d.u32();
    tailIdx = d.u32();
    count = d.u32();
    for (LqEntry &e : slots) {
        e.valid = d.b();
        e.seq = d.u64();
        e.addr = d.u64();
        e.issued = d.b();
        e.completed = d.b();
        e.isAtomic = d.b();
        e.fwdFrom = d.u64();
    }
}

void
StoreQueue::save(Ser &s) const
{
    s.section("sq");
    s.u32(capacity);
    s.u32(headIdx);
    s.u32(tailIdx);
    s.u32(count);
    for (const SqEntry &e : slots) {
        s.b(e.valid);
        s.u64(e.seq);
        s.u64(e.addr);
        s.u64(e.value);
        s.b(e.addressReady);
        s.b(e.valueReady);
        s.b(e.committed);
        s.b(e.writeInFlight);
        s.b(e.written);
        s.b(e.isAtomic);
    }
}

void
StoreQueue::restore(Deser &d)
{
    d.section("sq");
    const std::uint32_t cap = d.u32();
    if (cap != capacity) {
        throw SnapshotError(strprintf(
            "SQ capacity mismatch: image %u, configured %u", cap,
            capacity));
    }
    headIdx = d.u32();
    tailIdx = d.u32();
    count = d.u32();
    for (SqEntry &e : slots) {
        e.valid = d.b();
        e.seq = d.u64();
        e.addr = d.u64();
        e.value = d.u64();
        e.addressReady = d.b();
        e.valueReady = d.b();
        e.committed = d.b();
        e.writeInFlight = d.b();
        e.written = d.b();
        e.isAtomic = d.b();
    }
}

} // namespace rowsim
