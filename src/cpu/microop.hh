/**
 * @file
 * Micro-operation definition: the unit of work the core consumes from an
 * instruction stream.
 */

#ifndef ROWSIM_CPU_MICROOP_HH
#define ROWSIM_CPU_MICROOP_HH

#include <cstdint>

#include "common/types.hh"

namespace rowsim
{

/** Operation classes understood by the pipeline. */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< integer ALU op, execLatency cycles
    FpAlu,     ///< floating-point op, execLatency cycles
    Load,      ///< memory read
    Store,     ///< memory write (writes at retire from the SB)
    AtomicRMW, ///< locked read-modify-write (LDL / modify / STU)
    Branch,    ///< conditional branch; trained direction in takenBranch
    Fence,     ///< mfence: orders all older/younger memory operations
    Nop,
};

/** The "modify" flavour of an atomic RMW. */
enum class AtomicOp : std::uint8_t
{
    FetchAdd,    ///< lock xadd
    CompareSwap, ///< lock cmpxchg
    Swap,        ///< xchg (implicitly locked on x86)
};

const char *opClassName(OpClass c);
const char *atomicOpName(AtomicOp a);

/**
 * One micro-op. Register dependencies are expressed positionally: srcN is
 * the backward distance (in micro-ops) to the producer, 0 meaning "no
 * dependency". A distance larger than the ROB lifetime of the producer
 * resolves to "ready" automatically.
 */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    AtomicOp aop = AtomicOp::FetchAdd;

    Addr addr = invalidAddr;  ///< effective address for memory ops
    std::uint64_t pc = 0;     ///< program counter (predictor indexing)
    std::uint16_t execLatency = 1;

    /** Backward distances to the producers of the two source operands. */
    std::uint32_t src0 = 0;
    std::uint32_t src1 = 0;

    bool takenBranch = false; ///< resolved direction (branches)

    /** Store value / atomic operand. For FetchAdd this is the addend; for
     *  Swap the new value; for CompareSwap the new value (the expected
     *  value is the current memory content, making the CAS succeed, unless
     *  casExpectMismatch is set). */
    std::uint64_t value = 0;
    bool casExpectMismatch = false;

    /** Marks the last micro-op of a workload iteration (progress quota). */
    bool endOfIteration = false;

    bool isMem() const
    {
        return cls == OpClass::Load || cls == OpClass::Store ||
               cls == OpClass::AtomicRMW;
    }
};

} // namespace rowsim

#endif // ROWSIM_CPU_MICROOP_HH
