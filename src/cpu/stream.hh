/**
 * @file
 * Instruction-stream interface: where a core's micro-ops come from.
 */

#ifndef ROWSIM_CPU_STREAM_HH
#define ROWSIM_CPU_STREAM_HH

#include <cstdint>
#include <vector>

#include "cpu/microop.hh"

namespace rowsim
{

class Ser;
class Deser;

/**
 * An infinite per-thread micro-op stream. Implementations must be
 * deterministic functions of their seed so experiments are reproducible.
 */
class InstStream
{
  public:
    virtual ~InstStream() = default;

    /** Produce the next micro-op. */
    virtual MicroOp next() = 0;

    /** Snapshot the stream's position. The defaults throw SnapshotError:
     *  a stream type that cannot round-trip must refuse to checkpoint
     *  rather than silently resume from the wrong place. */
    virtual void save(Ser &s) const;
    virtual void restore(Deser &d);
};

/** A fixed vector of micro-ops, repeated forever (testing and simple
 *  kernels). */
class LoopStream : public InstStream
{
  public:
    explicit LoopStream(std::vector<MicroOp> body)
        : body_(std::move(body))
    {
    }

    MicroOp
    next() override
    {
        MicroOp op = body_[idx];
        idx = (idx + 1) % body_.size();
        return op;
    }

    void save(Ser &s) const override;
    void restore(Deser &d) override;

  private:
    std::vector<MicroOp> body_;
    std::size_t idx = 0;
};

} // namespace rowsim

#endif // ROWSIM_CPU_STREAM_HH
