#include "cpu/atomic_queue.hh"

#include "common/log.hh"
#include "common/trace.hh"

namespace rowsim
{

AtomicQueue::AtomicQueue(unsigned entries)
    : capacity(entries), slots(entries)
{
    ROWSIM_ASSERT(entries > 0, "AQ needs at least one entry");
}

unsigned
AtomicQueue::allocate(SeqNum seq, Addr pc, Cycle now)
{
    ROWSIM_ASSERT(!full(), "AQ allocate when full");
    unsigned idx = tailIdx;
    AqEntry &e = slots[idx];
    e = AqEntry{};
    e.valid = true;
    e.seq = seq;
    e.pc = pc;
    e.dispatchCycle = now;
    tailIdx = (tailIdx + 1) % capacity;
    count++;
    ROWSIM_TRACE(TraceCategory::Queue, now,
                 "aq alloc seq=%llu pc=%#llx occ=%u/%u",
                 static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(pc), count, capacity);
    return idx;
}

AqEntry &
AtomicQueue::head()
{
    ROWSIM_ASSERT(!empty(), "AQ head on empty queue");
    return slots[headIdx];
}

void
AtomicQueue::freeHead(SeqNum seq)
{
    ROWSIM_ASSERT(!empty(), "AQ freeHead on empty queue");
    AqEntry &e = slots[headIdx];
    ROWSIM_ASSERT(e.seq == seq,
                  "AQ unlock out of order: head seq %llu, unlocking %llu",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(seq));
    e.valid = false;
    headIdx = (headIdx + 1) % capacity;
    count--;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "aq free seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
}

bool
AtomicQueue::olderAllLocked(SeqNum seq) const
{
    for (unsigned i = 0; i < capacity; i++) {
        const AqEntry &e = slots[i];
        if (e.valid && e.seq < seq && !e.locked)
            return false;
    }
    return true;
}

bool
AtomicQueue::lineLocked(Addr line) const
{
    for (unsigned i = 0; i < capacity; i++) {
        const AqEntry &e = slots[i];
        if (e.valid && e.locked && e.line() == lineAlign(line))
            return true;
    }
    return false;
}

int
AtomicQueue::find(SeqNum seq) const
{
    for (unsigned i = 0; i < capacity; i++) {
        if (slots[i].valid && slots[i].seq == seq)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace rowsim
