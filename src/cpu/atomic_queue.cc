#include "cpu/atomic_queue.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

AtomicQueue::AtomicQueue(unsigned entries)
    : capacity(entries), slots(entries)
{
    ROWSIM_ASSERT(entries > 0, "AQ needs at least one entry");
}

unsigned
AtomicQueue::allocate(SeqNum seq, Addr pc, Cycle now)
{
    ROWSIM_ASSERT(!full(), "AQ allocate when full");
    unsigned idx = tailIdx;
    AqEntry &e = slots[idx];
    e = AqEntry{};
    e.valid = true;
    e.seq = seq;
    e.pc = pc;
    e.dispatchCycle = now;
    tailIdx = (tailIdx + 1) % capacity;
    count++;
    ROWSIM_TRACE(TraceCategory::Queue, now,
                 "aq alloc seq=%llu pc=%#llx occ=%u/%u",
                 static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(pc), count, capacity);
    return idx;
}

AqEntry &
AtomicQueue::head()
{
    ROWSIM_ASSERT(!empty(), "AQ head on empty queue");
    return slots[headIdx];
}

void
AtomicQueue::freeHead(SeqNum seq)
{
    ROWSIM_ASSERT(!empty(), "AQ freeHead on empty queue");
    AqEntry &e = slots[headIdx];
    ROWSIM_ASSERT(e.seq == seq,
                  "AQ unlock out of order: head seq %llu, unlocking %llu",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(seq));
    e.valid = false;
    headIdx = (headIdx + 1) % capacity;
    count--;
    ROWSIM_TRACE_AT(TraceCategory::Queue, "aq free seq=%llu occ=%u/%u",
                    static_cast<unsigned long long>(seq), count, capacity);
}

bool
AtomicQueue::olderAllLocked(SeqNum seq) const
{
    for (unsigned i = 0; i < capacity; i++) {
        const AqEntry &e = slots[i];
        if (e.valid && e.seq < seq && !e.locked)
            return false;
    }
    return true;
}

bool
AtomicQueue::lineLocked(Addr line) const
{
    for (unsigned i = 0; i < capacity; i++) {
        const AqEntry &e = slots[i];
        if (e.valid && e.locked && e.line() == lineAlign(line))
            return true;
    }
    return false;
}

int
AtomicQueue::find(SeqNum seq) const
{
    for (unsigned i = 0; i < capacity; i++) {
        if (slots[i].valid && slots[i].seq == seq)
            return static_cast<int>(i);
    }
    return -1;
}

void
AtomicQueue::save(Ser &s) const
{
    s.section("aq");
    s.u32(capacity);
    s.u32(headIdx);
    s.u32(tailIdx);
    s.u32(count);
    for (const AqEntry &e : slots) {
        s.b(e.valid);
        s.u64(e.seq);
        s.u64(e.pc);
        s.u64(e.addr);
        s.b(e.locked);
        s.b(e.contended);
        s.b(e.oracleContended);
        s.b(e.onlyCalcAddr);
        s.b(e.predictedContended);
        s.u16(e.issuedCycle14);
        s.b(e.timestampValid);
        s.u8(static_cast<std::uint8_t>(e.lockSource));
        s.u64(e.newValue);
        s.u64(static_cast<std::uint64_t>(e.sqIdx));
        s.u64(e.dispatchCycle);
        s.u64(e.readyCycle);
        s.u64(e.issueCycle);
        s.u64(e.lockCycle);
    }
}

void
AtomicQueue::restore(Deser &d)
{
    d.section("aq");
    const std::uint32_t cap = d.u32();
    if (cap != capacity) {
        throw SnapshotError(strprintf(
            "AQ capacity mismatch: image %u, configured %u", cap,
            capacity));
    }
    headIdx = d.u32();
    tailIdx = d.u32();
    count = d.u32();
    for (AqEntry &e : slots) {
        e.valid = d.b();
        e.seq = d.u64();
        e.pc = d.u64();
        e.addr = d.u64();
        e.locked = d.b();
        e.contended = d.b();
        e.oracleContended = d.b();
        e.onlyCalcAddr = d.b();
        e.predictedContended = d.b();
        e.issuedCycle14 = d.u16();
        e.timestampValid = d.b();
        e.lockSource = static_cast<FillSource>(d.u8());
        e.newValue = d.u64();
        e.sqIdx = static_cast<int>(d.u64());
        e.dispatchCycle = d.u64();
        e.readyCycle = d.u64();
        e.issueCycle = d.u64();
        e.lockCycle = d.u64();
        // Span IDs are observability state, never serialized: a restored
        // in-flight atomic is untraced (counted as spansTruncated).
        e.spanId = 0;
    }
}

} // namespace rowsim
