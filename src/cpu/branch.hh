/**
 * @file
 * Branch direction predictor. A gshare predictor with a bimodal fallback
 * chooser stands in for the paper's TAGE-SC-L: synthetic traces carry the
 * resolved direction, so the predictor's only architectural effect is the
 * mispredict redirect bubble, for which gshare-class accuracy suffices.
 */

#ifndef ROWSIM_CPU_BRANCH_HH
#define ROWSIM_CPU_BRANCH_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

/** Tournament (bimodal + gshare) direction predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(unsigned table_bits = 12, unsigned history_bits = 12);

    /** Predict the direction for @p pc (does not update state). */
    bool predict(Addr pc) const;

    /** Update tables and history with the resolved direction.
     *  @return true when the earlier prediction was correct. */
    bool update(Addr pc, bool taken);

    StatGroup &stats() { return stats_; }

    /** Architectural state only (history + tables); stats travel in the
     *  System's stats pass. */
    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned bimodalIndex(Addr pc) const;
    unsigned gshareIndex(Addr pc) const;

    unsigned tableBits;
    unsigned historyBits;
    std::uint64_t history = 0;

    std::vector<std::uint8_t> bimodal; ///< 2-bit counters
    std::vector<std::uint8_t> gshare;  ///< 2-bit counters
    std::vector<std::uint8_t> chooser; ///< 2-bit: >=2 selects gshare

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_CPU_BRANCH_HH
