/**
 * @file
 * Load queue and unified store queue / store buffer.
 *
 * The store queue holds stores from dispatch until their write completes;
 * the suffix of committed-but-unwritten entries is the architectural store
 * buffer (SB). TSO: stores write strictly in order from the head.
 */

#ifndef ROWSIM_CPU_LSQ_HH
#define ROWSIM_CPU_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

/** Word-granular address (all simulated accesses are 8-byte words). */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~7ULL;
}

struct LqEntry
{
    bool valid = false;
    SeqNum seq = 0;
    Addr addr = invalidAddr; ///< known once the load issues
    bool issued = false;
    bool completed = false;
    bool isAtomic = false;
    /** Store this load forwarded from (0: value came from the cache).
     *  Used to filter memory-order-violation scans. */
    SeqNum fwdFrom = 0;
};

struct SqEntry
{
    bool valid = false;
    SeqNum seq = 0;
    Addr addr = invalidAddr; ///< known once the store executes
    std::uint64_t value = 0;
    bool addressReady = false;
    /** The value is valid for forwarding. Regular stores: with the
     *  address. Atomic STUs: the address resolves at address
     *  calculation but the value only once the modify completes. */
    bool valueReady = false;
    bool committed = false;
    bool writeInFlight = false;
    bool written = false;
    bool isAtomic = false; ///< the STU micro-op of an atomic RMW
};

/** Circular FIFO load queue. */
class LoadQueue
{
  public:
    explicit LoadQueue(unsigned entries);

    bool full() const { return count == capacity; }
    bool empty() const { return count == 0; }
    unsigned size() const { return count; }

    unsigned allocate(SeqNum seq, bool is_atomic);
    /** Deallocate the head at commit. @pre head seq == @p seq. */
    void freeHead(SeqNum seq);

    LqEntry &entry(unsigned idx) { return slots[idx]; }
    const LqEntry &entry(unsigned idx) const { return slots[idx]; }

    /** Sequence number of the oldest entry; 0 when empty. */
    SeqNum oldestSeq() const;
    /** True when @p seq is the oldest entry (lazy-issue condition). */
    bool isOldest(SeqNum seq) const;

    /** Apply @p fn to every valid entry (violation scans). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (unsigned i = 0, idx = headIdx; i < count;
             i++, idx = (idx + 1) % capacity) {
            fn(slots[idx]);
        }
    }

    /** Const overload (invariant checkers, diagnostics). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned i = 0, idx = headIdx; i < count;
             i++, idx = (idx + 1) % capacity) {
            fn(slots[idx]);
        }
    }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned capacity;
    unsigned headIdx = 0;
    unsigned tailIdx = 0;
    unsigned count = 0;
    std::vector<LqEntry> slots;
};

/** Circular FIFO unified store queue + store buffer. */
class StoreQueue
{
  public:
    explicit StoreQueue(unsigned entries);

    bool full() const { return count == capacity; }
    bool empty() const { return count == 0; }
    unsigned size() const { return count; }

    unsigned allocate(SeqNum seq, bool is_atomic);
    /** Deallocate the head once written. */
    void freeHead(SeqNum seq);

    SqEntry &entry(unsigned idx) { return slots[idx]; }
    const SqEntry &entry(unsigned idx) const { return slots[idx]; }
    /** Head entry (next to write); nullptr when empty. */
    SqEntry *headEntry();
    const SqEntry *
    headEntry() const
    {
        return count ? &slots[headIdx] : nullptr;
    }

    /** Slot index of an entry obtained from this queue. */
    unsigned
    indexOf(const SqEntry *e) const
    {
        return static_cast<unsigned>(e - slots.data());
    }

    /**
     * Youngest entry older than @p seq whose address matches the word of
     * @p addr (store-to-load forwarding source). nullptr when none.
     * Sets @p unknown_older when an older entry has an unresolved address
     * (the load may not safely bypass without a StoreSet prediction).
     */
    SqEntry *forwardSource(SeqNum seq, Addr addr, bool &unknown_older);

    /** Youngest entry older than @p seq to the same *line* that has not
     *  written yet (atomic same-line ordering / locality promotion). */
    SqEntry *olderSameLineUnwritten(SeqNum seq, Addr line);

    /** True when no valid entry is older than @p seq. */
    bool noneOlderThan(SeqNum seq) const;

    /** Store buffer empty: no committed-but-unwritten entries. */
    bool sbEmpty() const;

    /** Apply @p fn to every valid entry, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (unsigned i = 0, idx = headIdx; i < count;
             i++, idx = (idx + 1) % capacity) {
            fn(slots[idx]);
        }
    }

    /** Const overload (invariant checkers, diagnostics). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned i = 0, idx = headIdx; i < count;
             i++, idx = (idx + 1) % capacity) {
            fn(slots[idx]);
        }
    }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    unsigned capacity;
    unsigned headIdx = 0;
    unsigned tailIdx = 0;
    unsigned count = 0;
    std::vector<SqEntry> slots;
};

} // namespace rowsim

#endif // ROWSIM_CPU_LSQ_HH
