#include "cpu/branch.hh"

#include "sim/snapshot.hh"

namespace rowsim
{

namespace
{
void
bump(std::uint8_t &ctr, bool up)
{
    if (up && ctr < 3)
        ctr++;
    else if (!up && ctr > 0)
        ctr--;
}
} // namespace

BranchPredictor::BranchPredictor(unsigned table_bits, unsigned history_bits)
    : tableBits(table_bits), historyBits(history_bits),
      bimodal(1u << table_bits, 1), gshare(1u << table_bits, 1),
      chooser(1u << table_bits, 2), stats_("branch")
{
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & ((1u << tableBits) - 1);
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    std::uint64_t h = history & ((1ULL << historyBits) - 1);
    return static_cast<unsigned>((pc >> 2) ^ h) & ((1u << tableBits) - 1);
}

bool
BranchPredictor::predict(Addr pc) const
{
    bool use_gshare = chooser[bimodalIndex(pc)] >= 2;
    return use_gshare ? gshare[gshareIndex(pc)] >= 2
                      : bimodal[bimodalIndex(pc)] >= 2;
}

bool
BranchPredictor::update(Addr pc, bool taken)
{
    const unsigned bi = bimodalIndex(pc);
    const unsigned gi = gshareIndex(pc);
    const bool bimodal_taken = bimodal[bi] >= 2;
    const bool gshare_taken = gshare[gi] >= 2;
    const bool use_gshare = chooser[bi] >= 2;
    const bool predicted = use_gshare ? gshare_taken : bimodal_taken;

    // Chooser trains toward whichever component was right.
    if (bimodal_taken != gshare_taken)
        bump(chooser[bi], gshare_taken == taken);
    bump(bimodal[bi], taken);
    bump(gshare[gi], taken);
    history = (history << 1) | (taken ? 1 : 0);

    const bool correct = predicted == taken;
    stats_.counter("lookups")++;
    if (!correct)
        stats_.counter("mispredicts")++;
    return correct;
}

void
BranchPredictor::save(Ser &s) const
{
    s.section("branch");
    s.u32(tableBits);
    s.u32(historyBits);
    s.u64(history);
    for (std::uint8_t c : bimodal)
        s.u8(c);
    for (std::uint8_t c : gshare)
        s.u8(c);
    for (std::uint8_t c : chooser)
        s.u8(c);
}

void
BranchPredictor::restore(Deser &d)
{
    d.section("branch");
    const std::uint32_t tb = d.u32();
    const std::uint32_t hb = d.u32();
    if (tb != tableBits || hb != historyBits) {
        throw SnapshotError(strprintf(
            "branch predictor geometry mismatch: image %u/%u bits, "
            "configured %u/%u",
            tb, hb, tableBits, historyBits));
    }
    history = d.u64();
    for (std::uint8_t &c : bimodal)
        c = d.u8();
    for (std::uint8_t &c : gshare)
        c = d.u8();
    for (std::uint8_t &c : chooser)
        c = d.u8();
}

} // namespace rowsim
