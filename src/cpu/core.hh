/**
 * @file
 * Out-of-order core with unfenced atomic RMWs (Free Atomics) and the
 * Rush-or-Wait execution-policy machinery.
 *
 * Pipeline model: dispatch (fetchWidth/cycle, in order, stalls on
 * mispredicted branches until resolution + redirect penalty) -> issue
 * (issueWidth/cycle, oldest-ready-first, wakeup via producer dependent
 * lists) -> execute (ALU latencies, loads via the private cache,
 * store-to-load forwarding, StoreSet speculation with replay on
 * violation) -> in-order commit (commitWidth/cycle; stores drain to the
 * L1D from the SB after commit, strictly in order).
 *
 * Atomics follow §II-B: one ROB entry holding an LQ, SQ and AQ slot.
 * Eager execution issues the load-lock once operands are ready; lazy
 * execution waits until the atomic is the oldest memory instruction and
 * the SB has drained. RoW picks per-atomic based on the contention
 * predictor, computes addresses early (only-calculate-address) to widen
 * the contention-tracking window, and promotes predicted-lazy atomics to
 * eager when a matching older store is found in the SB (§IV-E).
 */

#ifndef ROWSIM_CPU_CORE_HH
#define ROWSIM_CPU_CORE_HH

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/atomic_queue.hh"
#include "cpu/branch.hh"
#include "cpu/lsq.hh"
#include "cpu/microop.hh"
#include "cpu/storeset.hh"
#include "cpu/stream.hh"
#include "mem/l1cache.hh"
#include "row/predictor.hh"
#include "sim/profile.hh"

namespace rowsim
{

class FunctionalMemory;
class SpanTracker;

class Core : public MemClient
{
  public:
    Core(CoreId id, const CoreParams &params, PrivateCache *cache,
         FunctionalMemory *fmem, InstStream *stream);

    /** Advance one cycle: complete, commit, drain stores, issue,
     *  dispatch. */
    void tick(Cycle now);

    // MemClient interface (called by the private cache).
    void accessDone(const MemResult &r) override;
    void atomicLineReady(std::uint64_t token, Addr line, FillSource source,
                         Cycle netIssueCycle, bool contentionHint,
                         Cycle now) override;
    bool lineLocked(Addr line) const override;
    void externalRequestSnoop(Addr line, Cycle now) override;
    bool tryForceUnlock(Addr line, Cycle now) override;

    /** Directory-oracle notification: another core showed interest in
     *  @p line; mark matching in-flight atomics (Fig. 5 ground truth). */
    void oracleContentionHint(Addr line, Cycle now);

    /** Stop fetching new work (quota reached); in-flight ops drain. */
    void halt() { halted = true; }
    bool isHalted() const { return halted; }
    /** True when the pipeline has fully drained. */
    bool drained() const;

    /**
     * Earliest future cycle at which this core can make progress with no
     * external event (cache completion, snoop, fill) arriving first:
     * the minimum over scheduled completions/unlocks, atomic re-issue
     * delays, and next-tick work (ready ops, drainable SB head,
     * committable ROB head, dispatchable fetch). invalidCycle when the
     * core is fully quiescent. May be conservative (early), never late —
     * System::run's idle fast-forward uses it as a skip bound.
     */
    Cycle nextEventCycle(Cycle now) const;

    std::uint64_t committedInstructions() const { return committedInsts; }
    std::uint64_t committedIterations() const { return iterations; }
    std::uint64_t committedAtomics() const { return committedAtomicCount; }

    StatGroup &stats() { return stats_; }
    ContentionPredictor &predictor() { return rowPredictor; }
    /** Attach the attribution profiler (System::setupProfiling). */
    void setProfiler(Profiler *p) { prof_ = p; }
    /** Attach the span tracker (System::setupSpans). */
    void setSpans(SpanTracker *s) { spans_ = s; }
    BranchPredictor &branchPredictor() { return branchPred; }
    StoreSet &storeSets() { return storeSet; }
    const AtomicQueue &atomicQueue() const { return aq; }

    // ---- invariant-checker / diagnostics probes (read-only) ----
    const LoadQueue &loadQueue() const { return lq; }
    const StoreQueue &storeQueue() const { return sq; }
    unsigned robOccupancy() const { return robCount(); }
    unsigned iqOcc() const { return iqOccupancy; }
    SeqNum lastCommittedSeq() const { return commitSeq; }
    SeqNum nextSeqNum() const { return nextSeq; }
    /** Is @p seq dispatched but not yet committed? */
    bool seqInFlight(SeqNum seq) const { return inFlight(seq); }
    /** Is a post-commit STU write / unlock scheduled for @p seq? */
    bool hasPendingUnlock(SeqNum seq) const;
    std::size_t memBarrierCount() const { return memBarriers.size(); }

    /** Crash diagnostics: one JSON object with pipeline heads, AQ locked
     *  lines, and occupancy — emitted by System::dumpCrashDiagnostics. */
    void dumpDiag(std::FILE *out, Cycle now) const;

    /** Architectural state: ROB, queues, predictors, scheduling events,
     *  the instruction stream position. Stats travel in the System's
     *  stats pass. */
    void save(Ser &s) const;
    void restore(Deser &d);

    /**
     * Functional fast-mode step (src/sim/funcmode.cc): architecturally
     * retire up to @p max_ops micro-ops straight from the stream.
     * Loads/stores/atomics call @p access(addr, exclusive) — the
     * synchronous MemSystem::funcAccess path — whose return value
     * (remote cache-to-cache transfer) stands in for the Dir
     * detector's contention evidence when training the RoW predictor.
     * Branches train the branch predictor exactly as dispatch does.
     * Stops early once @p iter_limit iterations or @p inst_limit
     * committed instructions are reached (0 = unbounded), or when the
     * core is halted. @return micro-ops retired.
     */
    std::uint64_t funcRun(const std::function<bool(Addr, bool)> &access,
                          unsigned max_ops, std::uint64_t iter_limit,
                          std::uint64_t inst_limit, Cycle now);

  private:
    /** Per-atomic execution progress. */
    enum class AState : std::uint8_t
    {
        None,         ///< not an atomic
        WaitOperands, ///< waiting for register sources
        WaitLazy,     ///< predicted/forced lazy; waiting for LQ-head+SB-empty
        WaitStore,    ///< waiting for an older same-word store to write
        MemIssued,    ///< load-lock in the memory system
        WaitLock,     ///< line filled, but an older atomic must lock first
        Locked,       ///< line locked; modify op in flight
        ExecDoneFwd,  ///< forwarded value consumed; lock set at store write
        Done,         ///< modify complete (lock held until STU writes)
    };

    struct RobEntry
    {
        MicroOp op;
        SeqNum seq = 0;
        bool busy = false;
        bool issued = false;
        bool completed = false;
        bool wokeDependents = false;
        std::uint8_t depsPending = 0;
        std::uint16_t replayGen = 0;
        Cycle dispatchCycle = invalidCycle;
        Cycle readyCycle = invalidCycle;
        int lqIdx = -1;
        int sqIdx = -1;
        int aqIdx = -1;
        std::uint32_t ssSet = StoreSet::invalidSet;
        AState astate = AState::None;
        bool lazySelected = false;
        bool forwardedAtomic = false;
        SeqNum waitStoreSeq = 0;
        /** Re-issue pipeline delay once a wait condition is satisfied. */
        Cycle reissueReadyAt = invalidCycle;
        /** Directory-notification hint carried by the fill (extension). */
        bool fillContentionHint = false;
        std::uint64_t result = 0;
        std::uint64_t atomicNewValue = 0;
        std::vector<SeqNum> dependents;
    };

    // --- pipeline stages ---
    void processCompletions(Cycle now);
    void commitStage(Cycle now);
    void drainStores(Cycle now);
    void issueStage(Cycle now);
    void dispatchStage(Cycle now);

    /** Token bit marking a post-commit store-buffer write; the low bits
     *  then carry the SQ slot index instead of a sequence number. */
    static constexpr std::uint64_t sbWriteToken = 1ULL << 63;

    // --- helpers ---
    RobEntry &rob(SeqNum seq);
    const RobEntry &rob(SeqNum seq) const;
    bool inFlight(SeqNum seq) const;
    unsigned robCount() const;
    void pushReady(SeqNum seq, Cycle now);
    void completeOp(SeqNum seq, Cycle now);
    void scheduleCompletion(SeqNum seq, Cycle when);
    std::uint64_t token(const RobEntry &e) const;

    /** Attempt to issue one op; @return true when it made progress (a
     *  slot was consumed), false when it must wait (re-queued). */
    bool tryIssue(SeqNum seq, Cycle now);
    bool tryIssueLoad(RobEntry &e, Cycle now);
    bool tryIssueStore(RobEntry &e, Cycle now);
    bool tryIssueFence(RobEntry &e, Cycle now);
    bool tryIssueAtomic(RobEntry &e, Cycle now);
    /** Execute the atomic's memory phase (eager or lazy real issue). */
    bool atomicExecute(RobEntry &e, Cycle now);
    /** Decide eager/lazy for a dispatching atomic (policy + predictor). */
    bool atomicSelectLazy(const MicroOp &op);
    /** Lazy-issue condition: oldest mem instruction + SB drained. */
    bool lazyConditionMet(const RobEntry &e) const;
    /** Fence-issue condition: older loads done, older stores written. */
    bool fenceConditionMet(const RobEntry &e) const;
    /** Any active memory barrier older than @p seq (mfence / fenced
     *  atomic) that blocks this op's issue? */
    bool blockedByBarrier(SeqNum seq) const;
    /** All older loads in the LQ have completed. */
    bool olderLoadsComplete(SeqNum seq) const;
    /** All older stores in the SQ have written. */
    bool olderStoresWritten(SeqNum seq) const;
    /** Compute the atomic's modify result from the loaded value. */
    std::uint64_t atomicModify(const MicroOp &op, std::uint64_t old) const;
    /** Commit one atomic: STU enters the (empty) SB and writes next
     *  cycle; unlock + predictor training happen at the write. */
    void commitAtomic(RobEntry &e, Cycle now);
    /** STU write: functional update, unlock, train, free AQ/SQ. */
    void atomicUnlock(SeqNum seq, Cycle now);
    /** A store wrote: wake forwarded atomics waiting to lock. */
    void storeWritten(SeqNum seq, Addr addr, Cycle now);
    /** Engage the lock for an atomic whose line is present in M. */
    void acquireLock(RobEntry &e, FillSource source, Cycle now);
    /** Re-check WaitLock atomics after any lock/unlock event. */
    void pokeWaitingLocks(Cycle now);
    /** Memory-order violation: replay the load. */
    void replayLoad(RobEntry &load, Addr store_pc, Cycle now);
    /** Fig. 4 instrumentation at the atomic's real memory issue. */
    void sampleIndependentInsts(const RobEntry &e);
    /** CPI stack: why could the commit head not retire this cycle? */
    CpiBucket classifyCommitStall() const;
    /** CPI stack: charge this cycle's commitWidth slots (called once
     *  per tick when the cpi profile category is on). */
    void profileCommitSlots(unsigned retired);

    CoreId coreId;
    CoreParams params;
    PrivateCache *cache;
    FunctionalMemory *fmem;
    InstStream *stream;

    std::vector<RobEntry> robSlots;
    LoadQueue lq;
    StoreQueue sq;
    AtomicQueue aq;
    BranchPredictor branchPred;
    StoreSet storeSet;
    ContentionPredictor rowPredictor;

    SeqNum nextSeq = 1;   ///< next sequence number to dispatch
    SeqNum commitSeq = 0; ///< last committed sequence number

    /** Ready-to-issue ops, oldest first. */
    std::priority_queue<SeqNum, std::vector<SeqNum>,
                        std::greater<SeqNum>> readyQueue;
    /** Ops that attempted issue and must re-try (lazy waits, fence waits,
     *  same-word store waits, barrier blocks). */
    std::vector<SeqNum> waiting;
    /** Scheduled completion events. */
    std::multimap<Cycle, std::pair<SeqNum, std::uint16_t>> completions;
    /** Pending STU writes (cycle -> atomic seq). */
    std::multimap<Cycle, SeqNum> pendingUnlocks;
    /** Active mfences / fenced atomics gating younger memory issue. */
    std::set<SeqNum> memBarriers;
    /** Forwarded atomics waiting for their store's write to take the
     *  lock (store seq -> atomic seq). */
    std::multimap<SeqNum, SeqNum> fwdLockWaiters;

    std::deque<MicroOp> fetchBuffer;
    SeqNum fetchBlockedBy = 0;
    Cycle fetchBlockedUntil = 0;
    unsigned iqOccupancy = 0;
    bool halted = false;
    /** issueStage ran out of slots before re-trying every waiting op, so
     *  a waiting op's condition may be met without its reissueReadyAt
     *  being stamped yet — nextEventCycle must not skip past next tick. */
    bool issueTruncated_ = false;

    std::uint64_t committedInsts = 0;
    std::uint64_t committedAtomicCount = 0;
    std::uint64_t iterations = 0;

    Profiler *prof_ = nullptr;
    SpanTracker *spans_ = nullptr;

    StatGroup stats_;
};

} // namespace rowsim

#endif // ROWSIM_CPU_CORE_HH
