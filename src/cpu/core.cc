#include "cpu/core.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"
#include "mem/memsystem.hh"
#include "sim/checker.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"

namespace rowsim
{

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::AtomicRMW: return "AtomicRMW";
      case OpClass::Branch: return "Branch";
      case OpClass::Fence: return "Fence";
      case OpClass::Nop: return "Nop";
    }
    return "?";
}

const char *
atomicOpName(AtomicOp a)
{
    switch (a) {
      case AtomicOp::FetchAdd: return "FetchAdd";
      case AtomicOp::CompareSwap: return "CompareSwap";
      case AtomicOp::Swap: return "Swap";
    }
    return "?";
}

Core::Core(CoreId id, const CoreParams &p, PrivateCache *c,
           FunctionalMemory *fm, InstStream *s)
    : coreId(id), params(p), cache(c), fmem(fm), stream(s),
      robSlots(p.robEntries), lq(p.lqEntries), sq(p.sbEntries),
      aq(p.aqEntries), storeSet(), rowPredictor(p.row),
      stats_(strprintf("core%u", id))
{
    cache->setClient(this);
    rowPredictor.setCoreId(id);
}

Core::RobEntry &
Core::rob(SeqNum seq)
{
    return robSlots[seq % robSlots.size()];
}

const Core::RobEntry &
Core::rob(SeqNum seq) const
{
    return robSlots[seq % robSlots.size()];
}

bool
Core::inFlight(SeqNum seq) const
{
    return seq > commitSeq && seq < nextSeq;
}

unsigned
Core::robCount() const
{
    return static_cast<unsigned>(nextSeq - 1 - commitSeq);
}

std::uint64_t
Core::token(const RobEntry &e) const
{
    return (static_cast<std::uint64_t>(e.replayGen) << 48) | e.seq;
}

void
Core::pushReady(SeqNum seq, Cycle now)
{
    RobEntry &e = rob(seq);
    if (e.readyCycle == invalidCycle)
        e.readyCycle = now;
    if (e.op.cls == OpClass::AtomicRMW && e.aqIdx >= 0) {
        AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
        if (a.readyCycle == invalidCycle)
            a.readyCycle = now;
    }
    readyQueue.push(seq);
}

void
Core::scheduleCompletion(SeqNum seq, Cycle when)
{
    completions.emplace(when, std::make_pair(seq, rob(seq).replayGen));
}

std::uint64_t
Core::atomicModify(const MicroOp &op, std::uint64_t old) const
{
    switch (op.aop) {
      case AtomicOp::FetchAdd:
        return old + op.value;
      case AtomicOp::Swap:
        return op.value;
      case AtomicOp::CompareSwap:
        // The expected value is the current content unless the workload
        // injects a deliberate mismatch; a failed CAS writes nothing
        // (modelled as rewriting the old value).
        return op.casExpectMismatch ? old : op.value;
    }
    return old;
}

// ---------------------------------------------------------------------
// MemClient interface
// ---------------------------------------------------------------------

bool
Core::lineLocked(Addr line) const
{
    return aq.lineLocked(line);
}

void
Core::externalRequestSnoop(Addr line, Cycle now)
{
    (void)now;
    const ContentionDetector det = params.row.detector;
    aq.forEachMatching(line, [det](AqEntry &e) {
        if (det == ContentionDetector::EW) {
            if (e.locked)
                e.contended = true; // execution window only (§IV-A)
        } else {
            e.contended = true; // ready window (§IV-B)
        }
    });
}

void
Core::oracleContentionHint(Addr line, Cycle now)
{
    (void)now;
    aq.forEachMatching(line, [](AqEntry &e) { e.oracleContended = true; });
}

void
Core::accessDone(const MemResult &r)
{
    if (r.token & sbWriteToken) {
        // A store-buffer write completed. Post-commit, so it must not
        // touch the ROB (the slot may have been reused): the token
        // carries the SQ index directly.
        const auto idx = static_cast<unsigned>(r.token & ~sbWriteToken);
        SqEntry &s = sq.entry(idx);
        ROWSIM_ASSERT(s.valid && s.committed && s.writeInFlight,
                      "store write completion mismatch (sq idx %u)", idx);
        s.written = true;
        s.writeInFlight = false;
        stats_.counter("storeWrites")++;
        storeWritten(s.seq, s.addr, r.doneCycle);
        return;
    }

    const SeqNum seq = r.token & 0xffffffffffffULL;
    const auto gen = static_cast<std::uint16_t>(r.token >> 48);
    if (!inFlight(seq))
        return; // long gone
    RobEntry &e = rob(seq);
    if (e.seq != seq || e.replayGen != gen)
        return; // stale completion from a replayed access

    ROWSIM_ASSERT(e.op.cls == OpClass::Load, "unexpected accessDone class");
    e.result = r.value;
    stats_.counter(r.source == FillSource::L1Hit ? "loadL1Hits"
                                                 : "loadL1Misses")++;
    completeOp(seq, r.doneCycle);
}

void
Core::acquireLock(RobEntry &e, FillSource source, Cycle now)
{
    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
    ROWSIM_CHECK_EVENT(CheckCategory::Locks,
                       cache->lineState(a.line()) == CacheState::Modified,
                       "core%u seq %llu locking line %#llx not held in M",
                       coreId, static_cast<unsigned long long>(e.seq),
                       static_cast<unsigned long long>(a.line()));
    a.locked = true;
    a.lockCycle = now;
    a.lockSource = source;
    if (SpanTracker::enabled() && spans_ && a.spanId)
        spans_->transition(a.spanId, SpanSeg::LockHeld, now);
    if (Profiler::enabled(ProfCategory::Lines) && prof_)
        prof_->lineAcquire(a.line(), coreId);
    ROWSIM_TRACE(TraceCategory::Atomic, now,
                 "core%u lock seq=%llu line=%#llx source=%d", coreId,
                 static_cast<unsigned long long>(e.seq),
                 static_cast<unsigned long long>(a.line()),
                 static_cast<int>(source));

    // Directory latency detector (§IV-C): a fill from a remote private
    // cache whose 14-bit-wrapped latency exceeds the threshold means the
    // line was contended.
    // Directory-notification extension: the directory saw concurrent
    // interest in this transaction.
    if (params.row.detector == ContentionDetector::RWDirNotify &&
        e.fillContentionHint) {
        a.contended = true;
    }
    if (params.row.detector == ContentionDetector::RWDir &&
        source == FillSource::RemoteCache && a.timestampValid) {
        const std::uint16_t mask =
            static_cast<std::uint16_t>((1u << params.row.timestampBits) - 1);
        const std::uint16_t lat =
            static_cast<std::uint16_t>((now - a.issuedCycle14) & mask);
        stats_.average("atomicRemoteFillLatency").sample(lat);
        if (lat > params.row.latencyThreshold)
            a.contended = true;
    }

    // Read under the lock, compute the modify result.
    e.result = fmem->read64(a.addr);
    e.atomicNewValue = atomicModify(e.op, e.result);
    e.astate = AState::Locked;
    SqEntry &stu = sq.entry(static_cast<unsigned>(e.sqIdx));
    stu.value = e.atomicNewValue;
    stu.valueReady = true;

    Cycle read_latency;
    switch (source) {
      case FillSource::L1Hit:
        read_latency = 5;
        break;
      case FillSource::L2Hit:
        read_latency = 12;
        break;
      default:
        read_latency = 2; // fill-to-use after a miss
        break;
    }
    scheduleCompletion(e.seq, now + read_latency + 1);
    pokeWaitingLocks(now);
}

void
Core::pokeWaitingLocks(Cycle now)
{
    // Locks engage in AQ order; after every lock/unlock event, the next
    // WaitLock atomic may proceed (if its line survived unlocked).
    aq.forEach([this, now](AqEntry &a) {
        if (!a.valid || a.locked)
            return;
        if (!inFlight(a.seq))
            return;
        RobEntry &e = rob(a.seq);
        if (e.astate != AState::WaitLock || !aq.olderAllLocked(a.seq))
            return;
        if (cache->lineState(a.line()) == CacheState::Modified) {
            acquireLock(e, FillSource::L1Hit, now);
        } else {
            // The line was stolen while waiting its turn: refetch.
            e.astate = AState::MemIssued;
            if (SpanTracker::enabled() && spans_ && a.spanId)
                spans_->transition(a.spanId, SpanSeg::Execute, now);
            MemAccess m;
            m.addr = a.addr;
            m.token = token(e);
            m.needExclusive = true;
            m.isAtomic = true;
            m.spanId = a.spanId;
            stats_.counter("lockWaitRefetches")++;
            cache->access(m, now);
        }
    });
}

void
Core::atomicLineReady(std::uint64_t tok, Addr line, FillSource source,
                      Cycle netIssueCycle, bool contentionHint, Cycle now)
{
    (void)netIssueCycle;
    const SeqNum seq = tok & 0xffffffffffffULL;
    const auto gen = static_cast<std::uint16_t>(tok >> 48);
    RobEntry &e = rob(seq);
    ROWSIM_ASSERT(e.seq == seq && e.replayGen == gen,
                  "stale atomicLineReady (seq %llu)",
                  static_cast<unsigned long long>(seq));
    ROWSIM_ASSERT(e.astate == AState::MemIssued,
                  "atomicLineReady in state %d", static_cast<int>(e.astate));

    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
    ROWSIM_ASSERT(a.seq == seq && a.line() == line, "AQ mismatch at lock");
    e.fillContentionHint = contentionHint;

    if (!aq.olderAllLocked(seq)) {
        // An older atomic has not engaged its lock yet. Locking now would
        // stall other cores for the older atomic's entire (possibly
        // contended) acquisition — and can deadlock across cores. The
        // line stays unlocked in M; we lock when our turn comes, or
        // refetch if it gets stolen meanwhile.
        e.astate = AState::WaitLock;
        if (SpanTracker::enabled() && spans_ && a.spanId)
            spans_->transition(a.spanId, SpanSeg::UnblockWait, now);
        stats_.counter("lockWaits")++;
        return;
    }

    acquireLock(e, source, now);
}

bool
Core::tryForceUnlock(Addr line, Cycle now)
{
    (void)now;
    int idx = -1;
    aq.forEachMatching(line, [&idx](AqEntry &a) {
        if (a.locked)
            idx = 1; // found; resolved below via scan
    });
    if (idx < 0)
        return false;

    // Locate the locked entry precisely.
    SeqNum seq = 0;
    aq.forEachMatching(line, [&seq](AqEntry &a) {
        if (a.locked)
            seq = a.seq;
    });
    if (seq <= commitSeq)
        return false; // committed: the unlock is imminent, keep waiting

    RobEntry &e = rob(seq);
    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
    a.locked = false;
    a.contended = true; // someone waited long enough to steal: contended
    a.timestampValid = false;
    a.lockCycle = invalidCycle;

    e.replayGen++; // invalidate any in-flight completion events
    e.completed = false;
    e.issued = false;
    e.forwardedAtomic = false;
    e.lazySelected = true; // replay lazily: the line is contended
    if (SpanTracker::enabled() && spans_ && a.spanId)
        spans_->replay(a.spanId, now);
    e.astate = AState::WaitOperands;
    e.reissueReadyAt = invalidCycle;
    iqOccupancy++; // back into the issue queue for the replay
    LqEntry &l = lq.entry(static_cast<unsigned>(e.lqIdx));
    l.issued = false;
    l.completed = false;
    waiting.push_back(seq);
    stats_.counter("forcedUnlocks")++;
    ROWSIM_TRACE(TraceCategory::Atomic, now,
                 "core%u forcedUnlock seq=%llu line=%#llx (replaying lazy)",
                 coreId, static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(lineAlign(line)));
    ROWSIM_TRACE_INSTANT(
        TraceCategory::Atomic, static_cast<int>(coreId), traceTidAtomics,
        "forcedUnlock", now,
        strprintf("{\"seq\":%llu,\"line\":\"%#llx\"}",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(lineAlign(line))));
    return true;
}

// ---------------------------------------------------------------------
// Completion / wakeup
// ---------------------------------------------------------------------

void
Core::completeOp(SeqNum seq, Cycle now)
{
    RobEntry &e = rob(seq);
    if (e.completed)
        return;
    e.completed = true;

    if (e.lqIdx >= 0) {
        LqEntry &l = lq.entry(static_cast<unsigned>(e.lqIdx));
        if (l.seq == seq)
            l.completed = true;
    }
    if (e.astate == AState::Locked)
        e.astate = AState::Done;
    if (e.op.cls == OpClass::Fence)
        memBarriers.erase(seq);

    if (!e.wokeDependents) {
        e.wokeDependents = true;
        for (SeqNum d : e.dependents) {
            if (!inFlight(d))
                continue;
            RobEntry &dep = rob(d);
            ROWSIM_ASSERT(dep.depsPending > 0, "dependent underflow");
            if (--dep.depsPending == 0)
                pushReady(d, now);
        }
    }

    if (seq == fetchBlockedBy) {
        fetchBlockedBy = 0;
        fetchBlockedUntil = now + params.mispredictPenalty;
    }
}

void
Core::processCompletions(Cycle now)
{
    while (!completions.empty() && completions.begin()->first <= now) {
        auto [seq, gen] = completions.begin()->second;
        completions.erase(completions.begin());
        if (!inFlight(seq))
            continue;
        RobEntry &e = rob(seq);
        if (e.seq != seq || e.replayGen != gen)
            continue; // stale (replay)
        completeOp(seq, now);
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
Core::commitAtomic(RobEntry &e, Cycle now)
{
    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
    ROWSIM_ASSERT(a.locked, "committing an unlocked atomic");
    SqEntry &s = sq.entry(static_cast<unsigned>(e.sqIdx));
    s.committed = true;
    s.addressReady = true;
    s.addr = a.addr;
    s.value = e.atomicNewValue;
    // The ROB slot may be reused before the unlock event fires; stash
    // everything atomicUnlock needs in the AQ entry.
    a.newValue = e.atomicNewValue;
    a.sqIdx = e.sqIdx;
    if (SpanTracker::enabled() && spans_ && a.spanId) {
        spans_->close(a.spanId, now);
        a.spanId = 0; // post-commit unlock traffic is outside the span
    }
    pendingUnlocks.emplace(now + 1, e.seq);
}

void
Core::atomicUnlock(SeqNum seq, Cycle now)
{
    AqEntry &a = aq.head();
    ROWSIM_ASSERT(a.seq == seq, "unlock out of AQ order");
    ROWSIM_CHECK_EVENT(CheckCategory::Locks,
                       cache->lineState(a.line()) == CacheState::Modified,
                       "core%u seq %llu unlocking line %#llx no longer in M "
                       "(lock lost while held)",
                       coreId, static_cast<unsigned long long>(seq),
                       static_cast<unsigned long long>(a.line()));

    // STU write: the line is locked and Modified in the L1D, so the
    // write happens immediately and atomically releases the lock.
    fmem->write64(a.addr, a.newValue);
    SqEntry &s = sq.entry(static_cast<unsigned>(a.sqIdx));
    ROWSIM_ASSERT(s.seq == seq && s.isAtomic, "STU slot mismatch at unlock");
    s.written = true;

    const Addr line = a.line();
    const bool contended = a.contended;

    // Statistics: Fig. 5 / Fig. 6 / Fig. 12 inputs.
    stats_.counter("atomicsUnlocked")++;
    if (contended)
        stats_.counter("atomicsDetectedContended")++;
    if (a.oracleContended)
        stats_.counter("atomicsOracleContended")++;
    if (a.issueCycle != invalidCycle && a.lockCycle != invalidCycle) {
        stats_.average("atomicDispatchToIssue")
            .sample(static_cast<double>(a.issueCycle - a.dispatchCycle));
        stats_.average("atomicIssueToLock")
            .sample(static_cast<double>(a.lockCycle - a.issueCycle));
        stats_.average("atomicLockToUnlock")
            .sample(static_cast<double>(now - a.lockCycle));
        stats_.average("atomicDispatchToUnlock")
            .sample(static_cast<double>(now - a.dispatchCycle));
        // Chrome trace: the lock hold interval (sequential per core) and
        // the atomic's whole AQ residency (overlapping -> async span).
        ROWSIM_TRACE_COMPLETE(
            TraceCategory::Atomic, static_cast<int>(coreId),
            traceTidAtomics, "lock", a.lockCycle, now,
            strprintf("{\"seq\":%llu,\"line\":\"%#llx\",\"contended\":%d,"
                      "\"oracle\":%d}",
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(line),
                      contended ? 1 : 0, a.oracleContended ? 1 : 0));
        ROWSIM_TRACE_SPAN(
            TraceCategory::Atomic, static_cast<int>(coreId),
            traceTidAtomics, "aqResidency", seq, a.dispatchCycle, now,
            strprintf("{\"seq\":%llu,\"lazy\":%d}",
                      static_cast<unsigned long long>(seq),
                      a.predictedContended ? 1 : 0));
    }
    ROWSIM_TRACE(TraceCategory::Atomic, now,
                 "core%u unlock seq=%llu line=%#llx held=%llu "
                 "contended=%d oracle=%d",
                 coreId, static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(line),
                 static_cast<unsigned long long>(
                     a.lockCycle == invalidCycle ? 0 : now - a.lockCycle),
                 contended ? 1 : 0, a.oracleContended ? 1 : 0);

    if (prof_) {
        if (Profiler::enabled(ProfCategory::Lines) &&
            a.lockCycle != invalidCycle) {
            prof_->lineRelease(line, now - a.lockCycle, contended);
        }
        if (Profiler::enabled(ProfCategory::Pcs) &&
            a.issueCycle != invalidCycle &&
            a.lockCycle != invalidCycle) {
            const std::uint64_t d2i = a.issueCycle - a.dispatchCycle;
            const std::uint64_t i2l = a.lockCycle - a.issueCycle;
            const std::uint64_t l2u = now - a.lockCycle;
            prof_->pcSample(a.pc, d2i, i2l, l2u);
            stats_.histogram("atomicDispatchToIssueHist", 0, 4096, 128)
                .sample(static_cast<double>(d2i));
            stats_.histogram("atomicIssueToLockHist", 0, 4096, 128)
                .sample(static_cast<double>(i2l));
            stats_.histogram("atomicLockToUnlockHist", 0, 4096, 128)
                .sample(static_cast<double>(l2u));
        }
        if (Profiler::enabled(ProfCategory::Row) &&
            params.atomicPolicy == AtomicPolicy::RoW) {
            // Mispredict cost: a predicted-lazy atomic that saw no
            // contention wasted its ready->issue wait; a predicted-eager
            // atomic that hit contention paid a contended acquisition.
            std::uint64_t cost = 0;
            if (a.predictedContended && !contended &&
                a.readyCycle != invalidCycle &&
                a.issueCycle != invalidCycle) {
                cost = a.issueCycle - a.readyCycle;
            } else if (!a.predictedContended && contended &&
                       a.issueCycle != invalidCycle &&
                       a.lockCycle != invalidCycle) {
                cost = a.lockCycle - a.issueCycle;
            }
            prof_->rowOutcome(a.pc, a.predictedContended, contended,
                              cost);
        }
    }

    if (params.atomicPolicy == AtomicPolicy::RoW)
        rowPredictor.update(a.pc, contended, now);
    if (params.atomicPolicy == AtomicPolicy::Fenced)
        memBarriers.erase(seq);

    a.locked = false;
    aq.freeHead(seq);
    storeWritten(seq, s.addr, now);
    cache->unlockNotify(line, now);
}

void
Core::commitStage(Cycle now)
{
    for (unsigned i = 0; i < params.commitWidth; i++) {
        const SeqNum seq = commitSeq + 1;
        if (!inFlight(seq))
            break;
        RobEntry &e = rob(seq);
        if (!e.completed)
            break;

        if (e.op.cls == OpClass::AtomicRMW) {
            const AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
            // Free Atomics commit rule: SB drained, lock held.
            if (!a.locked || !sq.sbEmpty())
                break;
            commitAtomic(e, now);
            committedAtomicCount++;
        }

        if (e.lqIdx >= 0)
            lq.freeHead(seq);
        if (e.op.cls == OpClass::Store) {
            SqEntry &s = sq.entry(static_cast<unsigned>(e.sqIdx));
            ROWSIM_ASSERT(s.addressReady, "committing unresolved store");
            s.committed = true;
        }

        commitSeq = seq;
        committedInsts++;
        if (e.op.endOfIteration)
            iterations++;
        e.busy = false;
    }
}

CpiBucket
Core::classifyCommitStall() const
{
    const SeqNum head_seq = commitSeq + 1;
    if (!inFlight(head_seq)) {
        // ROB empty: either the core is done (halted, draining) or the
        // front end could not supply instructions.
        return halted ? CpiBucket::Idle : CpiBucket::FrontendStall;
    }
    const RobEntry &e = rob(head_seq);

    if (e.op.cls == OpClass::AtomicRMW && e.aqIdx >= 0) {
        const AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
        if (e.completed) {
            // Free Atomics commit rule: lock held AND SB drained. A
            // completed-but-blocked head is waiting for the SB (or, for
            // a forwarded atomic, for its store's write to engage the
            // lock — also an SB-drain dependency).
            if (!a.locked || !sq.sbEmpty())
                return CpiBucket::SqDrainWait;
            return CpiBucket::AtomicExecute;
        }
        switch (e.astate) {
          case AState::WaitOperands:
            return e.lazySelected ? CpiBucket::AtomicLazyWait
                                  : CpiBucket::AtomicExecute;
          case AState::WaitLazy:
            return CpiBucket::AtomicLazyWait;
          case AState::WaitStore:
            return CpiBucket::SqDrainWait;
          case AState::MemIssued:
            // A live MSHR for the target line means the acquisition is
            // out in the coherence fabric; otherwise the atomic is in
            // its local execute/lock path.
            return a.addr != invalidAddr &&
                           cache->hasMshr(lineAlign(a.addr))
                       ? CpiBucket::CoherenceMiss
                       : CpiBucket::AtomicExecute;
          default:
            return CpiBucket::AtomicExecute;
        }
    }

    if (!e.completed) {
        if (e.op.cls == OpClass::Load && e.issued &&
            cache->hasMshr(lineAlign(e.op.addr)))
            return CpiBucket::CoherenceMiss;
        return robCount() >= params.robEntries ? CpiBucket::RobFull
                                               : CpiBucket::Exec;
    }
    // Completed non-atomic heads always commit, so this is unreachable
    // for stall slots (only hit when retired == commitWidth).
    return CpiBucket::Exec;
}

void
Core::profileCommitSlots(unsigned retired)
{
    prof_->cpiSlots(coreId, CpiBucket::Retired, retired);
    if (retired < params.commitWidth) {
        prof_->cpiSlots(coreId, classifyCommitStall(),
                        params.commitWidth - retired);
    }
}

// ---------------------------------------------------------------------
// Store drain (SB -> L1D)
// ---------------------------------------------------------------------

void
Core::storeWritten(SeqNum store_seq, Addr addr, Cycle now)
{
    (void)addr;
    // Forwarded atomics lock the line the instant their forwarding store
    // writes (§IV-E / Free Atomics forwarding guarantee).
    auto range = fwdLockWaiters.equal_range(store_seq);
    std::vector<SeqNum> to_lock;
    for (auto it = range.first; it != range.second; ++it)
        to_lock.push_back(it->second);
    fwdLockWaiters.erase(range.first, range.second);
    for (SeqNum aseq : to_lock) {
        if (!inFlight(aseq))
            continue;
        RobEntry &e = rob(aseq);
        if (e.seq != aseq || e.astate != AState::ExecDoneFwd)
            continue;
        // The forwarding store just wrote, so it (and everything older)
        // has committed: older atomics have unlocked and the lock can
        // engage immediately, preserving atomic locality.
        if (aq.olderAllLocked(aseq)) {
            acquireLock(e, FillSource::Forwarded, now);
        } else {
            e.astate = AState::WaitLock;
            if (SpanTracker::enabled() && spans_) {
                AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
                if (a.spanId)
                    spans_->transition(a.spanId, SpanSeg::UnblockWait,
                                       now);
            }
            stats_.counter("lockWaits")++;
        }
    }
}

void
Core::drainStores(Cycle now)
{
    // Retire written heads.
    while (SqEntry *h = sq.headEntry()) {
        if (h->written)
            sq.freeHead(h->seq);
        else
            break;
    }
    SqEntry *h = sq.headEntry();
    if (h && h->committed && !h->written && !h->writeInFlight &&
        !h->isAtomic) {
        h->writeInFlight = true;
        ROWSIM_TRACE(TraceCategory::Pipeline, now,
                     "core%u sb-drain seq=%llu addr=%#llx occ=%u",
                     coreId, static_cast<unsigned long long>(h->seq),
                     static_cast<unsigned long long>(h->addr),
                     sq.size());
        MemAccess a;
        a.addr = h->addr;
        a.token = sbWriteToken | sq.indexOf(h);
        a.needExclusive = true;
        a.isWrite = true;
        a.writeValue = h->value;
        cache->access(a, now);
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
Core::blockedByBarrier(SeqNum seq) const
{
    return !memBarriers.empty() && *memBarriers.begin() < seq;
}

bool
Core::olderLoadsComplete(SeqNum seq) const
{
    bool ok = true;
    const_cast<LoadQueue &>(lq).forEach([&](LqEntry &l) {
        if (l.seq < seq && !l.completed)
            ok = false;
    });
    return ok;
}

bool
Core::olderStoresWritten(SeqNum seq) const
{
    bool ok = true;
    const_cast<StoreQueue &>(sq).forEach([&](SqEntry &s) {
        if (s.seq < seq && !s.written)
            ok = false;
    });
    return ok;
}

bool
Core::lazyConditionMet(const RobEntry &e) const
{
    return lq.isOldest(e.seq) && sq.noneOlderThan(e.seq);
}

bool
Core::fenceConditionMet(const RobEntry &e) const
{
    return olderLoadsComplete(e.seq) && olderStoresWritten(e.seq);
}

bool
Core::atomicSelectLazy(const MicroOp &op)
{
    switch (params.atomicPolicy) {
      case AtomicPolicy::Eager:
        return false;
      case AtomicPolicy::Lazy:
      case AtomicPolicy::Fenced:
        return true;
      case AtomicPolicy::RoW:
        return rowPredictor.predictContended(op.pc);
    }
    return false;
}

void
Core::sampleIndependentInsts(const RobEntry &e)
{
    // Fig. 4: how much independent work surrounds the atomic at issue?
    std::uint64_t older_unexecuted = 0;
    for (SeqNum s = commitSeq + 1; s < e.seq; s++) {
        if (!rob(s).completed)
            older_unexecuted++;
    }
    std::uint64_t younger_started = 0;
    for (SeqNum s = e.seq + 1; s < nextSeq; s++) {
        if (rob(s).issued)
            younger_started++;
    }
    stats_.average("olderUnexecutedAtIssue")
        .sample(static_cast<double>(older_unexecuted));
    stats_.average("youngerStartedAtIssue")
        .sample(static_cast<double>(younger_started));
}

bool
Core::atomicExecute(RobEntry &e, Cycle now)
{
    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
    if (a.addr == invalidAddr)
        a.addr = e.op.addr; // address calculation (lazy without RW)

    // The STU's address is known from here on: younger loads/atomics must
    // not treat it as an unresolved store (that would serialise every
    // atomic behind every older one).
    SqEntry &stu = sq.entry(static_cast<unsigned>(e.sqIdx));
    stu.addressReady = true;
    stu.addr = a.addr;

    // Atomics never speculate past unresolved older stores: wait for all
    // older store addresses (cheap in practice; store addresses resolve
    // at issue).
    bool unknown_older = false;
    SqEntry *src = sq.forwardSource(e.seq, a.addr, unknown_older);
    if (unknown_older) {
        // A store between the youngest match and the atomic is still
        // unresolved: it could target our word. Atomics never speculate
        // on memory dependences — wait for all older store addresses.
        e.astate = AState::WaitStore;
        e.waitStoreSeq = 0;
        e.reissueReadyAt = invalidCycle;
        if (SpanTracker::enabled() && spans_ && a.spanId)
            spans_->transition(a.spanId, SpanSeg::SbDrain, now);
        return false;
    }
    if (src && !src->written) {
        // §IV-E: atomics may only be forwarded from older *regular*
        // stores; chains of atomic-to-atomic forwarding are disallowed
        // (they extend lock windows and can livelock).
        if (params.forwardToAtomics && !src->isAtomic) {
            // Forwarded execution (§IV-E): consume the store's value now;
            // the lock engages when the store writes.
            if (a.issueCycle == invalidCycle) {
                a.issueCycle = now;
                sampleIndependentInsts(e);
            }
            e.forwardedAtomic = true;
            e.waitStoreSeq = src->seq;
            e.result = src->value;
            e.atomicNewValue = atomicModify(e.op, e.result);
            stu.value = e.atomicNewValue;
            stu.valueReady = true;
            e.astate = AState::ExecDoneFwd;
            e.issued = true;
            if (SpanTracker::enabled() && spans_ && a.spanId) {
                // Value consumed now; the remaining wait until the
                // forwarding store writes is an SB-drain dependency.
                spans_->setLine(a.spanId, a.line());
                spans_->transition(a.spanId, SpanSeg::SbDrain, now);
            }
            fwdLockWaiters.emplace(src->seq, e.seq);
            LqEntry &l = lq.entry(static_cast<unsigned>(e.lqIdx));
            l.issued = true;
            l.addr = a.addr;
            l.fwdFrom = src->seq;
            scheduleCompletion(e.seq, now + 2);
            stats_.counter("atomicsForwarded")++;
            ROWSIM_TRACE(TraceCategory::Atomic, now,
                         "core%u forwarded seq=%llu line=%#llx from "
                         "store seq=%llu",
                         coreId, static_cast<unsigned long long>(e.seq),
                         static_cast<unsigned long long>(a.line()),
                         static_cast<unsigned long long>(src->seq));
            return true;
        }
        // Atomicity: must read the post-store value from the cache.
        e.astate = AState::WaitStore;
        e.waitStoreSeq = src->seq;
        e.reissueReadyAt = invalidCycle;
        if (SpanTracker::enabled() && spans_ && a.spanId)
            spans_->transition(a.spanId, SpanSeg::SbDrain, now);
        return false;
    }
    if (a.issueCycle == invalidCycle) {
        a.issueCycle = now;
        sampleIndependentInsts(e);
    }
    stats_.counter(e.lazySelected ? "atomicsIssuedLazy"
                                  : "atomicsIssuedEager")++;
    ROWSIM_TRACE(TraceCategory::Atomic, now,
                 "core%u issue seq=%llu line=%#llx mode=%s",
                 coreId, static_cast<unsigned long long>(e.seq),
                 static_cast<unsigned long long>(a.line()),
                 e.lazySelected ? "lazy" : "eager");

    a.issuedCycle14 = static_cast<std::uint16_t>(
        now & ((1u << params.row.timestampBits) - 1));
    a.timestampValid = true;
    e.astate = AState::MemIssued;
    e.issued = true;
    LqEntry &l = lq.entry(static_cast<unsigned>(e.lqIdx));
    l.issued = true;
    l.addr = a.addr;

    if (SpanTracker::enabled() && spans_ && a.spanId) {
        spans_->setLine(a.spanId, a.line());
        spans_->transition(a.spanId, SpanSeg::Execute, now);
    }

    MemAccess m;
    m.addr = a.addr;
    m.token = token(e);
    m.needExclusive = true;
    m.isAtomic = true;
    m.spanId = a.spanId;
    cache->access(m, now);
    return true;
}

bool
Core::tryIssueAtomic(RobEntry &e, Cycle now)
{
    if (blockedByBarrier(e.seq))
        return false;

    AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));

    if (e.astate == AState::WaitOperands) {
        if (!e.lazySelected) {
            e.astate = AState::WaitLazy; // transient; atomicExecute decides
            bool done = atomicExecute(e, now);
            if (done)
                iqOccupancy--;
            return done;
        }
        // Predicted/forced lazy. Under RoW with RW/RW+Dir detection the
        // atomic issues once now to compute its address (§IV-B),
        // extending the contention-tracking window; it stays in the IQ.
        const bool early_addr =
            params.atomicPolicy == AtomicPolicy::RoW &&
            params.row.detector != ContentionDetector::EW;
        if (early_addr && a.addr == invalidAddr) {
            a.addr = e.op.addr;
            a.onlyCalcAddr = true;
            SqEntry &stu = sq.entry(static_cast<unsigned>(e.sqIdx));
            stu.addressReady = true;
            stu.addr = a.addr;
            stats_.counter("onlyCalcAddrIssues")++;
            // Atomic locality (§IV-E): a matching older store in the SB
            // promotes the atomic to eager execution.
            if (params.forwardToAtomics && params.row.localityPromotion &&
                sq.olderSameLineUnwritten(e.seq, a.line())) {
                a.onlyCalcAddr = false;
                e.lazySelected = false;
                stats_.counter("atomicsPromotedEager")++;
                bool done = atomicExecute(e, now);
                if (done)
                    iqOccupancy--;
                return done;
            }
        }
        e.astate = AState::WaitLazy;
        if (SpanTracker::enabled() && spans_ && a.spanId)
            spans_->transition(a.spanId, SpanSeg::AqWait, now);
        return false;
    }

    if (e.astate == AState::WaitLazy) {
        if (!lazyConditionMet(e)) {
            // Refine the wait: once the atomic is the oldest memory op,
            // the remaining wait is purely the SB drain.
            if (SpanTracker::enabled() && spans_ && a.spanId &&
                lq.isOldest(e.seq)) {
                spans_->transition(a.spanId, SpanSeg::SbDrain, now);
            }
            e.reissueReadyAt = invalidCycle;
            return false;
        }
        // Condition newly met: pay the wakeup/select/issue pipeline
        // delay before the memory request goes out.
        if (e.reissueReadyAt == invalidCycle)
            e.reissueReadyAt = now + params.atomicReissueDelay;
        if (now < e.reissueReadyAt)
            return false;
        a.onlyCalcAddr = false;
        bool done = atomicExecute(e, now);
        if (done)
            iqOccupancy--;
        return done;
    }

    if (e.astate == AState::WaitStore) {
        if (e.waitStoreSeq != 0) {
            // Wait for that specific store to write.
            bool pending = false;
            sq.forEach([&](SqEntry &s) {
                if (s.seq == e.waitStoreSeq && !s.written)
                    pending = true;
            });
            if (pending) {
                e.reissueReadyAt = invalidCycle;
                return false;
            }
        }
        if (e.reissueReadyAt == invalidCycle)
            e.reissueReadyAt = now + params.atomicReissueDelay;
        if (now < e.reissueReadyAt)
            return false;
        bool done = atomicExecute(e, now);
        if (done)
            iqOccupancy--;
        return done;
    }

    ROWSIM_PANIC("atomic issue in unexpected state %d",
                 static_cast<int>(e.astate));
}

bool
Core::tryIssueLoad(RobEntry &e, Cycle now)
{
    if (blockedByBarrier(e.seq))
        return false;

    bool unknown_older = false;
    SqEntry *src = sq.forwardSource(e.seq, e.op.addr, unknown_older);
    LqEntry &l = lq.entry(static_cast<unsigned>(e.lqIdx));

    // unknown_older means a store BETWEEN the match (if any) and this
    // load has not resolved its address yet: whatever the load consumes
    // (forwarded value or cache data) is speculative, so the StoreSet
    // decision comes first.
    if (unknown_older) {
        // StoreSet prediction, captured at dispatch (the LFST may have
        // moved on to younger stores by now).
        const SeqNum dep = e.waitStoreSeq;
        if (dep != 0 && dep < e.seq && inFlight(dep)) {
            const RobEntry &st = rob(dep);
            if (st.op.cls == OpClass::Store && st.seq == dep &&
                !st.issued) {
                stats_.counter("loadsPredictedDependent")++;
                return false; // predicted dependent: wait
            }
        }
        // Speculate past the unresolved store(s); the violation scan at
        // store resolution replays us if the speculation was wrong.
        stats_.counter("loadsSpeculated")++;
    }

    if (src && !src->written) {
        if (params.storeToLoadForwarding && src->valueReady) {
            e.result = src->value;
            l.issued = true;
            l.addr = e.op.addr;
            l.fwdFrom = src->seq;
            e.issued = true;
            scheduleCompletion(e.seq, now + 2);
            stats_.counter("loadsForwarded")++;
            iqOccupancy--;
            return true;
        }
        return false; // wait for the store to write, then read the cache
    }

    l.issued = true;
    l.addr = e.op.addr;
    l.fwdFrom = 0;
    e.issued = true;
    MemAccess m;
    m.addr = e.op.addr;
    m.token = token(e);
    cache->access(m, now);
    iqOccupancy--;
    return true;
}

void
Core::replayLoad(RobEntry &load, Addr store_pc, Cycle now)
{
    storeSet.violation(load.op.pc, store_pc);
    stats_.counter("loadReplays")++;
    load.replayGen++;
    load.completed = false;
    load.issued = false;
    LqEntry &l = lq.entry(static_cast<unsigned>(load.lqIdx));
    l.issued = false;
    l.completed = false;
    l.fwdFrom = 0;
    iqOccupancy++; // back into the issue queue
    pushReady(load.seq, now);
}

bool
Core::tryIssueStore(RobEntry &e, Cycle now)
{
    if (blockedByBarrier(e.seq))
        return false;

    SqEntry &s = sq.entry(static_cast<unsigned>(e.sqIdx));
    s.addressReady = true;
    s.addr = e.op.addr;
    s.value = e.op.value;
    s.valueReady = true;
    e.issued = true;
    storeSet.storeExecuted(e.ssSet, e.seq);

    // Memory-order violation scan: younger loads to the same word that
    // issued before this store resolved its address must replay unless
    // they forwarded from an even younger store.
    const Addr word = wordAlign(e.op.addr);
    std::vector<SeqNum> to_replay;
    lq.forEach([&](LqEntry &l) {
        if (l.seq > e.seq && l.issued && !l.isAtomic &&
            l.addr != invalidAddr && wordAlign(l.addr) == word &&
            (l.fwdFrom == 0 || l.fwdFrom < e.seq)) {
            to_replay.push_back(l.seq);
        }
    });
    for (SeqNum ls : to_replay)
        replayLoad(rob(ls), e.op.pc, now);

    scheduleCompletion(e.seq, now + 1);
    iqOccupancy--;
    return true;
}

bool
Core::tryIssueFence(RobEntry &e, Cycle now)
{
    if (!fenceConditionMet(e))
        return false;
    e.issued = true;
    scheduleCompletion(e.seq, now + 1);
    iqOccupancy--;
    return true;
}

bool
Core::tryIssue(SeqNum seq, Cycle now)
{
    RobEntry &e = rob(seq);
    ROWSIM_ASSERT(e.busy && !e.issued, "tryIssue on bad entry");

    switch (e.op.cls) {
      case OpClass::IntAlu:
      case OpClass::FpAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        e.issued = true;
        scheduleCompletion(seq, now + std::max<unsigned>(1,
                                                         e.op.execLatency));
        iqOccupancy--;
        return true;
      case OpClass::Load:
        return tryIssueLoad(e, now);
      case OpClass::Store:
        return tryIssueStore(e, now);
      case OpClass::Fence:
        return tryIssueFence(e, now);
      case OpClass::AtomicRMW:
        return tryIssueAtomic(e, now);
    }
    return false;
}

void
Core::issueStage(Cycle now)
{
    unsigned slots = params.issueWidth;
    issueTruncated_ = false;

    // Re-attempt ops waiting on conditions (lazy atomics, fences, store
    // waits, barrier blocks) before the newly-ready ones.
    if (!waiting.empty()) {
        std::vector<SeqNum> still;
        still.reserve(waiting.size());
        std::sort(waiting.begin(), waiting.end());
        for (SeqNum seq : waiting) {
            if (slots == 0) {
                issueTruncated_ = true;
                if (rob(seq).busy && !rob(seq).issued)
                    still.push_back(seq);
            } else if (!tryIssue(seq, now)) {
                if (rob(seq).busy && !rob(seq).issued)
                    still.push_back(seq);
            } else {
                slots--;
            }
        }
        waiting.swap(still);
    }

    while (slots > 0 && !readyQueue.empty()) {
        SeqNum seq = readyQueue.top();
        readyQueue.pop();
        if (!inFlight(seq) || rob(seq).issued || !rob(seq).busy)
            continue;
        if (tryIssue(seq, now))
            slots--;
        else
            waiting.push_back(seq);
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void
Core::dispatchStage(Cycle now)
{
    if (fetchBlockedBy != 0 || now < fetchBlockedUntil)
        return;

    for (unsigned i = 0; i < params.fetchWidth; i++) {
        if (fetchBuffer.empty()) {
            if (halted)
                return;
            fetchBuffer.push_back(stream->next());
        }
        const MicroOp &op = fetchBuffer.front();

        if (robCount() >= params.robEntries ||
            iqOccupancy >= params.iqEntries)
            return;
        switch (op.cls) {
          case OpClass::Load:
            if (lq.full())
                return;
            break;
          case OpClass::Store:
            if (sq.full())
                return;
            break;
          case OpClass::AtomicRMW:
            if (lq.full() || sq.full() || aq.full())
                return;
            break;
          default:
            break;
        }

        const SeqNum seq = nextSeq++;
        RobEntry &e = rob(seq);
        ROWSIM_ASSERT(!e.busy, "ROB slot reuse while busy");
        e = RobEntry{};
        e.op = op;
        e.seq = seq;
        e.busy = true;
        e.dispatchCycle = now;
        fetchBuffer.pop_front();

        for (std::uint32_t dist : {e.op.src0, e.op.src1}) {
            if (dist == 0 || dist >= seq)
                continue;
            const SeqNum pseq = seq - dist;
            if (pseq <= commitSeq)
                continue;
            RobEntry &prod = rob(pseq);
            if (prod.busy && !prod.completed) {
                prod.dependents.push_back(seq);
                e.depsPending++;
            }
        }

        switch (e.op.cls) {
          case OpClass::Load:
            e.lqIdx = static_cast<int>(lq.allocate(seq, false));
            // Record the StoreSet-predicted dependence now; the LFST is
            // only meaningful at dispatch time.
            e.waitStoreSeq = storeSet.dependence(e.op.pc);
            if (e.waitStoreSeq != 0)
                stats_.counter("loadsDispatchedWithDep")++;
            break;
          case OpClass::Store: {
            e.sqIdx = static_cast<int>(sq.allocate(seq, false));
            e.ssSet = storeSet.setOf(e.op.pc);
            storeSet.storeFetched(e.ssSet, seq);
            break;
          }
          case OpClass::AtomicRMW: {
            e.lqIdx = static_cast<int>(lq.allocate(seq, true));
            e.sqIdx = static_cast<int>(sq.allocate(seq, true));
            e.aqIdx = static_cast<int>(aq.allocate(seq, e.op.pc, now));
            e.astate = AState::WaitOperands;
            e.lazySelected = atomicSelectLazy(e.op);
            aq.entry(static_cast<unsigned>(e.aqIdx)).predictedContended =
                e.lazySelected;
            if (SpanTracker::enabled() && spans_) {
                aq.entry(static_cast<unsigned>(e.aqIdx)).spanId =
                    spans_->open(coreId, e.op.pc, e.lazySelected, now);
            }
            if (params.atomicPolicy == AtomicPolicy::Fenced)
                memBarriers.insert(seq);
            stats_.counter("atomicsDispatched")++;
            if (e.lazySelected)
                stats_.counter("atomicsPredictedContended")++;
            ROWSIM_TRACE(TraceCategory::Atomic, now,
                         "core%u dispatch seq=%llu pc=%#llx policy=%s",
                         coreId, static_cast<unsigned long long>(seq),
                         static_cast<unsigned long long>(e.op.pc),
                         e.lazySelected ? "lazy" : "eager");
            ROWSIM_TRACE_INSTANT(
                TraceCategory::Atomic, static_cast<int>(coreId),
                traceTidAtomics, "dispatch", now,
                strprintf("{\"seq\":%llu,\"policy\":\"%s\"}",
                          static_cast<unsigned long long>(seq),
                          e.lazySelected ? "lazy" : "eager"));
            break;
          }
          case OpClass::Fence:
            memBarriers.insert(seq);
            break;
          case OpClass::Branch: {
            const bool correct = branchPred.update(e.op.pc,
                                                   e.op.takenBranch);
            if (!correct) {
                fetchBlockedBy = seq;
                stats_.counter("branchMispredicts")++;
            }
            break;
          }
          default:
            break;
        }

        iqOccupancy++;
        stats_.counter("dispatched")++;
        if (e.depsPending == 0)
            pushReady(seq, now);

        if (fetchBlockedBy == seq)
            return; // stop fetching past a mispredicted branch
    }
}

// ---------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------

void
Core::tick(Cycle now)
{
    processCompletions(now);

    while (!pendingUnlocks.empty() && pendingUnlocks.begin()->first <= now) {
        SeqNum seq = pendingUnlocks.begin()->second;
        pendingUnlocks.erase(pendingUnlocks.begin());
        atomicUnlock(seq, now);
    }

    if (Profiler::enabled(ProfCategory::Cpi) && prof_) {
        const std::uint64_t before = committedInsts;
        commitStage(now);
        profileCommitSlots(
            static_cast<unsigned>(committedInsts - before));
    } else {
        commitStage(now);
    }
    drainStores(now);
    issueStage(now);
    dispatchStage(now);
}

bool
Core::drained() const
{
    return robCount() == 0 && sq.empty() && lq.empty() && aq.empty() &&
           completions.empty() && pendingUnlocks.empty();
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    const Cycle next_tick = now + 1;

    // Work that would proceed on the very next tick: ready ops, a
    // truncated issue pass, a committable ROB head, a drainable or
    // freeable SB head.
    if (!readyQueue.empty() || issueTruncated_)
        return next_tick;

    const SeqNum head_seq = commitSeq + 1;
    if (inFlight(head_seq)) {
        const RobEntry &e = rob(head_seq);
        if (e.busy && e.seq == head_seq && e.completed) {
            if (e.op.cls != OpClass::AtomicRMW)
                return next_tick;
            // Free Atomics commit rule: both conditions change only via
            // events (fills, unlocks, SB writes), so a blocked atomic
            // head contributes nothing here.
            const AqEntry &a = aq.entry(static_cast<unsigned>(e.aqIdx));
            if (a.locked && sq.sbEmpty())
                return next_tick;
        }
    }

    if (const SqEntry *h = sq.headEntry()) {
        if (h->written ||
            (h->committed && !h->writeInFlight && !h->isAtomic))
            return next_tick;
    }

    Cycle next = invalidCycle;
    auto consider = [&](Cycle c) {
        if (c != invalidCycle)
            next = std::min(next, std::max(c, next_tick));
    };

    if (!completions.empty())
        consider(completions.begin()->first);
    if (!pendingUnlocks.empty())
        consider(pendingUnlocks.begin()->first);
    // Waiting ops whose condition is met wake at their stamped re-issue
    // cycle; unmet conditions change only via events.
    for (SeqNum seq : waiting) {
        if (!inFlight(seq))
            continue;
        const RobEntry &e = rob(seq);
        if (!e.busy || e.issued || e.seq != seq)
            continue;
        switch (e.op.cls) {
          case OpClass::AtomicRMW:
            // Lazy/store-wait atomics carry an explicit re-issue stamp.
            if (e.reissueReadyAt != invalidCycle) {
                consider(e.reissueReadyAt);
                break;
            }
            // Invalid stamp: either the wait condition is unmet (the
            // clearing event — commit, SB drain, unlock, all before
            // issue in tick order — re-stamps on the same-tick retry),
            // or a due retry just ran atomicExecute, failed, and reset
            // the stamp. In the latter case the condition can already
            // hold, and the next tick's retry stamps now+delay — so the
            // stamp value depends on when that tick runs. Evaluate the
            // condition here: if it holds, the next tick is an event.
            switch (e.astate) {
              case AState::WaitLazy:
                if (lazyConditionMet(e))
                    consider(next_tick);
                break;
              case AState::WaitStore:
                if (e.waitStoreSeq == 0) {
                    consider(next_tick);
                } else {
                    bool pending = false;
                    const_cast<StoreQueue &>(sq).forEach([&](SqEntry &s) {
                        if (s.seq == e.waitStoreSeq && !s.written)
                            pending = true;
                    });
                    if (!pending)
                        consider(next_tick);
                }
                break;
              default:
                consider(next_tick);
                break;
            }
            break;
          case OpClass::Load: {
            // Mirror tryIssueLoad's wait conditions without its side
            // effects; a load blocked by none of them issues next tick.
            if (blockedByBarrier(seq))
                break; // barrier lifts at a commit (event-bounded)
            auto &sq_mut = const_cast<StoreQueue &>(sq);
            bool unknown_older = false;
            const SqEntry *src =
                sq_mut.forwardSource(seq, e.op.addr, unknown_older);
            if (unknown_older && e.waitStoreSeq != 0 &&
                e.waitStoreSeq < seq && inFlight(e.waitStoreSeq)) {
                const RobEntry &st = rob(e.waitStoreSeq);
                if (st.op.cls == OpClass::Store &&
                    st.seq == e.waitStoreSeq && !st.issued)
                    break; // wakes when that store issues (bounded)
            }
            if (src && !src->written &&
                !(params.storeToLoadForwarding && src->valueReady))
                break; // wakes when the store readies/writes (bounded)
            consider(next_tick);
            break;
          }
          case OpClass::Fence:
            if (fenceConditionMet(e))
                consider(next_tick);
            // else: wakes via an older completion or write (bounded)
            break;
          default:
            // Stores park here only behind a barrier; anything else is
            // conservatively issuable next tick.
            if (!blockedByBarrier(seq))
                consider(next_tick);
            break;
        }
    }
    // Dispatch: when fetch is unblocked and resources are free, the core
    // fetches/dispatches next tick (or when the redirect penalty ends).
    // With resources full, dispatch resumes only after a commit (event).
    if (fetchBlockedBy == 0 && !(halted && fetchBuffer.empty())) {
        bool resources = robCount() < params.robEntries &&
                         iqOccupancy < params.iqEntries;
        if (resources && !fetchBuffer.empty()) {
            switch (fetchBuffer.front().cls) {
              case OpClass::Load:
                resources = !lq.full();
                break;
              case OpClass::Store:
                resources = !sq.full();
                break;
              case OpClass::AtomicRMW:
                resources = !lq.full() && !sq.full() && !aq.full();
                break;
              default:
                break;
            }
        }
        if (resources)
            consider(std::max(fetchBlockedUntil, next_tick));
    }
    return next;
}

bool
Core::hasPendingUnlock(SeqNum seq) const
{
    for (const auto &kv : pendingUnlocks) {
        if (kv.second == seq)
            return true;
    }
    return false;
}

void
Core::dumpDiag(std::FILE *out, Cycle now) const
{
    std::fprintf(out,
                 "{\"core\":%u,\"halted\":%d,\"drained\":%d,"
                 "\"commitSeq\":%llu,\"nextSeq\":%llu,\"rob\":%u,"
                 "\"iq\":%u,\"lq\":%u,\"sq\":%u,\"aq\":%u,"
                 "\"memBarriers\":%zu,\"pendingUnlocks\":%zu,"
                 "\"completions\":%zu,\"aqEntries\":[",
                 coreId, halted ? 1 : 0, drained() ? 1 : 0,
                 static_cast<unsigned long long>(commitSeq),
                 static_cast<unsigned long long>(nextSeq), robCount(),
                 iqOccupancy, lq.size(), sq.size(), aq.size(),
                 memBarriers.size(), pendingUnlocks.size(),
                 completions.size());
    bool first = true;
    aq.forEach([&](const AqEntry &a) {
        std::fprintf(out,
                     "%s{\"seq\":%llu,\"line\":\"%#llx\",\"locked\":%d,"
                     "\"contended\":%d,\"heldFor\":%llu}",
                     first ? "" : ",",
                     static_cast<unsigned long long>(a.seq),
                     static_cast<unsigned long long>(a.line()),
                     a.locked ? 1 : 0, a.contended ? 1 : 0,
                     static_cast<unsigned long long>(
                         a.locked && a.lockCycle != invalidCycle &&
                                 now >= a.lockCycle
                             ? now - a.lockCycle
                             : 0));
        first = false;
    });
    std::fprintf(out, "]}");
}

void
Core::save(Ser &s) const
{
    s.section("core");
    s.u32(coreId);

    // Every ROB slot is serialized, stale entries included: restored slot
    // garbage then matches an uninterrupted run's, so any later image of
    // the two executions stays bit-identical.
    s.u64(robSlots.size());
    for (const RobEntry &e : robSlots) {
        saveOp(s, e.op);
        s.u64(e.seq);
        s.b(e.busy);
        s.b(e.issued);
        s.b(e.completed);
        s.b(e.wokeDependents);
        s.u8(e.depsPending);
        s.u16(e.replayGen);
        s.u64(e.dispatchCycle);
        s.u64(e.readyCycle);
        s.u64(static_cast<std::uint64_t>(e.lqIdx));
        s.u64(static_cast<std::uint64_t>(e.sqIdx));
        s.u64(static_cast<std::uint64_t>(e.aqIdx));
        s.u32(e.ssSet);
        s.u8(static_cast<std::uint8_t>(e.astate));
        s.b(e.lazySelected);
        s.b(e.forwardedAtomic);
        s.u64(e.waitStoreSeq);
        s.u64(e.reissueReadyAt);
        s.b(e.fillContentionHint);
        s.u64(e.result);
        s.u64(e.atomicNewValue);
        s.u64(e.dependents.size());
        for (SeqNum dep : e.dependents)
            s.u64(dep);
    }

    lq.save(s);
    sq.save(s);
    aq.save(s);
    branchPred.save(s);
    storeSet.save(s);
    rowPredictor.save(s);

    s.u64(nextSeq);
    s.u64(commitSeq);

    // priority_queue has no iterators; copy-drain in pop order (ascending
    // SeqNum), which is also exactly the order restore re-pushes in.
    auto readyCopy = readyQueue;
    s.u64(readyCopy.size());
    while (!readyCopy.empty()) {
        s.u64(readyCopy.top());
        readyCopy.pop();
    }

    s.u64(waiting.size());
    for (SeqNum w : waiting)
        s.u64(w);

    s.u64(completions.size());
    for (const auto &[cycle, ev] : completions) {
        s.u64(cycle);
        s.u64(ev.first);
        s.u16(ev.second);
    }

    s.u64(pendingUnlocks.size());
    for (const auto &[cycle, seq] : pendingUnlocks) {
        s.u64(cycle);
        s.u64(seq);
    }

    s.u64(memBarriers.size());
    for (SeqNum b : memBarriers)
        s.u64(b);

    s.u64(fwdLockWaiters.size());
    for (const auto &[storeSeq, atomicSeq] : fwdLockWaiters) {
        s.u64(storeSeq);
        s.u64(atomicSeq);
    }

    s.u64(fetchBuffer.size());
    for (const MicroOp &op : fetchBuffer)
        saveOp(s, op);
    s.u64(fetchBlockedBy);
    s.u64(fetchBlockedUntil);
    s.u32(iqOccupancy);
    s.b(halted);
    s.b(issueTruncated_);

    s.u64(committedInsts);
    s.u64(committedAtomicCount);
    s.u64(iterations);

    stream->save(s);
}

void
Core::restore(Deser &d)
{
    d.section("core");
    const CoreId id = d.u32();
    if (id != coreId) {
        throw SnapshotError(strprintf(
            "core id mismatch: image core %u restored into core %u", id,
            coreId));
    }

    const std::uint64_t nRob = d.u64();
    if (nRob != robSlots.size()) {
        throw SnapshotError(strprintf(
            "ROB size mismatch: image %llu entries, configured %zu",
            static_cast<unsigned long long>(nRob), robSlots.size()));
    }
    for (RobEntry &e : robSlots) {
        restoreOp(d, e.op);
        e.seq = d.u64();
        e.busy = d.b();
        e.issued = d.b();
        e.completed = d.b();
        e.wokeDependents = d.b();
        e.depsPending = d.u8();
        e.replayGen = d.u16();
        e.dispatchCycle = d.u64();
        e.readyCycle = d.u64();
        e.lqIdx = static_cast<int>(d.u64());
        e.sqIdx = static_cast<int>(d.u64());
        e.aqIdx = static_cast<int>(d.u64());
        e.ssSet = d.u32();
        e.astate = static_cast<AState>(d.u8());
        e.lazySelected = d.b();
        e.forwardedAtomic = d.b();
        e.waitStoreSeq = d.u64();
        e.reissueReadyAt = d.u64();
        e.fillContentionHint = d.b();
        e.result = d.u64();
        e.atomicNewValue = d.u64();
        e.dependents.resize(d.u64());
        for (SeqNum &dep : e.dependents)
            dep = d.u64();
    }

    lq.restore(d);
    sq.restore(d);
    aq.restore(d);
    branchPred.restore(d);
    storeSet.restore(d);
    rowPredictor.restore(d);

    nextSeq = d.u64();
    commitSeq = d.u64();

    readyQueue = {};
    const std::uint64_t nReady = d.u64();
    for (std::uint64_t i = 0; i < nReady; i++)
        readyQueue.push(d.u64());

    waiting.resize(d.u64());
    for (SeqNum &w : waiting)
        w = d.u64();

    completions.clear();
    const std::uint64_t nCompl = d.u64();
    for (std::uint64_t i = 0; i < nCompl; i++) {
        const Cycle cycle = d.u64();
        const SeqNum seq = d.u64();
        const std::uint16_t gen = d.u16();
        completions.emplace_hint(completions.end(), cycle,
                                 std::make_pair(seq, gen));
    }

    pendingUnlocks.clear();
    const std::uint64_t nUnlocks = d.u64();
    for (std::uint64_t i = 0; i < nUnlocks; i++) {
        const Cycle cycle = d.u64();
        const SeqNum seq = d.u64();
        pendingUnlocks.emplace_hint(pendingUnlocks.end(), cycle, seq);
    }

    memBarriers.clear();
    const std::uint64_t nBarriers = d.u64();
    for (std::uint64_t i = 0; i < nBarriers; i++)
        memBarriers.insert(memBarriers.end(), d.u64());

    fwdLockWaiters.clear();
    const std::uint64_t nFwd = d.u64();
    for (std::uint64_t i = 0; i < nFwd; i++) {
        const SeqNum storeSeq = d.u64();
        const SeqNum atomicSeq = d.u64();
        fwdLockWaiters.emplace_hint(fwdLockWaiters.end(), storeSeq,
                                    atomicSeq);
    }

    fetchBuffer.resize(d.u64());
    for (MicroOp &op : fetchBuffer)
        restoreOp(d, op);
    fetchBlockedBy = d.u64();
    fetchBlockedUntil = d.u64();
    iqOccupancy = d.u32();
    halted = d.b();
    issueTruncated_ = d.b();

    committedInsts = d.u64();
    committedAtomicCount = d.u64();
    iterations = d.u64();

    stream->restore(d);
}

} // namespace rowsim
