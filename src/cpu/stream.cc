#include "cpu/stream.hh"

#include "common/log.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

void
InstStream::save(Ser &) const
{
    throw SnapshotError("this instruction-stream type does not support "
                        "checkpointing");
}

void
InstStream::restore(Deser &)
{
    throw SnapshotError("this instruction-stream type does not support "
                        "checkpointing");
}

// The loop body is config-derived; only the position needs to travel.
void
LoopStream::save(Ser &s) const
{
    s.section("loopstream");
    s.u64(body_.size());
    s.u64(idx);
}

void
LoopStream::restore(Deser &d)
{
    d.section("loopstream");
    const std::uint64_t size = d.u64();
    if (size != body_.size()) {
        throw SnapshotError(strprintf(
            "loop stream body mismatch: image has %llu ops, this run "
            "built %zu",
            static_cast<unsigned long long>(size), body_.size()));
    }
    idx = static_cast<std::size_t>(d.u64());
    if (idx >= body_.size())
        throw SnapshotError("loop stream position out of range");
}

} // namespace rowsim
