/**
 * @file
 * System configuration. Defaults reproduce Table I of the paper
 * (Intel Alder Lake performance-core-like parameters, 32 cores).
 */

#ifndef ROWSIM_COMMON_CONFIG_HH
#define ROWSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rowsim
{

/** When is an atomic RMW allowed to issue its memory access? */
enum class AtomicPolicy : std::uint8_t
{
    /** As soon as its operands are ready (the baseline in the paper). */
    Eager,
    /** Once it is the oldest memory instruction in the LQ and the SB has
     *  drained (minimal cache-locking time). */
    Lazy,
    /** Decided per-atomic by the RoW contention predictor. */
    RoW,
    /** Legacy fenced implementation: the atomic additionally blocks the
     *  issue of younger memory instructions until it fully completes
     *  (models pre-Coffee-Lake parts; used by the Fig. 2 microbenchmark). */
    Fenced,
};

/** How does RoW detect that an atomic faced contention? (§IV-A..C) */
enum class ContentionDetector : std::uint8_t
{
    /** Execution Window: external requests hitting a *locked* line. */
    EW,
    /** Ready Window: external requests matching any in-flight atomic's
     *  address from operand-ready time onward. */
    RW,
    /** RW plus the directory/latency heuristic: the fill came from a remote
     *  private cache and took longer than latencyThreshold cycles. */
    RWDir,
    /** RW plus explicit directory notification: the directory marks data
     *  responses of transactions that observed concurrent interest
     *  (queued requesters). This is the alternative design §IV-C
     *  mentions and rejects to keep the coherence protocol intact;
     *  implemented here for comparison. */
    RWDirNotify,
};

/** Saturating-counter update policy of the contention predictor (§IV-D). */
enum class PredictorUpdate : std::uint8_t
{
    /** +1 on contention, -1 otherwise; lazy when counter > threshold(=1). */
    UpDown,
    /** Saturate to max on contention, -1 otherwise; lazy when counter >
     *  threshold(=0). */
    SaturateOnContention,
    /** +2 on contention, -1 otherwise — the alternative the paper
     *  evaluated and found inferior to the two above (§IV-D). Lazy when
     *  counter > threshold(=1). */
    TwoUpOneDown,
};

/** Rush-or-Wait mechanism configuration (§IV). */
struct RowConfig
{
    ContentionDetector detector = ContentionDetector::RWDir;
    PredictorUpdate update = PredictorUpdate::SaturateOnContention;

    /** Predictor geometry: 64 entries x 4-bit counters, XOR-indexed. */
    unsigned predictorEntries = 64;
    unsigned counterBits = 4;

    /** Remote-fill latency above which the Dir detector flags contention.
     *  The paper finds 400 cycles optimal (Fig. 10). */
    Cycle latencyThreshold = 400;

    /** Width of the AQ request-issued-cycle timestamp field (§IV-C). */
    unsigned timestampBits = 14;

    /** Promote predicted-lazy atomics to eager when a matching older store
     *  is found in the SB (atomic locality, §IV-E). */
    bool localityPromotion = true;
};

/** Core pipeline parameters (Table I). */
struct CoreParams
{
    unsigned fetchWidth = 6;
    unsigned issueWidth = 12;
    unsigned commitWidth = 12;

    unsigned robEntries = 512;
    unsigned lqEntries = 192;
    /** Unified store queue; the post-commit tail is the architectural SB. */
    unsigned sbEntries = 128;
    unsigned aqEntries = 16;
    unsigned iqEntries = 160;

    /** Branch misprediction redirect penalty (front-end refill). */
    unsigned mispredictPenalty = 14;

    /** Cycles to bring a waiting atomic back through the issue stage
     *  (wakeup + select + issue) when its lazy/store-wait condition is
     *  met. During this window a contended line acquired by an older
     *  store can be stolen — the atomic-locality effect of §IV-E. */
    unsigned atomicReissueDelay = 8;

    /** Whether older stores may forward data to loads (and, when the RoW
     *  locality optimisation is on, to atomics). */
    bool storeToLoadForwarding = true;
    /** Whether forwarding to *atomics* is enabled (Fig. 13 experiments). */
    bool forwardToAtomics = false;

    AtomicPolicy atomicPolicy = AtomicPolicy::Eager;
    RowConfig row;
};

/** Memory hierarchy parameters (Table I). */
struct MemParams
{
    // L1D: 48KB, 12 ways, 5-cycle hit.
    unsigned l1Sets = 64;
    unsigned l1Ways = 12;
    Cycle l1HitLatency = 5;

    // Private L2: 1MB, 8 ways, 12-cycle hit.
    unsigned l2Sets = 2048;
    unsigned l2Ways = 8;
    Cycle l2HitLatency = 12;

    // Shared L3: 4MB per bank, 16 ways, 35-cycle hit.
    unsigned l3SetsPerBank = 4096;
    unsigned l3Ways = 16;
    Cycle l3HitLatency = 35;

    Cycle memoryLatency = 160;

    unsigned mshrs = 32;

    /** Simple IP-stride style prefetch (next-line on miss) for regular
     *  loads; never prefetches for atomics. */
    bool prefetcher = true;

    /** Stall age beyond which an external request steals a pre-commit
     *  atomic's lock (cross-core deadlock avoidance; see DESIGN.md). */
    Cycle lockStealThreshold = 5000;
};

/** On-chip network parameters (GARNET-substitute mesh). */
struct NetParams
{
    /** Per-hop router+link latency. */
    Cycle hopLatency = 2;
    /** Mesh side length is derived from core count (square-ish mesh). */
};

/** Whole-system configuration. */
struct SystemParams
{
    unsigned numCores = 32;
    CoreParams core;
    MemParams mem;
    NetParams net;

    std::uint64_t seed = 1;

    /** Watchdog: abort if no instruction commits globally for this many
     *  cycles (deadlock detection; invariant #4 in DESIGN.md). */
    Cycle deadlockCycles = 2'000'000;

    /**
     * Idle fast-forward: when every core and memory-side component
     * reports no schedulable work before some future cycle, System::run
     * jumps the clock to that cycle instead of ticking through the idle
     * window. Simulated results are identical by construction (the skip
     * bound is conservative); auto-disabled under fault injection, whose
     * per-cycle RNG draws make the schedule depend on every tick.
     * Env override: ROWSIM_FF=0 (off), 1 (on), check (tick through each
     * predicted window and panic if anything would have happened).
     */
    bool idleFastForward = true;

    // ---- observability (see src/common/trace.hh) ----

    /** Trace categories to enable, same syntax as the ROWSIM_TRACE env
     *  var ("atomic,coherence", "all"; empty = env var / off). */
    std::string traceCategories;
    /** Chrome trace-event JSON output path (empty = ROWSIM_TRACE_JSON
     *  env var, or "rowsim.trace.json" when tracing is on). */
    std::string traceJsonPath;
    /** Interval-stats sampling period in cycles (0 = the
     *  ROWSIM_STATS_INTERVAL env var, or off). */
    Cycle statsInterval = 0;

    // ---- self-checking & fault injection (src/sim/checker.hh,
    // ---- src/sim/faults.hh) ----

    /** Invariant-checker categories, same syntax as the ROWSIM_CHECK env
     *  var ("swmr,locks", "all"; empty = env var / off). */
    std::string checkCategories;
    /** Cycles between whole-system checker sweeps (0 = the
     *  ROWSIM_CHECK_INTERVAL env var, or 1024). */
    Cycle checkInterval = 0;
    /** Fault-injection categories, same syntax as the ROWSIM_FAULTS env
     *  var ("netdelay,evict", "all"; empty = env var / off). */
    std::string faultCategories;
    /** Fault-injection RNG seed (0 = the ROWSIM_FAULTS_SEED env var, or
     *  derived from `seed` — either way runs replay exactly). */
    std::uint64_t faultSeed = 0;
    /** Fault probability in events per 10k opportunities (0 = the
     *  ROWSIM_FAULTS_RATE env var, or 50). */
    unsigned faultRate = 0;

    // ---- attribution profiler (src/sim/profile.hh) ----

    /** Profiler categories, same syntax as the ROWSIM_PROFILE env var
     *  ("cpi,lines,row,pcs", "check", "all"; empty = env var / off).
     *  Unlike the masks above this one is re-applied on every System
     *  construction, so sweep workers never inherit a stale mask. */
    std::string profileCategories;

    // ---- span tracing (src/sim/span.hh) ----

    /** Atomic lifetime span tracing: "on"/"off" (and 0/1/yes/no
     *  synonyms; empty = the ROWSIM_SPANS env var, or off). Re-applied
     *  on every System construction, like profileCategories. */
    std::string spans;

    // ---- metric time series & convergence (src/common/timeseries.hh) ----

    /** Metric time-series engine over the interval probes: "on"/"off"
     *  (and 0/1/yes/no synonyms; empty = the ROWSIM_TS env var, or
     *  off). Re-applied on every System construction, like
     *  profileCategories. When on with no interval period configured, a
     *  default period of 8192 cycles is used. */
    std::string timeseries;
    /** Convergence-bounded run: "<metric>:<rel_halfwidth>[:<confidence>]"
     *  (empty = the ROWSIM_CONVERGE env var, or off). Implies the
     *  time-series engine. The run stops at the first interval boundary
     *  where the metric's batch-means CI half-width, relative to its
     *  mean, is <= rel_halfwidth at the given confidence (default
     *  0.95); the iteration quota stays the upper bound. */
    std::string converge;

    // ---- execution mode (src/sim/funcmode.cc) ----

    /** Execution mode: "detail" (cycle-accurate out-of-order pipeline)
     *  or "func" (multi-instruction-per-tick functional interpreter
     *  that keeps caches, directory state, and branch/RoW predictors
     *  warm while skipping ROB/LSQ/AQ bookkeeping). Empty = the
     *  ROWSIM_MODE env var, or detail. Deliberately excluded from
     *  configFingerprint: checkpoints written by a functional warm-up
     *  restore into a detail run of the same architectural config. */
    std::string mode;
};

} // namespace rowsim

#endif // ROWSIM_COMMON_CONFIG_HH
