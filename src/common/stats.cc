#include "common/stats.hh"

namespace rowsim
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Average *
StatGroup::findAverage(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? nullptr : &it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
}

} // namespace rowsim
