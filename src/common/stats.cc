#include "common/stats.hh"

#include "sim/snapshot.hh"

namespace rowsim
{

void
Counter::save(Ser &s) const
{
    s.u64(value_);
}

void
Counter::restore(Deser &d)
{
    value_ = d.u64();
}

void
Average::save(Ser &s) const
{
    s.f64(sum_);
    s.u64(count_);
    s.f64(min_);
    s.f64(max_);
}

void
Average::restore(Deser &d)
{
    sum_ = d.f64();
    count_ = d.u64();
    min_ = d.f64();
    max_ = d.f64();
}

void
Histogram::save(Ser &s) const
{
    s.f64(lo_);
    s.f64(hi_);
    s.u64(counts_.size());
    for (std::uint64_t c : counts_)
        s.u64(c);
    s.u64(underflow_);
    s.u64(overflow_);
    avg_.save(s);
}

void
Histogram::restore(Deser &d)
{
    const double lo = d.f64();
    const double hi = d.f64();
    const std::uint64_t buckets = d.u64();
    if (lo != lo_ || hi != hi_ || buckets != counts_.size()) {
        throw SnapshotError(strprintf(
            "histogram geometry mismatch: image has [%g, %g) x %llu, "
            "this build expects [%g, %g) x %zu",
            lo, hi, static_cast<unsigned long long>(buckets), lo_, hi_,
            counts_.size()));
    }
    for (auto &c : counts_)
        c = d.u64();
    underflow_ = d.u64();
    overflow_ = d.u64();
    avg_.restore(d);
}

void
StatGroup::save(Ser &s) const
{
    s.section("statgroup");
    s.str(name_);
    s.u64(counters_.size());
    for (const auto &[name, c] : counters_) {
        s.str(name);
        c.save(s);
    }
    s.u64(averages_.size());
    for (const auto &[name, a] : averages_) {
        s.str(name);
        a.save(s);
    }
    s.u64(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        s.str(name);
        h.save(s);
    }
}

void
StatGroup::restore(Deser &d)
{
    d.section("statgroup");
    const std::string name = d.str();
    if (name != name_) {
        throw SnapshotError(strprintf(
            "stat group mismatch: image has '%s', expected '%s'",
            name.c_str(), name_.c_str()));
    }
    counters_.clear();
    const std::uint64_t nCounters = d.u64();
    for (std::uint64_t i = 0; i < nCounters; i++) {
        const std::string key = d.str();
        counters_[key].restore(d);
    }
    averages_.clear();
    const std::uint64_t nAverages = d.u64();
    for (std::uint64_t i = 0; i < nAverages; i++) {
        const std::string key = d.str();
        averages_[key].restore(d);
    }
    // Histograms have no default constructor (geometry is fixed at
    // creation); emplace each with the geometry peeked from the stream,
    // then let Histogram::restore re-verify it and fill the contents.
    histograms_.clear();
    const std::uint64_t nHistograms = d.u64();
    for (std::uint64_t i = 0; i < nHistograms; i++) {
        const std::string key = d.str();
        Deser peek = d;
        const double lo = peek.f64();
        const double hi = peek.f64();
        const std::uint64_t buckets = peek.u64();
        if (!(hi > lo) || buckets == 0 || buckets > (1u << 20)) {
            throw SnapshotError(strprintf(
                "corrupted histogram geometry for '%s'", key.c_str()));
        }
        auto it = histograms_
                      .emplace(key, Histogram(lo, hi,
                                              static_cast<unsigned>(buckets)))
                      .first;
        it->second.restore(d);
    }
}

void
IntervalStats::save(Ser &s) const
{
    s.section("interval");
    s.u64(period_);
    s.u64(nextAt_);
    s.u64(probes_.size());
    for (const auto &p : probes_)
        s.f64(p.last);
    s.u64(cycles_.size());
    for (Cycle c : cycles_)
        s.u64(c);
    for (const auto &ser : series_) {
        s.u64(ser.size());
        for (double v : ser)
            s.f64(v);
    }
}

void
IntervalStats::restore(Deser &d)
{
    d.section("interval");
    const Cycle period = d.u64();
    if (period != period_) {
        throw SnapshotError(strprintf(
            "interval stats period mismatch: image sampled every %llu "
            "cycles, this run every %llu",
            static_cast<unsigned long long>(period),
            static_cast<unsigned long long>(period_)));
    }
    nextAt_ = d.u64();
    const std::uint64_t nProbes = d.u64();
    if (nProbes != probes_.size()) {
        throw SnapshotError(strprintf(
            "interval stats probe count mismatch: image has %llu, this "
            "run registered %zu",
            static_cast<unsigned long long>(nProbes), probes_.size()));
    }
    for (auto &p : probes_)
        p.last = d.f64();
    cycles_.resize(d.u64());
    for (auto &c : cycles_)
        c = d.u64();
    for (auto &ser : series_) {
        ser.resize(d.u64());
        for (auto &v : ser)
            v = d.f64();
    }
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

Formula &
StatGroup::formula(const std::string &name)
{
    return formulas_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, double lo, double hi,
                     unsigned buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
    return it->second;
}

double
StatGroup::formulaValue(const std::string &name) const
{
    auto it = formulas_.find(name);
    return it == formulas_.end() ? 0.0 : it->second.value();
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Average *
StatGroup::findAverage(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? nullptr : &it->second;
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatGroup::reset()
{
    // Formulas are derived values; resetting the inputs resets them.
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

double
Histogram::percentile(double p) const
{
    const std::uint64_t n = avg_.count();
    if (n == 0)
        return 0.0;
    // Target rank in [1, n]; walk the distribution in value order.
    const double rank = p * static_cast<double>(n);
    double seen = static_cast<double>(underflow_);
    if (rank <= seen)
        return avg_.min();
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double inBucket = static_cast<double>(counts_[i]);
        if (rank <= seen + inBucket) {
            // Interpolate within [lo_ + i*width, lo_ + (i+1)*width).
            const double frac =
                inBucket > 0 ? (rank - seen) / inBucket : 0.0;
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        seen += inBucket;
    }
    return avg_.max();
}

void
Histogram::merge(const Histogram &other)
{
    ROWSIM_ASSERT(other.lo_ == lo_ && other.hi_ == hi_ &&
                      other.counts_.size() == counts_.size(),
                  "merging histograms with different geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    avg_.merge(other.avg_);
}

void
IntervalStats::configure(Cycle period)
{
    period_ = period;
    nextAt_ = period;
}

void
IntervalStats::addProbe(std::string name, std::function<double()> read,
                        bool delta)
{
    Probe p;
    p.name = std::move(name);
    p.read = std::move(read);
    p.delta = delta;
    probes_.push_back(std::move(p));
    series_.emplace_back();
}

void
IntervalStats::sample(Cycle now)
{
    cycles_.push_back(now);
    for (std::size_t i = 0; i < probes_.size(); i++) {
        Probe &p = probes_[i];
        const double v = p.read ? p.read() : 0.0;
        series_[i].push_back(p.delta ? v - p.last : v);
        p.last = v;
    }
    if (period_ != 0) {
        while (nextAt_ <= now)
            nextAt_ += period_;
    }
    if (observer_) {
        std::vector<double> vals;
        vals.reserve(probes_.size());
        for (const auto &ser : series_)
            vals.push_back(ser.back());
        observer_(now, vals);
    }
}

void
IntervalStats::reset()
{
    cycles_.clear();
    for (auto &s : series_)
        s.clear();
    for (auto &p : probes_)
        p.last = 0;
    nextAt_ = period_;
}

} // namespace rowsim
