#include "common/stats.hh"

namespace rowsim
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

Formula &
StatGroup::formula(const std::string &name)
{
    return formulas_[name];
}

double
StatGroup::formulaValue(const std::string &name) const
{
    auto it = formulas_.find(name);
    return it == formulas_.end() ? 0.0 : it->second.value();
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Average *
StatGroup::findAverage(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? nullptr : &it->second;
}

void
StatGroup::reset()
{
    // Formulas are derived values; resetting the inputs resets them.
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
}

void
IntervalStats::configure(Cycle period)
{
    period_ = period;
    nextAt_ = period;
}

void
IntervalStats::addProbe(std::string name, std::function<double()> read,
                        bool delta)
{
    Probe p;
    p.name = std::move(name);
    p.read = std::move(read);
    p.delta = delta;
    probes_.push_back(std::move(p));
    series_.emplace_back();
}

void
IntervalStats::sample(Cycle now)
{
    cycles_.push_back(now);
    for (std::size_t i = 0; i < probes_.size(); i++) {
        Probe &p = probes_[i];
        const double v = p.read ? p.read() : 0.0;
        series_[i].push_back(p.delta ? v - p.last : v);
        p.last = v;
    }
    if (period_ != 0) {
        while (nextAt_ <= now)
            nextAt_ += period_;
    }
}

void
IntervalStats::reset()
{
    cycles_.clear();
    for (auto &s : series_)
        s.clear();
    for (auto &p : probes_)
        p.last = 0;
    nextAt_ = period_;
}

} // namespace rowsim
