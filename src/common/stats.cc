#include "common/stats.hh"

namespace rowsim
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

Formula &
StatGroup::formula(const std::string &name)
{
    return formulas_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, double lo, double hi,
                     unsigned buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
    return it->second;
}

double
StatGroup::formulaValue(const std::string &name) const
{
    auto it = formulas_.find(name);
    return it == formulas_.end() ? 0.0 : it->second.value();
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Average *
StatGroup::findAverage(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? nullptr : &it->second;
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatGroup::reset()
{
    // Formulas are derived values; resetting the inputs resets them.
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

double
Histogram::percentile(double p) const
{
    const std::uint64_t n = avg_.count();
    if (n == 0)
        return 0.0;
    // Target rank in [1, n]; walk the distribution in value order.
    const double rank = p * static_cast<double>(n);
    double seen = static_cast<double>(underflow_);
    if (rank <= seen)
        return avg_.min();
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double inBucket = static_cast<double>(counts_[i]);
        if (rank <= seen + inBucket) {
            // Interpolate within [lo_ + i*width, lo_ + (i+1)*width).
            const double frac =
                inBucket > 0 ? (rank - seen) / inBucket : 0.0;
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        seen += inBucket;
    }
    return avg_.max();
}

void
Histogram::merge(const Histogram &other)
{
    ROWSIM_ASSERT(other.lo_ == lo_ && other.hi_ == hi_ &&
                      other.counts_.size() == counts_.size(),
                  "merging histograms with different geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    avg_.merge(other.avg_);
}

void
IntervalStats::configure(Cycle period)
{
    period_ = period;
    nextAt_ = period;
}

void
IntervalStats::addProbe(std::string name, std::function<double()> read,
                        bool delta)
{
    Probe p;
    p.name = std::move(name);
    p.read = std::move(read);
    p.delta = delta;
    probes_.push_back(std::move(p));
    series_.emplace_back();
}

void
IntervalStats::sample(Cycle now)
{
    cycles_.push_back(now);
    for (std::size_t i = 0; i < probes_.size(); i++) {
        Probe &p = probes_[i];
        const double v = p.read ? p.read() : 0.0;
        series_[i].push_back(p.delta ? v - p.last : v);
        p.last = v;
    }
    if (period_ != 0) {
        while (nextAt_ <= now)
            nextAt_ += period_;
    }
}

void
IntervalStats::reset()
{
    cycles_.clear();
    for (auto &s : series_)
        s.clear();
    for (auto &p : probes_)
        p.last = 0;
    nextAt_ = period_;
}

} // namespace rowsim
