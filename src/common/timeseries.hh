/**
 * @file
 * Metric time-series engine: online statistics over interval samples.
 *
 * Each IntervalStats sampling tick feeds one value per metric into a
 * MetricSeries, which maintains — in O(1) per sample and bounded
 * memory — the online Welford mean/variance, the lag-1 autocorrelation
 * estimate, a batch-means confidence interval, and a bounded window of
 * recent (cycle, value) points for rendering. The batch-means CI is the
 * standard remedy for autocorrelated simulation output: consecutive
 * samples are grouped into batches whose means are approximately
 * independent, and a Student-t interval over the batch means bounds the
 * steady-state mean (Law & Kelton; the statistical kernel ROADMAP
 * item 1's SMARTS-style sampling builds on).
 *
 * TimeSeriesEngine bundles one MetricSeries per interval probe, renders
 * the whole state as JSON (the "timeseries" key in dumpStatsJson /
 * RunResult), serializes through the snapshot layer, and implements
 * convergence-bounded runs: ROWSIM_CONVERGE=<metric>:<rel_hw>[:<conf>]
 * latches a converged flag the System run loop polls, so the run stops
 * deterministically at the interval boundary where the target metric's
 * relative CI half-width first meets the bound.
 *
 * Everything here is pure double arithmetic on sampled values; none of
 * it feeds back into simulated behaviour, so the engine lives outside
 * the architectural state digest (stats pass only).
 */

#ifndef ROWSIM_COMMON_TIMESERIES_HH
#define ROWSIM_COMMON_TIMESERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

/** Student-t upper quantile t_{df}(p) for p in (0.5, 1); used by the
 *  batch-means CI. Inverse-normal (Acklam) plus a Cornish-Fisher
 *  expansion in 1/df — exact enough for CI work at df >= 2 (< 0.5%
 *  relative error), and deterministic across platforms. */
double tQuantile(double p, std::uint64_t df);

/** Online statistics for one sampled metric. */
class MetricSeries
{
  public:
    /** Number of completed batches the CI requires before it is valid
     *  (fewer batch means make the t interval meaninglessly wide). */
    static constexpr unsigned kMinBatches = 8;
    /** Completed-batch ceiling: when reached, adjacent batches collapse
     *  pairwise and the batch size doubles — bounded, deterministic
     *  memory for any run length. */
    static constexpr unsigned kMaxBatches = 64;

    explicit MetricSeries(unsigned window = 512) : window_(window) {}

    void add(Cycle cycle, double v);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 with < 2 samples. */
    double variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    double stddev() const;
    /** Lag-1 autocorrelation estimate, clamped to [-1, 1]; 0 with < 3
     *  samples or zero variance. */
    double lag1() const;

    unsigned batchCount() const
    {
        return static_cast<unsigned>(batchSums_.size());
    }
    std::uint64_t batchSize() const { return batchSize_; }

    /** One batch-means confidence interval. */
    struct Ci
    {
        /** False until kMinBatches batches completed (all other fields
         *  are 0 then). */
        bool valid = false;
        double confidence = 0;
        double halfwidth = 0;
        /** halfwidth / |mean of batch means|; infinity at mean 0. */
        double relHalfwidth = 0;
        double lo = 0;
        double hi = 0;
    };
    Ci ci(double confidence) const;

    /** Recent (cycle, value) points, oldest first, at most `window`. */
    std::vector<Cycle> windowCycles() const;
    std::vector<double> windowValues() const;
    unsigned window() const { return window_; }

    void save(Ser &s) const;
    /** Restore onto a same-window instance; throws SnapshotError on a
     *  geometry mismatch. */
    void restore(Deser &d);

  private:
    unsigned window_;

    // Welford accumulators.
    std::uint64_t n_ = 0;
    double mean_ = 0;
    double m2_ = 0;

    // Lag-1 autocorrelation: sum of x_i * x_{i-1} plus the previous
    // sample.
    double prev_ = 0;
    double crossSum_ = 0;

    // Batch means: completed batch sums (each over batchSize_ samples)
    // plus the in-progress batch.
    std::uint64_t batchSize_ = 1;
    std::vector<double> batchSums_;
    double curSum_ = 0;
    std::uint64_t curCount_ = 0;

    // Bounded ring of recent points.
    std::vector<Cycle> ringCycles_;
    std::vector<double> ringValues_;
    std::size_t ringHead_ = 0;
};

/** Convergence-bounded-run request (ROWSIM_CONVERGE /
 *  SystemParams::converge). */
struct ConvergeSpec
{
    bool active = false;
    std::string metric;
    /** Stop once halfwidth / |mean| <= relHalfwidth. */
    double relHalfwidth = 0;
    double confidence = 0.95;
};

/** Parse "<metric>:<rel_halfwidth>[:<confidence>]"; empty spec returns
 *  an inactive ConvergeSpec, anything malformed is fatal (naming
 *  @p what, e.g. "ROWSIM_CONVERGE"). */
ConvergeSpec parseConvergeSpec(const char *what, const std::string &spec);

/** Parse an on/off spec ("on"/"1"/"yes"/"true" vs "off"/"0"/"no"/
 *  "false"); anything else is fatal naming @p what. */
bool parseOnOffSpec(const char *what, const std::string &spec);

/** One MetricSeries per interval probe plus the convergence monitor. */
class TimeSeriesEngine
{
  public:
    /** Default ROWSIM_TS_WINDOW. */
    static constexpr unsigned kDefaultWindow = 512;

    TimeSeriesEngine(Cycle period, unsigned window, ConvergeSpec conv);

    /** Register a metric; call once per interval probe, in probe order,
     *  before the first observe(). */
    void addMetric(const std::string &name);

    /** Feed one interval sample (values in metric registration order). */
    void observe(Cycle now, const std::vector<double> &values);

    bool hasMetric(const std::string &name) const;
    const MetricSeries *find(const std::string &name) const;
    const std::vector<std::string> &metricNames() const { return names_; }

    const ConvergeSpec &converge() const { return conv_; }
    /** Latched once the target metric's CI meets the bound; the run
     *  loop polls this after each tick, so the stop lands exactly at
     *  the sample cycle that converged. */
    bool converged() const { return converged_; }
    Cycle convergedAtCycle() const { return convergedAt_; }
    /** Relative CI half-width of the converge metric right now (or
     *  infinity while invalid); 0 when no converge spec is active. */
    double achievedRelHalfwidth() const;

    /** The whole engine state as one JSON object. */
    std::string toJson() const;

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    Cycle period_;
    unsigned window_;
    ConvergeSpec conv_;
    std::vector<std::string> names_;
    std::vector<MetricSeries> series_;
    std::size_t convIdx_ = SIZE_MAX;
    bool converged_ = false;
    Cycle convergedAt_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_COMMON_TIMESERIES_HH
