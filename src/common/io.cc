#include "common/io.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "common/log.hh"

namespace rowsim
{

namespace
{

/** Armed torn-write kill point (test support); disabled by default. */
std::size_t killAfterBytes = atomicWriteKillDisabled;

/** Monotonic per-process counter so concurrent atomicWriteFile calls in
 *  one process (sweep worker threads) never share a temporary name. */
std::atomic<std::uint64_t> tmpSeq{0};

} // namespace

void
setAtomicWriteKillAfter(std::size_t bytes)
{
    killAfterBytes = bytes;
}

void
atomicWriteFile(const std::string &path, const void *data, std::size_t len)
{
    // Parent directories are the writer's problem: every store/snapshot
    // path is keyed, and demanding pre-created directories just moves
    // the mkdir to every call site.
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    const std::string tmp =
        path + strprintf(".tmp.%ld.%llu", static_cast<long>(::getpid()),
                         static_cast<unsigned long long>(
                             tmpSeq.fetch_add(1)));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        throw IoError(strprintf("cannot create '%s': %s", tmp.c_str(),
                                std::strerror(errno)));
    }

    bool ok = true;
    if (killAfterBytes != atomicWriteKillDisabled && len > killAfterBytes) {
        // Torn-write drill: flush a prefix to disk, then die exactly as
        // a SIGKILLed worker would — temporary left behind, final path
        // untouched.
        if (killAfterBytes > 0)
            std::fwrite(data, 1, killAfterBytes, f);
        std::fflush(f);
        std::_Exit(9);
    }
    if (len > 0)
        ok = std::fwrite(data, 1, len, f) == len;
    ok = ok && std::fflush(f) == 0;
    // fsync before rename: rename-over-old is only crash-safe once the
    // new bytes are durable, else a power cut can leave a zero-length
    // "complete" file.
    ok = ok && ::fsync(::fileno(f)) == 0;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw IoError(strprintf("write to '%s' failed: %s", tmp.c_str(),
                                std::strerror(errno)));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        throw IoError(strprintf("cannot rename '%s' over '%s': %s",
                                tmp.c_str(), path.c_str(),
                                std::strerror(err)));
    }
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::uint8_t chunk[1 << 14];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.insert(out.end(), chunk, chunk + n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok)
        out.clear();
    return ok;
}

} // namespace rowsim
