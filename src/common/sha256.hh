/**
 * @file
 * Minimal SHA-256 (FIPS 180-4). Used by the snapshot layer to fingerprint
 * configurations, to detect checkpoint-file corruption, and to derive the
 * canonical architectural state digest that CI compares across compilers.
 * Self-contained so the simulator stays dependency-free.
 */

#ifndef ROWSIM_COMMON_SHA256_HH
#define ROWSIM_COMMON_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rowsim
{

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Finalize and return the 32-byte digest. The hasher must not be
     *  updated afterwards. */
    std::array<std::uint8_t, 32> digest();

    /** Lowercase hex rendering of a digest. */
    static std::string hex(const std::array<std::uint8_t, 32> &d);

    /** One-shot convenience: hex digest of a buffer. */
    static std::string hashHex(const void *data, std::size_t len);

  private:
    void compress(const std::uint8_t block[64]);

    std::uint32_t h_[8];
    std::uint64_t totalBytes_ = 0;
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
};

} // namespace rowsim

#endif // ROWSIM_COMMON_SHA256_HH
