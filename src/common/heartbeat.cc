#include "common/heartbeat.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/trace.hh"

namespace rowsim
{

namespace
{

/** One warning, then silence: a heartbeat sink on a full disk must not
 *  spam every event. */
std::atomic<bool> sinkDisarmed{false};

} // namespace

bool
Heartbeat::enabled()
{
    if (sinkDisarmed.load(std::memory_order_relaxed))
        return false;
    const char *env = std::getenv("ROWSIM_HEARTBEAT");
    return env && *env;
}

std::string
Heartbeat::path()
{
    const char *env = std::getenv("ROWSIM_HEARTBEAT");
    return (env && *env) ? env : "";
}

std::uint64_t
Heartbeat::periodMs()
{
    if (const char *env = std::getenv("ROWSIM_HEARTBEAT_MS"); env && *env)
        return parseEnvU64("ROWSIM_HEARTBEAT_MS", env);
    return 250;
}

std::uint64_t
Heartbeat::wallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

long
Heartbeat::rssKb()
{
#ifdef __linux__
    // statm field 2 is the resident page count.
    if (std::FILE *f = std::fopen("/proc/self/statm", "r")) {
        long size = 0, resident = 0;
        const int got = std::fscanf(f, "%ld %ld", &size, &resident);
        std::fclose(f);
        if (got == 2) {
            const long page = ::sysconf(_SC_PAGESIZE);
            return resident * (page > 0 ? page : 4096) / 1024;
        }
    }
#endif
    return -1;
}

void
Heartbeat::emitLine(const std::string &json)
{
    const std::string p = path();
    if (p.empty() || sinkDisarmed.load(std::memory_order_relaxed))
        return;
    const std::string line = json + "\n";
    // One O_APPEND write per event: threads and forked sweep workers
    // sharing the sink interleave whole lines, never fragments.
    const int fd =
        ::open(p.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    bool failed = fd < 0;
    if (!failed) {
        failed = ::write(fd, line.data(), line.size()) !=
                 static_cast<ssize_t>(line.size());
        ::close(fd);
    }
    if (failed && !sinkDisarmed.exchange(true)) {
        ROWSIM_WARN("heartbeat: cannot append to '%s': %s; sink "
                    "disabled for this process",
                    p.c_str(), std::strerror(errno));
    }
}

void
Heartbeat::emitRun(Cycle cycle, std::uint64_t iters,
                   std::uint64_t quotaTotal, double kcps, double etaMs)
{
    const double frac =
        quotaTotal ? static_cast<double>(iters) /
                         static_cast<double>(quotaTotal)
                   : 0.0;
    std::string j = strprintf(
        "{\"ev\":\"run\",\"wall\":%llu,\"job\":\"%s\",\"cycle\":%llu,"
        "\"iters\":%llu,\"quota\":%llu,\"frac\":%.4f,\"kcps\":%.1f,",
        static_cast<unsigned long long>(wallMs()),
        jsonEscape(Trace::jobKey()).c_str(),
        static_cast<unsigned long long>(cycle),
        static_cast<unsigned long long>(iters),
        static_cast<unsigned long long>(quotaTotal), frac, kcps);
    if (etaMs >= 0)
        j += strprintf("\"etaMs\":%.0f,", etaMs);
    j += strprintf("\"rssKb\":%ld}", rssKb());
    emitLine(j);
}

void
Heartbeat::emitJob(std::size_t index, const char *state,
                   const std::string &workload, const std::string &config,
                   unsigned attempt, const char *status)
{
    std::string j = strprintf(
        "{\"ev\":\"job\",\"wall\":%llu,\"job\":\"j%zu\",\"state\":\"%s\","
        "\"attempt\":%u,\"workload\":\"%s\",\"config\":\"%s\"",
        static_cast<unsigned long long>(wallMs()), index, state, attempt,
        jsonEscape(workload).c_str(), jsonEscape(config).c_str());
    if (status)
        j += strprintf(",\"status\":\"%s\"", status);
    j += "}";
    emitLine(j);
}

void
Heartbeat::emitSweep(const char *state, std::size_t jobs, std::size_t ok,
                     std::size_t failed, const char *isolation)
{
    std::string j = strprintf(
        "{\"ev\":\"sweep\",\"wall\":%llu,\"state\":\"%s\",\"jobs\":%zu,"
        "\"isolation\":\"%s\"",
        static_cast<unsigned long long>(wallMs()), state, jobs, isolation);
    if (std::strcmp(state, "end") == 0)
        j += strprintf(",\"ok\":%zu,\"failed\":%zu", ok, failed);
    j += "}";
    emitLine(j);
}

} // namespace rowsim
