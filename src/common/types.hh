/**
 * @file
 * Fundamental scalar types and address helpers shared by every module.
 */

#ifndef ROWSIM_COMMON_TYPES_HH
#define ROWSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rowsim
{

/** Physical / virtual address. The simulator does not model translation
 *  faults, so a single flat 64-bit address space is used. */
using Addr = std::uint64_t;

/** Global simulation cycle count. */
using Cycle = std::uint64_t;

/** Core (and, equivalently, thread) identifier. */
using CoreId = std::uint32_t;

/** Monotonically increasing per-core instruction sequence number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle" / "not yet happened". */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel core id (e.g. "no owner" in the directory). */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Cacheline size. Fixed at 64 bytes, as in all modern x86 parts. */
constexpr unsigned lineBytes = 64;
constexpr unsigned lineShift = 6;

/** Strip the offset bits, yielding the line-aligned address. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Line number (address >> log2(lineBytes)). */
constexpr Addr
lineNum(Addr a)
{
    return a >> lineShift;
}

/** True when two byte addresses fall on the same cacheline. */
constexpr bool
sameLine(Addr a, Addr b)
{
    return lineAlign(a) == lineAlign(b);
}

} // namespace rowsim

#endif // ROWSIM_COMMON_TYPES_HH
