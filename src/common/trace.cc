#include "common/trace.hh"

#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace rowsim
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Pipeline: return "pipeline";
      case TraceCategory::Atomic: return "atomic";
      case TraceCategory::Coherence: return "coherence";
      case TraceCategory::Directory: return "directory";
      case TraceCategory::Network: return "network";
      case TraceCategory::Predictor: return "predictor";
      case TraceCategory::Queue: return "queue";
      case TraceCategory::Span: return "span";
    }
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim and lowercase.
        while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
            tok.erase(tok.begin());
        while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
            tok.pop_back();
        for (auto &ch : tok)
            ch = static_cast<char>(std::tolower(ch));
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= traceCategoryAll;
            continue;
        }
        if (tok == "none")
            continue;
        bool known = false;
        for (std::uint32_t bit = 1; bit <= traceCategoryAll; bit <<= 1) {
            if (tok == traceCategoryName(static_cast<TraceCategory>(bit))) {
                mask |= bit;
                known = true;
                break;
            }
        }
        if (!known)
            ROWSIM_FATAL("unknown trace category '%s' (valid: pipeline, "
                         "atomic, coherence, directory, network, "
                         "predictor, queue, span, all, none)",
                         tok.c_str());
    }
    return mask;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

Trace &
Trace::instance()
{
    // One Trace per thread: sinks, ring and masks never cross threads,
    // so concurrent sweep workers cannot interleave output.
    static thread_local Trace t;
    return t;
}

Trace::~Trace()
{
    closeAll();
}

void
Trace::disableThisThread()
{
    envInitDone_ = true;
    mask_ = 0;
    sinkMask_ = 0;
    ringMask_ = 0;
}

std::string
suffixJobPath(const std::string &path, const std::string &key)
{
    if (key.empty())
        return path;
    // Insert before the last extension, but not before a dot that is
    // part of a directory component ("out.d/trace").
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "." + key;
    }
    return path.substr(0, dot) + "." + key + path.substr(dot);
}

void
Trace::scopeToJob(const std::string &key)
{
    instance().closeAll();
    sinkMask_ = 0;
    ringMask_ = 0;
    mask_ = 0;
    jobKey_ = key;
    envInitDone_ = false;
    initFromEnv();
}

const std::string &
Trace::jobKey()
{
    return jobKey_;
}

void
Trace::initFromEnv()
{
    if (envInitDone_)
        return;
    envInitDone_ = true;

    Trace &t = instance();
    if (const char *ring = std::getenv("ROWSIM_TRACE_RING"); ring && *ring)
        t.enableRing(static_cast<std::size_t>(
            parseEnvU64("ROWSIM_TRACE_RING", ring)));

    const char *spec = std::getenv("ROWSIM_TRACE");
    if (!spec || !*spec)
        return;
    t.configure(parseTraceCategories(spec));
    if (sinkMask_ == 0)
        return;

    if (const char *path = std::getenv("ROWSIM_TRACE_FILE");
        path && *path) {
        const std::string p = suffixJobPath(path, jobKey_);
        std::FILE *f = std::fopen(p.c_str(), "w");
        if (!f)
            ROWSIM_FATAL("cannot open trace text file '%s'", p.c_str());
        t.setTextSink(f, true);
    }
    const char *json = std::getenv("ROWSIM_TRACE_JSON");
    t.openJson(suffixJobPath(json && *json ? json : "rowsim.trace.json",
                             jobKey_));
}

void
Trace::setTextSink(std::FILE *f, bool owned)
{
    if (ownTextSink_ && textSink_)
        std::fclose(textSink_);
    textSink_ = f;
    ownTextSink_ = owned;
}

bool
Trace::openJson(const std::string &path)
{
    closeJson();
    json_ = std::fopen(path.c_str(), "w");
    if (!json_) {
        ROWSIM_WARN("cannot open chrome trace file '%s'", path.c_str());
        return false;
    }
    std::fputs("{\"traceEvents\":[\n", json_);
    jsonFirst_ = true;
    return true;
}

void
Trace::closeJson()
{
    if (!json_)
        return;
    std::fputs("\n]}\n", json_);
    std::fclose(json_);
    json_ = nullptr;
}

void
Trace::closeAll()
{
    closeJson();
    setTextSink(nullptr, false);
}

void
Trace::emitJson(const std::string &record)
{
    if (!json_)
        return;
    if (!jsonFirst_)
        std::fputs(",\n", json_);
    jsonFirst_ = false;
    std::fputs(record.c_str(), json_);
    events_++;
}

void
Trace::enableRing(std::size_t capacity)
{
    ringCap_ = capacity;
    ringNext_ = 0;
    ringCount_ = 0;
    ring_.assign(ringCap_, std::string());
    ringMask_ = ringCap_ ? traceCategoryAll : 0;
    mask_ = sinkMask_ | ringMask_;
}

std::vector<std::string>
Trace::ringSnapshot() const
{
    std::vector<std::string> out;
    out.reserve(ringCount_);
    // Oldest first: the slot at ringNext_ is the oldest once full.
    const std::size_t start =
        ringCount_ == ringCap_ ? ringNext_ : 0;
    for (std::size_t i = 0; i < ringCount_; i++)
        out.push_back(ring_[(start + i) % ringCap_]);
    return out;
}

void
Trace::text(TraceCategory cat, Cycle cycle, const char *fmt, ...)
{
    if (!enabled(cat))
        return;
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (ringCap_ && (ringMask_ & static_cast<std::uint32_t>(cat))) {
        ring_[ringNext_] = strprintf("%12llu [%s] %s",
                                     static_cast<unsigned long long>(cycle),
                                     traceCategoryName(cat), buf);
        ringNext_ = (ringNext_ + 1) % ringCap_;
        if (ringCount_ < ringCap_)
            ringCount_++;
    }
    if (!(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    std::FILE *out = textSink_ ? textSink_ : stderr;
    std::fprintf(out, "%12llu [%s] %s\n",
                 static_cast<unsigned long long>(cycle),
                 traceCategoryName(cat), buf);
}

namespace
{
std::string
argsField(const std::string &args_json)
{
    return args_json.empty() ? std::string()
                             : ",\"args\":" + args_json;
}
} // namespace

void
Trace::complete(TraceCategory cat, int pid, int tid, const char *name,
                Cycle start, Cycle end, const std::string &args_json)
{
    // Sink mask, not the effective mask: ring-only categories (crash
    // diagnostics) must not leak into the Chrome trace.
    if (!json_ || !(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
        "\"dur\":%llu,\"pid\":%d,\"tid\":%d%s}",
        jsonEscape(name).c_str(), traceCategoryName(cat),
        static_cast<unsigned long long>(start),
        static_cast<unsigned long long>(end >= start ? end - start : 0),
        pid, tid, argsField(args_json).c_str()));
}

void
Trace::span(TraceCategory cat, int pid, int tid, const char *name,
            std::uint64_t id, Cycle start, Cycle end,
            const std::string &args_json)
{
    if (!json_ || !(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    const std::string escaped = jsonEscape(name);
    const char *catname = traceCategoryName(cat);
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"b\",\"id\":\"%llx\","
        "\"ts\":%llu,\"pid\":%d,\"tid\":%d%s}",
        escaped.c_str(), catname, static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(start), pid, tid,
        argsField(args_json).c_str()));
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"e\",\"id\":\"%llx\","
        "\"ts\":%llu,\"pid\":%d,\"tid\":%d}",
        escaped.c_str(), catname, static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(end), pid, tid));
}

void
Trace::instant(TraceCategory cat, int pid, int tid, const char *name,
               Cycle ts, const std::string &args_json)
{
    if (!json_ || !(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":%d,\"tid\":%d%s}",
        jsonEscape(name).c_str(), traceCategoryName(cat),
        static_cast<unsigned long long>(ts), pid, tid,
        argsField(args_json).c_str()));
}

void
Trace::flow(TraceCategory cat, int pid, int tid, const char *name,
            std::uint64_t id, Cycle ts, char phase)
{
    if (!json_ || !(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    // Flow-finish binds to the enclosing slice ("bp":"e") so the arrow
    // lands on the segment slice rather than needing a matching
    // instant.
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"id\":\"%llx\","
        "\"ts\":%llu,\"pid\":%d,\"tid\":%d%s}",
        jsonEscape(name).c_str(), traceCategoryName(cat), phase,
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(ts), pid, tid,
        phase == 'f' ? ",\"bp\":\"e\"" : ""));
}

void
Trace::counter(TraceCategory cat, int pid, const char *name, Cycle ts,
               double value)
{
    if (!json_ || !(sinkMask_ & static_cast<std::uint32_t>(cat)))
        return;
    emitJson(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%llu,"
        "\"pid\":%d,\"args\":{\"value\":%g}}",
        jsonEscape(name).c_str(), traceCategoryName(cat),
        static_cast<unsigned long long>(ts), pid, value));
}

void
Trace::nameProcess(int pid, const std::string &name)
{
    if (!json_)
        return;
    emitJson(strprintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, jsonEscape(name).c_str()));
}

void
Trace::nameThread(int pid, int tid, const std::string &name)
{
    if (!json_)
        return;
    emitJson(strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, tid, jsonEscape(name).c_str()));
}

} // namespace rowsim
