/**
 * @file
 * Live telemetry heartbeat: a JSONL event stream for in-flight runs.
 *
 * ROWSIM_HEARTBEAT=<path> turns the sink on. Three event kinds share
 * the stream (discriminated by "ev"); every line carries a wall-clock
 * stamp in ms ("wall") and the sweep job key ("job", empty outside a
 * sweep):
 *
 *   run    — periodic progress from the System run loop: simulated
 *            cycle, committed iterations vs the total quota ("frac"),
 *            simulation speed in Kcycles/s, a wall-clock ETA, and the
 *            process RSS.
 *   job    — sweep-job lifecycle from the sweep engine (both isolation
 *            modes): state queued/started/retrying/finished, the
 *            attempt number, and the terminal status.
 *   sweep  — one start/end pair per sweep with job totals.
 *
 * Every event is written as one line with a single O_APPEND write, so
 * worker threads and forked worker processes interleave whole lines,
 * never fragments. The sink is live-only telemetry: like ROWSIM_TRACE
 * and ROWSIM_STATS_JSON it bypasses the result store (a cache hit
 * emits no heartbeat), and it never changes simulated behaviour.
 * ROWSIM_HEARTBEAT_MS (default 250) sets the minimum wall-clock gap
 * between run events. tools/rowsim_top tails the stream into a live
 * per-job table.
 */

#ifndef ROWSIM_COMMON_HEARTBEAT_HH
#define ROWSIM_COMMON_HEARTBEAT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rowsim
{

class Heartbeat
{
  public:
    /** True when ROWSIM_HEARTBEAT names a sink file. */
    static bool enabled();
    /** The sink path (empty when disabled). */
    static std::string path();
    /** Minimum wall-clock gap between run events in ms
     *  (ROWSIM_HEARTBEAT_MS, default 250). */
    static std::uint64_t periodMs();

    /** Wall clock in ms since the Unix epoch. */
    static std::uint64_t wallMs();
    /** Resident set size in KiB; -1 when the platform cannot say. */
    static long rssKb();

    /** Append one complete JSON line (the newline is added here) with a
     *  single O_APPEND write. Best-effort: failures warn once and the
     *  sink disarms for the rest of the process. */
    static void emitLine(const std::string &json);

    /** Periodic run-progress event. @p etaMs < 0 means unknown. */
    static void emitRun(Cycle cycle, std::uint64_t iters,
                        std::uint64_t quotaTotal, double kcps,
                        double etaMs);

    /** Sweep-job lifecycle event; @p status may be null (non-terminal
     *  states). */
    static void emitJob(std::size_t index, const char *state,
                        const std::string &workload,
                        const std::string &config, unsigned attempt,
                        const char *status);

    /** Sweep start/end event; ok/failed only meaningful at "end". */
    static void emitSweep(const char *state, std::size_t jobs,
                          std::size_t ok, std::size_t failed,
                          const char *isolation);
};

} // namespace rowsim

#endif // ROWSIM_COMMON_HEARTBEAT_HH
