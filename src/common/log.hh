/**
 * @file
 * Minimal gem5-flavoured logging: panic() for internal invariant violations,
 * fatal() for user configuration errors, warn()/inform() for diagnostics.
 */

#ifndef ROWSIM_COMMON_LOG_HH
#define ROWSIM_COMMON_LOG_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace rowsim
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse a numeric ROWSIM_* environment value. The full string must be
 * decimal digits: "10k" or "" or an overflowing value is a user error
 * (fatal), never a silent misparse. @p name is only used in the error
 * message.
 */
std::uint64_t parseEnvU64(const char *name, const char *text);

/**
 * Diagnostic verbosity. panic/fatal always print; warn() is emitted at
 * Warn and above, inform() at Info and above. All diagnostics go to
 * stderr so stdout stays machine-parseable (JSON reports, bench tables).
 */
enum class LogLevel : std::uint8_t
{
    Silent = 0, ///< errors only (panic / fatal)
    Warn = 1,
    Info = 2,
};

/** Current level. Initialised once from ROWSIM_LOG_LEVEL
 *  ("silent"|"warn"|"info"; default info). */
LogLevel logLevel();
void setLogLevel(LogLevel level);
/** Parse a level name; fatal on unknown names. */
LogLevel parseLogLevel(const std::string &name);

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Crash-diagnostics hooks: invoked (most recently registered first) with
 * the panic message before panicImpl throws, so a System can dump its
 * state while it is still intact. Re-entrant panics while a hook runs do
 * not re-invoke hooks. @p owner keys deregistration (a System registers
 * in its constructor and must remove the hook in its destructor).
 */
void pushPanicHook(const void *owner,
                   std::function<void(const std::string &)> hook);
void removePanicHook(const void *owner);

/** Abort on a simulator bug: a condition that must never happen. */
#define ROWSIM_PANIC(...) \
    ::rowsim::panicImpl(__FILE__, __LINE__, ::rowsim::strprintf(__VA_ARGS__))

/** Exit on a user error (bad configuration, invalid parameters). */
#define ROWSIM_FATAL(...) \
    ::rowsim::fatalImpl(__FILE__, __LINE__, ::rowsim::strprintf(__VA_ARGS__))

#define ROWSIM_WARN(...) \
    ::rowsim::warnImpl(::rowsim::strprintf(__VA_ARGS__))

#define ROWSIM_INFORM(...) \
    ::rowsim::informImpl(::rowsim::strprintf(__VA_ARGS__))

/** Assert-like helper that survives NDEBUG builds. */
#define ROWSIM_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rowsim::panicImpl(__FILE__, __LINE__,                        \
                std::string("assertion failed: " #cond " — ") +            \
                ::rowsim::strprintf(__VA_ARGS__));                         \
        }                                                                  \
    } while (0)

} // namespace rowsim

#endif // ROWSIM_COMMON_LOG_HH
