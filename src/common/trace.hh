/**
 * @file
 * Runtime-gated, per-category trace facility.
 *
 * Inspired by gem5's DPRINTF flags and Chrome's trace-event format: every
 * trace point belongs to a TraceCategory and compiles to a single branch
 * on a category bitmask when tracing is off. Two sinks are supported and
 * can be active simultaneously:
 *
 *  - a human-readable, cycle-stamped text log (stderr by default, or a
 *    file via ROWSIM_TRACE_FILE), and
 *  - a Chrome trace-event JSON writer (ROWSIM_TRACE_JSON; loadable in
 *    Perfetto / chrome://tracing) rendering lock hold intervals, AQ
 *    residency, directory Blocked-state windows and mesh message
 *    lifetimes as duration events on named per-component tracks.
 *
 * Categories are selected with the ROWSIM_TRACE environment variable
 * (comma-separated, e.g. ROWSIM_TRACE=atomic,coherence or "all") or
 * programmatically via SystemParams::traceCategories.
 */

#ifndef ROWSIM_COMMON_TRACE_HH
#define ROWSIM_COMMON_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace rowsim
{

/** One bit per subsystem; combined into the runtime trace mask. */
enum class TraceCategory : std::uint32_t
{
    Pipeline  = 1u << 0, ///< dispatch / issue / commit / SB drain
    Atomic    = 1u << 1, ///< atomic lifecycle: decision, lock, unlock
    Coherence = 1u << 2, ///< L1/L2 fills, stalls, forced unlocks
    Directory = 1u << 3, ///< Blocked windows, queued requests
    Network   = 1u << 4, ///< message inject / deliver
    Predictor = 1u << 5, ///< RoW predictions, outcomes, updates
    Queue     = 1u << 6, ///< LQ / SQ / AQ allocate + free
    Span      = 1u << 7, ///< atomic lifetime spans (sim/span.hh)
};

constexpr std::uint32_t traceCategoryAll = (1u << 8) - 1;

const char *traceCategoryName(TraceCategory c);

/**
 * Parse a comma-separated category list ("atomic,coherence", "all",
 * "none") into a bitmask. Unknown names are a user error (fatal).
 * An empty string yields 0 (tracing off).
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/** Chrome-trace process-id conventions (one "process" per component). */
constexpr int tracePidDirBase = 1000; ///< directory bank b -> 1000 + b
constexpr int tracePidNetwork = 2000; ///< the mesh

/** Per-core thread-id conventions within a core's process. */
constexpr int traceTidPipeline = 0;
constexpr int traceTidAtomics = 1;
constexpr int traceTidPredictor = 2;
constexpr int traceTidCache = 3;
constexpr int traceTidSpans = 4;

class Trace
{
  public:
    static Trace &instance();

    /** Fast inline gates: one load + test, no function call. */
    static bool anyEnabled() { return mask_ != 0; }
    static bool
    enabled(TraceCategory c)
    {
        return (mask_ & static_cast<std::uint32_t>(c)) != 0;
    }

    /**
     * One-time initialisation from the environment (ROWSIM_TRACE,
     * ROWSIM_TRACE_FILE, ROWSIM_TRACE_JSON); idempotent per thread.
     * System calls this at construction so env-var tracing works for
     * every bench and example without code changes. When ROWSIM_TRACE
     * selects categories and ROWSIM_TRACE_JSON is unset, the Chrome
     * trace defaults to "rowsim.trace.json" in the working directory.
     */
    static void initFromEnv();

    /**
     * Mark this thread's trace state as initialised-and-off, so a later
     * initFromEnv() is a no-op. Sweep worker threads call this before
     * constructing Systems: otherwise every worker would re-read
     * ROWSIM_TRACE and open (and clobber) the same sink files
     * concurrently. The main thread's sinks are unaffected — all trace
     * state is thread-local.
     */
    static void disableThisThread();

    /**
     * Scope this thread's trace sinks to one sweep job: close any open
     * sinks, then re-run env initialisation with @p key as the job key,
     * so ROWSIM_TRACE_FILE / ROWSIM_TRACE_JSON paths are suffixed (see
     * suffixJobPath) and concurrent jobs never clobber or interleave
     * one file. Sweep workers call this per job instead of
     * disableThisThread().
     */
    static void scopeToJob(const std::string &key);

    /** This thread's job key ("" outside a sweep job). Other per-job
     *  sinks (ROWSIM_PROFILE_JSON, ROWSIM_SPANS_JSON) consult it. */
    static const std::string &jobKey();

    /** Programmatic configuration of the *sink* categories (tests,
     *  SystemParams). The effective gate mask also includes the ring
     *  categories, so enabling the ring keeps trace points live even
     *  with every sink off. */
    void
    configure(std::uint32_t mask)
    {
        sinkMask_ = mask;
        mask_ = sinkMask_ | ringMask_;
    }

    /**
     * Retroactive ring buffer for crash diagnostics: keep the last
     * @p capacity formatted text events in memory (all categories, no
     * sink required). A panic dump replays them so the events *leading
     * up to* a violation are visible after the fact. 0 disables.
     * Env: ROWSIM_TRACE_RING=<events>.
     */
    void enableRing(std::size_t capacity);
    std::size_t ringCapacity() const { return ringCap_; }
    /** Oldest-first snapshot of the retained events. */
    std::vector<std::string> ringSnapshot() const;

    /** Redirect the text sink. @p owned: close on replacement/exit. */
    void setTextSink(std::FILE *f, bool owned);

    /** Open the Chrome-trace JSON sink. @return false on I/O error. */
    bool openJson(const std::string &path);
    /** Write the JSON footer and close the sink (idempotent). */
    void closeJson();
    /** Flush + close every sink (called from the destructor). */
    void closeAll();

    /**
     * The current simulated cycle, published by System::tick, so trace
     * points in cycle-less helpers (queue allocate/free, predictors) can
     * still stamp their events.
     */
    static Cycle now() { return now_; }
    static void setNow(Cycle c) { now_ = c; }

    /** Cycle-stamped printf-style text line. */
    void text(TraceCategory cat, Cycle cycle, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    // ----- Chrome trace-event emission -------------------------------
    // `args_json` is either empty or a complete JSON object, e.g.
    // "{\"seq\":12}". Cycles map 1:1 to trace microseconds.

    /** Complete ("X") duration event — for non-overlapping intervals on
     *  one track (e.g. a core's sequential lock holds). */
    void complete(TraceCategory cat, int pid, int tid, const char *name,
                  Cycle start, Cycle end, const std::string &args_json = "");

    /** Async ("b"/"e") duration pair — for intervals that may overlap on
     *  a track (AQ residency, directory Blocked windows, messages). */
    void span(TraceCategory cat, int pid, int tid, const char *name,
              std::uint64_t id, Cycle start, Cycle end,
              const std::string &args_json = "");

    /** Instant ("i") event. */
    void instant(TraceCategory cat, int pid, int tid, const char *name,
                 Cycle ts, const std::string &args_json = "");

    /** Flow ("s"/"t"/"f") event: arrows between slices on different
     *  tracks (e.g. a span's remote leg crossing core -> network).
     *  @p phase is 's' (start), 't' (step) or 'f' (finish). */
    void flow(TraceCategory cat, int pid, int tid, const char *name,
              std::uint64_t id, Cycle ts, char phase);

    /** Counter ("C") event: one numeric series per (pid, name). */
    void counter(TraceCategory cat, int pid, const char *name, Cycle ts,
                 double value);

    /** Name a Chrome-trace process / thread track (metadata events). */
    void nameProcess(int pid, const std::string &name);
    void nameThread(int pid, int tid, const std::string &name);

    bool jsonOpen() const { return json_ != nullptr; }
    std::uint64_t eventsEmitted() const { return events_; }

    Trace(const Trace &) = delete;
    Trace &operator=(const Trace &) = delete;

  private:
    Trace() = default;
    ~Trace();

    void emitJson(const std::string &record);

    // The mask and cycle are static so the inline gates touch no
    // instance state (and need no instance() call); thread_local so
    // concurrent sweep workers each gate and stamp their own System
    // without racing. mask_ is the union of the sink categories and the
    // ring categories.
    static inline thread_local std::uint32_t mask_ = 0;
    static inline thread_local std::uint32_t sinkMask_ = 0;
    static inline thread_local std::uint32_t ringMask_ = 0;
    static inline thread_local Cycle now_ = 0;
    /** Per-thread "initFromEnv already ran" latch. */
    static inline thread_local bool envInitDone_ = false;
    /** This thread's sweep job key ("" on the main thread). */
    static inline thread_local std::string jobKey_;

    std::FILE *textSink_ = nullptr; ///< nullptr -> stderr
    bool ownTextSink_ = false;
    std::FILE *json_ = nullptr;
    bool jsonFirst_ = true;
    std::uint64_t events_ = 0;

    std::vector<std::string> ring_; ///< ringCap_ slots, circular
    std::size_t ringCap_ = 0;
    std::size_t ringNext_ = 0;
    std::size_t ringCount_ = 0;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Suffix an output path with a sweep job key: the key is inserted
 * before the last extension ("trace.json" + "j3" -> "trace.j3.json";
 * extensionless paths get a plain suffix). An empty key returns the
 * path unchanged.
 */
std::string suffixJobPath(const std::string &path, const std::string &key);

/**
 * Trace-point macros. All of them compile to one branch on the category
 * mask when tracing is off; argument expressions (including strprintf
 * calls building args) are only evaluated when the category is live.
 */
#define ROWSIM_TRACE(cat, cycle, ...)                                     \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().text((cat), (cycle),              \
                                             __VA_ARGS__);                \
    } while (0)

/** Like ROWSIM_TRACE but stamped with Trace::now() (for call sites with
 *  no cycle in scope). */
#define ROWSIM_TRACE_AT(cat, ...)                                         \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().text(                             \
                (cat), ::rowsim::Trace::now(), __VA_ARGS__);              \
    } while (0)

#define ROWSIM_TRACE_COMPLETE(cat, pid, tid, name, start, end, args)      \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().complete(                         \
                (cat), (pid), (tid), (name), (start), (end), (args));     \
    } while (0)

#define ROWSIM_TRACE_SPAN(cat, pid, tid, name, id, start, end, args)      \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().span((cat), (pid), (tid), (name), \
                                             (id), (start), (end),        \
                                             (args));                     \
    } while (0)

#define ROWSIM_TRACE_INSTANT(cat, pid, tid, name, ts, args)               \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().instant((cat), (pid), (tid),      \
                                                (name), (ts), (args));    \
    } while (0)

#define ROWSIM_TRACE_COUNTER(cat, pid, name, ts, value)                   \
    do {                                                                  \
        if (::rowsim::Trace::enabled(cat))                                \
            ::rowsim::Trace::instance().counter((cat), (pid), (name),     \
                                                (ts), (value));           \
    } while (0)

} // namespace rowsim

#endif // ROWSIM_COMMON_TRACE_HH
