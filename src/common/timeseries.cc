#include "common/timeseries.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"
#include "sim/snapshot.hh"

namespace rowsim
{

namespace
{

/** Acklam's rational approximation of the standard-normal inverse CDF
 *  (relative error < 1.15e-9 over (0, 1)). */
double
normQuantile(double p)
{
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                    r + a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                    r + 1.0);
    }
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

} // namespace

double
tQuantile(double p, std::uint64_t df)
{
    ROWSIM_ASSERT(p > 0.5 && p < 1.0 && df >= 1,
                  "tQuantile needs p in (0.5, 1) and df >= 1");
    // Closed forms for the heaviest tails, where the expansion in 1/df
    // is weakest.
    if (df == 1)
        return std::tan(M_PI * (p - 0.5));
    if (df == 2) {
        const double x = 2.0 * p - 1.0;
        return x * std::sqrt(2.0 / (1.0 - x * x));
    }
    // Cornish-Fisher expansion of the t quantile around the normal one.
    const double z = normQuantile(p);
    const double z2 = z * z;
    const double v = static_cast<double>(df);
    double t = z;
    t += (z2 + 1.0) * z / (4.0 * v);
    t += ((5.0 * z2 + 16.0) * z2 + 3.0) * z / (96.0 * v * v);
    t += (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z /
         (384.0 * v * v * v);
    t += ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 -
          945.0) *
         z / (92160.0 * v * v * v * v);
    return t;
}

void
MetricSeries::add(Cycle cycle, double v)
{
    // Welford.
    n_++;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);

    // Lag-1 cross-product.
    if (n_ > 1)
        crossSum_ += prev_ * v;
    prev_ = v;

    // Batch means with pairwise collapse.
    curSum_ += v;
    curCount_++;
    if (curCount_ == batchSize_) {
        batchSums_.push_back(curSum_);
        curSum_ = 0;
        curCount_ = 0;
        if (batchSums_.size() == kMaxBatches) {
            for (std::size_t i = 0; i < kMaxBatches / 2; i++)
                batchSums_[i] = batchSums_[2 * i] + batchSums_[2 * i + 1];
            batchSums_.resize(kMaxBatches / 2);
            batchSize_ *= 2;
        }
    }

    // Recent-point ring.
    if (window_ == 0)
        return;
    if (ringCycles_.size() < window_) {
        ringCycles_.push_back(cycle);
        ringValues_.push_back(v);
    } else {
        ringCycles_[ringHead_] = cycle;
        ringValues_[ringHead_] = v;
        ringHead_ = (ringHead_ + 1) % window_;
    }
}

double
MetricSeries::stddev() const
{
    return std::sqrt(variance());
}

double
MetricSeries::lag1() const
{
    if (n_ < 3)
        return 0.0;
    const double nd = static_cast<double>(n_);
    const double c0 = m2_ / nd; // population variance
    if (c0 <= 0.0)
        return 0.0;
    const double c1 =
        crossSum_ / (nd - 1.0) - mean_ * mean_; // lag-1 autocovariance
    const double rho = c1 / c0;
    return rho > 1.0 ? 1.0 : (rho < -1.0 ? -1.0 : rho);
}

MetricSeries::Ci
MetricSeries::ci(double confidence) const
{
    Ci out;
    const std::size_t k = batchSums_.size();
    if (k < kMinBatches)
        return out;
    const double kd = static_cast<double>(k);
    const double m = static_cast<double>(batchSize_);
    double center = 0;
    for (double s : batchSums_)
        center += s / m;
    center /= kd;
    double s2 = 0;
    for (double s : batchSums_) {
        const double dev = s / m - center;
        s2 += dev * dev;
    }
    s2 /= kd - 1.0;
    const double p = 1.0 - (1.0 - confidence) / 2.0;
    out.valid = true;
    out.confidence = confidence;
    out.halfwidth = tQuantile(p, k - 1) * std::sqrt(s2 / kd);
    out.lo = center - out.halfwidth;
    out.hi = center + out.halfwidth;
    if (out.halfwidth == 0.0)
        out.relHalfwidth = 0.0;
    else if (center == 0.0)
        out.relHalfwidth = INFINITY;
    else
        out.relHalfwidth = out.halfwidth / std::fabs(center);
    return out;
}

std::vector<Cycle>
MetricSeries::windowCycles() const
{
    std::vector<Cycle> out;
    out.reserve(ringCycles_.size());
    if (ringCycles_.size() < window_ || window_ == 0) {
        out = ringCycles_;
        return out;
    }
    for (std::size_t i = 0; i < ringCycles_.size(); i++)
        out.push_back(ringCycles_[(ringHead_ + i) % window_]);
    return out;
}

std::vector<double>
MetricSeries::windowValues() const
{
    std::vector<double> out;
    out.reserve(ringValues_.size());
    if (ringValues_.size() < window_ || window_ == 0) {
        out = ringValues_;
        return out;
    }
    for (std::size_t i = 0; i < ringValues_.size(); i++)
        out.push_back(ringValues_[(ringHead_ + i) % window_]);
    return out;
}

void
MetricSeries::save(Ser &s) const
{
    s.section("mseries");
    s.u32(window_);
    s.u64(n_);
    s.f64(mean_);
    s.f64(m2_);
    s.f64(prev_);
    s.f64(crossSum_);
    s.u64(batchSize_);
    s.u64(batchSums_.size());
    for (double b : batchSums_)
        s.f64(b);
    s.f64(curSum_);
    s.u64(curCount_);
    s.u64(ringCycles_.size());
    for (std::size_t i = 0; i < ringCycles_.size(); i++) {
        s.u64(ringCycles_[i]);
        s.f64(ringValues_[i]);
    }
    s.u64(ringHead_);
}

void
MetricSeries::restore(Deser &d)
{
    d.section("mseries");
    const std::uint32_t window = d.u32();
    if (window != window_) {
        throw SnapshotError(strprintf(
            "metric series window mismatch: image has %u, this run %u",
            window, window_));
    }
    n_ = d.u64();
    mean_ = d.f64();
    m2_ = d.f64();
    prev_ = d.f64();
    crossSum_ = d.f64();
    batchSize_ = d.u64();
    batchSums_.resize(d.u64());
    for (auto &b : batchSums_)
        b = d.f64();
    curSum_ = d.f64();
    curCount_ = d.u64();
    const std::uint64_t points = d.u64();
    if (window_ != 0 && points > window_) {
        throw SnapshotError(strprintf(
            "metric series ring overflow: %llu points in a window of %u",
            static_cast<unsigned long long>(points), window_));
    }
    ringCycles_.resize(points);
    ringValues_.resize(points);
    for (std::uint64_t i = 0; i < points; i++) {
        ringCycles_[i] = d.u64();
        ringValues_[i] = d.f64();
    }
    ringHead_ = d.u64();
    if (points != 0 && ringHead_ >= points)
        throw SnapshotError("metric series ring head out of range");
}

ConvergeSpec
parseConvergeSpec(const char *what, const std::string &spec)
{
    ConvergeSpec c;
    if (spec.empty())
        return c;
    const std::size_t first = spec.find(':');
    if (first == std::string::npos || first == 0) {
        ROWSIM_FATAL("bad %s '%s' (expected "
                     "<metric>:<rel_halfwidth>[:<confidence>])",
                     what, spec.c_str());
    }
    c.metric = spec.substr(0, first);
    const std::size_t second = spec.find(':', first + 1);
    const std::string rel =
        spec.substr(first + 1, second == std::string::npos
                                   ? std::string::npos
                                   : second - first - 1);
    auto parseFraction = [&](const std::string &text, const char *field,
                             bool allowGeOne) {
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (text.empty() || !end || *end != '\0' || !std::isfinite(v) ||
            v <= 0.0 || (!allowGeOne && v >= 1.0)) {
            ROWSIM_FATAL("bad %s '%s': %s '%s' must be a number in "
                         "(0, 1%s",
                         what, spec.c_str(), field, text.c_str(),
                         allowGeOne ? "e9)" : ")");
        }
        return v;
    };
    c.relHalfwidth = parseFraction(rel, "rel_halfwidth", true);
    if (second != std::string::npos) {
        c.confidence = parseFraction(spec.substr(second + 1), "confidence",
                                     false);
    }
    c.active = true;
    return c;
}

bool
parseOnOffSpec(const char *what, const std::string &spec)
{
    if (spec == "on" || spec == "1" || spec == "yes" || spec == "true")
        return true;
    if (spec == "off" || spec == "0" || spec == "no" || spec == "false")
        return false;
    ROWSIM_FATAL("bad %s '%s' (valid: on, off)", what, spec.c_str());
}

TimeSeriesEngine::TimeSeriesEngine(Cycle period, unsigned window,
                                   ConvergeSpec conv)
    : period_(period), window_(window), conv_(std::move(conv))
{
    ROWSIM_ASSERT(window_ > 0, "time-series window must be > 0");
}

void
TimeSeriesEngine::addMetric(const std::string &name)
{
    if (conv_.active && name == conv_.metric)
        convIdx_ = names_.size();
    names_.push_back(name);
    series_.emplace_back(window_);
}

void
TimeSeriesEngine::observe(Cycle now, const std::vector<double> &values)
{
    ROWSIM_ASSERT(values.size() == series_.size(),
                  "time-series sample has %zu values for %zu metrics",
                  values.size(), series_.size());
    for (std::size_t i = 0; i < series_.size(); i++)
        series_[i].add(now, values[i]);
    if (conv_.active && !converged_ && convIdx_ != SIZE_MAX) {
        const MetricSeries::Ci c =
            series_[convIdx_].ci(conv_.confidence);
        if (c.valid && c.relHalfwidth <= conv_.relHalfwidth) {
            converged_ = true;
            convergedAt_ = now;
        }
    }
}

bool
TimeSeriesEngine::hasMetric(const std::string &name) const
{
    for (const auto &n : names_) {
        if (n == name)
            return true;
    }
    return false;
}

const MetricSeries *
TimeSeriesEngine::find(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); i++) {
        if (names_[i] == name)
            return &series_[i];
    }
    return nullptr;
}

double
TimeSeriesEngine::achievedRelHalfwidth() const
{
    if (!conv_.active || convIdx_ == SIZE_MAX)
        return 0.0;
    const MetricSeries::Ci c = series_[convIdx_].ci(conv_.confidence);
    return c.valid ? c.relHalfwidth : INFINITY;
}

std::string
TimeSeriesEngine::toJson() const
{
    // %.6g everywhere, matching dumpStatsJson: enough digits for the
    // renderers, and byte-stable because every input double is
    // bit-reproduced across runs / restores.
    auto num = [](double v) {
        return std::isfinite(v) ? strprintf("%.6g", v)
                                : std::string("null");
    };
    std::string j = strprintf(
        "{\"period\": %llu, \"window\": %u, \"metrics\": {",
        static_cast<unsigned long long>(period_), window_);
    for (std::size_t i = 0; i < series_.size(); i++) {
        const MetricSeries &m = series_[i];
        const MetricSeries::Ci c = m.ci(
            conv_.active ? conv_.confidence : 0.95);
        j += strprintf(
            "%s\"%s\": {\"count\": %llu, \"mean\": %s, \"stddev\": %s, "
            "\"lag1\": %s, \"batches\": %u, \"batchSize\": %llu, "
            "\"ci\": {\"valid\": %s, \"confidence\": %s, "
            "\"halfwidth\": %s, \"rel\": %s, \"lo\": %s, \"hi\": %s}, "
            "\"points\": {\"cycles\": [",
            i ? ", " : "", names_[i].c_str(),
            static_cast<unsigned long long>(m.count()),
            num(m.mean()).c_str(), num(m.stddev()).c_str(),
            num(m.lag1()).c_str(), m.batchCount(),
            static_cast<unsigned long long>(m.batchSize()),
            c.valid ? "true" : "false", num(c.confidence).c_str(),
            num(c.halfwidth).c_str(), num(c.relHalfwidth).c_str(),
            num(c.lo).c_str(), num(c.hi).c_str());
        const std::vector<Cycle> cycles = m.windowCycles();
        const std::vector<double> values = m.windowValues();
        for (std::size_t p = 0; p < cycles.size(); p++) {
            j += strprintf("%s%llu", p ? ", " : "",
                           static_cast<unsigned long long>(cycles[p]));
        }
        j += "], \"values\": [";
        for (std::size_t p = 0; p < values.size(); p++)
            j += strprintf("%s%s", p ? ", " : "", num(values[p]).c_str());
        j += "]}}";
    }
    j += "}";
    if (conv_.active) {
        j += strprintf(
            ", \"converge\": {\"metric\": \"%s\", \"target\": %s, "
            "\"confidence\": %s, \"achieved\": %s, \"converged\": %s, "
            "\"atCycle\": %llu}",
            conv_.metric.c_str(), num(conv_.relHalfwidth).c_str(),
            num(conv_.confidence).c_str(),
            num(achievedRelHalfwidth()).c_str(),
            converged_ ? "true" : "false",
            static_cast<unsigned long long>(convergedAt_));
    }
    j += "}";
    return j;
}

void
TimeSeriesEngine::save(Ser &s) const
{
    s.section("timeseries");
    s.u64(period_);
    s.u32(window_);
    s.b(conv_.active);
    s.str(conv_.metric);
    s.f64(conv_.relHalfwidth);
    s.f64(conv_.confidence);
    s.u64(names_.size());
    for (std::size_t i = 0; i < names_.size(); i++) {
        s.str(names_[i]);
        series_[i].save(s);
    }
    s.b(converged_);
    s.u64(convergedAt_);
}

void
TimeSeriesEngine::restore(Deser &d)
{
    d.section("timeseries");
    const Cycle period = d.u64();
    if (period != period_) {
        throw SnapshotError(strprintf(
            "time-series period mismatch: image sampled every %llu "
            "cycles, this run every %llu",
            static_cast<unsigned long long>(period),
            static_cast<unsigned long long>(period_)));
    }
    const std::uint32_t window = d.u32();
    if (window != window_) {
        throw SnapshotError(strprintf(
            "time-series window mismatch: image has %u, this run %u",
            window, window_));
    }
    const bool active = d.b();
    const std::string metric = d.str();
    const double rel = d.f64();
    const double conf = d.f64();
    if (active != conv_.active || metric != conv_.metric ||
        rel != conv_.relHalfwidth || conf != conv_.confidence) {
        throw SnapshotError(strprintf(
            "convergence spec mismatch: image ran with '%s', this run "
            "with '%s'",
            active ? strprintf("%s:%g:%g", metric.c_str(), rel, conf)
                         .c_str()
                   : "off",
            conv_.active
                ? strprintf("%s:%g:%g", conv_.metric.c_str(),
                            conv_.relHalfwidth, conv_.confidence)
                      .c_str()
                : "off"));
    }
    const std::uint64_t n = d.u64();
    if (n != names_.size()) {
        throw SnapshotError(strprintf(
            "time-series metric count mismatch: image has %llu, this "
            "run registered %zu",
            static_cast<unsigned long long>(n), names_.size()));
    }
    for (std::size_t i = 0; i < names_.size(); i++) {
        const std::string name = d.str();
        if (name != names_[i]) {
            throw SnapshotError(strprintf(
                "time-series metric mismatch: image has '%s' where this "
                "run registered '%s'",
                name.c_str(), names_[i].c_str()));
        }
        series_[i].restore(d);
    }
    converged_ = d.b();
    convergedAt_ = d.u64();
}

} // namespace rowsim
