#include "common/log.hh"

#include <cstdarg>
#include <stdexcept>

namespace rowsim
{

namespace
{

LogLevel &
levelStorage()
{
    static LogLevel level = [] {
        const char *env = std::getenv("ROWSIM_LOG_LEVEL");
        return env && *env ? parseLogLevel(env) : LogLevel::Info;
    }();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent" || name == "error")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    fatalImpl(__FILE__, __LINE__,
              "bad ROWSIM_LOG_LEVEL '" + name +
                  "' (valid: silent, warn, info)");
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw rather than abort so that death-style unit tests can observe
    // invariant violations without killing the test binary.
    throw std::logic_error("rowsim panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("rowsim fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    // stderr, not stdout: trace text and JSON reports own stdout.
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace rowsim
