#include "common/log.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rowsim
{

namespace
{

std::atomic<LogLevel> &
levelStorage()
{
    // Atomic so sweep workers can warn() while another thread calls
    // setLogLevel (or is still inside first-use initialisation).
    static std::atomic<LogLevel> level = [] {
        const char *env = std::getenv("ROWSIM_LOG_LEVEL");
        return env && *env ? parseLogLevel(env) : LogLevel::Info;
    }();
    return level;
}

using PanicHook =
    std::pair<const void *, std::function<void(const std::string &)>>;

std::vector<PanicHook> &
panicHooks()
{
    // Thread-local: a System registers its crash-dump hook on the thread
    // it was constructed on, which is the thread that runs it — so a
    // panic on a sweep worker dumps that worker's System only, and never
    // races another thread's registration.
    static thread_local std::vector<PanicHook> hooks;
    return hooks;
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent" || name == "error")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    fatalImpl(__FILE__, __LINE__,
              "bad ROWSIM_LOG_LEVEL '" + name +
                  "' (valid: silent, warn, info)");
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

std::uint64_t
parseEnvU64(const char *name, const char *text)
{
    if (!text || !*text)
        ROWSIM_FATAL("%s: empty value (expected a decimal number)", name);
    for (const char *p = text; *p; p++) {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            ROWSIM_FATAL("%s: malformed value '%s' (expected a decimal "
                         "number)",
                         name, text);
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || (end && *end))
        ROWSIM_FATAL("%s: value '%s' out of range", name, text);
    return static_cast<std::uint64_t>(v);
}

void
pushPanicHook(const void *owner,
              std::function<void(const std::string &)> hook)
{
    panicHooks().emplace_back(owner, std::move(hook));
}

void
removePanicHook(const void *owner)
{
    auto &hooks = panicHooks();
    for (auto it = hooks.begin(); it != hooks.end();) {
        if (it->first == owner)
            it = hooks.erase(it);
        else
            ++it;
    }
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Crash diagnostics: let registered owners (Systems) dump their state
    // before the stack unwinds and destroys it. A panic raised *while*
    // dumping must not recurse into the hooks.
    static thread_local bool inHook = false;
    if (!inHook && !panicHooks().empty()) {
        inHook = true;
        auto hooks = panicHooks(); // copy: a hook may unregister itself
        for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
            try {
                it->second(msg);
            } catch (...) {
                std::fprintf(stderr,
                             "panic: crash-diagnostics hook itself failed\n");
            }
        }
        inHook = false;
    }
    // Throw rather than abort so that death-style unit tests can observe
    // invariant violations without killing the test binary.
    throw std::logic_error("rowsim panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("rowsim fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    // stderr, not stdout: trace text and JSON reports own stdout.
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace rowsim
