/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Components register named counters/histograms in a StatGroup; the
 * experiment harness reads them by name to build the paper's figures.
 */

#ifndef ROWSIM_COMMON_STATS_HH
#define ROWSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"

namespace rowsim
{

/** A scalar event counter. */
class Counter
{
  public:
    void operator++(int) { value_ += 1; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max of a sampled quantity (e.g. a latency). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        if (v < min_ || count_ == 1)
            min_ = v;
        if (v > max_ || count_ == 1)
            max_ = v;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram for distribution statistics. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        ROWSIM_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
    }

    void
    sample(double v)
    {
        avg_.sample(v);
        if (v < lo_) {
            underflow_++;
        } else if (v >= hi_) {
            overflow_++;
        } else {
            auto idx = static_cast<std::size_t>(
                (v - lo_) / (hi_ - lo_) * counts_.size());
            counts_[idx]++;
        }
    }

    void
    reset()
    {
        avg_.reset();
        underflow_ = 0;
        overflow_ = 0;
        for (auto &c : counts_)
            c = 0;
    }

    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const Average &summary() const { return avg_; }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Average avg_;
};

/**
 * A named bag of statistics. Components own one and register their
 * counters; System aggregates per-core groups for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Average &average(const std::string &name);

    /** Read a counter by name; 0 if it was never created. */
    std::uint64_t counterValue(const std::string &name) const;
    /** Read an average by name; default-constructed if absent. */
    const Average *findAverage(const std::string &name) const;

    void reset();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

} // namespace rowsim

#endif // ROWSIM_COMMON_STATS_HH
