/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Components register named counters/histograms in a StatGroup; the
 * experiment harness reads them by name to build the paper's figures.
 */

#ifndef ROWSIM_COMMON_STATS_HH
#define ROWSIM_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace rowsim
{

class Ser;
class Deser;

/** A scalar event counter. */
class Counter
{
  public:
    void operator++(int) { value_ += 1; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max of a sampled quantity (e.g. a latency). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        if (v < min_ || count_ == 1)
            min_ = v;
        if (v > max_ || count_ == 1)
            max_ = v;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    /** Accumulate another summary (for cross-core aggregation). */
    void
    merge(const Average &other)
    {
        if (!other.count_)
            return;
        if (!count_) {
            *this = other;
            return;
        }
        sum_ += other.sum_;
        count_ += other.count_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double min() const { return min_; }
    double max() const { return max_; }

    void save(Ser &s) const;
    void restore(Deser &d);

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram for distribution statistics. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        ROWSIM_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
    }

    void
    sample(double v)
    {
        avg_.sample(v);
        if (v < lo_) {
            underflow_++;
        } else if (v >= hi_) {
            overflow_++;
        } else {
            auto idx = static_cast<std::size_t>(
                (v - lo_) / (hi_ - lo_) * counts_.size());
            // Float rounding can push v just below hi_ onto idx ==
            // counts_.size() (e.g. when v - lo_ rounds up to hi_ - lo_);
            // clamp into the top bucket instead of writing out of bounds.
            if (idx >= counts_.size())
                idx = counts_.size() - 1;
            counts_[idx]++;
        }
    }

    void
    reset()
    {
        avg_.reset();
        underflow_ = 0;
        overflow_ = 0;
        for (auto &c : counts_)
            c = 0;
    }

    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const Average &summary() const { return avg_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * Approximate p-quantile (p in [0,1]) by linear interpolation
     * inside the bucket holding the target rank. Underflow samples
     * resolve to the observed minimum, overflow to the observed
     * maximum (the bucket bounds say nothing about their true values).
     * Returns 0 with no samples.
     */
    double percentile(double p) const;

    /** Accumulate @p other into this histogram (same geometry). */
    void merge(const Histogram &other);

    void save(Ser &s) const;
    /** Restore contents; throws SnapshotError on geometry mismatch. */
    void restore(Deser &d);

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Average avg_;
};

/**
 * A derived statistic: a closure over other stats, evaluated lazily at
 * dump time (gem5's Formula, minus the expression tree).
 */
class Formula
{
  public:
    Formula &
    operator=(std::function<double()> fn)
    {
        fn_ = std::move(fn);
        return *this;
    }

    bool defined() const { return static_cast<bool>(fn_); }
    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/**
 * Periodic snapshots of selected quantities: every `period` cycles each
 * probe is read and one point is appended to its time series (IPC per
 * 10k cycles, contended-atomic rate, ...). Probes registered as `delta`
 * report the per-interval difference of a monotonically growing counter
 * instead of its absolute value.
 */
class IntervalStats
{
  public:
    struct Probe
    {
        std::string name;
        std::function<double()> read;
        bool delta = false;
        double last = 0; ///< previous absolute value (delta probes)
    };

    /** Set the sampling period; 0 disables sampling. */
    void configure(Cycle period);

    bool enabled() const { return period_ != 0; }
    Cycle period() const { return period_; }

    void addProbe(std::string name, std::function<double()> read,
                  bool delta = false);

    /** Observer invoked after each sample with the sample cycle and the
     *  recorded per-probe values (delta-adjusted, in probe order) — the
     *  feed of the metric time-series engine (common/timeseries.hh). */
    void setObserver(
        std::function<void(Cycle, const std::vector<double> &)> obs)
    {
        observer_ = std::move(obs);
    }

    /** Called once per cycle; samples when a period boundary passes. */
    void
    tick(Cycle now)
    {
        if (period_ != 0 && now >= nextAt_)
            sample(now);
    }

    /** Take one sample immediately (e.g. a final partial interval). */
    void sample(Cycle now);

    /** Cycle of the next period-boundary sample (service-cycle hoist
     *  and fast-forward bound); meaningless when disabled. */
    Cycle nextSampleAt() const { return nextAt_; }

    const std::vector<Probe> &probes() const { return probes_; }
    /** Cycle stamps of the samples taken so far. */
    const std::vector<Cycle> &sampleCycles() const { return cycles_; }
    /** Time series, indexed [probe][sample] in probe order. */
    const std::vector<std::vector<double>> &series() const
    {
        return series_;
    }

    void reset();

    void save(Ser &s) const;
    /** Restore sample history onto an already-configured instance;
     *  throws SnapshotError if period or probe set differ. */
    void restore(Deser &d);

  private:
    Cycle period_ = 0;
    Cycle nextAt_ = 0;
    std::vector<Probe> probes_;
    std::vector<Cycle> cycles_;
    std::vector<std::vector<double>> series_;
    std::function<void(Cycle, const std::vector<double> &)> observer_;
};

/**
 * A named bag of statistics. Components own one and register their
 * counters; System aggregates per-core groups for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Average &average(const std::string &name);
    Formula &formula(const std::string &name);
    /** Get-or-create a histogram; geometry is fixed on first call. */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         unsigned buckets);

    /** Read a counter by name; 0 if it was never created. */
    std::uint64_t counterValue(const std::string &name) const;
    /** Read an average by name; default-constructed if absent. */
    const Average *findAverage(const std::string &name) const;
    /** Read a histogram by name; nullptr if absent. */
    const Histogram *findHistogram(const std::string &name) const;
    /** Evaluate a formula by name; 0 if absent. */
    double formulaValue(const std::string &name) const;

    void reset();

    /** Serialize every counter/average/histogram by name. Formulas are
     *  closures re-registered at construction and are not serialized. */
    void save(Ser &s) const;
    /** Replace counters/averages/histograms with the saved set (lazy
     *  stat creation is monotonic, so continuing a restored run yields
     *  the same final name set as an uninterrupted one). Throws
     *  SnapshotError if the group name differs. */
    void restore(Deser &d);

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Formula> &formulas() const
    {
        return formulas_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Formula> formulas_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace rowsim

#endif // ROWSIM_COMMON_STATS_HH
