/**
 * @file
 * Shared filesystem helpers: crash-safe atomic file writes (tmp +
 * rename) and whole-file reads. The snapshot layer, the content-
 * addressed result store, and the crash-dump sinks all write through
 * atomicWriteFile so every on-disk artifact follows one discipline:
 * readers only ever observe complete files, no matter how many
 * processes race on one path or die mid-write.
 */

#ifndef ROWSIM_COMMON_IO_HH
#define ROWSIM_COMMON_IO_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rowsim
{

/** Named failure of a filesystem helper. */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &what)
        : std::runtime_error("io: " + what)
    {
    }
};

/**
 * Write @p len bytes to @p path atomically: the data goes to a unique
 * sibling temporary file (`path + ".tmp.<pid>.<seq>"`), is flushed and
 * fsync'ed, and is renamed over @p path only once complete. A reader
 * racing the write sees the old file or the new file, never a mix; a
 * writer killed at any point leaves at most a `.tmp.*` sibling behind,
 * never a partial @p path. Missing parent directories are created.
 * Throws IoError on any failure (the temporary is removed).
 */
void atomicWriteFile(const std::string &path, const void *data,
                     std::size_t len);

inline void
atomicWriteFile(const std::string &path,
                const std::vector<std::uint8_t> &data)
{
    atomicWriteFile(path, data.data(), data.size());
}

inline void
atomicWriteFile(const std::string &path, const std::string &data)
{
    atomicWriteFile(path, data.data(), data.size());
}

/** Read the whole file at @p path into @p out. Returns false (with
 *  @p out cleared) when the file cannot be opened or read; an existing
 *  empty file reads back as true with an empty buffer. */
bool readFileBytes(const std::string &path, std::vector<std::uint8_t> &out);

/**
 * Test support for torn-write coverage: make the calling process
 * _Exit(9) after @p bytes of the next atomicWriteFile payload have
 * reached the temporary file — simulating a worker killed mid-write.
 * Pass atomicWriteKillDisabled (the default) to disarm. Affects every
 * subsequent atomicWriteFile in this process until disarmed, so only
 * arm it in a forked child that exists to die.
 */
constexpr std::size_t atomicWriteKillDisabled = static_cast<std::size_t>(-1);
void setAtomicWriteKillAfter(std::size_t bytes);

} // namespace rowsim

#endif // ROWSIM_COMMON_IO_HH
