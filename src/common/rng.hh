/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (workload address streams,
 * branch outcomes, think times) draws from a seeded xoshiro256** instance so
 * that a given (seed, configuration) pair always reproduces the same
 * execution, cycle for cycle.
 */

#ifndef ROWSIM_COMMON_RNG_HH
#define ROWSIM_COMMON_RNG_HH

#include <cstdint>

namespace rowsim
{

/**
 * xoshiro256** PRNG (Blackman & Vigna). Small, fast, and of far higher
 * quality than std::minstd; unlike std::mt19937 its state is 32 bytes,
 * which matters when every thread context embeds one.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the four state words.
        std::uint64_t x = seed;
        for (auto &w : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free reduction is fine here:
        // slight non-uniformity for huge bounds is irrelevant to workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Copy the four raw state words out (snapshot support). */
    void
    getState(std::uint64_t out[4]) const
    {
        for (unsigned i = 0; i < 4; i++)
            out[i] = state[i];
    }

    /** Overwrite the four raw state words (snapshot support). */
    void
    setState(const std::uint64_t in[4])
    {
        for (unsigned i = 0; i < 4; i++)
            state[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace rowsim

#endif // ROWSIM_COMMON_RNG_HH
