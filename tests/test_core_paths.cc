/**
 * @file
 * Targeted tests for the core's less-travelled paths: memory-dependence
 * violations and load replay, in-order lock acquisition (WaitLock) and
 * its refetch, the lock-steal replay of a pre-commit atomic, MSHR
 * backpressure, and the stats dump.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

MicroOp
mkop(OpClass cls, Addr addr = invalidAddr, std::uint64_t value = 0,
     std::uint32_t src0 = 0)
{
    MicroOp op;
    op.cls = cls;
    op.addr = addr;
    op.value = value;
    op.src0 = src0;
    if (cls == OpClass::AtomicRMW) {
        op.aop = AtomicOp::FetchAdd;
        op.value = value ? value : 1;
        op.pc = 0x9000;
    }
    return op;
}

std::unique_ptr<System>
single(std::vector<MicroOp> body, AtomicPolicy policy = AtomicPolicy::Eager)
{
    body.back().endOfIteration = true;
    SystemParams sp;
    sp.numCores = 1;
    sp.core.atomicPolicy = policy;
    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    return std::make_unique<System>(sp, std::move(streams));
}

} // namespace

TEST(CorePaths, StoreSetLearnsFromViolations)
{
    // A slow ALU chain delays the store's address resolution; the
    // dependent-by-address load speculates past it, gets replayed, and
    // the StoreSet learns to make it wait.
    std::vector<MicroOp> body;
    MicroOp slow = mkop(OpClass::IntAlu);
    slow.execLatency = 24;
    body.push_back(slow);                                // 0
    MicroOp st = mkop(OpClass::Store, 0x8000, 42);
    st.src0 = 1; // store waits for the slow op
    st.pc = 0x7100;
    body.push_back(st);                                  // 1
    MicroOp ld = mkop(OpClass::Load, 0x8000);
    ld.pc = 0x7200;
    body.push_back(ld);                                  // 2
    body.push_back(mkop(OpClass::IntAlu));               // 3

    auto sys = single(body);
    sys->run(60);
    EXPECT_GT(sys->core(0).stats().counterValue("loadReplays"), 0u);
    EXPECT_GT(sys->core(0).storeSets().stats().counterValue("violations"),
              0u);
    // After training, replays stop: the warmup burst (in-flight loads
    // dispatched before the first violation trained the SSIT) is bounded
    // regardless of run length.
    EXPECT_LT(sys->core(0).stats().counterValue("loadReplays"), 300u);
    EXPECT_GT(sys->core(0).stats().counterValue("loadsPredictedDependent"),
              sys->core(0).stats().counterValue("loadReplays"));
    sys->drain();
    EXPECT_EQ(sys->mem().functional().read64(0x8000), 42u);
}

TEST(CorePaths, InOrderLockAcquisition)
{
    // Two atomics per iteration: a slow (cold) one then a fast (hot)
    // one. The fast atomic's fill often arrives first and must wait its
    // turn (WaitLock) instead of locking out of order.
    class TwoAtomics : public InstStream
    {
      public:
        MicroOp
        next() override
        {
            switch (idx++ % 3) {
              case 0:
                return mkop(OpClass::AtomicRMW,
                            0x40000000 + (idx / 3) * 0x1000); // cold
              case 1:
                return mkop(OpClass::AtomicRMW, 0x1000); // hot
              default: {
                MicroOp op = mkop(OpClass::IntAlu);
                op.endOfIteration = true;
                return op;
              }
            }
        }

      private:
        std::uint64_t idx = 0;
    };

    SystemParams sp;
    sp.numCores = 1;
    sp.core.atomicPolicy = AtomicPolicy::Eager;
    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<TwoAtomics>());
    System sys(sp, std::move(streams));
    sys.run(50);
    EXPECT_GT(sys.core(0).stats().counterValue("lockWaits"), 0u);
    sys.drain();
    // The hot counter accumulated one increment per iteration.
    EXPECT_EQ(sys.mem().functional().read64(0x1000),
              sys.core(0).committedAtomics() / 2);
}

TEST(CorePaths, LockStealReplaysPreCommitAtomic)
{
    // Core 0: a long serial ALU chain precedes each FAA on a hot word,
    // so the eagerly-acquired lock is held pre-commit while the chain
    // drains. Core 1 hammers the same line with stores. With a small
    // steal threshold, a stalled forward steals the lock, the atomic
    // replays — and the count stays exact.
    SystemParams sp;
    sp.numCores = 2;
    sp.core.atomicPolicy = AtomicPolicy::Eager;
    sp.mem.lockStealThreshold = 25;

    std::vector<std::unique_ptr<InstStream>> streams;
    {
        std::vector<MicroOp> body;
        for (int i = 0; i < 60; i++) {
            MicroOp op = mkop(OpClass::IntAlu);
            op.execLatency = 5;
            op.src0 = i == 0 ? 0 : 1; // serial chain
            body.push_back(op);
        }
        body.push_back(mkop(OpClass::AtomicRMW, 0x2000));
        body.push_back(mkop(OpClass::IntAlu));
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    {
        std::vector<MicroOp> body = {mkop(OpClass::Store, 0x2008, 7),
                                     mkop(OpClass::IntAlu)};
        body.back().endOfIteration = true;
        streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    }
    System sys(sp, std::move(streams));
    sys.run(20);
    sys.drain();
    EXPECT_GT(sys.totalCounter("forcedUnlocks"), 0u);
    EXPECT_EQ(sys.mem().functional().read64(0x2000),
              sys.core(0).committedAtomics());
}

TEST(CorePaths, MshrBackpressureDoesNotLoseAccesses)
{
    // Far more independent cold loads per iteration than MSHRs: the
    // overflow queues inside the cache and everything still completes.
    class Flood : public InstStream
    {
      public:
        MicroOp
        next() override
        {
            MicroOp op = mkop(OpClass::Load,
                              0x60000000 + idx * lineBytes);
            idx++;
            op.endOfIteration = idx % 64 == 0;
            return op;
        }

      private:
        std::uint64_t idx = 0;
    };

    SystemParams sp;
    sp.numCores = 1;
    sp.mem.mshrs = 8;
    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<Flood>());
    System sys(sp, std::move(streams));
    sys.run(20);
    sys.drain();
    EXPECT_GT(sys.mem().cache(0).stats().counterValue("mshrFull"), 0u);
    EXPECT_GE(sys.core(0).committedInstructions(), 20u * 64u);
}

TEST(CorePaths, FencedAtomicBlocksYoungerMemoryIssue)
{
    // Under the Fenced policy a younger load may not issue until the
    // atomic unlocks; with Eager it runs ahead. Compare the younger-
    // started statistic.
    std::vector<MicroOp> body = {mkop(OpClass::Load, 0x70000000),
                                 mkop(OpClass::AtomicRMW, 0x3000),
                                 mkop(OpClass::Load, 0x71000000),
                                 mkop(OpClass::IntAlu)};
    auto fenced = single(body, AtomicPolicy::Fenced);
    auto eager = single(body, AtomicPolicy::Eager);
    Cycle cf = fenced->run(60);
    Cycle ce = eager->run(60);
    EXPECT_GT(cf, ce); // serialisation must cost cycles
}

TEST(CorePaths, DumpStatsEmitsEveryGroup)
{
    auto sys = single({mkop(OpClass::Load, 0x1000),
                       mkop(OpClass::AtomicRMW, 0x2000),
                       mkop(OpClass::IntAlu)});
    sys->run(10);

    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    sys->dumpStats(f);
    std::fflush(f);
    long size = std::ftell(f);
    std::rewind(f);
    std::string content(static_cast<std::size_t>(size), '\0');
    ASSERT_EQ(std::fread(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);

    EXPECT_NE(content.find("sim.cycles"), std::string::npos);
    EXPECT_NE(content.find("core0.atomicsUnlocked"), std::string::npos);
    EXPECT_NE(content.find("l1d0.accesses"), std::string::npos);
    EXPECT_NE(content.find("network.messages"), std::string::npos);
}

TEST(CorePaths, PrefetcherOffStillCorrect)
{
    SystemParams sp;
    sp.numCores = 1;
    sp.mem.prefetcher = false;
    std::vector<MicroOp> body = {mkop(OpClass::Load, 0x1000),
                                 mkop(OpClass::AtomicRMW, 0x2000),
                                 mkop(OpClass::IntAlu)};
    body.back().endOfIteration = true;
    std::vector<std::unique_ptr<InstStream>> streams;
    streams.push_back(std::make_unique<LoopStream>(std::move(body)));
    System sys(sp, std::move(streams));
    sys.run(30);
    sys.drain();
    EXPECT_EQ(sys.mem().cache(0).stats().counterValue("prefetchRequests"),
              0u);
    // In-flight iterations keep committing during drain, so compare
    // against the committed count, not the quota.
    EXPECT_EQ(sys.mem().functional().read64(0x2000),
              sys.core(0).committedAtomics());
}
