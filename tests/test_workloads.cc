/**
 * @file
 * Tests for the synthetic workload substrate: determinism, profile
 * structure, address-map disjointness, and per-benchmark properties.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/profiles.hh"
#include "sim/workloads.hh"

using namespace rowsim;

TEST(AddrMap, RegionsAreDisjoint)
{
    EXPECT_LT(addrmap::sharedAtomicBase, addrmap::sharedDataBase);
    EXPECT_LT(addrmap::sharedDataBase, addrmap::privateBase);
    // Private regions of different threads never overlap.
    EXPECT_GE(addrmap::privateLine(1, 0),
              addrmap::privateLine(0, addrmap::privateSpan / lineBytes - 1));
}

TEST(AddrMap, SharedAtomicWordsOnDistinctLines)
{
    std::set<Addr> lines;
    for (std::uint64_t i = 0; i < 100; i++)
        lines.insert(lineAlign(addrmap::sharedAtomicWord(i)));
    EXPECT_EQ(lines.size(), 100u);
}

TEST(KernelStream, DeterministicForSameSeedAndThread)
{
    WorkloadProfile p = profileFor("pc");
    KernelStream a(p, 3, 42), b(p, 3, 42);
    for (int i = 0; i < 5000; i++) {
        MicroOp x = a.next(), y = b.next();
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.src0, y.src0);
        EXPECT_EQ(x.value, y.value);
    }
}

TEST(KernelStream, DifferentThreadsDiverge)
{
    WorkloadProfile p = profileFor("canneal");
    KernelStream a(p, 0, 42), b(p, 1, 42);
    int same_addr = 0, mem_ops = 0;
    for (int i = 0; i < 2000; i++) {
        MicroOp x = a.next(), y = b.next();
        if (x.isMem() && y.isMem()) {
            mem_ops++;
            same_addr += x.addr == y.addr;
        }
    }
    EXPECT_GT(mem_ops, 10);
    EXPECT_LT(same_addr, mem_ops / 4);
}

TEST(KernelStream, EveryIterationEndsExactlyOnce)
{
    WorkloadProfile p = profileFor("sps");
    KernelStream s(p, 0, 1);
    int iters = 0, ops = 0;
    for (; iters < 10; ops++) {
        if (s.next().endOfIteration)
            iters++;
        ASSERT_LT(ops, 100000);
    }
    // Iteration length ~= profile estimate (within 2x).
    double per_iter = static_cast<double>(ops) / iters;
    EXPECT_GT(per_iter, p.approxInstsPerIter() * 0.5);
    EXPECT_LT(per_iter, p.approxInstsPerIter() * 2.0);
}

TEST(KernelStream, DependencyDistancesPointBackwards)
{
    WorkloadProfile p = profileFor("streamcluster");
    KernelStream s(p, 0, 1);
    std::uint64_t pos = 0;
    for (int i = 0; i < 5000; i++, pos++) {
        MicroOp op = s.next();
        // Distances must never exceed the current stream position.
        EXPECT_LE(op.src0, pos + 1);
    }
}

namespace
{

struct ProfileStats
{
    double atomics_per_op = 0;
    double shared_atomic_frac = 0;
    std::set<Addr> atomic_lines;
};

ProfileStats
scan(const std::string &name, int ops = 100000)
{
    WorkloadProfile p = profileFor(name);
    KernelStream s(p, 0, 7);
    ProfileStats st;
    int atomics = 0, shared = 0;
    for (int i = 0; i < ops; i++) {
        MicroOp op = s.next();
        if (op.cls == OpClass::AtomicRMW) {
            atomics++;
            st.atomic_lines.insert(lineAlign(op.addr));
            if (op.addr >= addrmap::sharedAtomicBase &&
                op.addr < addrmap::sharedDataBase) {
                shared++;
            }
        }
    }
    st.atomics_per_op = static_cast<double>(atomics) / ops;
    st.shared_atomic_frac = atomics ? static_cast<double>(shared) / atomics
                                    : 0.0;
    return st;
}

} // namespace

TEST(Profiles, AtomicIntensityOrdering)
{
    // Fig. 5: pc and sps are the most atomic-intensive; fmm the least of
    // the atomic-intensive set.
    double pc = scan("pc").atomics_per_op;
    double sps = scan("sps").atomics_per_op;
    double fmm = scan("fmm").atomics_per_op;
    double canneal = scan("canneal").atomics_per_op;
    EXPECT_GT(sps, 5 * fmm);
    EXPECT_GT(pc, 5 * fmm);
    EXPECT_GT(canneal, fmm);
}

TEST(Profiles, CannealAtomicsSpreadOverHugeArray)
{
    auto st = scan("canneal");
    // Random swaps over 2^20 words: essentially no line reuse.
    EXPECT_GT(st.atomic_lines.size(), st.atomics_per_op * 100000 * 0.95);
}

TEST(Profiles, PcAtomicsConcentratedOnFewLines)
{
    auto st = scan("pc");
    EXPECT_LE(st.atomic_lines.size(), 2u);
    EXPECT_DOUBLE_EQ(st.shared_atomic_frac, 1.0);
}

TEST(Profiles, FreqmineMostlyPrivateAtomics)
{
    auto st = scan("freqmine");
    EXPECT_LT(st.shared_atomic_frac, 0.3);
}

TEST(Profiles, CqEmitsStoreBeforeAtomicOnSameLine)
{
    WorkloadProfile p = profileFor("cq");
    KernelStream s(p, 0, 3);
    int atomics = 0, preceded = 0;
    Addr last_store = invalidAddr;
    for (int i = 0; i < 50000; i++) {
        MicroOp op = s.next();
        if (op.cls == OpClass::Store)
            last_store = op.addr;
        if (op.cls == OpClass::AtomicRMW) {
            atomics++;
            // cq: slot store (same word) followed by payload stores.
            if (last_store != invalidAddr)
                preceded++;
        }
    }
    EXPECT_GT(atomics, 50);
    EXPECT_EQ(preceded, atomics);
}

TEST(Profiles, AllNamedProfilesResolve)
{
    for (const auto &w : allWorkloads()) {
        WorkloadProfile p = profileFor(w);
        EXPECT_EQ(p.name, w);
        EXPECT_GT(defaultQuota(w), 0u);
    }
    EXPECT_THROW(profileFor("nonexistent"), std::runtime_error);
}

TEST(Profiles, AtomicIntensiveIsSubsetOfAll)
{
    std::set<std::string> all(allWorkloads().begin(), allWorkloads().end());
    for (const auto &w : atomicIntensiveWorkloads())
        EXPECT_TRUE(all.count(w)) << w;
    EXPECT_GT(all.size(), atomicIntensiveWorkloads().size());
}

TEST(Profiles, MakeStreamsProducesOnePerCore)
{
    auto streams = makeStreams(profileFor("pc"), 8, 1);
    EXPECT_EQ(streams.size(), 8u);
    for (auto &s : streams)
        EXPECT_NE(s, nullptr);
}
