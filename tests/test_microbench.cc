/**
 * @file
 * Shape tests for the §II-A microbenchmark (Fig. 2): the observable that
 * motivates the whole paper — modern cores execute locked RMWs at
 * ~plain-RMW cost, old cores pay a fence, and explicit mfences are
 * catastrophic either way.
 */

#include <gtest/gtest.h>

#include "sim/microbench.hh"

using namespace rowsim;

namespace
{
double
run(RmwKind k, bool lock, bool mfence, bool old_core)
{
    MicrobenchVariant v;
    v.kind = k;
    v.lockPrefix = lock;
    v.mfence = mfence;
    v.oldCore = old_core;
    return microbenchCyclesPerIter(v, 500);
}
} // namespace

TEST(Microbench, NewCoreLockIsNotAFence)
{
    // Coffee-Lake-like behaviour: the lock prefix costs at most a small
    // factor over the plain RMW — nothing like the fenced cost.
    double plain = run(RmwKind::FAA, false, false, false);
    double locked = run(RmwKind::FAA, true, false, false);
    double fenced = run(RmwKind::FAA, false, true, false);
    EXPECT_LT(locked, 3 * plain);
    EXPECT_GT(fenced, 3 * locked);
}

TEST(Microbench, OldCoreLockCostsAFence)
{
    double plain = run(RmwKind::FAA, false, false, true);
    double locked = run(RmwKind::FAA, true, false, true);
    EXPECT_GT(locked, 3 * plain);
}

TEST(Microbench, OldCoreMfenceAddsNothingToLocked)
{
    // Fig. 2, old core: "manually adding an mfence ... does not have any
    // impact" because the atomic already behaves as a fence.
    double locked = run(RmwKind::FAA, true, false, true);
    double locked_mf = run(RmwKind::FAA, true, true, true);
    EXPECT_NEAR(locked_mf / locked, 1.0, 0.15);
}

TEST(Microbench, NewCoreMfenceSerialisesEverything)
{
    double plain = run(RmwKind::CAS, false, false, false);
    double plain_mf = run(RmwKind::CAS, false, true, false);
    // "performance drops to roughly a fourth" — require at least 3x.
    EXPECT_GT(plain_mf, 3 * plain);
}

TEST(Microbench, SwapIsAlwaysLocked)
{
    // Footnote 1: xchg with memory is locked regardless of the prefix.
    for (bool old_core : {false, true}) {
        double plain = run(RmwKind::SWAP, false, false, old_core);
        double locked = run(RmwKind::SWAP, true, false, old_core);
        EXPECT_NEAR(plain / locked, 1.0, 0.05) << "old=" << old_core;
    }
}

TEST(Microbench, FaaAndCasBehaveAlike)
{
    double faa = run(RmwKind::FAA, true, false, false);
    double cas = run(RmwKind::CAS, true, false, false);
    EXPECT_NEAR(faa / cas, 1.0, 0.1);
}

TEST(Microbench, MlpIsTheMechanism)
{
    // The unfenced win exists because independent iterations overlap
    // their misses; cycles/iter must be far below the raw memory
    // latency.
    double locked = run(RmwKind::FAA, true, false, false);
    EXPECT_LT(locked, 100.0); // memory latency alone is 160+35 cycles
}

TEST(Microbench, DeterministicGivenSeed)
{
    MicrobenchVariant v;
    v.kind = RmwKind::FAA;
    v.lockPrefix = true;
    EXPECT_DOUBLE_EQ(microbenchCyclesPerIter(v, 300, 9),
                     microbenchCyclesPerIter(v, 300, 9));
}
