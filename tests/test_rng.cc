/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace rowsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 10000; i++)
        seen[r.below(8)]++;
    for (int c : seen)
        EXPECT_GT(c, 1000); // roughly uniform
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 10000; i++)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        auto v = r.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}
