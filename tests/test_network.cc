/**
 * @file
 * Unit tests for the mesh interconnect: latency model, in-order delivery,
 * home-bank mapping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"

using namespace rowsim;

namespace
{

struct Recorder : MsgHandler
{
    std::vector<std::pair<Msg, Cycle>> received;
    void
    deliver(const Msg &msg, Cycle now) override
    {
        received.emplace_back(msg, now);
    }
};

Msg
makeMsg(NodeId src, NodeId dst, Addr line = 0x1000)
{
    Msg m;
    m.type = MsgType::GetS;
    m.line = line;
    m.src = src;
    m.dst = dst;
    m.requester = static_cast<CoreId>(src);
    return m;
}

} // namespace

class NetworkTest : public ::testing::Test
{
  protected:
    NetworkTest() : net(16, NetParams{})
    {
        for (NodeId n = 0; n < 32; n++)
            net.attach(n, &recorders[n]);
    }

    NetParams params;
    Network net{16, NetParams{}};
    Recorder recorders[32];
};

TEST_F(NetworkTest, SameTileStillPaysOneHop)
{
    // Core 3 and bank 3 share a tile: latency == hopLatency.
    EXPECT_EQ(net.latency(3, 16 + 3), NetParams{}.hopLatency);
}

TEST_F(NetworkTest, LatencyGrowsWithManhattanDistance)
{
    // 16 cores -> 4x4 mesh. Node 0 at (0,0), node 15 at (3,3).
    EXPECT_EQ(net.hops(0, 15), 6u);
    EXPECT_EQ(net.latency(0, 15), NetParams{}.hopLatency * 7);
    EXPECT_EQ(net.hops(0, 3), 3u);
}

TEST_F(NetworkTest, HopsAreSymmetric)
{
    for (NodeId a = 0; a < 16; a++)
        for (NodeId b = 0; b < 16; b++)
            EXPECT_EQ(net.hops(a, b), net.hops(b, a));
}

TEST_F(NetworkTest, DeliversAtComputedCycle)
{
    net.send(makeMsg(0, 15), 10);
    Cycle due = 10 + net.latency(0, 15);
    for (Cycle c = 0; c <= due; c++)
        net.tick(c);
    ASSERT_EQ(recorders[15].received.size(), 1u);
    EXPECT_EQ(recorders[15].received[0].second, due);
}

TEST_F(NetworkTest, NothingDeliveredEarly)
{
    net.send(makeMsg(0, 15), 10);
    net.tick(10 + net.latency(0, 15) - 1);
    EXPECT_TRUE(recorders[15].received.empty());
    EXPECT_FALSE(net.idle());
}

TEST_F(NetworkTest, PointToPointOrderPreserved)
{
    // A later message with shorter computed latency must not overtake an
    // earlier one on the same (src,dst) pair.
    Msg a = makeMsg(0, 15, 0xAAA);
    Msg b = makeMsg(0, 15, 0xBBB);
    net.send(a, 0);
    net.send(b, 1);
    for (Cycle c = 0; c <= 100; c++)
        net.tick(c);
    ASSERT_EQ(recorders[15].received.size(), 2u);
    EXPECT_EQ(recorders[15].received[0].first.line, 0xAAAu);
    EXPECT_EQ(recorders[15].received[1].first.line, 0xBBBu);
    EXPECT_LE(recorders[15].received[0].second,
              recorders[15].received[1].second);
}

TEST_F(NetworkTest, IndependentPairsCanInterleave)
{
    net.send(makeMsg(0, 1), 0);  // 1 tile apart
    net.send(makeMsg(0, 15), 0); // far
    for (Cycle c = 0; c <= 100; c++)
        net.tick(c);
    ASSERT_EQ(recorders[1].received.size(), 1u);
    ASSERT_EQ(recorders[15].received.size(), 1u);
    EXPECT_LT(recorders[1].received[0].second,
              recorders[15].received[0].second);
}

TEST_F(NetworkTest, HomeBankIsStableAndInRange)
{
    for (Addr line = 0; line < 256 * lineBytes; line += lineBytes) {
        NodeId bank = net.homeBank(line);
        EXPECT_GE(bank, 16u);
        EXPECT_LT(bank, 32u);
        EXPECT_EQ(bank, net.homeBank(line + 7)); // same line, same bank
    }
}

TEST_F(NetworkTest, HomeBanksSpreadAcrossBanks)
{
    std::vector<int> seen(16, 0);
    for (Addr l = 0; l < 64 * lineBytes; l += lineBytes)
        seen[net.homeBank(l) - 16]++;
    for (int count : seen)
        EXPECT_EQ(count, 4); // 64 consecutive lines over 16 banks
}

TEST_F(NetworkTest, IdleAfterAllDelivered)
{
    net.send(makeMsg(2, 9), 0);
    for (Cycle c = 0; c <= 100; c++)
        net.tick(c);
    EXPECT_TRUE(net.idle());
}

TEST_F(NetworkTest, MessageStatsCounted)
{
    net.send(makeMsg(0, 1), 0);
    net.send(makeMsg(1, 2), 0);
    EXPECT_EQ(net.stats().counterValue("messages"), 2u);
}
