/**
 * @file
 * Protocol unit tests for a directory bank: state transitions, the
 * Blocked window, request queueing, invalidation collection, and the
 * PutM crossing races.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/directory.hh"
#include "net/network.hh"

using namespace rowsim;

namespace
{

struct CoreStub : MsgHandler
{
    std::vector<Msg> inbox;
    void
    deliver(const Msg &msg, Cycle) override
    {
        inbox.push_back(msg);
    }
    bool
    got(MsgType t) const
    {
        for (const auto &m : inbox)
            if (m.type == t)
                return true;
        return false;
    }
    const Msg *
    last(MsgType t) const
    {
        for (auto it = inbox.rbegin(); it != inbox.rend(); ++it)
            if (it->type == t)
                return &*it;
        return nullptr;
    }
};

} // namespace

class DirectoryTest : public ::testing::Test
{
  protected:
    static constexpr unsigned cores = 4;

    DirectoryTest()
        : net(cores, NetParams{}), dir(0, cores, MemParams{}, &net)
    {
        for (CoreId c = 0; c < cores; c++)
            net.attach(c, &stubs[c]);
        net.attach(cores + 0, &dir);
        // Pick a line homed at bank 0.
        line = 0;
        EXPECT_EQ(net.homeBank(line), cores + 0);
    }

    /** Advance enough cycles for all latencies to elapse. */
    void
    settle(Cycle upto = 600)
    {
        for (; now <= upto; now++) {
            net.tick(now);
            dir.tick(now);
        }
    }

    void
    sendToDir(MsgType t, CoreId c)
    {
        Msg m;
        m.type = t;
        m.line = line;
        m.src = c;
        m.dst = cores + 0;
        m.requester = c;
        net.send(m, now);
    }

    Network net;
    Directory dir;
    CoreStub stubs[cores];
    Addr line;
    Cycle now = 1;
};

TEST_F(DirectoryTest, GetSFromInvalidDeliversSharedData)
{
    sendToDir(MsgType::GetS, 0);
    settle();
    ASSERT_TRUE(stubs[0].got(MsgType::Data));
    const Msg *d = stubs[0].last(MsgType::Data);
    EXPECT_FALSE(d->excl);
    EXPECT_TRUE(d->fromMemory); // cold LLC
    EXPECT_FALSE(d->fromPrivateCache);
    // Blocked until the Unblock arrives.
    EXPECT_EQ(dir.lineState(line), DirState::Blocked);
    sendToDir(MsgType::Unblock, 0);
    settle(1200);
    EXPECT_EQ(dir.lineState(line), DirState::Shared);
}

TEST_F(DirectoryTest, SecondGetSHitsLlc)
{
    sendToDir(MsgType::GetS, 0);
    settle();
    sendToDir(MsgType::Unblock, 0);
    settle(1200);
    sendToDir(MsgType::GetS, 1);
    settle(1800);
    const Msg *d = stubs[1].last(MsgType::Data);
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->fromMemory); // LLC now has it
}

TEST_F(DirectoryTest, GetXFromInvalidGrantsExclusive)
{
    sendToDir(MsgType::GetX, 2);
    settle();
    ASSERT_TRUE(stubs[2].got(MsgType::DataExcl));
    sendToDir(MsgType::Unblock, 2);
    settle(1200);
    EXPECT_EQ(dir.lineState(line), DirState::Modified);
    EXPECT_EQ(dir.lineOwner(line), 2u);
}

TEST_F(DirectoryTest, GetXOnSharedInvalidatesSharers)
{
    // Cores 0 and 1 take shared copies.
    for (CoreId c : {0u, 1u}) {
        sendToDir(MsgType::GetS, c);
        settle(now + 600);
        sendToDir(MsgType::Unblock, c);
        settle(now + 600);
    }
    // Core 2 wants exclusive: both sharers must be invalidated.
    sendToDir(MsgType::GetX, 2);
    settle(now + 600);
    EXPECT_TRUE(stubs[0].got(MsgType::Inv));
    EXPECT_TRUE(stubs[1].got(MsgType::Inv));
    // Data is withheld until both InvAcks arrive.
    EXPECT_FALSE(stubs[2].got(MsgType::DataExcl));
    sendToDir(MsgType::InvAck, 0);
    settle(now + 600);
    EXPECT_FALSE(stubs[2].got(MsgType::DataExcl));
    sendToDir(MsgType::InvAck, 1);
    settle(now + 600);
    EXPECT_TRUE(stubs[2].got(MsgType::DataExcl));
}

TEST_F(DirectoryTest, GetXOnModifiedForwardsToOwner)
{
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);

    sendToDir(MsgType::GetX, 1);
    settle(now + 600);
    ASSERT_TRUE(stubs[0].got(MsgType::FwdGetX));
    EXPECT_EQ(stubs[0].last(MsgType::FwdGetX)->requester, 1u);
    // Ownership transfers at the Unblock.
    sendToDir(MsgType::Unblock, 1);
    settle(now + 600);
    EXPECT_EQ(dir.lineOwner(line), 1u);
}

TEST_F(DirectoryTest, RequestsQueueBehindBlockedLine)
{
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    // Line is Blocked (no Unblock yet); core 1's request must wait.
    sendToDir(MsgType::GetX, 1);
    settle(now + 600);
    EXPECT_FALSE(stubs[0].got(MsgType::FwdGetX));
    EXPECT_EQ(dir.stats().counterValue("queuedRequests"), 1u);
    // Unblock releases the queue: core 0 becomes owner, then gets the
    // forward for core 1.
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);
    EXPECT_TRUE(stubs[0].got(MsgType::FwdGetX));
}

TEST_F(DirectoryTest, PutMFromOwnerWritesBack)
{
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);
    sendToDir(MsgType::PutM, 0);
    settle(now + 600);
    EXPECT_TRUE(stubs[0].got(MsgType::WBAck));
    EXPECT_EQ(dir.lineState(line), DirState::Invalid);
    EXPECT_EQ(dir.stats().counterValue("writebacks"), 1u);
}

TEST_F(DirectoryTest, StalePutMIsAckedWithoutStateChange)
{
    // Core 0 owns; core 1's GetX is in flight (Blocked, fwd sent); core
    // 0's crossing PutM must be acked as stale.
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);
    sendToDir(MsgType::GetX, 1);
    settle(now + 600);
    ASSERT_EQ(dir.lineState(line), DirState::Blocked);
    sendToDir(MsgType::PutM, 0);
    settle(now + 600);
    EXPECT_TRUE(stubs[0].got(MsgType::WBAck));
    EXPECT_EQ(dir.stats().counterValue("staleWritebacks"), 1u);
    sendToDir(MsgType::Unblock, 1);
    settle(now + 600);
    EXPECT_EQ(dir.lineOwner(line), 1u);
}

TEST_F(DirectoryTest, OracleFiresOnConcurrentInterest)
{
    int overlap_calls = 0, holder_calls = 0;
    dir.setOracleHook([&](Addr, CoreId, CoreId, bool overlap, Cycle) {
        (overlap ? overlap_calls : holder_calls)++;
    });
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    // Queued request while blocked: definite overlap.
    sendToDir(MsgType::GetX, 1);
    settle(now + 600);
    EXPECT_GT(overlap_calls, 0);
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);
    // The queued GetX is now processed against M-owner 0: holder hint.
    EXPECT_GT(holder_calls, 0);
}

TEST_F(DirectoryTest, IdleReflectsOutstandingTransactions)
{
    EXPECT_TRUE(dir.idle());
    sendToDir(MsgType::GetX, 0);
    settle(now + 600);
    EXPECT_FALSE(dir.idle());
    sendToDir(MsgType::Unblock, 0);
    settle(now + 600);
    EXPECT_TRUE(dir.idle());
}
