/**
 * @file
 * Whole-system integration tests: multicore runs over the real workload
 * profiles, determinism, scaling sanity, statistics plumbing, and the
 * experiment harness itself.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    RunResult a = runExperiment("sps", eagerConfig(), 8, 30, 5);
    RunResult b = runExperiment("sps", eagerConfig(), 8, 30, 5);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicsCommitted, b.atomicsCommitted);
}

TEST(SystemIntegration, SeedChangesExecution)
{
    RunResult a = runExperiment("sps", eagerConfig(), 8, 30, 5);
    RunResult b = runExperiment("sps", eagerConfig(), 8, 30, 6);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(SystemIntegration, EveryCoreReachesQuota)
{
    SystemParams sp;
    sp.numCores = 8;
    System sys(sp, makeStreams(profileFor("barnes"), 8, 1));
    sys.run(20);
    for (CoreId c = 0; c < 8; c++)
        EXPECT_GE(sys.core(c).committedIterations(), 20u);
}

TEST(SystemIntegration, MoreCoresMoreContention)
{
    // Same per-core quota on a single hot counter: 16 cores must take
    // disproportionately longer than 4 (serialisation).
    RunResult small = runExperiment("pc", eagerConfig(), 4, 40);
    RunResult big = runExperiment("pc", eagerConfig(), 16, 40);
    EXPECT_GT(big.cycles, small.cycles);
    EXPECT_GT(big.contendedPct, 50.0);
}

TEST(SystemIntegration, AtomicsPer10kMatchesProfileIntent)
{
    RunResult r = runExperiment("sps", eagerConfig(), 8, 40);
    EXPECT_GT(r.atomicsPer10k, 50.0);
    RunResult quiet = runExperiment("blackscholes", eagerConfig(), 8, 10);
    EXPECT_LT(quiet.atomicsPer10k, 1.0);
}

TEST(SystemIntegration, NonAtomicWorkloadInsensitiveToPolicy)
{
    RunResult e = runExperiment("blackscholes", eagerConfig(), 8, 15);
    RunResult l = runExperiment("blackscholes", lazyConfig(), 8, 15);
    double ratio = static_cast<double>(l.cycles) / e.cycles;
    EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(SystemIntegration, StatsAggregationSumsAcrossCores)
{
    SystemParams sp;
    sp.numCores = 4;
    System sys(sp, makeStreams(profileFor("pc"), 4, 1));
    sys.run(20);
    std::uint64_t manual = 0;
    for (CoreId c = 0; c < 4; c++)
        manual += sys.core(c).stats().counterValue("atomicsUnlocked");
    EXPECT_EQ(sys.totalCounter("atomicsUnlocked"), manual);
    EXPECT_GT(sys.totalInstructions(), 0u);
    EXPECT_GT(sys.totalAtomics(), 0u);
}

TEST(SystemIntegration, LatencyBreakdownIsConsistent)
{
    RunResult r = runExperiment("tpcc", eagerConfig(), 8, 30);
    // Segments are non-negative and the breakdown is populated.
    EXPECT_GE(r.dispatchToIssue, 0.0);
    EXPECT_GE(r.issueToLock, 0.0);
    EXPECT_GT(r.lockToUnlock, 0.0);
}

TEST(SystemIntegration, RunCyclesAdvancesExactly)
{
    SystemParams sp;
    sp.numCores = 2;
    System sys(sp, makeStreams(profileFor("fft"), 2, 1));
    sys.runCycles(1234);
    EXPECT_EQ(sys.now(), 1234u);
}

TEST(SystemIntegration, MakeParamsAppliesConfig)
{
    auto cfg = rowConfig(ContentionDetector::RW, PredictorUpdate::UpDown,
                         true);
    cfg.latencyThreshold = 777;
    SystemParams sp = makeParams(cfg, 8, 3);
    EXPECT_EQ(sp.numCores, 8u);
    EXPECT_EQ(sp.seed, 3u);
    EXPECT_EQ(sp.core.atomicPolicy, AtomicPolicy::RoW);
    EXPECT_EQ(sp.core.row.detector, ContentionDetector::RW);
    EXPECT_EQ(sp.core.row.update, PredictorUpdate::UpDown);
    EXPECT_TRUE(sp.core.forwardToAtomics);
    EXPECT_EQ(sp.core.row.latencyThreshold, 777u);
}

TEST(SystemIntegration, ThirtyTwoCoreTableOneConfigRuns)
{
    // The full paper-scale configuration (Table I): a short run must
    // work end to end and stay deadlock-free.
    RunResult r = runExperiment("tpcc", eagerConfig(), 32, 10);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GE(r.atomicsCommitted, 32u * 10u);
}

TEST(SystemIntegration, DrainQuiescesDeepPipelines)
{
    SystemParams sp;
    sp.numCores = 8;
    System sys(sp, makeStreams(profileFor("pc"), 8, 1));
    sys.run(10);
    sys.drain();
    EXPECT_TRUE(sys.mem().idle());
    for (CoreId c = 0; c < 8; c++)
        EXPECT_TRUE(sys.core(c).drained());
}

TEST(SystemIntegration, NetworkAndDirectoryStatsPopulated)
{
    SystemParams sp;
    sp.numCores = 4;
    System sys(sp, makeStreams(profileFor("pc"), 4, 1));
    sys.run(20);
    EXPECT_GT(sys.mem().network().stats().counterValue("messages"), 100u);
    std::uint64_t getx = 0;
    for (unsigned b = 0; b < sys.mem().numBanks(); b++)
        getx += sys.mem().directory(b).stats().counterValue("getX");
    EXPECT_GT(getx, 0u);
}
