/**
 * @file
 * Span-tracker tests: segment conservation across fast-forward modes
 * (every span's segments must exactly tile dispatch→commit — close()
 * panics otherwise, so a clean run with spans on IS the check), span
 * counts against the commit stream in closed form, the off/on
 * equivalence guarantees (tracing must never perturb the simulated
 * machine, off-mode stats JSON must be byte-identical), sweep
 * determinism of the span summaries across thread counts, per-job
 * sink-file isolation under a concurrent sweep, restore-time span
 * truncation, the per-message-type network latency histograms, and the
 * span_report tool parsing its own toolchain's output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/profiles.hh"
#include "sim/snapshot.hh"
#include "sim/span.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace rowsim;

namespace
{

struct ScopedEnv
{
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

/** A two-core ping-pong with one shared word: every iteration commits
 *  exactly one atomic, so span counts have a closed form. */
WorkloadProfile
pingPongProfile()
{
    WorkloadProfile w;
    w.name = "pingpong";
    w.aluOps = 4;
    w.loadsBefore = 0;
    w.loadsAfter = 0;
    w.storesPerIter = 0;
    w.branches = 0;
    w.atomicProb = 1.0;
    w.sharedAtomicWords = 1;
    w.sharedFraction = 1.0;
    w.numAtomicPCs = 1;
    return w;
}

std::unique_ptr<System>
makeSpanSystem(const WorkloadProfile &profile, const ExpConfig &cfg,
               unsigned cores, std::uint64_t seed)
{
    SystemParams sp = makeParams(cfg, cores, seed);
    sp.spans = "on";
    return std::make_unique<System>(sp,
                                    makeStreams(profile, cores, seed));
}

std::unique_ptr<System>
makeSpanSystem(const std::string &workload, const ExpConfig &cfg,
               unsigned cores, std::uint64_t seed)
{
    return makeSpanSystem(profileFor(workload), cfg, cores, seed);
}

std::string
statsJsonOf(System &sys)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *mem = open_memstream(&buf, &len);
    EXPECT_NE(mem, nullptr);
    sys.dumpStatsJson(mem);
    std::fclose(mem);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

} // namespace

TEST(SpanSpec, ParseAndReject)
{
    EXPECT_FALSE(parseSpanSpec("0"));
    EXPECT_FALSE(parseSpanSpec("off"));
    EXPECT_FALSE(parseSpanSpec("no"));
    EXPECT_FALSE(parseSpanSpec("false"));
    EXPECT_TRUE(parseSpanSpec("1"));
    EXPECT_TRUE(parseSpanSpec("on"));
    EXPECT_TRUE(parseSpanSpec("yes"));
    EXPECT_TRUE(parseSpanSpec("true"));
    EXPECT_THROW(parseSpanSpec("maybe"), std::runtime_error);
    EXPECT_THROW(parseSpanSpec(""), std::runtime_error);
}

TEST(SpanConservation, SegmentsTileDispatchToCommitAcrossFFModes)
{
    // close() panics on any span whose segments do not sum exactly to
    // commit − dispatch, so a clean contended run under every
    // fast-forward mode and policy family is itself the conservation
    // proof. The explicit re-check below guards the retained records
    // (what toJson exports) against a silent close()-side regression.
    for (const char *ff : {"0", "1", "check"}) {
        ScopedEnv env("ROWSIM_FF", ff);
        for (const ExpConfig &cfg :
             {eagerConfig(), lazyConfig(),
              rowConfig(ContentionDetector::RWDir,
                        PredictorUpdate::SaturateOnContention)}) {
            SCOPED_TRACE(cfg.label + " ff=" + ff);
            auto sys = makeSpanSystem("pc", cfg, 8, 1);
            sys->run(60);
            sys->drain();

            const SpanTracker *sp = sys->spans();
            ASSERT_NE(sp, nullptr);
            EXPECT_GT(sp->closed(), 0u);
            for (const SpanTracker::Record &r : sp->retained()) {
                std::uint64_t sum = 0;
                for (std::uint64_t s : r.segs)
                    sum += s;
                EXPECT_EQ(sum, r.total()) << "span " << r.id;
            }
        }
    }
}

TEST(SpanCounts, PingPongClosedFormAndDrainedBooks)
{
    // One atomic per committed iteration on two cores: after a drain,
    // every opened span has closed and the count equals the atomic
    // commit stream exactly.
    auto sys = makeSpanSystem(pingPongProfile(), eagerConfig(), 2, 1);
    sys->run(200);
    sys->drain();

    const SpanTracker *sp = sys->spans();
    ASSERT_NE(sp, nullptr);
    const std::uint64_t atomics = sys->totalAtomics();
    EXPECT_GT(atomics, 0u);
    EXPECT_EQ(sp->closed(), atomics);
    EXPECT_EQ(sp->opened(), sp->closed() + sp->openCount());

    // One PC, one line: the aggregates must collapse to single rows
    // that each account for every closed span.
    ASSERT_EQ(sp->pcs().size(), 1u);
    ASSERT_EQ(sp->lines().size(), 1u);
    EXPECT_EQ(sp->pcs().begin()->second.count, sp->closed());
    EXPECT_EQ(sp->lines().begin()->second.count, sp->closed());
    EXPECT_EQ(sp->lines().begin()->first,
              lineAlign(addrmap::sharedAtomicWord(0)));
    EXPECT_EQ(sp->totalHist().summary().count(), sp->closed());

    // The contended line ping-pongs: some spans must see remote legs.
    std::uint64_t netCycles = 0;
    for (const SpanTracker::Record &r : sp->retained())
        netCycles += r.netCycles;
    EXPECT_GT(netCycles, 0u);
}

TEST(SpanOffOn, OffModeIsByteIdenticalAndTracingDoesNotPerturb)
{
    ::unsetenv("ROWSIM_SPANS");
    ExpConfig off = eagerConfig();
    ExpConfig on = eagerConfig();
    on.label = "eager+spans";
    on.spans = "on";

    RunResult off1 = runExperiment("pc", off, 8, 40, 1, true);
    RunResult ron = runExperiment("pc", on, 8, 40, 1, true);
    // A spans-on run on this thread must not leak its gate into the
    // next plain System (setupSpans re-applies per construction).
    RunResult off2 = runExperiment("pc", off, 8, 40, 1, true);

    EXPECT_EQ(off1.statsJson, off2.statsJson);
    EXPECT_EQ(off1.statsJson.find("\"spans\""), std::string::npos);
    EXPECT_TRUE(off1.spanJson.empty());
    EXPECT_TRUE(off2.spanJson.empty());

    // Tracing is observe-only: identical machine, identical cycles.
    EXPECT_EQ(off1.cycles, ron.cycles);
    EXPECT_EQ(off1.instructions, ron.instructions);
    EXPECT_NE(ron.statsJson.find("\"spans\""), std::string::npos);
    ASSERT_FALSE(ron.spanJson.empty());
    EXPECT_NE(ron.spanJson.find("\"segTotals\""), std::string::npos);
    EXPECT_NE(ron.spanJson.find("\"critical\""), std::string::npos);
    EXPECT_NE(ron.toJson().find("\"spans\""), std::string::npos);
}

TEST(SpanSweep, SummariesDeterministicAcrossThreadCounts)
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"pc", "cq", "sps", "tatp"}) {
        for (const ExpConfig &cfg : {eagerConfig(), lazyConfig()}) {
            SweepJob j;
            j.workload = w;
            j.cfg = cfg;
            j.cfg.spans = "on";
            j.numCores = 8;
            j.quota = 30;
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunResult> serial = SweepEngine(1).run(jobs);
    std::vector<RunResult> parallel = SweepEngine(8).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        EXPECT_EQ(serial[k].cycles, parallel[k].cycles) << k;
        ASSERT_FALSE(serial[k].spanJson.empty()) << k;
        EXPECT_EQ(serial[k].spanJson, parallel[k].spanJson)
            << jobs[k].workload << "/" << jobs[k].cfg.label;
    }
}

TEST(SpanSweep, ConcurrentJobsWriteDisjointSuffixedTraceFiles)
{
    namespace fs = std::filesystem;
    const std::string dir = "span-scratch-sweep";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string base = dir + "/trace.json";

    {
        ScopedEnv env("ROWSIM_TRACE_JSON", base);
        ScopedEnv cat("ROWSIM_TRACE", "span");
        ScopedEnv spans("ROWSIM_SPANS", "on");
        std::vector<SweepJob> jobs;
        for (const char *w : {"cq", "sps"}) {
            SweepJob j;
            j.workload = w;
            j.cfg = eagerConfig();
            j.numCores = 4;
            j.quota = 30;
            jobs.push_back(std::move(j));
        }
        SweepEngine(2).run(jobs);
    }
    // The sweep worker scoped each job's sinks by job index: no shared
    // unsuffixed file, one well-formed JSON file per job.
    EXPECT_FALSE(fs::exists(base));
    for (const char *suffixed :
         {"span-scratch-sweep/trace.j0.json",
          "span-scratch-sweep/trace.j1.json"}) {
        ASSERT_TRUE(fs::exists(suffixed)) << suffixed;
        std::ifstream in(suffixed);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_GT(text.size(), 2u) << suffixed;
        EXPECT_EQ(text.front(), '{') << suffixed;
        EXPECT_NE(text.find("\"traceEvents\""), std::string::npos)
            << suffixed;
        EXPECT_NE(text.find("\"ph\""), std::string::npos) << suffixed;
    }
    fs::remove_all(dir);
}

TEST(SpanSnapshot, RestoreTruncatesInFlightSpansAndKeepsBooksClean)
{
    const ExpConfig cfg = lazyConfig();

    // Warm a contended run so atomics are in flight, snapshot it.
    auto warm = makeSpanSystem("cq", cfg, 4, 3);
    warm->runWarmup(200, 50);
    Ser s;
    warm->save(s);
    warm.reset();

    auto resumed = makeSpanSystem("cq", cfg, 4, 3);
    resumed->run(10); // open some spans before the restore cuts in
    Deser d(s.bytes());
    resumed->restore(d);

    const SpanTracker *sp = resumed->spans();
    ASSERT_NE(sp, nullptr);
    // Everything open at restore was dropped and counted; no dangling
    // IDs survive.
    EXPECT_EQ(sp->openCount(), 0u);
    EXPECT_GT(sp->truncated(), 0u);

    // The resumed run traces cleanly: spans opened after the restore
    // close with full conservation (close() would panic otherwise).
    const std::uint64_t closedBefore = sp->closed();
    resumed->run(200);
    resumed->drain();
    EXPECT_GT(sp->closed(), closedBefore);
    // Count accounting: every opened span is closed, still open, or was
    // truncated (truncated additionally counts in-image atomics that
    // never opened a span here, so it bounds the gap from above).
    EXPECT_GE(sp->opened(), sp->closed() + sp->openCount());
    EXPECT_LE(sp->opened() - sp->closed() - sp->openCount(),
              sp->truncated());
}

TEST(SpanSnapshot, SaveRestoreRunBitIdenticalWithSpansOff)
{
    ::unsetenv("ROWSIM_SPANS");
    const ExpConfig cfg = eagerConfig();
    auto makeSys = [&] {
        return std::make_unique<System>(
            makeParams(cfg, 4, 3),
            makeStreams(profileFor("cq"), 4, 3));
    };

    auto cold = makeSys();
    const Cycle coldCycles = cold->run(200);
    const std::string coldStats = statsJsonOf(*cold);

    auto warm = makeSys();
    warm->runWarmup(200, 50);
    Ser s;
    warm->save(s);
    warm.reset();

    auto resumed = makeSys();
    Deser d(s.bytes());
    resumed->restore(d);
    EXPECT_EQ(resumed->run(200), coldCycles);
    EXPECT_EQ(statsJsonOf(*resumed), coldStats);
    EXPECT_EQ(coldStats.find("\"spans\""), std::string::npos);
}

TEST(SpanNetwork, PerMessageTypeLatencyHistogramsInStatsJson)
{
    // The network records a latency histogram per message type
    // unconditionally (independent of span tracing): the stats JSON
    // must carry them with sane percentile ordering.
    auto sys = makeSpanSystem(pingPongProfile(), eagerConfig(), 2, 1);
    sys->run(200);
    sys->drain();
    const std::string json = statsJsonOf(*sys);
    for (const char *h : {"latGetX", "latFwdGetX", "latUnblock"}) {
        EXPECT_NE(json.find(std::string("\"") + h + "\""),
                  std::string::npos)
            << h << " histogram missing from stats JSON";
    }
    const StatGroup &net = sys->mem().network().stats();
    const Histogram *lat = net.findHistogram("latGetX");
    ASSERT_NE(lat, nullptr);
    ASSERT_GT(lat->summary().count(), 0u);
    EXPECT_LE(lat->percentile(0.50), lat->percentile(0.99));
    EXPECT_GE(lat->summary().max(), lat->summary().min());
}

#ifdef SPAN_REPORT_PATH
TEST(SpanReport, ParsesItsOwnToolchainOutput)
{
    namespace fs = std::filesystem;
    const std::string dir = "span-scratch-report";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string jsonl = dir + "/spans.jsonl";

    ExpConfig cfg = lazyConfig();
    cfg.spans = "on";
    RunResult r = runExperiment("cq", cfg, 4, 60, 1, false);
    ASSERT_FALSE(r.spanJson.empty());
    {
        std::ofstream out(jsonl);
        out << "{\"workload\":\"cq\",\"config\":\"lazy\",\"cycles\":"
            << r.cycles << ",\"spans\":" << r.spanJson << "}\n";
    }

    const std::string cmd = std::string(SPAN_REPORT_PATH) + " " + jsonl +
                            " > " + dir + "/report.txt";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    std::ifstream in(dir + "/report.txt");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("cq/lazy"), std::string::npos);
    EXPECT_NE(text.find("Segment breakdown"), std::string::npos);
    EXPECT_NE(text.find("critical path"), std::string::npos);
    EXPECT_NE(text.find("aqWait"), std::string::npos);
    fs::remove_all(dir);
}
#endif
